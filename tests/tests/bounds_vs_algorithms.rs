//! The reproduction's keystone property: **no implemented algorithm ever
//! beats a lower bound of the paper**, across a parameter grid.
//!
//! If any of these assertions ever failed, either an algorithm would be
//! violating the machine model (the enforcing simulator should have caught
//! it) or a bound evaluation would be unsound — both reproduction-breaking
//! bugs. This is the closest an implementation can get to "testing" a
//! lower-bound theorem.

use aem_core::bounds::{flash as fbounds, permute as pbounds, spmv as sbounds};
use aem_core::permute::{permute_by_sort, permute_naive};
use aem_core::sort::merge_sort;
use aem_core::spmv::{spmv_direct, spmv_sorted, U64Ring};
use aem_machine::{AemAccess, AemConfig, Machine};
use aem_workloads::{Conformation, KeyDist, MatrixShape, PermKind};

fn grid() -> Vec<AemConfig> {
    let mut cfgs = Vec::new();
    for (mem, b) in [(32usize, 4usize), (64, 8), (256, 16)] {
        for omega in [1u64, 2, 8, 32, 128] {
            cfgs.push(AemConfig::new(mem, b, omega).unwrap());
        }
    }
    cfgs
}

#[test]
fn permuting_never_beats_the_counting_bound() {
    for cfg in grid() {
        for n in [512usize, 2048, 8192] {
            let pi = PermKind::Random { seed: 1 }.generate(n);
            let values: Vec<u64> = (0..n as u64).collect();
            let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
            let naive = permute_naive(cfg, &values, &pi).unwrap();
            let sort = permute_by_sort(cfg, &values, &pi).unwrap();
            for (name, q) in [("naive", naive.q()), ("by_sort", sort.q())] {
                assert!(
                    q as f64 >= lb,
                    "{name} on {cfg} at N={n}: Q={q} beats counting bound {lb}"
                );
            }
        }
    }
}

#[test]
fn permuting_never_beats_the_flash_reduction_bound() {
    // Corollary 4.4 applies where B > ω; it is lossier than the counting
    // bound but must still be valid.
    for cfg in grid().into_iter().filter(|c| c.omega < c.block as u64) {
        for n in [2048usize, 8192] {
            let pi = PermKind::Random { seed: 2 }.generate(n);
            let values: Vec<u64> = (0..n as u64).collect();
            let lb = fbounds::flash_reduction_cost_bound(n as u64, cfg);
            let naive = permute_naive(cfg, &values, &pi).unwrap();
            assert!(
                naive.q() as f64 >= lb,
                "naive on {cfg} at N={n}: Q={} beats Cor 4.4 bound {lb}",
                naive.q()
            );
        }
    }
}

#[test]
fn sorting_never_beats_the_permutation_bound() {
    // Every sorter must realize arbitrary permutations, so Thm 4.5 binds
    // sorting too (the paper's own argument).
    for cfg in grid() {
        for n in [512usize, 4096] {
            let input = KeyDist::Uniform { seed: 3 }.generate(n);
            let mut m: Machine<u64> = Machine::new(cfg);
            let r = m.install(&input);
            merge_sort(&mut m, r).unwrap();
            let q = m.cost().q(cfg.omega);
            let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
            assert!(
                q as f64 >= lb,
                "merge_sort on {cfg} at N={n}: Q={q} beats bound {lb}"
            );
        }
    }
}

#[test]
fn spmv_never_beats_theorem_5_1() {
    for cfg in [
        AemConfig::new(64, 8, 2).unwrap(),
        AemConfig::new(64, 8, 8).unwrap(),
    ] {
        for (n, delta) in [(1024usize, 1usize), (1024, 2), (2048, 4)] {
            let conf = Conformation::generate(MatrixShape::Random { seed: 4 }, n, delta);
            let a: Vec<U64Ring> = vec![U64Ring(1); conf.nnz()];
            let x: Vec<U64Ring> = vec![U64Ring(1); n]; // the all-ones instance of §5
            let lb = sbounds::spmv_cost_lower_bound(n as u64, delta as u64, cfg);
            let d = spmv_direct(cfg, &conf, &a, &x).unwrap();
            let s = spmv_sorted(cfg, &conf, &a, &x).unwrap();
            for (name, q) in [("direct", d.q()), ("sorted", s.q())] {
                assert!(
                    q as f64 >= lb,
                    "{name} on {cfg} at N={n} δ={delta}: Q={q} beats Thm 5.1 bound {lb}"
                );
            }
        }
    }
}

#[test]
fn counting_bound_scales_with_the_sorting_branch() {
    // On the sorting branch the bound must grow superlinearly in n (the
    // log factor); verify the growth direction on a fixed config.
    let cfg = AemConfig::new(64, 8, 4).unwrap();
    let b1 = pbounds::permute_cost_lower_bound(1 << 14, cfg);
    let b2 = pbounds::permute_cost_lower_bound(1 << 18, cfg);
    assert!(
        b2 > 14.0 * b1,
        "16x data should raise the bound by >14x (got {b1} -> {b2})"
    );
}
