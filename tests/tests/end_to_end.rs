//! End-to-end property tests across the whole stack: random machine
//! configurations, random workloads, every algorithm family.
//!
//! Each property runs a fixed number of seeded deterministic cases drawn
//! from the workspace's `SplitMix64` generator.

use aem_core::permute::{permute_auto, permute_by_sort, permute_naive};
use aem_core::sort::{distribution_sort, em_merge_sort, heap_sort, merge_sort};
use aem_core::spmv::{reference_multiply, spmv_auto, spmv_direct, spmv_sorted, U64Ring};
use aem_machine::{AemAccess, AemConfig, Machine};
use aem_workloads::{perm, Conformation, MatrixShape, PermKind, SplitMix64};

fn random_cfg(rng: &mut SplitMix64) -> AemConfig {
    let be = 1 + rng.next_below_usize(3); // B ∈ {2, 4, 8}
    let mb = 2 + rng.next_below_usize(7);
    let omega = 1 + rng.next_below(128);
    let b = 1usize << be;
    AemConfig::new(mb.max(4) * b, b, omega).unwrap()
}

#[test]
fn all_sorters_agree_with_std_sort() {
    let mut rng = SplitMix64::seed_from_u64(0x50f7);
    for case in 0..32u64 {
        let cfg = random_cfg(&mut rng);
        let n = rng.next_below_usize(800);
        let input: Vec<u64> = (0..n).map(|_| rng.next_below(1 << 16)).collect();
        let mut want = input.clone();
        want.sort();

        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&input);
        let out = merge_sort(&mut m, r).unwrap();
        assert_eq!(m.inspect(out), want, "case {case} merge_sort");

        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&input);
        let out = em_merge_sort(&mut m, r).unwrap();
        assert_eq!(m.inspect(out), want, "case {case} em_merge_sort");

        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&input);
        let out = distribution_sort(&mut m, r).unwrap();
        assert_eq!(m.inspect(out), want, "case {case} distribution_sort");

        // The priority-queue sorter needs M >= 8B.
        if cfg.memory >= 8 * cfg.block {
            let mut m: Machine<u64> = Machine::new(cfg);
            let r = m.install(&input);
            let out = heap_sort(&mut m, r).unwrap();
            assert_eq!(m.inspect(out), want, "case {case} heap_sort");
        }
    }
}

#[test]
fn all_permuters_realize_pi() {
    let mut rng = SplitMix64::seed_from_u64(0x9e4);
    for case in 0..32u64 {
        let cfg = random_cfg(&mut rng);
        let seed = rng.next_u64();
        let n = 1 + rng.next_below_usize(499);
        let pi = PermKind::Random { seed }.generate(n);
        let values: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        let want = perm::apply(&pi, &values);

        assert_eq!(
            permute_naive(cfg, &values, &pi).unwrap().output,
            want,
            "case {case} naive"
        );
        assert_eq!(
            permute_by_sort(cfg, &values, &pi).unwrap().output,
            want,
            "case {case} by_sort"
        );
        assert_eq!(
            permute_auto(cfg, &values, &pi).unwrap().0.output,
            want,
            "case {case} auto"
        );
    }
}

#[test]
fn spmv_agrees_with_reference() {
    let mut rng = SplitMix64::seed_from_u64(0x5432);
    for case in 0..32u64 {
        let cfg = random_cfg(&mut rng);
        let seed = rng.next_u64();
        let n_exp = 4 + rng.next_below_usize(3);
        let delta = 1 + rng.next_below_usize(5);
        let n = 1usize << n_exp;
        let delta = delta.min(n);
        let conf = Conformation::generate(MatrixShape::Random { seed }, n, delta);
        let a: Vec<U64Ring> = (0..conf.nnz()).map(|i| U64Ring(i as u64 % 11)).collect();
        let x: Vec<U64Ring> = (0..n).map(|j| U64Ring(j as u64 % 7)).collect();
        let want = reference_multiply(&conf, &a, &x);

        assert_eq!(
            spmv_direct(cfg, &conf, &a, &x).unwrap().output,
            want,
            "case {case} direct"
        );
        assert_eq!(
            spmv_sorted(cfg, &conf, &a, &x).unwrap().output,
            want,
            "case {case} sorted"
        );
        assert_eq!(
            spmv_auto(cfg, &conf, &a, &x).unwrap().0.output,
            want,
            "case {case} auto"
        );
    }
}

#[test]
fn sorting_cost_envelope_holds_for_random_configs() {
    let mut rng = SplitMix64::seed_from_u64(0xe57);
    for _ in 0..32u64 {
        let cfg = random_cfg(&mut rng);
        let n_exp = 8 + rng.next_below_usize(4);
        // Thm 3.2 with a generous explicit constant, across random configs.
        let n = 1usize << n_exp;
        let input = aem_workloads::KeyDist::Uniform { seed: 9 }.generate(n);
        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&input);
        merge_sort(&mut m, r).unwrap();
        let q = m.cost().q(cfg.omega) as f64;
        let nb = cfg.blocks_for(n) as f64;
        let envelope = 48.0 * cfg.omega as f64 * nb * cfg.log_fan_in(nb).ceil();
        assert!(q <= envelope, "{cfg} N={n}: q={q} envelope={envelope}");
    }
}

#[test]
fn duplicate_heavy_inputs_sort_stably_sized() {
    // All-equal keys: the tie-breaking machinery must not lose or
    // duplicate elements.
    let cfg = AemConfig::new(32, 4, 16).unwrap();
    let input = vec![7u64; 1000];
    let mut m: Machine<u64> = Machine::new(cfg);
    let r = m.install(&input);
    let out = merge_sort(&mut m, r).unwrap();
    assert_eq!(m.inspect(out), input);
}

#[test]
fn identity_permutation_is_cheapest_case() {
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let n = 4096;
    let values: Vec<u64> = (0..n as u64).collect();
    let ident = permute_naive(cfg, &values, &PermKind::Identity.generate(n)).unwrap();
    let random = permute_naive(cfg, &values, &PermKind::Random { seed: 1 }.generate(n)).unwrap();
    assert!(ident.q() <= random.q());
    assert_eq!(ident.cost.reads, cfg.blocks_for(n) as u64);
}
