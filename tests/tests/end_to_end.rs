//! End-to-end property tests across the whole stack: random machine
//! configurations, random workloads, every algorithm family.

use aem_core::permute::{permute_auto, permute_by_sort, permute_naive};
use aem_core::sort::{distribution_sort, em_merge_sort, heap_sort, merge_sort};
use aem_core::spmv::{reference_multiply, spmv_auto, spmv_direct, spmv_sorted, U64Ring};
use aem_machine::{AemAccess, AemConfig, Machine};
use aem_workloads::{perm, Conformation, MatrixShape, PermKind};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = AemConfig> {
    (1usize..4, 2usize..=8, 1u64..=128).prop_map(|(be, mb, omega)| {
        let b = 1usize << be; // B ∈ {2, 4, 8}
        AemConfig::new(mb.max(4) * b, b, omega).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_sorters_agree_with_std_sort(
        cfg in arb_cfg(),
        input in proptest::collection::vec(any::<u16>(), 0..800),
    ) {
        let input: Vec<u64> = input.into_iter().map(u64::from).collect();
        let mut want = input.clone();
        want.sort();

        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&input);
        let out = merge_sort(&mut m, r).unwrap();
        prop_assert_eq!(m.inspect(out), want.clone());

        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&input);
        let out = em_merge_sort(&mut m, r).unwrap();
        prop_assert_eq!(m.inspect(out), want.clone());

        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&input);
        let out = distribution_sort(&mut m, r).unwrap();
        prop_assert_eq!(m.inspect(out), want.clone());

        // The priority-queue sorter needs M >= 8B.
        if cfg.memory >= 8 * cfg.block {
            let mut m: Machine<u64> = Machine::new(cfg);
            let r = m.install(&input);
            let out = heap_sort(&mut m, r).unwrap();
            prop_assert_eq!(m.inspect(out), want);
        }
    }

    #[test]
    fn all_permuters_realize_pi(
        cfg in arb_cfg(),
        seed in any::<u64>(),
        n in 1usize..500,
    ) {
        let pi = PermKind::Random { seed }.generate(n);
        let values: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        let want = perm::apply(&pi, &values);

        prop_assert_eq!(permute_naive(cfg, &values, &pi).unwrap().output, want.clone());
        prop_assert_eq!(permute_by_sort(cfg, &values, &pi).unwrap().output, want.clone());
        prop_assert_eq!(permute_auto(cfg, &values, &pi).unwrap().0.output, want);
    }

    #[test]
    fn spmv_agrees_with_reference(
        cfg in arb_cfg(),
        seed in any::<u64>(),
        n_exp in 4usize..7,
        delta in 1usize..6,
    ) {
        let n = 1usize << n_exp;
        let delta = delta.min(n);
        let conf = Conformation::generate(MatrixShape::Random { seed }, n, delta);
        let a: Vec<U64Ring> = (0..conf.nnz()).map(|i| U64Ring(i as u64 % 11)).collect();
        let x: Vec<U64Ring> = (0..n).map(|j| U64Ring(j as u64 % 7)).collect();
        let want = reference_multiply(&conf, &a, &x);

        prop_assert_eq!(spmv_direct(cfg, &conf, &a, &x).unwrap().output, want.clone());
        prop_assert_eq!(spmv_sorted(cfg, &conf, &a, &x).unwrap().output, want.clone());
        prop_assert_eq!(spmv_auto(cfg, &conf, &a, &x).unwrap().0.output, want);
    }

    #[test]
    fn sorting_cost_envelope_holds_for_random_configs(
        cfg in arb_cfg(),
        n_exp in 8usize..12,
    ) {
        // Thm 3.2 with a generous explicit constant, across random configs.
        let n = 1usize << n_exp;
        let input = aem_workloads::KeyDist::Uniform { seed: 9 }.generate(n);
        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&input);
        merge_sort(&mut m, r).unwrap();
        let q = m.cost().q(cfg.omega) as f64;
        let nb = cfg.blocks_for(n) as f64;
        let envelope = 48.0 * cfg.omega as f64 * nb * cfg.log_fan_in(nb).ceil();
        prop_assert!(q <= envelope, "{cfg} N={n}: q={q} envelope={envelope}");
    }
}

#[test]
fn duplicate_heavy_inputs_sort_stably_sized() {
    // All-equal keys: the tie-breaking machinery must not lose or
    // duplicate elements.
    let cfg = AemConfig::new(32, 4, 16).unwrap();
    let input = vec![7u64; 1000];
    let mut m: Machine<u64> = Machine::new(cfg);
    let r = m.install(&input);
    let out = merge_sort(&mut m, r).unwrap();
    assert_eq!(m.inspect(out), input);
}

#[test]
fn identity_permutation_is_cheapest_case() {
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let n = 4096;
    let values: Vec<u64> = (0..n as u64).collect();
    let ident = permute_naive(cfg, &values, &PermKind::Identity.generate(n)).unwrap();
    let random = permute_naive(cfg, &values, &PermKind::Random { seed: 1 }.generate(n)).unwrap();
    assert!(ident.q() <= random.q());
    assert_eq!(ident.cost.reads, cfg.blocks_for(n) as u64);
}
