//! Negative-path tests: the simulators must *reject* every model
//! violation. The lower bounds are only meaningful because illegal
//! programs cannot run — these tests pin that down.

use aem_machine::{
    AemAccess, AemConfig, AtomId, AtomMachine, Machine, MachineError, RoundBasedMachine,
};

fn cfg() -> AemConfig {
    AemConfig::new(16, 4, 8).unwrap()
}

#[test]
fn internal_memory_cannot_be_oversubscribed() {
    let mut m: Machine<u64> = Machine::new(cfg());
    let r = m.install(&vec![0u64; 32]);
    for i in 0..4 {
        m.read_block(r.block(i)).unwrap();
    }
    // 16/16 resident: any further acquisition fails, whatever the route.
    assert!(matches!(
        m.read_block(r.block(4)),
        Err(MachineError::InternalOverflow { .. })
    ));
    assert!(matches!(
        m.reserve(1),
        Err(MachineError::InternalOverflow { .. })
    ));
    let ar = m.alloc_aux_region(4);
    let _ = ar;
}

#[test]
fn ledger_underflow_is_a_hard_error() {
    let mut m: Machine<u64> = Machine::new(cfg());
    // Writing data never charged to the ledger is caught.
    let out = m.alloc_block();
    assert!(matches!(
        m.write_block(out, vec![1, 2, 3]),
        Err(MachineError::InternalUnderflow { .. })
    ));
    assert!(matches!(
        m.discard(1),
        Err(MachineError::InternalUnderflow { .. })
    ));
}

#[test]
fn block_capacity_is_enforced_everywhere() {
    let mut m: Machine<u64> = Machine::new(cfg());
    m.reserve(5).unwrap();
    let out = m.alloc_block();
    assert!(matches!(
        m.write_block(out, vec![0; 5]),
        Err(MachineError::BlockOverflow { len: 5, block: 4 })
    ));

    let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg());
    rb.reserve(5).unwrap();
    let out = rb.alloc_block();
    assert!(matches!(
        rb.write_block(out, vec![0; 5]),
        Err(MachineError::BlockOverflow { .. })
    ));
}

#[test]
fn unallocated_blocks_are_unaddressable() {
    let mut m: Machine<u64> = Machine::new(cfg());
    assert!(matches!(
        m.read_block(aem_machine::BlockId(99)),
        Err(MachineError::BadBlock { block: 99, .. })
    ));
}

#[test]
fn atom_machine_enforces_move_semantics() {
    let mut m = AtomMachine::new(cfg());
    let r = m.install_atoms(8);

    // Can't keep an atom twice (the external copy is destroyed).
    m.read_keep(r.block(0), &[AtomId(0)]).unwrap();
    assert!(matches!(
        m.read_keep(r.block(0), &[AtomId(0)]),
        Err(MachineError::AtomNotPresent { .. })
    ));

    // Can't write to a block that still holds atoms.
    assert!(matches!(
        m.write(r.block(1), vec![AtomId(0)]),
        Err(MachineError::WriteToOccupied { .. })
    ));

    // Can't write an atom that isn't resident.
    let fresh = m.alloc_block();
    assert!(matches!(
        m.write(fresh, vec![AtomId(5)]),
        Err(MachineError::AtomNotPresent { .. })
    ));

    // A legal sequence still works after the failed attempts.
    m.write(fresh, vec![AtomId(0)]).unwrap();
    assert_eq!(m.inspect_block(fresh).unwrap(), vec![AtomId(0)]);
}

#[test]
fn round_based_wrapper_enforces_original_capacity_not_doubled() {
    // Lemma 4.1 grants 2M to the *simulation*, not to the algorithm.
    let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg());
    let r = rb.install(&vec![0u64; 32]);
    for i in 0..4 {
        rb.read_block(r.block(i)).unwrap();
    }
    assert!(matches!(
        rb.read_block(r.block(4)),
        Err(MachineError::InternalOverflow { capacity: 16, .. })
    ));
}

#[test]
fn flash_machine_enforces_sector_boundaries() {
    use aem_flash::{FlashConfig, FlashMachine};
    let fc = FlashConfig::new(32, 8, 2).unwrap();
    let mut fm = FlashMachine::new(fc);
    let atoms: Vec<AtomId> = (0..8).map(AtomId).collect();
    fm.install_block(aem_machine::BlockId(0), &atoms).unwrap();
    // Atom 7 lives in sector 3; asking for it from sector 0 must fail —
    // the flash model's whole point is that reads are sector-granular.
    assert!(matches!(
        fm.read_sector(aem_machine::BlockId(0), 0, &[AtomId(7)]),
        Err(MachineError::AtomNotPresent { .. })
    ));
    fm.read_sector(aem_machine::BlockId(0), 3, &[AtomId(7)])
        .unwrap();
}

#[test]
fn failed_writes_leave_the_ledger_unchanged() {
    // A write to an unallocated block must not release the ledger.
    let mut m: Machine<u64> = Machine::new(cfg());
    let r = m.install(&[1u64, 2, 3, 4]);
    m.read_block(r.block(0)).unwrap();
    assert_eq!(m.internal_used(), 4);
    let err = m.write_block(aem_machine::BlockId(999), vec![1, 2, 3, 4]);
    assert!(matches!(err, Err(MachineError::BadBlock { .. })));
    assert_eq!(m.internal_used(), 4, "failed write must not release budget");
    // The data is still writable afterwards.
    let out = m.alloc_block();
    m.write_block(out, vec![1, 2, 3, 4]).unwrap();
    assert_eq!(m.internal_used(), 0);
}

#[test]
fn atom_machines_reject_duplicate_atoms_in_writes() {
    let mut m = AtomMachine::new(cfg());
    let r = m.install_atoms(4);
    m.read_keep(r.block(0), &[AtomId(0), AtomId(1)]).unwrap();
    let out = m.alloc_block();
    // Writing the same atom twice would duplicate an indivisible atom.
    let err = m.write(out, vec![AtomId(0), AtomId(0)]).unwrap_err();
    assert!(matches!(err, MachineError::MalformedTrace(_)));
    // A legal write still works.
    m.write(out, vec![AtomId(0), AtomId(1)]).unwrap();

    use aem_flash::{FlashConfig, FlashMachine};
    let fc = FlashConfig::new(16, 4, 2).unwrap();
    let mut fm = FlashMachine::new(fc);
    fm.install_block(aem_machine::BlockId(0), &[AtomId(0), AtomId(1)])
        .unwrap();
    fm.read_sector(aem_machine::BlockId(0), 0, &[AtomId(0), AtomId(1)])
        .unwrap();
    let err = fm
        .write_big(aem_machine::BlockId(1), &[AtomId(0), AtomId(0)])
        .unwrap_err();
    assert!(matches!(err, MachineError::MalformedTrace(_)));
}

#[test]
fn flash_out_of_range_sector_is_an_error_not_a_panic() {
    use aem_flash::{FlashConfig, FlashMachine};
    let fc = FlashConfig::new(16, 8, 2).unwrap();
    let mut fm = FlashMachine::new(fc);
    fm.install_block(aem_machine::BlockId(0), &[AtomId(0), AtomId(1)])
        .unwrap();
    // Sector 3 starts beyond the 2 occupied slots — even with an empty
    // keep list this must be a clean error.
    let err = fm.read_sector(aem_machine::BlockId(0), 3, &[]).unwrap_err();
    assert!(matches!(err, MachineError::MalformedTrace(_)));
}

#[test]
fn round_based_rejected_read_charges_nothing() {
    let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg());
    let r = rb.install(&vec![0u64; 32]);
    for i in 0..4 {
        rb.read_block(r.block(i)).unwrap();
    }
    let cost_before = rb.cost();
    let used_before = rb.internal_used();
    assert!(rb.read_block(r.block(4)).is_err());
    assert_eq!(rb.cost(), cost_before, "rejected read must not charge I/O");
    assert_eq!(rb.internal_used(), used_before, "…nor the ledger");
}

#[test]
fn round_based_write_of_unheld_data_is_rejected() {
    // The plain machine returns InternalUnderflow here; the wrapper must
    // agree instead of corrupting its books.
    let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg());
    let out = rb.alloc_block();
    let err = rb.write_block(out, vec![1, 2, 3]).unwrap_err();
    assert!(matches!(err, MachineError::InternalUnderflow { .. }));
}

#[test]
fn hand_built_degenerate_regions_do_not_panic() {
    // Region fields are public; a region with more blocks than its element
    // count implies must still split without underflow.
    let r = aem_machine::Region {
        first: 0,
        blocks: 5,
        elems: 3,
    };
    let parts = r.split_blockwise(2, 4);
    let total: usize = parts.iter().map(|p| p.elems).sum();
    assert_eq!(total, 3);
}

#[test]
fn errors_do_not_corrupt_state() {
    // After a rejected operation the machine remains usable and
    // consistent (no partial effects).
    let mut m: Machine<u64> = Machine::new(cfg());
    let r = m.install(&[7u64; 16]);
    for i in 0..4 {
        m.read_block(r.block(i)).unwrap();
    }
    let before = m.cost();
    assert!(m.read_block(r.block(0)).is_err()); // overflow
    assert_eq!(m.cost(), before, "failed ops must not charge I/O");
    assert_eq!(m.internal_used(), 16);
    // Releasing and retrying succeeds.
    m.discard(4).unwrap();
    m.read_block(r.block(0)).unwrap();
}
