//! Lemma 4.1 coverage for the extension modules: the priority queue, the
//! relational operators, the tiled transpose and the streaming primitives
//! all run under round-based execution with identical results — they are
//! built on `AemAccess`, so the wrapper interposes on every I/O they do.

use aem_core::pq::ExternalPq;
use aem_core::relational::{group_aggregate, sort_merge_join, Tuple};
use aem_core::{permute::transpose_tiled, stream};
use aem_machine::{AemAccess, AemConfig, Machine, RoundBasedMachine};
use aem_workloads::KeyDist;

#[test]
fn pq_round_based_matches_plain() {
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let keys = KeyDist::Uniform { seed: 1 }.generate(800);

    let run = |use_rb: bool| -> Vec<u64> {
        let mut out = Vec::new();
        if use_rb {
            let mut m: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
            let mut pq = ExternalPq::new(cfg).unwrap();
            for &x in &keys {
                pq.push(&mut m, x).unwrap();
            }
            while let Some(x) = pq.pop(&mut m).unwrap() {
                out.push(x);
                m.discard(1).unwrap();
            }
            m.finish().unwrap();
        } else {
            let mut m: Machine<u64> = Machine::new(cfg);
            let mut pq = ExternalPq::new(cfg).unwrap();
            for &x in &keys {
                pq.push(&mut m, x).unwrap();
            }
            while let Some(x) = pq.pop(&mut m).unwrap() {
                out.push(x);
                m.discard(1).unwrap();
            }
        }
        out
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn join_round_based_matches_plain() {
    let cfg = AemConfig::new(64, 8, 4).unwrap();
    let left: Vec<Tuple<u64>> = (0..300)
        .map(|i| Tuple {
            key: i % 29,
            payload: i,
        })
        .collect();
    let right: Vec<Tuple<u64>> = (0..200)
        .map(|i| Tuple {
            key: i % 17,
            payload: 900 + i,
        })
        .collect();

    let mut plain: Machine<Tuple<u64>> = Machine::new(cfg);
    let (lr, rr) = (plain.install(&left), plain.install(&right));
    let out = sort_merge_join(&mut plain, lr, rr, |a: &u64, b: &u64| a ^ b).unwrap();
    let mut got_plain: Vec<(u64, u64)> = plain
        .inspect(out)
        .into_iter()
        .map(|t| (t.key, t.payload))
        .collect();
    got_plain.sort();

    let mut rb: RoundBasedMachine<Tuple<u64>> = RoundBasedMachine::new(cfg);
    let (lr, rr) = (rb.install(&left), rb.install(&right));
    let out = sort_merge_join(&mut rb, lr, rr, |a: &u64, b: &u64| a ^ b).unwrap();
    let stats = rb.finish().unwrap();
    let mut got_rb: Vec<(u64, u64)> = rb
        .inspect(out)
        .into_iter()
        .map(|t| (t.key, t.payload))
        .collect();
    got_rb.sort();

    assert_eq!(got_plain, got_rb);
    assert!(stats.cost.q(cfg.omega) <= 4 * plain.cost().q(cfg.omega));
}

#[test]
fn group_aggregate_handles_zipf_skew() {
    // Heavy skew stresses the combining path (one giant group).
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let keys = KeyDist::Zipf {
        distinct: 50,
        s_x10: 15,
        seed: 2,
    }
    .generate(3000);
    let tuples: Vec<Tuple<u64>> = keys
        .iter()
        .map(|&k| Tuple {
            key: k,
            payload: 1u64,
        })
        .collect();

    let mut m: Machine<Tuple<u64>> = Machine::new(cfg);
    let r = m.install(&tuples);
    let out = group_aggregate(&mut m, r, |a: u64, b: &u64| a + b).unwrap();
    let got: Vec<(u64, u64)> = m
        .inspect(out)
        .into_iter()
        .map(|t| (t.key, t.payload))
        .collect();

    // Reference histogram.
    let mut hist = std::collections::BTreeMap::new();
    for k in keys {
        *hist.entry(k).or_insert(0u64) += 1;
    }
    let want: Vec<(u64, u64)> = hist.into_iter().collect();
    assert_eq!(got, want);
    assert_eq!(m.internal_used(), 0);
}

#[test]
fn transpose_round_based_matches_plain() {
    let cfg = AemConfig::new(80, 8, 8).unwrap(); // M ≥ B² + 2B = 80
    let (r, c) = (16usize, 24usize);
    let values: Vec<u64> = (0..(r * c) as u64).collect();

    let mut plain: Machine<u64> = Machine::new(cfg);
    let reg = plain.install(&values);
    let out = transpose_tiled(&mut plain, reg, r, c).unwrap();
    let want = plain.inspect(out);

    let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
    let reg = rb.install(&values);
    let out = transpose_tiled(&mut rb, reg, r, c).unwrap();
    rb.finish().unwrap();
    assert_eq!(rb.inspect(out), want);
}

#[test]
fn stream_pipeline_round_based_is_cost_bounded() {
    let cfg = AemConfig::new(32, 4, 16).unwrap();
    let input: Vec<u64> = (0..400).collect();

    let run_q = |rb: bool| -> (u64, u64) {
        if rb {
            let mut m: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
            let r = m.install(&input);
            let mapped = stream::map(&mut m, r, |x: u64| x * 3).unwrap();
            let total = stream::reduce(&mut m, mapped, 0u64, |a, x| a + x).unwrap();
            let stats = m.finish().unwrap();
            (total, stats.cost.q(cfg.omega))
        } else {
            let mut m: Machine<u64> = Machine::new(cfg);
            let r = m.install(&input);
            let mapped = stream::map(&mut m, r, |x: u64| x * 3).unwrap();
            let total = stream::reduce(&mut m, mapped, 0u64, |a, x| a + x).unwrap();
            (total, m.cost().q(cfg.omega))
        }
    };
    let (v1, q1) = run_q(false);
    let (v2, q2) = run_q(true);
    assert_eq!(v1, v2);
    assert_eq!(v1, (0..400u64).map(|x| x * 3).sum());
    assert!(q2 <= 4 * q1);
}
