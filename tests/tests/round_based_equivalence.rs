//! Lemma 4.1, property-tested: every algorithm in the workspace produces
//! identical output under round-based execution, at constant-factor cost.
//!
//! Each property runs a fixed number of seeded deterministic cases drawn
//! from the workspace's `SplitMix64` generator.

use aem_core::permute::by_sort::DestTagged;
use aem_core::sort::{em_merge_sort, merge_sort, small_sort};
use aem_machine::{AemAccess, AemConfig, Machine, RoundBasedMachine};
use aem_workloads::SplitMix64;

fn random_cfg(rng: &mut SplitMix64) -> AemConfig {
    let b = 4usize;
    let mb = 4 + rng.next_below_usize(5);
    let omega = 1 + rng.next_below(64);
    AemConfig::new(mb * b, b, omega).unwrap()
}

#[test]
fn merge_sort_is_round_base_invariant() {
    let mut rng = SplitMix64::seed_from_u64(0x4d5);
    for case in 0..24u64 {
        let cfg = random_cfg(&mut rng);
        let n = rng.next_below_usize(600);
        let input: Vec<u64> = (0..n).map(|_| rng.next_below(1 << 32)).collect();
        let mut plain: Machine<u64> = Machine::new(cfg);
        let r = plain.install(&input);
        let out = merge_sort(&mut plain, r).unwrap();
        let got_plain = plain.inspect(out);

        let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
        let r = rb.install(&input);
        let out = merge_sort(&mut rb, r).unwrap();
        let stats = rb.finish().unwrap();
        assert_eq!(rb.inspect(out), got_plain, "case {case}");

        let q = plain.cost().q(cfg.omega);
        let q2 = stats.cost.q(cfg.omega);
        assert!(q2 <= 4 * q + 1, "case {case}: overhead {q2} vs {q}");
    }
}

#[test]
fn em_sort_is_round_base_invariant() {
    let mut rng = SplitMix64::seed_from_u64(0xe35);
    for case in 0..24u64 {
        let cfg = random_cfg(&mut rng);
        let n = rng.next_below_usize(400);
        let input: Vec<u64> = (0..n).map(|_| rng.next_below(1 << 32)).collect();
        let mut plain: Machine<u64> = Machine::new(cfg);
        let r = plain.install(&input);
        let out = em_merge_sort(&mut plain, r).unwrap();
        let got_plain = plain.inspect(out);

        let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
        let r = rb.install(&input);
        let out = em_merge_sort(&mut rb, r).unwrap();
        rb.finish().unwrap();
        assert_eq!(rb.inspect(out), got_plain, "case {case}");
    }
}

#[test]
fn small_sort_is_round_base_invariant() {
    let mut rng = SplitMix64::seed_from_u64(0x54a);
    for case in 0..24u64 {
        let cfg = random_cfg(&mut rng);
        let seed = rng.next_u64();
        // Size capped at the small-sort threshold ωM (use half).
        let n = (cfg.small_sort_threshold() / 2).min(500);
        let input: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(seed | 1) % 97)
            .collect();

        let mut plain: Machine<u64> = Machine::new(cfg);
        let r = plain.install(&input);
        let out = small_sort(&mut plain, r).unwrap();
        let got_plain = plain.inspect(out);

        let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
        let r = rb.install(&input);
        let out = small_sort(&mut rb, r).unwrap();
        rb.finish().unwrap();
        assert_eq!(rb.inspect(out), got_plain, "case {case}");
    }
}

#[test]
fn permute_by_sort_is_round_base_invariant() {
    let mut rng = SplitMix64::seed_from_u64(0x9b5);
    for case in 0..24u64 {
        let cfg = random_cfg(&mut rng);
        let seed = rng.next_u64();
        let n = 1 + rng.next_below_usize(399);
        let pi = aem_workloads::PermKind::Random { seed }.generate(n);
        let tagged: Vec<DestTagged<u64>> = (0..n)
            .map(|i| DestTagged {
                dest: pi[i] as u64,
                value: i as u64,
            })
            .collect();

        let mut plain: Machine<DestTagged<u64>> = Machine::new(cfg);
        let r = plain.install(&tagged);
        let out = merge_sort(&mut plain, r).unwrap();
        let got_plain: Vec<u64> = plain.inspect(out).into_iter().map(|t| t.value).collect();

        let mut rb: RoundBasedMachine<DestTagged<u64>> = RoundBasedMachine::new(cfg);
        let r = rb.install(&tagged);
        let out = merge_sort(&mut rb, r).unwrap();
        rb.finish().unwrap();
        let got_rb: Vec<u64> = rb.inspect(out).into_iter().map(|t| t.value).collect();
        assert_eq!(got_rb, got_plain, "case {case}");
        // And it actually is the permutation.
        assert_eq!(
            got_rb,
            aem_workloads::perm::invert(&pi)
                .iter()
                .map(|&s| s as u64)
                .collect::<Vec<_>>(),
            "case {case}"
        );
    }
}
