//! Lemma 4.1, property-tested: every algorithm in the workspace produces
//! identical output under round-based execution, at constant-factor cost.

use aem_core::permute::by_sort::DestTagged;
use aem_core::sort::{em_merge_sort, merge_sort, small_sort};
use aem_machine::{AemAccess, AemConfig, Machine, RoundBasedMachine};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = AemConfig> {
    (4usize..=8, 1u64..=64).prop_map(|(mb, omega)| {
        let b = 4usize;
        AemConfig::new(mb * b, b, omega).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn merge_sort_is_round_base_invariant(
        cfg in arb_cfg(),
        input in proptest::collection::vec(any::<u32>(), 0..600),
    ) {
        let input: Vec<u64> = input.into_iter().map(u64::from).collect();
        let mut plain: Machine<u64> = Machine::new(cfg);
        let r = plain.install(&input);
        let out = merge_sort(&mut plain, r).unwrap();
        let got_plain = plain.inspect(out);

        let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
        let r = rb.install(&input);
        let out = merge_sort(&mut rb, r).unwrap();
        let stats = rb.finish().unwrap();
        prop_assert_eq!(rb.inspect(out), got_plain);

        let q = plain.cost().q(cfg.omega);
        let q2 = stats.cost.q(cfg.omega);
        prop_assert!(q2 <= 4 * q + 1, "overhead {q2} vs {q}");
    }

    #[test]
    fn em_sort_is_round_base_invariant(
        cfg in arb_cfg(),
        input in proptest::collection::vec(any::<u32>(), 0..400),
    ) {
        let input: Vec<u64> = input.into_iter().map(u64::from).collect();
        let mut plain: Machine<u64> = Machine::new(cfg);
        let r = plain.install(&input);
        let out = em_merge_sort(&mut plain, r).unwrap();
        let got_plain = plain.inspect(out);

        let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
        let r = rb.install(&input);
        let out = em_merge_sort(&mut rb, r).unwrap();
        rb.finish().unwrap();
        prop_assert_eq!(rb.inspect(out), got_plain);
    }

    #[test]
    fn small_sort_is_round_base_invariant(
        cfg in arb_cfg(),
        seed in any::<u64>(),
    ) {
        // Size capped at the small-sort threshold ωM (use half).
        let n = (cfg.small_sort_threshold() / 2).min(500);
        let input: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1) % 97).collect();

        let mut plain: Machine<u64> = Machine::new(cfg);
        let r = plain.install(&input);
        let out = small_sort(&mut plain, r).unwrap();
        let got_plain = plain.inspect(out);

        let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
        let r = rb.install(&input);
        let out = small_sort(&mut rb, r).unwrap();
        rb.finish().unwrap();
        prop_assert_eq!(rb.inspect(out), got_plain);
    }

    #[test]
    fn permute_by_sort_is_round_base_invariant(
        cfg in arb_cfg(),
        seed in any::<u64>(),
        n in 1usize..400,
    ) {
        let pi = aem_workloads::PermKind::Random { seed }.generate(n);
        let tagged: Vec<DestTagged<u64>> = (0..n)
            .map(|i| DestTagged { dest: pi[i] as u64, value: i as u64 })
            .collect();

        let mut plain: Machine<DestTagged<u64>> = Machine::new(cfg);
        let r = plain.install(&tagged);
        let out = merge_sort(&mut plain, r).unwrap();
        let got_plain: Vec<u64> = plain.inspect(out).into_iter().map(|t| t.value).collect();

        let mut rb: RoundBasedMachine<DestTagged<u64>> = RoundBasedMachine::new(cfg);
        let r = rb.install(&tagged);
        let out = merge_sort(&mut rb, r).unwrap();
        rb.finish().unwrap();
        let got_rb: Vec<u64> = rb.inspect(out).into_iter().map(|t| t.value).collect();
        prop_assert_eq!(got_rb.clone(), got_plain);
        // And it actually is the permutation.
        prop_assert_eq!(got_rb, aem_workloads::perm::invert(&pi).iter().map(|&s| s as u64).collect::<Vec<_>>());
    }
}
