//! Trace-level validation: record real algorithm executions and check the
//! *structural* claims of the analyses — not just totals.

use aem_core::sort::{em_merge_sort, merge_sort};
use aem_machine::rounds::{round_based_cost, round_decompose};
use aem_machine::{AemAccess, AemConfig, BlockId, IoEvent, Machine, Trace};
use aem_obs::{Gauge, Histogram, Metrics, PhaseNode, RunRecord, WorkloadMeta};
use aem_workloads::{KeyDist, SplitMix64};

fn record_merge_sort(cfg: AemConfig, n: usize) -> (aem_machine::Trace, u64) {
    let input = KeyDist::Uniform { seed: 11 }.generate(n);
    let mut m: Machine<u64> = Machine::new(cfg);
    let r = m.install(&input);
    m.start_trace();
    merge_sort(&mut m, r).unwrap();
    let trace = m.take_trace().unwrap();
    (trace, m.cost().q(cfg.omega))
}

#[test]
fn trace_cost_matches_counter() {
    // The recorded program and the live meter must agree exactly.
    let cfg = AemConfig::new(64, 8, 16).unwrap();
    let (trace, q) = record_merge_sort(cfg, 4096);
    assert_eq!(trace.cost().q(cfg.omega), q);
}

#[test]
fn pointer_maintenance_is_cheap() {
    // §3.1's claim: pointer (aux) writes total O(n) over the whole merge
    // — they must be a small fraction of the data writes, and the aux
    // share of all I/O must be small.
    let cfg = AemConfig::new(64, 8, 64).unwrap(); // ω > B: pointers external
    let (trace, _) = record_merge_sort(cfg, 16384);
    let s = trace.stats();
    assert!(
        s.aux_writes > 0,
        "external pointers must actually be used at ω > B"
    );
    assert!(
        s.aux_writes <= s.data_writes,
        "pointer writes ({}) must not dominate data writes ({})",
        s.aux_writes,
        s.data_writes
    );
    assert!(s.aux_fraction() < 0.25, "aux share {}", s.aux_fraction());
}

#[test]
fn round_decomposition_is_well_formed_on_real_traces() {
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let (trace, _) = record_merge_sort(cfg, 4096);
    let rounds = round_decompose(&trace, cfg);
    assert!(!rounds.is_empty());
    let budget = cfg.round_budget();
    let omega = cfg.omega;
    // Every round within budget; all but the last above ω(m−1); spans
    // partition the trace.
    let mut next = 0usize;
    for (i, r) in rounds.iter().enumerate() {
        assert_eq!(r.start, next);
        next = r.end;
        assert!(
            r.cost <= budget,
            "round {i} cost {} > budget {budget}",
            r.cost
        );
        if i + 1 < rounds.len() {
            assert!(
                r.cost >= omega * (cfg.m() as u64 - 1),
                "interior round {i} cost {} too small",
                r.cost
            );
        }
    }
    assert_eq!(next, trace.len());
}

#[test]
fn lemma_4_1_trace_conversion_bounded_on_real_programs() {
    for omega in [1u64, 8, 64] {
        let cfg = AemConfig::new(64, 8, omega).unwrap();
        let (trace, q) = record_merge_sort(cfg, 4096);
        let q2 = round_based_cost(&trace, cfg).q(omega);
        assert!(q2 >= q);
        assert!(
            q2 <= 4 * q,
            "omega={omega}: converted cost {q2} vs original {q}"
        );
    }
}

#[test]
fn em_sort_trace_has_no_aux_io_and_no_rereads_within_level() {
    let cfg = AemConfig::new(64, 8, 4).unwrap();
    let input = KeyDist::Uniform { seed: 12 }.generate(4096);
    let mut m: Machine<u64> = Machine::new(cfg);
    let r = m.install(&input);
    m.start_trace();
    em_merge_sort(&mut m, r).unwrap();
    let s = m.take_trace().unwrap().stats();
    assert_eq!(
        s.aux_reads + s.aux_writes,
        0,
        "the EM sorter needs no external metadata"
    );
    // Streaming merges read every block exactly once.
    assert_eq!(s.max_rereads, 1);
}

/// A pseudo-random but structurally valid [`RunRecord`]: random events and
/// occupancy, a random phase forest (parents always precede children),
/// random metrics. Exercises the JSONL encoder/decoder far from the shapes
/// real algorithms produce.
fn random_record(rng: &mut SplitMix64) -> RunRecord {
    let config = AemConfig::new(
        64 << rng.next_below(4),
        8 << rng.next_below(2),
        1 + rng.next_below(128),
    )
    .unwrap();

    let n_events = rng.next_below_usize(200);
    let mut trace = Trace::new();
    let mut occupancy = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let block = BlockId(rng.next_below_usize(50));
        let len = rng.next_below_usize(config.block) + 1;
        let aux = rng.next_bool();
        trace.push(if rng.next_bool() {
            IoEvent::Read { block, len, aux }
        } else {
            IoEvent::Write { block, len, aux }
        });
        occupancy.push(rng.next_below(config.memory as u64 + 1));
    }

    let n_phases = rng.next_below_usize(12);
    let mut phases = Vec::with_capacity(n_phases);
    for i in 0..n_phases {
        phases.push(PhaseNode {
            name: format!("phase-{}", rng.next_below(1000)),
            parent: if i > 0 && rng.next_bool() {
                Some(rng.next_below_usize(i))
            } else {
                None
            },
            cost: aem_machine::Cost {
                reads: rng.next_below(10_000),
                writes: rng.next_below(10_000),
            },
            volume: rng.next_u64() >> 16,
            aux_reads: rng.next_below(1000),
            aux_writes: rng.next_below(1000),
            events: rng.next_below(10_000),
            high_water: rng.next_below(config.memory as u64 + 1),
        });
    }

    let mut metrics = Metrics::default();
    for _ in 0..rng.next_below_usize(6) {
        metrics.add(&format!("ctr.{}", rng.next_below(100)), rng.next_u64() >> 8);
    }
    for _ in 0..rng.next_below_usize(4) {
        let mut g = Gauge::default();
        g.set(rng.next_u64() >> 12);
        g.set(rng.next_u64() >> 12);
        metrics.insert_gauge(&format!("gauge.{}", rng.next_below(100)), g);
    }
    for _ in 0..rng.next_below_usize(4) {
        let mut bounds: Vec<u64> = (0..rng.next_below_usize(5) + 1)
            .map(|_| rng.next_below(1 << 20) + 1)
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut h = Histogram::new(bounds);
        for _ in 0..rng.next_below_usize(50) {
            h.observe(rng.next_below(1 << 21));
        }
        metrics.insert_histogram(&format!("hist.{}", rng.next_below(100)), h);
    }

    RunRecord {
        config,
        workload: WorkloadMeta::with_delta(
            &format!("kind-{}", rng.next_below(10)),
            &format!("algo-{}", rng.next_below(10)),
            rng.next_u64() >> 4,
            rng.next_below(64),
        ),
        trace,
        occupancy,
        final_internal_used: rng.next_below(config.memory as u64 + 1),
        phases,
        metrics,
    }
}

#[test]
fn jsonl_round_trips_random_records() {
    // Property: for any structurally valid record, decode(encode(r)) == r,
    // field for field. 200 seeded shapes cover empty traces, phase
    // forests, overflow-bucket histograms and large u64 values.
    let mut rng = SplitMix64::seed_from_u64(0xA3_1337);
    for case in 0..200 {
        let rec = random_record(&mut rng);
        let text = rec.to_jsonl();
        let back = RunRecord::from_jsonl(&text).unwrap_or_else(|e| {
            panic!("case {case}: decode failed: {e}\n{text}");
        });
        assert_eq!(back, rec, "case {case} did not round-trip");
        // Encoding is deterministic: re-encoding the decoded record is
        // byte-identical.
        assert_eq!(back.to_jsonl(), text, "case {case} re-encode differs");
    }
}

#[test]
fn jsonl_rejects_corrupted_lines() {
    let mut rng = SplitMix64::seed_from_u64(7);
    let rec = random_record(&mut rng);
    let text = rec.to_jsonl();
    // Truncating or corrupting any single line must fail cleanly, never
    // panic or silently misparse.
    let lines: Vec<&str> = text.lines().collect();
    for i in 0..lines.len().min(20) {
        let mut bad: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        bad[i] = bad[i][..bad[i].len() / 2].to_string();
        let joined = bad.join("\n");
        assert!(RunRecord::from_jsonl(&joined).is_err(), "line {i}");
    }
}

#[test]
fn merge_sort_rereads_are_the_price_of_write_avoidance() {
    // The §3 merge re-reads blocks across rounds (seeding + activation);
    // the re-read factor grows with ω while writes shrink — the trade the
    // algorithm is built on, visible directly in the traces.
    let n = 8192;
    let (t1, _) = record_merge_sort(AemConfig::new(64, 8, 1).unwrap(), n);
    let (t64, _) = record_merge_sort(AemConfig::new(64, 8, 64).unwrap(), n);
    let (s1, s64) = (t1.stats(), t64.stats());
    assert!(s64.data_writes < s1.data_writes, "higher ω must write less");
    assert!(
        s64.data_reads + s64.aux_reads > s1.data_reads + s1.aux_reads,
        "…paid for with more reads"
    );
}
