//! Lemma 4.3, property-tested end-to-end: random permutations, random
//! legal `(M, B, ω)` with `ω | B`, full compile-replay-verify chain.

use aem_flash::driver::{naive_atom_permutation, two_pass_atom_permutation};
use aem_flash::verify_lemma_4_3;
use aem_machine::AemConfig;
use aem_workloads::PermKind;
use proptest::prelude::*;

fn arb_lemma_cfg() -> impl Strategy<Value = AemConfig> {
    // B ∈ {8, 16, 32}, ω a proper divisor of B, M a few blocks.
    (0usize..3, 2usize..=6).prop_flat_map(|(bi, mb)| {
        let b = [8usize, 16, 32][bi];
        let divisors: Vec<u64> = (1..b as u64).filter(|w| b as u64 % w == 0).collect();
        (Just(b), Just(mb), 0..divisors.len()).prop_map(move |(b, mb, wi)| {
            let divisors: Vec<u64> = (1..b as u64).filter(|w| b as u64 % w == 0).collect();
            AemConfig::new(mb * b, b, divisors[wi]).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lemma_4_3_holds_for_random_instances(
        cfg in arb_lemma_cfg(),
        seed in any::<u64>(),
        n in 1usize..800,
    ) {
        let pi = PermKind::Random { seed }.generate(n);
        let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
        prop_assert!(prog.realizes(&pi), "atom program must realize pi");
        let report = verify_lemma_4_3(&prog.program, cfg).unwrap();
        prop_assert!(
            report.bound_holds(),
            "volume {} exceeds bound {} on {cfg} N={n}",
            report.flash_volume,
            report.volume_bound
        );
    }

    #[test]
    fn structured_permutations_also_verify(
        cfg in arb_lemma_cfg(),
        kind in 0usize..3,
    ) {
        let n = 256;
        let pi = match kind {
            0 => PermKind::Identity.generate(n),
            1 => PermKind::Reverse.generate(n),
            _ => PermKind::BitReversal.generate(n),
        };
        let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
        prop_assert!(prog.realizes(&pi));
        let report = verify_lemma_4_3(&prog.program, cfg).unwrap();
        prop_assert!(report.bound_holds());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lemma_4_3_holds_for_two_pass_programs(
        seed in any::<u64>(),
        n in 1usize..700,
        omega_pick in 0usize..3,
    ) {
        // Two-pass needs B | M and N ≲ M²/B.
        let omega = [2u64, 4, 8][omega_pick];
        let cfg = AemConfig::new(256, 16, omega).unwrap();
        let pi = PermKind::Random { seed }.generate(n);
        let (prog, _) = two_pass_atom_permutation(cfg, &pi).unwrap();
        prop_assert!(prog.realizes(&pi));
        let report = verify_lemma_4_3(&prog.program, cfg).unwrap();
        prop_assert!(report.bound_holds(), "{report:?}");
    }
}

#[test]
fn flash_volume_tracks_aem_cost_shape() {
    // Growing ω shrinks the read block, so the same AEM program costs more
    // AEM-Q but the *volume bound* tightens proportionally: the measured
    // ratio volume/bound must stay below 1 across ω.
    let n = 2048;
    for omega in [2u64, 4, 8] {
        let cfg = AemConfig::new(64, 16, omega).unwrap();
        let pi = PermKind::Random { seed: 5 }.generate(n);
        let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
        let report = verify_lemma_4_3(&prog.program, cfg).unwrap();
        assert!(report.bound_holds(), "omega={omega}: {report:?}");
        assert!(report.flash_volume > 0);
    }
}
