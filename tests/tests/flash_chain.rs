//! Lemma 4.3, property-tested end-to-end: random permutations, random
//! legal `(M, B, ω)` with `ω | B`, full compile-replay-verify chain.
//!
//! Each property runs a fixed number of seeded deterministic cases drawn
//! from the workspace's `SplitMix64` generator.

use aem_flash::driver::{naive_atom_permutation, two_pass_atom_permutation};
use aem_flash::verify_lemma_4_3;
use aem_machine::AemConfig;
use aem_workloads::{PermKind, SplitMix64};

fn random_lemma_cfg(rng: &mut SplitMix64) -> AemConfig {
    // B ∈ {8, 16, 32}, ω a proper divisor of B, M a few blocks.
    let b = [8usize, 16, 32][rng.next_below_usize(3)];
    let mb = 2 + rng.next_below_usize(5);
    let divisors: Vec<u64> = (1..b as u64).filter(|w| b as u64 % w == 0).collect();
    let omega = divisors[rng.next_below_usize(divisors.len())];
    AemConfig::new(mb * b, b, omega).unwrap()
}

#[test]
fn lemma_4_3_holds_for_random_instances() {
    let mut rng = SplitMix64::seed_from_u64(0x43a);
    for _ in 0..32u64 {
        let cfg = random_lemma_cfg(&mut rng);
        let seed = rng.next_u64();
        let n = 1 + rng.next_below_usize(799);
        let pi = PermKind::Random { seed }.generate(n);
        let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
        assert!(prog.realizes(&pi), "atom program must realize pi");
        let report = verify_lemma_4_3(&prog.program, cfg).unwrap();
        assert!(
            report.bound_holds(),
            "volume {} exceeds bound {} on {cfg} N={n}",
            report.flash_volume,
            report.volume_bound
        );
    }
}

#[test]
fn structured_permutations_also_verify() {
    let mut rng = SplitMix64::seed_from_u64(0x57b);
    for case in 0..32u64 {
        let cfg = random_lemma_cfg(&mut rng);
        let n = 256;
        let pi = match case % 3 {
            0 => PermKind::Identity.generate(n),
            1 => PermKind::Reverse.generate(n),
            _ => PermKind::BitReversal.generate(n),
        };
        let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
        assert!(prog.realizes(&pi));
        let report = verify_lemma_4_3(&prog.program, cfg).unwrap();
        assert!(report.bound_holds());
    }
}

#[test]
fn lemma_4_3_holds_for_two_pass_programs() {
    let mut rng = SplitMix64::seed_from_u64(0x2b455);
    for _ in 0..16u64 {
        let seed = rng.next_u64();
        let n = 1 + rng.next_below_usize(699);
        // Two-pass needs B | M and N ≲ M²/B.
        let omega = [2u64, 4, 8][rng.next_below_usize(3)];
        let cfg = AemConfig::new(256, 16, omega).unwrap();
        let pi = PermKind::Random { seed }.generate(n);
        let (prog, _) = two_pass_atom_permutation(cfg, &pi).unwrap();
        assert!(prog.realizes(&pi));
        let report = verify_lemma_4_3(&prog.program, cfg).unwrap();
        assert!(report.bound_holds(), "{report:?}");
    }
}

#[test]
fn flash_volume_tracks_aem_cost_shape() {
    // Growing ω shrinks the read block, so the same AEM program costs more
    // AEM-Q but the *volume bound* tightens proportionally: the measured
    // ratio volume/bound must stay below 1 across ω.
    let n = 2048;
    for omega in [2u64, 4, 8] {
        let cfg = AemConfig::new(64, 16, omega).unwrap();
        let pi = PermKind::Random { seed: 5 }.generate(n);
        let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
        let report = verify_lemma_4_3(&prog.program, cfg).unwrap();
        assert!(report.bound_holds(), "omega={omega}: {report:?}");
        assert!(report.flash_volume > 0);
    }
}
