//! Large-scale stress tests, `#[ignore]`d by default (run with
//! `cargo test -p aem-integration --test stress -- --ignored --nocapture`).
//!
//! These push the simulator to million-element inputs — sizes the regular
//! suite avoids to stay fast — and re-assert the same invariants: outputs
//! correct, lower bounds respected, cost envelopes held.

use aem_core::bounds::permute as pbounds;
use aem_core::permute::permute_auto;
use aem_core::sort::merge_sort;
use aem_core::spmv::{reference_multiply, spmv_direct, spmv_sorted, U64Ring};
use aem_machine::{AemAccess, AemConfig, Machine};
use aem_workloads::{perm, Conformation, KeyDist, MatrixShape, PermKind};

#[test]
#[ignore = "large: ~1M-element sort"]
fn stress_sort_one_million() {
    let cfg = AemConfig::new(4096, 128, 64).unwrap();
    let n = 1 << 20;
    let input = KeyDist::Uniform { seed: 1 }.generate(n);
    let mut m: Machine<u64> = Machine::new(cfg);
    let r = m.install(&input);
    let out = merge_sort(&mut m, r).unwrap();
    let got = m.inspect(out);
    assert!(got.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(got.len(), n);
    let q = m.cost().q(cfg.omega) as f64;
    let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
    assert!(q >= lb);
    println!("1M sort: Q = {q}, bound = {lb:.0}, ratio = {:.1}", q / lb);
}

#[test]
#[ignore = "large: ~1M-element permute"]
fn stress_permute_one_million() {
    let cfg = AemConfig::new(4096, 128, 16).unwrap();
    let n = 1 << 20;
    let pi = PermKind::Random { seed: 2 }.generate(n);
    let values: Vec<u64> = (0..n as u64).collect();
    let (run, strategy) = permute_auto(cfg, &values, &pi).unwrap();
    assert_eq!(run.output, perm::apply(&pi, &values));
    println!("1M permute via {strategy:?}: Q = {}", run.q());
}

#[test]
#[ignore = "large: 16K x 16K sparse matrix"]
fn stress_spmv_large() {
    let cfg = AemConfig::new(2048, 64, 8).unwrap();
    let n = 1 << 14;
    let delta = 8;
    let conf = Conformation::generate(MatrixShape::Random { seed: 3 }, n, delta);
    let a: Vec<U64Ring> = (0..conf.nnz()).map(|i| U64Ring(i as u64 % 101)).collect();
    let x: Vec<U64Ring> = (0..n).map(|j| U64Ring(j as u64 % 97)).collect();
    let want = reference_multiply(&conf, &a, &x);
    let d = spmv_direct(cfg, &conf, &a, &x).unwrap();
    let s = spmv_sorted(cfg, &conf, &a, &x).unwrap();
    assert_eq!(d.output, want);
    assert_eq!(s.output, want);
    println!("16K SpMxV: direct Q = {}, sorted Q = {}", d.q(), s.q());
}
