//! The closed-form predictors of `aem_core::bounds::predict` bracket the
//! measured costs: `measured ≤ predicted` (they are worst-case) and
//! `predicted` is not vacuously loose on adversarial inputs.

use aem_core::bounds::predict;
use aem_core::permute::permute_naive;
use aem_core::sort::{em_merge_sort, merge_sort};
use aem_core::spmv::{spmv_direct, spmv_sorted, U64Ring};
use aem_machine::{AemAccess, AemConfig, Machine};
use aem_workloads::{Conformation, KeyDist, MatrixShape, PermKind};

fn cfgs() -> Vec<AemConfig> {
    vec![
        AemConfig::new(32, 4, 1).unwrap(),
        AemConfig::new(64, 8, 8).unwrap(),
        AemConfig::new(64, 8, 64).unwrap(),
        AemConfig::new(256, 16, 16).unwrap(),
    ]
}

#[test]
fn merge_sort_within_predicted() {
    for cfg in cfgs() {
        for n in [256usize, 2048, 8192] {
            let input = KeyDist::Uniform { seed: 1 }.generate(n);
            let mut m: Machine<u64> = Machine::new(cfg);
            let r = m.install(&input);
            merge_sort(&mut m, r).unwrap();
            let measured = m.cost().q(cfg.omega);
            let predicted = predict::merge_sort_cost(cfg, n).q(cfg.omega);
            assert!(
                measured <= predicted,
                "{cfg} N={n}: measured {measured} > predicted {predicted}"
            );
            // Not vacuous: within a modest constant of reality.
            assert!(
                predicted <= measured.saturating_mul(8) + 64,
                "{cfg} N={n}: predictor too loose ({predicted} vs {measured})"
            );
        }
    }
}

#[test]
fn em_sort_within_predicted() {
    for cfg in cfgs() {
        for n in [256usize, 4096] {
            let input = KeyDist::Uniform { seed: 2 }.generate(n);
            let mut m: Machine<u64> = Machine::new(cfg);
            let r = m.install(&input);
            em_merge_sort(&mut m, r).unwrap();
            let measured = m.cost().q(cfg.omega);
            let predicted = predict::em_sort_cost(cfg, n).q(cfg.omega);
            assert!(
                measured <= predicted,
                "{cfg} N={n}: {measured} > {predicted}"
            );
        }
    }
}

#[test]
fn naive_permute_within_predicted() {
    for cfg in cfgs() {
        let n = 4096;
        let pi = PermKind::Random { seed: 3 }.generate(n);
        let values: Vec<u64> = (0..n as u64).collect();
        let run = permute_naive(cfg, &values, &pi).unwrap();
        let predicted = predict::permute_naive_cost(cfg, n).q(cfg.omega);
        assert!(run.q() <= predicted);
        // A random permutation has almost no block locality: the predictor
        // should be tight within 2x here.
        assert!(predicted <= 2 * run.q());
    }
}

#[test]
fn spmv_within_predicted() {
    for cfg in [
        AemConfig::new(64, 8, 4).unwrap(),
        AemConfig::new(64, 8, 32).unwrap(),
    ] {
        for delta in [1usize, 4, 16] {
            let n = 512;
            let conf = Conformation::generate(MatrixShape::Random { seed: 4 }, n, delta);
            let a: Vec<U64Ring> = vec![U64Ring(3); conf.nnz()];
            let x: Vec<U64Ring> = vec![U64Ring(2); n];
            let d = spmv_direct(cfg, &conf, &a, &x).unwrap();
            let s = spmv_sorted(cfg, &conf, &a, &x).unwrap();
            let pd = predict::spmv_direct_cost(cfg, n, delta).q(cfg.omega);
            let ps = predict::spmv_sorted_cost(cfg, n, delta).q(cfg.omega);
            assert!(d.q() <= pd, "direct {cfg} δ={delta}: {} > {pd}", d.q());
            assert!(s.q() <= ps, "sorted {cfg} δ={delta}: {} > {ps}", s.q());
        }
    }
}

#[test]
fn small_sort_prediction_is_exact() {
    // The base case is simple enough that the predictor matches measured
    // cost exactly on full-block inputs.
    let cfg = AemConfig::new(64, 8, 4).unwrap();
    for n in [64usize, 128, 256] {
        let input = KeyDist::Uniform { seed: 5 }.generate(n);
        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&input);
        aem_core::sort::small_sort(&mut m, r).unwrap();
        let predicted = predict::small_sort_cost(cfg, n);
        assert_eq!(m.cost(), predicted, "N={n}");
    }
}
