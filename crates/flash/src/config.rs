//! Flash-model parameters.

use aem_machine::{AemConfig, MachineError, Result};

/// Parameters of the unit-cost flash memory model: write blocks of
/// `write_block` elements, read blocks of `read_block` elements
/// (`read_block | write_block`), internal memory of `memory` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashConfig {
    /// Internal memory capacity, in elements.
    pub memory: usize,
    /// Size of a (big) write block.
    pub write_block: usize,
    /// Size of a (small) read block; divides `write_block`.
    pub read_block: usize,
}

impl FlashConfig {
    /// Create a validated configuration.
    pub fn new(memory: usize, write_block: usize, read_block: usize) -> Result<Self> {
        if read_block == 0 || write_block == 0 {
            return Err(MachineError::InvalidConfig(
                "flash block sizes must be >= 1",
            ));
        }
        if write_block % read_block != 0 {
            return Err(MachineError::InvalidConfig(
                "read block must divide write block",
            ));
        }
        if memory < write_block {
            return Err(MachineError::InvalidConfig(
                "flash memory must hold at least one write block",
            ));
        }
        Ok(Self {
            memory,
            write_block,
            read_block,
        })
    }

    /// The Lemma 4.3 instantiation for an AEM configuration: write blocks
    /// of size `B`, read blocks of size `B/ω`. Requires `B > ω` and
    /// `ω | B` (the lemma's assumptions).
    pub fn for_aem(cfg: AemConfig) -> Result<Self> {
        let omega = usize::try_from(cfg.omega)
            .map_err(|_| MachineError::InvalidConfig("omega too large"))?;
        if omega >= cfg.block {
            return Err(MachineError::InvalidConfig("Lemma 4.3 requires B > omega"));
        }
        if cfg.block % omega != 0 {
            return Err(MachineError::InvalidConfig(
                "Lemma 4.3 requires omega to divide B",
            ));
        }
        Self::new(cfg.memory, cfg.block, cfg.block / omega)
    }

    /// Number of small (read) sectors per big block.
    #[inline]
    pub fn sectors(&self) -> usize {
        self.write_block / self.read_block
    }
}

impl std::fmt::Display for FlashConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flash(M={}, write={}, read={}, {} sectors)",
            self.memory,
            self.write_block,
            self.read_block,
            self.sectors()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config() {
        let c = FlashConfig::new(64, 16, 4).unwrap();
        assert_eq!(c.sectors(), 4);
    }

    #[test]
    fn rejects_non_divisible() {
        assert!(FlashConfig::new(64, 16, 5).is_err());
        assert!(FlashConfig::new(64, 16, 0).is_err());
        assert!(FlashConfig::new(8, 16, 4).is_err());
    }

    #[test]
    fn from_aem_requires_b_above_omega() {
        let ok = AemConfig::new(64, 16, 4).unwrap();
        let f = FlashConfig::for_aem(ok).unwrap();
        assert_eq!(f.write_block, 16);
        assert_eq!(f.read_block, 4);

        let bad = AemConfig::new(64, 4, 16).unwrap(); // ω ≥ B
        assert!(FlashConfig::for_aem(bad).is_err());

        let indivisible = AemConfig::new(64, 16, 3).unwrap(); // 3 ∤ 16
        assert!(FlashConfig::for_aem(indivisible).is_err());
    }
}
