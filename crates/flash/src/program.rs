//! Flash-model programs: straight-line op sequences, replayable.

use std::collections::HashMap;

use aem_machine::{AtomId, BlockId, MachineError, Result};

use crate::config::FlashConfig;
use crate::machine::FlashMachine;

/// One flash-model operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashOp {
    /// Read one small sector of a big block, using (consuming) the listed
    /// atoms. Volume: one read block.
    ReadSector {
        /// The big block.
        block: BlockId,
        /// Sector index within the block (`0 ≤ sector < B/(B/ω)`).
        sector: usize,
        /// Atoms moved into internal memory by this read.
        keep: Vec<AtomId>,
    },
    /// Write a big block (must be empty) with the listed atoms. Volume:
    /// one write block.
    WriteBig {
        /// The big block.
        block: BlockId,
        /// Atoms written, in slot order.
        atoms: Vec<AtomId>,
    },
}

/// A complete flash-model program together with its initial layout.
#[derive(Debug, Clone)]
pub struct FlashProgram {
    /// The configuration the program is built for.
    pub cfg: FlashConfig,
    /// Initial contents of each non-empty big block.
    pub input: Vec<(BlockId, Vec<AtomId>)>,
    /// Operations in program order.
    pub ops: Vec<FlashOp>,
}

impl FlashProgram {
    /// The program's total I/O volume (without executing it).
    pub fn volume(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                FlashOp::ReadSector { .. } => self.cfg.read_block as u64,
                FlashOp::WriteBig { .. } => self.cfg.write_block as u64,
            })
            .sum()
    }

    /// Number of sector reads that do **not** consume every live atom of
    /// their sector — Lemma 4.3's accounting allows at most two of these
    /// per AEM read operation.
    pub fn count_ops(&self) -> (u64, u64) {
        let mut reads = 0;
        let mut writes = 0;
        for op in &self.ops {
            match op {
                FlashOp::ReadSector { .. } => reads += 1,
                FlashOp::WriteBig { .. } => writes += 1,
            }
        }
        (reads, writes)
    }

    /// Execute the program on a fresh [`FlashMachine`], enforcing every
    /// model rule, and return the machine (for layout inspection).
    pub fn replay(&self) -> Result<FlashMachine> {
        let mut m = FlashMachine::new(self.cfg);
        for (bid, atoms) in &self.input {
            m.install_block(*bid, atoms)?;
        }
        for op in &self.ops {
            match op {
                FlashOp::ReadSector {
                    block,
                    sector,
                    keep,
                } => {
                    m.read_sector(*block, *sector, keep)?;
                }
                FlashOp::WriteBig { block, atoms } => {
                    m.write_big(*block, atoms)?;
                }
            }
        }
        Ok(m)
    }

    /// Replay and compare the final layout against an expected
    /// block → atoms map (order-insensitive within blocks: §4.2 treats the
    /// intra-block order as normalization freedom).
    pub fn replay_and_check(&self, expected: &HashMap<usize, Vec<AtomId>>) -> Result<FlashMachine> {
        let m = self.replay()?;
        for (block, atoms) in expected {
            let mut got = m.inspect_block(BlockId(*block));
            let mut want = atoms.clone();
            got.sort_unstable();
            want.sort_unstable();
            if got != want {
                return Err(MachineError::MalformedTrace(format!(
                    "block {block}: flash replay holds {got:?}, AEM program holds {want:?}"
                )));
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> FlashProgram {
        let cfg = FlashConfig::new(16, 4, 2).unwrap();
        FlashProgram {
            cfg,
            input: vec![(BlockId(0), vec![AtomId(0), AtomId(1), AtomId(2), AtomId(3)])],
            ops: vec![
                FlashOp::ReadSector {
                    block: BlockId(0),
                    sector: 0,
                    keep: vec![AtomId(0), AtomId(1)],
                },
                FlashOp::ReadSector {
                    block: BlockId(0),
                    sector: 1,
                    keep: vec![AtomId(2), AtomId(3)],
                },
                FlashOp::WriteBig {
                    block: BlockId(1),
                    atoms: vec![AtomId(3), AtomId(1), AtomId(2), AtomId(0)],
                },
            ],
        }
    }

    #[test]
    fn volume_is_static() {
        let p = tiny_program();
        assert_eq!(p.volume(), 2 + 2 + 4);
        assert_eq!(p.count_ops(), (2, 1));
    }

    #[test]
    fn replay_realizes_layout() {
        let p = tiny_program();
        let m = p.replay().unwrap();
        assert_eq!(m.volume(), p.volume());
        assert_eq!(
            m.inspect_block(BlockId(1)),
            vec![AtomId(3), AtomId(1), AtomId(2), AtomId(0)]
        );
        assert!(m.inspect_block(BlockId(0)).is_empty());
    }

    #[test]
    fn replay_and_check_detects_mismatch() {
        let p = tiny_program();
        let mut expected = HashMap::new();
        expected.insert(1usize, vec![AtomId(0), AtomId(1), AtomId(2), AtomId(3)]);
        assert!(p.replay_and_check(&expected).is_ok()); // order-insensitive
        expected.insert(1usize, vec![AtomId(0)]);
        assert!(p.replay_and_check(&expected).is_err());
    }

    #[test]
    fn illegal_program_fails_replay() {
        let mut p = tiny_program();
        // Second write to the same (now occupied) block.
        p.ops.push(FlashOp::WriteBig {
            block: BlockId(1),
            atoms: vec![],
        });
        assert!(p.replay().is_err());
    }
}
