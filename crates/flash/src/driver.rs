//! Permutation programs on the move-semantics [`AtomMachine`]: the inputs
//! to the Lemma 4.3 simulation.
//!
//! These drivers produce recorded [`aem_machine::atom::AtomProgram`]s obeying the §4.2 rules
//! (enforced by the machine). The naive gather program is the canonical
//! one: its cost `≤ N + ωn` realizes the left branch of the Theorem 4.5
//! bound, and its reads use small subsets of each block — exactly the case
//! where the flash simulation's interval covering does real work.

use aem_machine::{AemConfig, AtomId, AtomMachine, MachineError, Region, Result};
use aem_workloads::perm;

/// Run the naive gather permutation on an atom machine and return the
/// recorded program plus the output region.
///
/// For each output block, the atoms destined for it are collected from
/// their source blocks (one `read_keep` per touched source block) and the
/// block is written once. Cost: at most `N` reads and exactly `⌈N/B⌉`
/// writes.
pub fn naive_atom_permutation(
    cfg: AemConfig,
    pi: &[usize],
) -> Result<(AtomProgramWithOutput, Region)> {
    let n = pi.len();
    let b = cfg.block;
    if cfg.memory < b {
        return Err(MachineError::InvalidConfig("need M >= B to gather a block"));
    }
    let mut m = AtomMachine::new(cfg);
    let input = m.install_atoms(n);
    let out = m.alloc_region(n);
    let inv = perm::invert(pi);

    for ob in 0..out.blocks {
        let len = out.elems_in_block(ob, b);
        // Sources for this output block, grouped by source block.
        let targets: Vec<usize> = (ob * b..ob * b + len).collect();
        let mut by_src_block: Vec<(usize, Vec<AtomId>)> = Vec::new();
        for &p in &targets {
            let src = inv[p];
            let sb = src / b;
            let atom = AtomId(src as u64); // atom ids are input positions
            match by_src_block.iter_mut().find(|(blk, _)| *blk == sb) {
                Some((_, v)) => v.push(atom),
                None => by_src_block.push((sb, vec![atom])),
            }
        }
        for (sb, atoms) in &by_src_block {
            m.read_keep(input.block(*sb), atoms)?;
        }
        // Write in target order.
        let atoms: Vec<AtomId> = targets.iter().map(|&p| AtomId(inv[p] as u64)).collect();
        m.write(out.block(ob), atoms)?;
    }
    Ok((
        AtomProgramWithOutput {
            program: m.into_program(),
            out,
        },
        out,
    ))
}

/// Run a two-pass distribute/gather permutation: pass 1 scatters atoms
/// into `G = ⌈N/M⌉` destination groups through in-memory bucket buffers;
/// pass 2 loads each group (≤ `M` atoms) and writes its output blocks
/// directly.
///
/// Cost: `≈ n` reads + `≈ n + G` writes per pass — a *write-heavy* profile
/// complementing the naive gather's read-heavy one, which is exactly why
/// the flash experiment runs both. Single-level distribution requires
/// `G·B ≤ M − B` (i.e. `N ≲ M²/B`); larger inputs are rejected rather than
/// silently mis-costed.
pub fn two_pass_atom_permutation(
    cfg: AemConfig,
    pi: &[usize],
) -> Result<(AtomProgramWithOutput, Region)> {
    let n = pi.len();
    let b = cfg.block;
    let mem = cfg.memory;
    let groups = n.div_ceil(mem).max(1);
    if groups * b + b > mem {
        return Err(MachineError::InvalidConfig(
            "two-pass permutation requires G*B + B <= M (N <= ~M^2/B)",
        ));
    }
    if mem % b != 0 {
        return Err(MachineError::InvalidConfig(
            "two-pass permutation requires B | M (group boundaries must be block-aligned)",
        ));
    }
    let mut m = AtomMachine::new(cfg);
    let input = m.install_atoms(n);
    let out = m.alloc_region(n);
    let inv = perm::invert(pi);

    // --- Pass 1: scatter into groups via in-memory bucket buffers. ------
    // Group of an atom = its destination block's group (M elements each).
    let group_of = |atom: AtomId| -> usize { (pi[atom.0 as usize] / mem).min(groups - 1) };
    let mut buffers: Vec<Vec<AtomId>> = vec![Vec::new(); groups];
    let mut group_blocks: Vec<Vec<aem_machine::BlockId>> = vec![Vec::new(); groups];
    for blk in 0..input.blocks {
        let atoms = m.inspect_block(input.block(blk))?;
        m.read_keep(input.block(blk), &atoms)?;
        for a in atoms {
            let g = group_of(a);
            buffers[g].push(a);
            if buffers[g].len() == b {
                let target = m.alloc_block();
                m.write(target, std::mem::take(&mut buffers[g]))?;
                group_blocks[g].push(target);
            }
        }
    }
    for (g, buf) in buffers.iter_mut().enumerate() {
        if !buf.is_empty() {
            let target = m.alloc_block();
            m.write(target, std::mem::take(buf))?;
            group_blocks[g].push(target);
        }
    }

    // --- Pass 2: per group, load everything and emit its output blocks. -
    for (g, blocks) in group_blocks.into_iter().enumerate() {
        for blk in &blocks {
            let atoms = m.inspect_block(*blk)?;
            m.read_keep(*blk, &atoms)?;
        }
        // Output blocks covered by this group: positions [g·M, (g+1)·M).
        let first_pos = g * mem;
        let last_pos = ((g + 1) * mem).min(n);
        let first_blk = first_pos / b;
        let last_blk = (last_pos - 1) / b;
        for ob in first_blk..=last_blk {
            let len = out.elems_in_block(ob, b);
            let atoms: Vec<AtomId> = (ob * b..ob * b + len)
                .map(|p| AtomId(inv[p] as u64))
                .collect();
            m.write(out.block(ob), atoms)?;
        }
    }
    Ok((
        AtomProgramWithOutput {
            program: m.into_program(),
            out,
        },
        out,
    ))
}

/// A recorded program together with its output region (for layout
/// verification).
#[derive(Debug, Clone)]
pub struct AtomProgramWithOutput {
    /// The recorded move-semantics program.
    pub program: aem_machine::atom::AtomProgram,
    /// Where the permuted atoms ended up.
    pub out: Region,
}

impl AtomProgramWithOutput {
    /// Check that the program realized `pi`: output position `p` holds the
    /// atom whose input position maps to `p`.
    pub fn realizes(&self, pi: &[usize]) -> bool {
        let layout = self.program.final_layout();
        let b = self.program.block;
        let inv = perm::invert(pi);
        for ob in 0..self.out.blocks {
            let want: Vec<AtomId> = (ob * b..((ob + 1) * b).min(pi.len()))
                .map(|p| AtomId(inv[p] as u64))
                .collect();
            match layout.get(&self.out.block(ob).index()) {
                Some(got) if *got == want => {}
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aem_workloads::perm::PermKind;

    #[test]
    fn realizes_random_permutations() {
        let cfg = AemConfig::new(16, 4, 4).unwrap();
        for kind in [
            PermKind::Identity,
            PermKind::Reverse,
            PermKind::Random { seed: 1 },
            PermKind::BitReversal,
        ] {
            let pi = kind.generate(64);
            let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
            assert!(prog.realizes(&pi), "{}", kind.label());
        }
    }

    #[test]
    fn cost_is_naive_shaped() {
        let cfg = AemConfig::new(16, 4, 8).unwrap();
        let pi = PermKind::Random { seed: 2 }.generate(256);
        let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
        let cost = prog.program.cost();
        assert!(cost.reads <= 256);
        assert_eq!(cost.writes, 64);
    }

    #[test]
    fn partial_tail_block() {
        let cfg = AemConfig::new(16, 4, 2).unwrap();
        let pi = PermKind::Random { seed: 3 }.generate(11);
        let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
        assert!(prog.realizes(&pi));
    }

    #[test]
    fn two_pass_realizes_permutations() {
        let cfg = AemConfig::new(16, 4, 4).unwrap(); // groups ≤ 3 for N ≤ 48
        for kind in [
            PermKind::Identity,
            PermKind::Reverse,
            PermKind::Random { seed: 5 },
        ] {
            let pi = kind.generate(48);
            let (prog, _) = two_pass_atom_permutation(cfg, &pi).unwrap();
            assert!(prog.realizes(&pi), "{}", kind.label());
        }
    }

    #[test]
    fn two_pass_is_write_heavier_than_naive() {
        let cfg = AemConfig::new(32, 4, 8).unwrap();
        let pi = PermKind::Random { seed: 6 }.generate(200);
        let (two, _) = two_pass_atom_permutation(cfg, &pi).unwrap();
        let (naive, _) = naive_atom_permutation(cfg, &pi).unwrap();
        assert!(two.realizes(&pi));
        let (tc, nc) = (two.program.cost(), naive.program.cost());
        assert!(tc.writes > nc.writes, "{} vs {}", tc.writes, nc.writes);
        assert!(tc.reads < nc.reads, "{} vs {}", tc.reads, nc.reads);
    }

    #[test]
    fn two_pass_rejects_oversized_inputs() {
        let cfg = AemConfig::new(16, 4, 2).unwrap(); // M²/B = 64
        let pi = PermKind::Random { seed: 7 }.generate(100);
        assert!(two_pass_atom_permutation(cfg, &pi).is_err());
    }

    #[test]
    fn identity_reads_each_block_once() {
        let cfg = AemConfig::new(16, 4, 2).unwrap();
        let pi = PermKind::Identity.generate(64);
        let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
        assert_eq!(prog.program.cost().reads, 16);
    }
}
