//! The enforcing flash-model simulator.
//!
//! Big blocks of `write_block` slots, readable in `read_block`-sized
//! sectors; atoms move (never copy); writes target empty blocks; every
//! transfer is metered by its *volume* (the block size moved, which is the
//! unit-cost flash model's cost measure).

use std::collections::HashSet;

use aem_machine::{AtomId, BlockId, MachineError, Result};

use crate::config::FlashConfig;

/// One big block: fixed slot positions, holes where atoms were consumed.
#[derive(Debug, Clone)]
struct BigBlock {
    slots: Vec<Option<AtomId>>,
}

impl BigBlock {
    fn empty() -> Self {
        Self { slots: Vec::new() }
    }

    fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// The flash-model machine state.
#[derive(Debug)]
pub struct FlashMachine {
    cfg: FlashConfig,
    blocks: Vec<BigBlock>,
    internal: HashSet<AtomId>,
    volume: u64,
    reads: u64,
    writes: u64,
}

impl FlashMachine {
    /// A fresh machine.
    pub fn new(cfg: FlashConfig) -> Self {
        Self {
            cfg,
            blocks: Vec::new(),
            internal: HashSet::new(),
            volume: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// The machine's configuration.
    pub fn cfg(&self) -> FlashConfig {
        self.cfg
    }

    /// Install atoms into a fresh big block at fixed positions (free:
    /// problem setup). `block` must address the next unallocated id or an
    /// existing one (to mirror an AEM machine's block table).
    pub fn install_block(&mut self, block: BlockId, atoms: &[AtomId]) -> Result<()> {
        if atoms.len() > self.cfg.write_block {
            return Err(MachineError::BlockOverflow {
                len: atoms.len(),
                block: self.cfg.write_block,
            });
        }
        while self.blocks.len() <= block.index() {
            self.blocks.push(BigBlock::empty());
        }
        let b = &mut self.blocks[block.index()];
        if b.occupancy() > 0 {
            return Err(MachineError::WriteToOccupied {
                block: block.index(),
                occupancy: b.occupancy(),
            });
        }
        b.slots = atoms.iter().copied().map(Some).collect();
        Ok(())
    }

    /// Ensure a block id exists (empty), mirroring AEM allocations.
    pub fn ensure_block(&mut self, block: BlockId) {
        while self.blocks.len() <= block.index() {
            self.blocks.push(BigBlock::empty());
        }
    }

    /// Read sector `sector` of `block`, *using* (moving to internal memory)
    /// exactly the atoms in `keep`, which must lie in that sector. Volume
    /// charged: one read block.
    pub fn read_sector(&mut self, block: BlockId, sector: usize, keep: &[AtomId]) -> Result<()> {
        let rb = self.cfg.read_block;
        let lo = sector * rb;
        let b = self
            .blocks
            .get_mut(block.index())
            .ok_or(MachineError::BadBlock {
                block: block.index(),
                allocated: 0,
            })?;
        if lo >= b.slots.len() {
            return Err(MachineError::MalformedTrace(format!(
                "sector {sector} of block {} is beyond its {} slots",
                block.index(),
                b.slots.len()
            )));
        }
        let hi = (lo + rb).min(b.slots.len());
        for a in keep {
            let found = b.slots[lo..hi].contains(&Some(*a));
            if !found {
                return Err(MachineError::AtomNotPresent {
                    atom: a.0,
                    wanted_in: "flash read sector",
                });
            }
        }
        if self.internal.len() + keep.len() > self.cfg.memory {
            return Err(MachineError::InternalOverflow {
                used: self.internal.len(),
                capacity: self.cfg.memory,
                requested: keep.len(),
            });
        }
        let keep_set: HashSet<AtomId> = keep.iter().copied().collect();
        for s in &mut b.slots[lo..hi] {
            if let Some(a) = s {
                if keep_set.contains(a) {
                    self.internal.insert(*a);
                    *s = None;
                }
            }
        }
        self.reads += 1;
        self.volume += rb as u64;
        Ok(())
    }

    /// Write `atoms` (all in internal memory) to the empty big block
    /// `block`, at slot positions `0..atoms.len()`. Volume charged: one
    /// write block.
    pub fn write_big(&mut self, block: BlockId, atoms: &[AtomId]) -> Result<()> {
        if atoms.len() > self.cfg.write_block {
            return Err(MachineError::BlockOverflow {
                len: atoms.len(),
                block: self.cfg.write_block,
            });
        }
        self.ensure_block(block);
        let occ = self.blocks[block.index()].occupancy();
        if occ > 0 {
            return Err(MachineError::WriteToOccupied {
                block: block.index(),
                occupancy: occ,
            });
        }
        let distinct: HashSet<AtomId> = atoms.iter().copied().collect();
        if distinct.len() != atoms.len() {
            return Err(MachineError::MalformedTrace(
                "write lists the same atom twice (atoms are indivisible)".into(),
            ));
        }
        for a in atoms {
            if !self.internal.contains(a) {
                return Err(MachineError::AtomNotPresent {
                    atom: a.0,
                    wanted_in: "flash internal memory",
                });
            }
        }
        for a in atoms {
            self.internal.remove(a);
        }
        self.blocks[block.index()].slots = atoms.iter().copied().map(Some).collect();
        self.writes += 1;
        self.volume += self.cfg.write_block as u64;
        Ok(())
    }

    /// Total I/O volume so far (the flash model's cost).
    pub fn volume(&self) -> u64 {
        self.volume
    }

    /// Number of sector reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of big-block writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Atoms resident in internal memory.
    pub fn internal_used(&self) -> usize {
        self.internal.len()
    }

    /// Contents of a block (live atoms in slot order), free of charge.
    pub fn inspect_block(&self, block: BlockId) -> Vec<AtomId> {
        self.blocks
            .get(block.index())
            .map(|b| b.slots.iter().flatten().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FlashConfig {
        FlashConfig::new(32, 8, 2).unwrap()
    }

    fn ids(range: std::ops::Range<u64>) -> Vec<AtomId> {
        range.map(AtomId).collect()
    }

    #[test]
    fn sector_read_moves_only_requested_atoms() {
        let mut m = FlashMachine::new(cfg());
        m.install_block(BlockId(0), &ids(0..8)).unwrap();
        // Sector 1 covers slots 2..4 (atoms 2, 3).
        m.read_sector(BlockId(0), 1, &[AtomId(3)]).unwrap();
        assert_eq!(m.internal_used(), 1);
        assert_eq!(
            m.inspect_block(BlockId(0)),
            ids(0..3).into_iter().chain(ids(4..8)).collect::<Vec<_>>()
        );
        assert_eq!(m.volume(), 2);
    }

    #[test]
    fn atom_outside_sector_is_rejected() {
        let mut m = FlashMachine::new(cfg());
        m.install_block(BlockId(0), &ids(0..8)).unwrap();
        let err = m.read_sector(BlockId(0), 0, &[AtomId(5)]).unwrap_err();
        assert!(matches!(err, MachineError::AtomNotPresent { atom: 5, .. }));
    }

    #[test]
    fn write_charges_full_block_volume() {
        let mut m = FlashMachine::new(cfg());
        m.install_block(BlockId(0), &ids(0..4)).unwrap();
        for s in 0..2 {
            let keep: Vec<AtomId> = ids(0..4)[s * 2..s * 2 + 2].to_vec();
            m.read_sector(BlockId(0), s, &keep).unwrap();
        }
        m.write_big(BlockId(1), &ids(0..4)).unwrap();
        // 2 sector reads (2 each) + 1 write (8).
        assert_eq!(m.volume(), 4 + 8);
        assert_eq!(m.inspect_block(BlockId(1)), ids(0..4));
    }

    #[test]
    fn write_requires_empty_block_and_resident_atoms() {
        let mut m = FlashMachine::new(cfg());
        m.install_block(BlockId(0), &ids(0..2)).unwrap();
        assert!(matches!(
            m.write_big(BlockId(0), &[]),
            Err(MachineError::WriteToOccupied { .. })
        ));
        m.ensure_block(BlockId(1));
        assert!(matches!(
            m.write_big(BlockId(1), &[AtomId(0)]),
            Err(MachineError::AtomNotPresent { .. })
        ));
    }

    #[test]
    fn memory_capacity_enforced() {
        let small = FlashConfig::new(8, 8, 2).unwrap();
        let mut m = FlashMachine::new(small);
        m.install_block(BlockId(0), &ids(0..8)).unwrap();
        m.install_block(BlockId(1), &ids(8..16)).unwrap();
        for s in 0..4 {
            m.read_sector(BlockId(0), s, &ids(s as u64 * 2..s as u64 * 2 + 2))
                .unwrap();
        }
        // Memory full (8 atoms): one more keep must fail.
        let err = m.read_sector(BlockId(1), 0, &[AtomId(8)]).unwrap_err();
        assert!(matches!(err, MachineError::InternalOverflow { .. }));
    }
}
