//! The Lemma 4.3 compiler: AEM permutation programs → flash programs.
//!
//! The lemma's construction, followed step by step:
//!
//! 1. **Removal times.** "Because `P_A` is a program, at the time when the
//!    block is written, we can determine for all atoms the time when they
//!    will be removed from the block." We walk the recorded
//!    [`AtomProgram`] once, attributing each read's used atoms to the
//!    block *version* (input block or creating write) they were taken
//!    from.
//! 2. **Normalization.** "We normalize `P_A` to write the block such that
//!    the atoms inside the block are ordered by the time they will be
//!    removed." Every written block is emitted in removal-time order; the
//!    *input* blocks, which no write of ours produced, are normalized by
//!    the initial read-write scan of I/O volume `2N` ("one read and write
//!    scan over the input").
//! 3. **Interval covering.** After normalization, every AEM read uses a
//!    contiguous interval of slots, so it becomes at most
//!    `⌈interval/(B/ω)⌉ ≤ interval·ω/B + 2` sector reads, "at most 2" of
//!    which are partial — exactly the lemma's accounting.
//!
//! [`verify_lemma_4_3`] runs the compiler, replays the result on the
//! enforcing [`crate::FlashMachine`], checks the realized layout against the AEM
//! program's, and reports measured volume against the `2N + 2QB/ω` bound.

use std::collections::HashMap;

use aem_machine::atom::{AtomEvent, AtomProgram};
use aem_machine::{AemConfig, AtomId, Cost, MachineError, Result};

use crate::config::FlashConfig;
use crate::program::{FlashOp, FlashProgram};

/// A block version: who produced the contents being read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Version {
    /// The original input contents of the block.
    Input(usize),
    /// The contents created by the write event at this index.
    Written(usize),
}

/// Outcome of the full Lemma 4.3 verification chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationReport {
    /// Number of atoms permuted.
    pub n_atoms: usize,
    /// Cost of the source AEM program.
    pub aem_cost: Cost,
    /// `Q = Q_r + ω·Q_w` of the source program.
    pub aem_q: u64,
    /// Measured I/O volume of the compiled flash program.
    pub flash_volume: u64,
    /// The lemma's bound `2N + 2QB/ω`.
    pub volume_bound: u64,
    /// Sector reads emitted.
    pub sector_reads: u64,
    /// Big-block writes emitted.
    pub big_writes: u64,
}

impl SimulationReport {
    /// `true` when the measured volume respects the lemma's bound.
    pub fn bound_holds(&self) -> bool {
        self.flash_volume <= self.volume_bound
    }
}

/// Compile a recorded AEM permutation program into a flash program
/// (Lemma 4.3). Requires `B > ω` and `ω | B`.
pub fn compile(prog: &AtomProgram, cfg: AemConfig) -> Result<FlashProgram> {
    if prog.block != cfg.block {
        return Err(MachineError::InvalidConfig(
            "program block size does not match configuration",
        ));
    }
    let fcfg = FlashConfig::for_aem(cfg)?;
    let rb = fcfg.read_block;

    // ---- Pass 1: removal times per block version. -----------------------
    // removal[(version)][atom] = index of the read event that uses it.
    let mut removal: HashMap<Version, HashMap<AtomId, usize>> = HashMap::new();
    let mut cur_version: HashMap<usize, Version> = prog
        .input
        .iter()
        .map(|(bid, _)| (bid.index(), Version::Input(bid.index())))
        .collect();
    for (t, ev) in prog.events.iter().enumerate() {
        match ev {
            AtomEvent::Read { block, removed } => {
                let v = *cur_version.get(&block.index()).ok_or_else(|| {
                    MachineError::MalformedTrace(format!(
                        "read of block {} before any content",
                        block.index()
                    ))
                })?;
                let map = removal.entry(v).or_default();
                for a in removed {
                    map.insert(*a, t);
                }
            }
            AtomEvent::Write { block, .. } => {
                cur_version.insert(block.index(), Version::Written(t));
            }
        }
    }

    let order_by_removal = |atoms: &[AtomId], v: Version| -> Vec<AtomId> {
        let empty = HashMap::new();
        let map = removal.get(&v).unwrap_or(&empty);
        let mut sorted: Vec<AtomId> = atoms.to_vec();
        sorted.sort_by_key(|a| map.get(a).copied().unwrap_or(usize::MAX));
        sorted
    };

    // ---- Pass 2: emit the flash program. --------------------------------
    let mut ops: Vec<FlashOp> = Vec::new();
    // Slot layouts of the current version of each block.
    let mut layout: HashMap<usize, Vec<AtomId>> = HashMap::new();

    // Initial normalization scan over the input (volume 2N for full
    // blocks): read every sector in full, write back in removal order.
    for (bid, atoms) in &prog.input {
        for (s, chunk) in atoms.chunks(rb).enumerate() {
            ops.push(FlashOp::ReadSector {
                block: *bid,
                sector: s,
                keep: chunk.to_vec(),
            });
        }
        let normalized = order_by_removal(atoms, Version::Input(bid.index()));
        ops.push(FlashOp::WriteBig {
            block: *bid,
            atoms: normalized.clone(),
        });
        layout.insert(bid.index(), normalized);
    }

    // Main translation.
    for (t, ev) in prog.events.iter().enumerate() {
        match ev {
            AtomEvent::Read { block, removed } => {
                if removed.is_empty() {
                    // A read that uses nothing moves no atoms: in the flash
                    // program it needs no I/O at all (its AEM cost still
                    // appears in Q, making the bound only easier).
                    continue;
                }
                let lay = layout.get(&block.index()).ok_or_else(|| {
                    MachineError::MalformedTrace(format!(
                        "read of block {} with no layout",
                        block.index()
                    ))
                })?;
                let positions: Vec<usize> = removed
                    .iter()
                    .map(|a| {
                        lay.iter().position(|x| x == a).ok_or_else(|| {
                            MachineError::MalformedTrace(format!(
                                "atom {a} not in layout of block {}",
                                block.index()
                            ))
                        })
                    })
                    .collect::<Result<_>>()?;
                let lo = *positions.iter().min().expect("non-empty");
                let hi = *positions.iter().max().expect("non-empty");
                debug_assert_eq!(
                    hi - lo + 1,
                    removed.len(),
                    "normalization must make used atoms contiguous"
                );
                for s in (lo / rb)..=(hi / rb) {
                    let keep: Vec<AtomId> = removed
                        .iter()
                        .zip(positions.iter())
                        .filter(|(_, p)| **p / rb == s)
                        .map(|(a, _)| *a)
                        .collect();
                    ops.push(FlashOp::ReadSector {
                        block: *block,
                        sector: s,
                        keep,
                    });
                }
            }
            AtomEvent::Write { block, atoms } => {
                let normalized = order_by_removal(atoms, Version::Written(t));
                ops.push(FlashOp::WriteBig {
                    block: *block,
                    atoms: normalized.clone(),
                });
                layout.insert(block.index(), normalized);
            }
        }
    }

    Ok(FlashProgram {
        cfg: fcfg,
        input: prog.input.clone(),
        ops,
    })
}

/// Run the full Lemma 4.3 chain: compile, replay on the enforcing flash
/// machine, check the realized layout against the AEM program's final
/// layout, and report the measured volume against `2N + 2QB/ω`.
pub fn verify_lemma_4_3(prog: &AtomProgram, cfg: AemConfig) -> Result<SimulationReport> {
    let flash = compile(prog, cfg)?;
    let expected = prog.final_layout();
    let machine = flash.replay_and_check(&expected)?;

    let aem_cost = prog.cost();
    let q = aem_cost.q(cfg.omega);
    let bound = 2 * prog.n_atoms as u64 + 2 * q * cfg.block as u64 / cfg.omega;
    let (sector_reads, big_writes) = flash.count_ops();
    Ok(SimulationReport {
        n_atoms: prog.n_atoms,
        aem_cost,
        aem_q: q,
        flash_volume: machine.volume(),
        volume_bound: bound,
        sector_reads,
        big_writes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aem_machine::AtomMachine;

    /// A tiny hand-rolled program: reverse two blocks into fresh ones.
    fn tiny_program(cfg: AemConfig) -> AtomProgram {
        let mut m = AtomMachine::new(cfg);
        let r = m.install_atoms(16);
        let out = m.alloc_region(16);
        for blk in 0..2 {
            let atoms = m.inspect_block(r.block(blk)).unwrap();
            m.read_keep(r.block(blk), &atoms).unwrap();
            let mut rev = atoms.clone();
            rev.reverse();
            m.write(out.block(1 - blk), rev).unwrap();
        }
        m.into_program()
    }

    #[test]
    fn compile_and_replay_tiny() {
        let cfg = AemConfig::new(32, 8, 2).unwrap(); // B=8, ω=2, sectors of 4
        let prog = tiny_program(cfg);
        let report = verify_lemma_4_3(&prog, cfg).unwrap();
        assert!(report.bound_holds(), "{report:?}");
        assert_eq!(report.n_atoms, 16);
        assert!(report.sector_reads >= 4); // 2 input blocks × 2 sectors at least
        assert!(report.big_writes >= 2);
    }

    #[test]
    fn partial_use_reads_become_intervals() {
        // A program that reads one atom at a time from a block: after
        // normalization each read must touch exactly one sector.
        let cfg = AemConfig::new(32, 8, 2).unwrap();
        let mut m = AtomMachine::new(cfg);
        let r = m.install_atoms(8);
        let out = m.alloc_region(8);
        // Remove atoms one by one in a scrambled order, then write them out.
        for a in [3u64, 0, 6, 1, 7, 2, 5, 4] {
            m.read_keep(r.block(0), &[aem_machine::AtomId(a)]).unwrap();
        }
        let atoms = m.internal_atoms();
        m.write(out.block(0), atoms.clone()).unwrap();
        let prog = m.into_program();
        let flash = compile(&prog, cfg).unwrap();
        // Every single-atom read maps to exactly one sector read.
        let singles = flash
            .ops
            .iter()
            .filter(|op| matches!(op, FlashOp::ReadSector { keep, .. } if keep.len() == 1))
            .count();
        assert_eq!(singles, 8);
        flash.replay_and_check(&prog.final_layout()).unwrap();
    }

    #[test]
    fn rejects_omega_not_dividing_b() {
        let cfg = AemConfig::new(32, 8, 3).unwrap();
        let prog = tiny_program(cfg);
        assert!(compile(&prog, cfg).is_err());
    }

    #[test]
    fn normalization_orders_by_removal() {
        // Write a block whose atoms are later consumed by two reads in
        // opposite slot order; the compiled write must emit them in
        // removal order so both reads are interval reads.
        let cfg = AemConfig::new(32, 8, 2).unwrap();
        let mut m = AtomMachine::new(cfg);
        let r = m.install_atoms(8);
        let all = m.inspect_block(r.block(0)).unwrap();
        m.read_keep(r.block(0), &all).unwrap();
        let scratch = m.alloc_block();
        // Write in id order; consume 4..8 first, then 0..4.
        m.write(scratch, all.clone()).unwrap();
        let (first, second) = (&all[4..8], &all[0..4]);
        m.read_keep(scratch, first).unwrap();
        let out1 = m.alloc_block();
        m.write(out1, first.to_vec()).unwrap();
        m.read_keep(scratch, second).unwrap();
        let out2 = m.alloc_block();
        m.write(out2, second.to_vec()).unwrap();
        let prog = m.into_program();
        let flash = compile(&prog, cfg).unwrap();
        // Find the write of `scratch` and check its order: 4..8 before 0..4.
        let scratch_write = flash
            .ops
            .iter()
            .find_map(|op| match op {
                FlashOp::WriteBig { block, atoms } if *block == scratch && atoms.len() == 8 => {
                    Some(atoms.clone())
                }
                _ => None,
            })
            .expect("scratch write present");
        let ids: Vec<u64> = scratch_write.iter().map(|a| a.0).collect();
        assert_eq!(ids, vec![4, 5, 6, 7, 0, 1, 2, 3]);
        flash.replay_and_check(&prog.final_layout()).unwrap();
    }

    #[test]
    fn volume_accounting_matches_replay() {
        let cfg = AemConfig::new(32, 8, 2).unwrap();
        let prog = tiny_program(cfg);
        let flash = compile(&prog, cfg).unwrap();
        let m = flash.replay().unwrap();
        assert_eq!(flash.volume(), m.volume());
    }
}
