//! # `aem-flash` — the unit-cost flash memory model and the Lemma 4.3
//! simulation
//!
//! The unit-cost flash model of Ajwani, Beckmann, Jacob, Meyer & Moruz
//! (reference \[2\] of the paper) is an external-memory model where *write*
//! blocks are larger than *read* blocks: a big block of size `B` consists
//! of `r` independently readable small blocks of size `B/r`, and the cost
//! of an I/O is proportional to the number of elements in the transferred
//! block (the *I/O volume*). With `r = ω` a single write (volume `B`) is
//! `ω` times as expensive as a single small read (volume `B/ω`) — "not too
//! surprisingly", as the paper puts it, the model aligns with the AEM.
//!
//! §4.1 of the paper makes this precise:
//!
//! > **Lemma 4.3.** Assume there is a round-based program `P_A` for the
//! > `(M, B, ω)`-AEM that computes the permutation π over `N` elements with
//! > cost `Q`. Assume `B > ω` and `B` is a multiple of `ω`. Then there is a
//! > program `P_F` in the unit-cost flash memory model with read block
//! > `B/ω` and write block `B` that performs I/Os of total volume
//! > `2N + 2QB/ω`.
//!
//! This crate implements all of it, executably:
//!
//! * [`FlashMachine`] — the enforcing flash-model simulator (move
//!   semantics, per-sector reads, empty-block writes, volume metering);
//! * [`simulate::compile`] — the Lemma 4.3 translation: removal-time
//!   normalization of every block, the initial input scan, and the
//!   interval-covering small reads, turning a recorded
//!   [`aem_machine::atom::AtomProgram`] into a [`FlashProgram`];
//! * [`FlashProgram::replay`] — executes the translated program on the
//!   flash machine, verifying legality and the realized layout against the
//!   AEM program's final layout;
//! * [`driver`] — permutation programs for the
//!   [`aem_machine::AtomMachine`] that generate the inputs (the §4.2
//!   move-semantics rules are enforced by that machine).
//!
//! Experiment T4 runs the full chain and checks the volume bound
//! `2N + 2QB/ω` across parameter sweeps.
//!
//! ## Example
//!
//! ```
//! use aem_flash::{driver::naive_atom_permutation, verify_lemma_4_3};
//! use aem_machine::AemConfig;
//! use aem_workloads::PermKind;
//!
//! // B = 16, ω = 4: flash read blocks of 4, write blocks of 16.
//! let cfg = AemConfig::new(64, 16, 4).unwrap();
//! let pi = PermKind::Random { seed: 7 }.generate(256);
//!
//! // A legal §4.2 program realizing π...
//! let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
//! assert!(prog.realizes(&pi));
//!
//! // ...compiled, replayed and checked against the lemma's bound.
//! let report = verify_lemma_4_3(&prog.program, cfg).unwrap();
//! assert!(report.bound_holds());
//! assert!(report.flash_volume <= 2 * 256 + 2 * report.aem_q * 16 / 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod machine;
pub mod program;
pub mod simulate;

pub use config::FlashConfig;
pub use machine::FlashMachine;
pub use program::{FlashOp, FlashProgram};
pub use simulate::{compile, verify_lemma_4_3, SimulationReport};
