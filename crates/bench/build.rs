//! Derives the sweep cache's code-version salt at build time.
//!
//! The salt is an FNV-1a hash over the contents of every experiment and
//! sweep source file (in sorted path order, so it is deterministic across
//! filesystems). Any edit to an experiment therefore changes the salt and
//! invalidates every cached cell — the cache can never serve results
//! computed by different experiment code.

use std::path::{Path, PathBuf};

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("manifest dir"));
    let mut files = Vec::new();
    collect(&manifest.join("src/exp"), &mut files);
    collect(&manifest.join("src/sweep"), &mut files);
    files.sort();

    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for path in &files {
        println!("cargo:rerun-if-changed={}", path.display());
        let bytes = std::fs::read(path).unwrap_or_default();
        for &b in bytes.iter().chain(b"\x00".iter()) {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    println!("cargo:rerun-if-changed=build.rs");
    println!("cargo:rustc-env=AEM_SWEEP_SALT={h:016x}");
}
