//! Integration tests for the sweep engine against the real experiment
//! grids: parallel determinism, cache resume, `--fresh` invalidation and
//! code-version-salt invalidation.

use std::path::PathBuf;

use aem_bench::exp;
use aem_bench::sweep::{self, cache, RunOptions, RunReport};
use aem_machine::Backend;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aem-sweep-it-{}-{name}", std::process::id()))
}

fn render(report: &RunReport) -> String {
    let mut doc = String::new();
    for o in &report.outcomes {
        doc.push_str(
            &o.table
                .as_ref()
                .unwrap_or_else(|| panic!("{} panicked: {:?}", o.id, o.panic))
                .to_markdown(),
        );
    }
    doc
}

/// A small but real subset of the quick grids (kept cheap: these are the
/// experiments whose quick cells run in milliseconds).
fn subset() -> RunOptions {
    RunOptions {
        only: Some(vec!["T2".into(), "T5".into(), "F5".into()]),
        ..Default::default()
    }
}

#[test]
fn parallel_is_byte_identical_to_serial() {
    let serial = sweep::run(
        &exp::all_sweeps(true, Backend::Vec),
        &RunOptions {
            jobs: 1,
            ..subset()
        },
    )
    .unwrap();
    let parallel = sweep::run(
        &exp::all_sweeps(true, Backend::Vec),
        &RunOptions {
            jobs: 4,
            ..subset()
        },
    )
    .unwrap();
    assert!(serial.executed > 0);
    assert_eq!(render(&serial), render(&parallel));

    // And both match the pre-engine serial path (`tables(quick)`).
    let legacy: String = exp::all_sweeps(true, Backend::Vec)
        .iter()
        .filter(|s| subset().selects(&s.id))
        .map(|s| s.run_serial().to_markdown())
        .collect();
    assert_eq!(render(&serial), legacy);
}

#[test]
fn ghost_engine_run_is_byte_identical_to_vec_on_shared_sweeps() {
    // The CI smoke in script form: the backend-neutral T8 and the
    // payload-oblivious T5N are in every backend's sweep set, keyed and
    // rendered without backend names, so a ghost document must equal the
    // vec document byte for byte.
    let only = Some(vec!["T8".into(), "T5N".into()]);
    let vec_doc = render(
        &sweep::run(
            &exp::all_sweeps(true, Backend::Vec),
            &RunOptions {
                only: only.clone(),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let ghost_doc = render(
        &sweep::run(
            &exp::all_sweeps(true, Backend::Ghost),
            &RunOptions {
                only,
                backend: Backend::Ghost,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    assert!(!vec_doc.is_empty());
    assert_eq!(vec_doc, ghost_doc);
}

#[test]
fn warm_cache_runs_zero_simulations() {
    let path = tmp("warm.jsonl");
    std::fs::remove_file(&path).ok();
    let opts = RunOptions {
        jobs: 4,
        cache: Some(path.clone()),
        ..subset()
    };
    let cold = sweep::run(&exp::all_sweeps(true, Backend::Vec), &opts).unwrap();
    assert!(cold.executed > 0);
    assert_eq!(cold.cached, 0);

    let warm = sweep::run(&exp::all_sweeps(true, Backend::Vec), &opts).unwrap();
    assert_eq!(warm.executed, 0, "second run must simulate nothing");
    assert_eq!(warm.cached, cold.executed);
    assert_eq!(render(&cold), render(&warm));
    std::fs::remove_file(&path).ok();
}

#[test]
fn fresh_invalidates_the_cache() {
    let path = tmp("fresh.jsonl");
    std::fs::remove_file(&path).ok();
    let opts = RunOptions {
        jobs: 4,
        cache: Some(path.clone()),
        only: Some(vec!["T2a".into()]),
        ..Default::default()
    };
    let cold = sweep::run(&exp::all_sweeps(true, Backend::Vec), &opts).unwrap();
    assert!(cold.executed > 0);

    let fresh = sweep::run(
        &exp::all_sweeps(true, Backend::Vec),
        &RunOptions {
            fresh: true,
            ..opts.clone()
        },
    )
    .unwrap();
    assert_eq!(fresh.executed, cold.executed, "--fresh must re-simulate");
    assert_eq!(fresh.cached, 0);

    // After the fresh run the cache is warm again.
    let warm = sweep::run(&exp::all_sweeps(true, Backend::Vec), &opts).unwrap();
    assert_eq!(warm.executed, 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_code_salt_invalidates_cached_cells() {
    let path = tmp("stale.jsonl");
    std::fs::remove_file(&path).ok();
    let opts = RunOptions {
        jobs: 2,
        cache: Some(path.clone()),
        only: Some(vec!["T2a".into()]),
        ..Default::default()
    };
    let cold = sweep::run(&exp::all_sweeps(true, Backend::Vec), &opts).unwrap();
    assert!(cold.executed > 0);

    // Rewrite every cache line as if produced by an older code version:
    // same experiment ids and cell keys, different salt. The engine must
    // treat all of them as misses.
    let sweeps = exp::all_sweeps(true, Backend::Vec);
    let t2a = sweeps.iter().find(|s| s.id == "T2a").unwrap();
    let mut stale = String::new();
    for cell in &t2a.cells {
        let out = (cell.run)();
        stale.push_str(&cache::record_line(
            &t2a.id,
            &cell.key,
            Backend::Vec,
            "0000deadbeef0000",
            &out,
        ));
        stale.push('\n');
    }
    std::fs::write(&path, stale).unwrap();

    let rerun = sweep::run(&exp::all_sweeps(true, Backend::Vec), &opts).unwrap();
    assert_eq!(
        rerun.executed, cold.executed,
        "stale-salt records must not count as hits"
    );
    assert_eq!(rerun.cached, 0);

    // Sanity: with the *current* salt the very same records do hit.
    let current = cache::code_salt();
    assert_ne!(current, "0000deadbeef0000");
    let warm = sweep::run(&exp::all_sweeps(true, Backend::Vec), &opts).unwrap();
    assert_eq!(warm.executed, 0);
    std::fs::remove_file(&path).ok();
}
