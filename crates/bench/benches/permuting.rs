//! Wall-clock throughput of the permuting strategies.

use aem_bench::timing::bench_with_elems;
use aem_core::permute::{permute_by_sort, permute_naive};
use aem_machine::AemConfig;
use aem_workloads::PermKind;

fn main() {
    for &n in &[1usize << 12, 1 << 14] {
        let pi = PermKind::Random { seed: 1 }.generate(n);
        let values: Vec<u64> = (0..n as u64).collect();
        let cfg = AemConfig::new(64, 8, 16).unwrap();
        bench_with_elems(&format!("permute/naive/{n}"), n as u64, || {
            permute_naive(cfg, &values, &pi).unwrap()
        });
        bench_with_elems(&format!("permute/by_sort/{n}"), n as u64, || {
            permute_by_sort(cfg, &values, &pi).unwrap()
        });
    }
}
