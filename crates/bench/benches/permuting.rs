//! Wall-clock throughput of the permuting strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use aem_core::permute::{permute_by_sort, permute_naive};
use aem_machine::AemConfig;
use aem_workloads::PermKind;

fn bench_permute(c: &mut Criterion) {
    let mut g = c.benchmark_group("permute");
    for &n in &[1usize << 12, 1 << 14] {
        let pi = PermKind::Random { seed: 1 }.generate(n);
        let values: Vec<u64> = (0..n as u64).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            let cfg = AemConfig::new(64, 8, 16).unwrap();
            b.iter(|| permute_naive(cfg, &values, &pi).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("by_sort", n), &n, |b, _| {
            let cfg = AemConfig::new(64, 8, 16).unwrap();
            b.iter(|| permute_by_sort(cfg, &values, &pi).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_permute);
criterion_main!(benches);
