//! Wall-clock throughput of the sorting stack on the simulator.
//!
//! The I/O-cost tables are exact and deterministic (see the exp_* bins);
//! these benches cover the orthogonal question of how fast the simulator
//! itself executes — the number a user adopting the library for
//! experimentation cares about.

use aem_bench::timing::bench_with_elems;
use aem_core::sort::{em_merge_sort, merge_sort};
use aem_machine::{AemConfig, Machine};
use aem_workloads::KeyDist;

fn main() {
    for &n in &[1usize << 12, 1 << 14, 1 << 16] {
        let input = KeyDist::Uniform { seed: 1 }.generate(n);
        let cfg = AemConfig::new(256, 16, 16).unwrap();
        bench_with_elems(&format!("merge_sort/aem_w16/{n}"), n as u64, || {
            let mut m: Machine<u64> = Machine::new(cfg);
            let r = m.install(&input);
            merge_sort(&mut m, r).unwrap()
        });
        bench_with_elems(&format!("merge_sort/em_baseline/{n}"), n as u64, || {
            let mut m: Machine<u64> = Machine::new(cfg);
            let r = m.install(&input);
            em_merge_sort(&mut m, r).unwrap()
        });
    }

    let n = 1usize << 14;
    let input = KeyDist::Uniform { seed: 2 }.generate(n);
    for &omega in &[1u64, 16, 256] {
        let cfg = AemConfig::new(64, 8, omega).unwrap();
        bench_with_elems(&format!("merge_sort_omega/{omega}"), n as u64, || {
            let mut m: Machine<u64> = Machine::new(cfg);
            let r = m.install(&input);
            merge_sort(&mut m, r).unwrap()
        });
    }
}
