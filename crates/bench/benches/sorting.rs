//! Wall-clock throughput of the sorting stack on the simulator.
//!
//! The I/O-cost tables are exact and deterministic (see the exp_* bins);
//! these benches cover the orthogonal question of how fast the simulator
//! itself executes — the number a user adopting the library for
//! experimentation cares about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use aem_core::sort::{em_merge_sort, merge_sort};
use aem_machine::{AemConfig, Machine};
use aem_workloads::KeyDist;

fn bench_merge_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_sort");
    for &n in &[1usize << 12, 1 << 14, 1 << 16] {
        let input = KeyDist::Uniform { seed: 1 }.generate(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("aem_w16", n), &input, |b, input| {
            let cfg = AemConfig::new(256, 16, 16).unwrap();
            b.iter(|| {
                let mut m: Machine<u64> = Machine::new(cfg);
                let r = m.install(input);
                merge_sort(&mut m, r).unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("em_baseline", n), &input, |b, input| {
            let cfg = AemConfig::new(256, 16, 16).unwrap();
            b.iter(|| {
                let mut m: Machine<u64> = Machine::new(cfg);
                let r = m.install(input);
                em_merge_sort(&mut m, r).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_omega_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_sort_omega");
    let n = 1usize << 14;
    let input = KeyDist::Uniform { seed: 2 }.generate(n);
    for &omega in &[1u64, 16, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(omega), &omega, |b, &omega| {
            let cfg = AemConfig::new(64, 8, omega).unwrap();
            b.iter(|| {
                let mut m: Machine<u64> = Machine::new(cfg);
                let r = m.install(&input);
                merge_sort(&mut m, r).unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_merge_sort, bench_omega_scaling);
criterion_main!(benches);
