//! Evaluation speed of the counting bounds (they sit inside sweep loops).

use criterion::{criterion_group, criterion_main, Criterion};

use aem_core::bounds::{math, permute, spmv};
use aem_machine::AemConfig;

fn bench_bounds(c: &mut Criterion) {
    let cfg = AemConfig::new(1 << 10, 1 << 6, 16).unwrap();
    c.bench_function("permute_counting_bound_1e6", |b| {
        b.iter(|| permute::permute_cost_lower_bound(1 << 20, cfg));
    });
    c.bench_function("spmv_bound_1e6", |b| {
        b.iter(|| spmv::spmv_cost_lower_bound(1 << 20, 8, cfg));
    });
    c.bench_function("ln_factorial_large", |b| {
        b.iter(|| math::ln_factorial(1 << 30));
    });
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
