//! Evaluation speed of the counting bounds (they sit inside sweep loops).

use aem_bench::timing::bench;
use aem_core::bounds::{math, permute, spmv};
use aem_machine::AemConfig;

fn main() {
    let cfg = AemConfig::new(1 << 10, 1 << 6, 16).unwrap();
    bench("permute_counting_bound_1e6", || {
        permute::permute_cost_lower_bound(1 << 20, cfg)
    });
    bench("spmv_bound_1e6", || {
        spmv::spmv_cost_lower_bound(1 << 20, 8, cfg)
    });
    bench("ln_factorial_large", || math::ln_factorial(1 << 30));
}
