//! Raw simulator overhead: block transfers per second, plain vs
//! round-based machines, the flash replay path — and, since the
//! pluggable-store refactor, the same block-I/O loops per storage
//! backend (vec vs arena vs ghost), which is where the arena's buffer
//! reuse and the ghost store's payload elision show up as wall-clock.
//!
//! `--json PATH` additionally writes the backend comparison (ops/sec per
//! backend plus the quick-sweep wall time per backend) as a JSON
//! document; `BENCH_PR4.json`, `BENCH_PR6.json` and `BENCH_PR7.json` at
//! the repo root are committed snapshots (PR6 adds the PQ-sort row; PR7
//! moves the scan and the permuter's output path onto the bulk
//! `read_run`/`write_run` API and adds the trace backend plus the
//! repeat-cell re-pricing row), and
//! `cargo run -p aem-bench --bin perf_gate` compares a fresh run against
//! the newest committed baseline (see README, "Bench baselines").

use std::time::Instant;

use aem_bench::timing::{bench, bench_with_elems, Measurement};
use aem_core::permute::permute_naive_on;
use aem_core::sort::{merge_sort, sort_via_pq};
use aem_flash::driver::naive_atom_permutation;
use aem_flash::verify_lemma_4_3;
use aem_machine::{
    with_backend_machine, AemAccess, AemConfig, Backend, GhostMachine, Machine, RoundBasedMachine,
    TraceMachine,
};
use aem_obs::json::{obj, Json};
use aem_workloads::{KeyDist, PermKind};

/// Block-scan copy (read every block, write every block) on one backend,
/// streamed through the bulk API in runs of `m = M/B` blocks: one
/// ledger/meter update and one bounds sweep per run instead of per block.
///
/// Since PR7 the machine is set up (and the input installed) outside the
/// timed loop: `machine_io` rows measure the *metered I/O path* — the
/// thing the bulk API optimizes — not problem setup, which under copy
/// semantics allocates one `Vec` per block and used to dominate the row.
fn scan_copy_backend(backend: Backend, cfg: AemConfig, data: &[u64]) -> Measurement {
    let run = (cfg.memory / cfg.block).max(1);
    with_backend_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let r = m.install(data);
        let out = m.alloc_region(r.elems);
        let mut buf: Vec<u64> = Vec::new();
        bench_with_elems(
            &format!("machine_io/scan_copy_{}", backend.name()),
            data.len() as u64,
            || {
                let mut i = 0;
                while i < r.blocks {
                    let count = run.min(r.blocks - i);
                    m.read_run(r.block(i), count, &mut buf).unwrap();
                    m.write_run(out.block(i), &buf).unwrap();
                    i += count;
                }
            },
        )
    })
}

/// Re-pricing a sweep cell that has already been run once — the
/// situation a cached sweep repeat or an `ω`-rescan hits. The ghost
/// backend re-executes the whole block-dispatch loop every time; the
/// trace backend records the schedule once and re-prices it as one
/// arithmetic pass over the compiled ops ([`CompiledTrace::replay`]).
/// Rows exist only for those two backends.
///
/// [`CompiledTrace::replay`]: aem_machine::CompiledTrace::replay
fn repeat_cell_backend(backend: Backend, cfg: AemConfig, n: usize) -> Option<Measurement> {
    let pi = PermKind::Random { seed: 9 }.generate(n);
    let values: Vec<u64> = (0..n as u64).collect();
    match backend {
        Backend::Ghost => Some(bench_with_elems("repeat_cell/ghost", n as u64, || {
            let mut m: GhostMachine<u64> = GhostMachine::new(cfg);
            let r = m.install(&values);
            permute_naive_on(&mut m, r, &pi).unwrap();
        })),
        Backend::Trace => {
            let mut m: TraceMachine<u64> = TraceMachine::new(cfg);
            let r = m.install(&values);
            permute_naive_on(&mut m, r, &pi).unwrap();
            let expected = m.cost();
            let schedule = m.into_schedule();
            Some(bench_with_elems("repeat_cell/trace", n as u64, || {
                assert_eq!(schedule.replay(), expected);
            }))
        }
        _ => None,
    }
}

/// The payload-oblivious naive permuter on one backend (the workload the
/// ghost frontier sweep T5X runs at scale). Each iteration is a complete
/// run — reset, install, gather — on one long-lived machine: `reset`
/// recycles the store's block buffers, so steady-state iterations touch
/// the allocator not at all and the row measures the simulator's metered
/// path rather than malloc churn.
fn permute_backend(backend: Backend, cfg: AemConfig, n: usize) -> Measurement {
    let pi = PermKind::Random { seed: 9 }.generate(n);
    let values: Vec<u64> = (0..n as u64).collect();
    with_backend_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        bench_with_elems(
            &format!("permute_naive/{}", backend.name()),
            n as u64,
            || {
                m.reset();
                let r = m.install(&values);
                permute_naive_on(&mut m, r, &pi).unwrap()
            },
        )
    })
}

/// The PQ-backed sorter on one backend. Sound on the ghost store too:
/// placeholder payloads mean constant keys, and the buffered queue's
/// merges resolve ties positionally (the T9G experiment runs the same
/// degenerate workload), so the schedule is well-defined and the cost
/// is the structural cost of the queue machinery.
fn pq_sort_backend(backend: Backend, cfg: AemConfig, n: usize) -> Measurement {
    let input = KeyDist::Uniform { seed: 5 }.generate(n);
    with_backend_machine!(backend, u64, |M| {
        bench_with_elems(&format!("pq_sort/{}", backend.name()), n as u64, || {
            let mut m = M::new(cfg);
            let r = m.install(&input);
            sort_via_pq(&mut m, r).unwrap()
        })
    })
}

/// One full quick-grid sweep run for a backend, timed once (seconds).
fn quick_sweep_secs(backend: Backend) -> f64 {
    let sweeps = aem_bench::exp::all_sweeps(true, backend);
    let opts = aem_bench::sweep::RunOptions {
        backend,
        ..Default::default()
    };
    let t0 = Instant::now();
    let report = aem_bench::sweep::run(&sweeps, &opts).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    assert!(report.executed > 0);
    secs
}

fn json_f64(v: f64) -> Json {
    // The obs JSON writer keeps floats verbatim; round to keep the
    // committed artifact diff-friendly.
    Json::Num((v * 1000.0).round() / 1000.0)
}

/// A one-level pretty printer (the obs writer is compact-only), so the
/// committed BENCH_PR4.json diffs line-by-line across refreshes.
fn pretty(doc: &Json) -> String {
    let Json::Obj(members) = doc else {
        return doc.to_string_compact();
    };
    let mut out = String::from("{\n");
    for (i, (k, v)) in members.iter().enumerate() {
        let body = match v {
            Json::Obj(inner) => {
                let rows: Vec<String> = inner
                    .iter()
                    .map(|(ik, iv)| format!("    {:?}: {}", ik, iv.to_string_compact()))
                    .collect();
                format!("{{\n{}\n  }}", rows.join(",\n"))
            }
            other => other.to_string_compact(),
        };
        out.push_str(&format!(
            "  {:?}: {}{}\n",
            k,
            body,
            if i + 1 < members.len() { "," } else { "" }
        ));
    }
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--json=").map(str::to_string))
        });

    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let data: Vec<u64> = (0..1u64 << 13).collect();
    {
        // The per-block reference loop, warm machine (setup outside the
        // timed body, like the per-backend scan rows) — the bulk rows'
        // speedup over this row is the bulk API's win.
        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&data);
        let out = m.alloc_region(r.elems);
        bench_with_elems("machine_io/scan_copy_plain", data.len() as u64, || {
            for i in 0..r.blocks {
                let d = m.read_block(r.block(i)).unwrap();
                m.write_block(out.block(i), d).unwrap();
            }
        });
    }
    bench_with_elems(
        "machine_io/scan_copy_round_based",
        data.len() as u64,
        || {
            let mut m: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
            let r = m.install(&data);
            let out = m.alloc_region(r.elems);
            for i in 0..r.blocks {
                let d = m.read_block(r.block(i)).unwrap();
                m.write_block(out.block(i), d).unwrap();
            }
            m.finish().unwrap()
        },
    );

    // The backend comparison: identical loops, different stores.
    let mut backend_json: Vec<(&str, Json)> = Vec::new();
    for backend in Backend::ALL {
        let scan = scan_copy_backend(backend, cfg, &data);
        let perm = permute_backend(backend, cfg, 1 << 13);
        let pq = pq_sort_backend(backend, cfg, 1 << 13);
        let repeat = repeat_cell_backend(backend, cfg, 1 << 13);
        let sweep_secs = quick_sweep_secs(backend);
        println!(
            "{:<44} {:>12.3}s  (full quick grid)",
            format!("quick_sweep/{}", backend.name()),
            sweep_secs
        );
        let mut row = vec![
            (
                "scan_copy_elems_per_sec",
                json_f64(scan.throughput().unwrap_or(0.0)),
            ),
            (
                "permute_naive_elems_per_sec",
                json_f64(perm.throughput().unwrap_or(0.0)),
            ),
            (
                "pq_sort_elems_per_sec",
                json_f64(pq.throughput().unwrap_or(0.0)),
            ),
            ("quick_sweep_secs", json_f64(sweep_secs)),
        ];
        if let Some(repeat) = repeat {
            row.push((
                "repeat_cell_elems_per_sec",
                json_f64(repeat.throughput().unwrap_or(0.0)),
            ));
        }
        backend_json.push((backend.name(), obj(row)));
    }

    let input = KeyDist::Uniform { seed: 1 }.generate(1 << 12);
    bench("merge_sort_round_based", || {
        let mut m: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
        let r = m.install(&input);
        merge_sort(&mut m, r).unwrap();
        m.finish().unwrap()
    });

    let flash_cfg = AemConfig::new(64, 16, 4).unwrap();
    let pi = PermKind::Random { seed: 2 }.generate(1 << 11);
    bench("lemma_4_3_full_chain", || {
        let (prog, _) = naive_atom_permutation(flash_cfg, &pi).unwrap();
        verify_lemma_4_3(&prog.program, flash_cfg).unwrap()
    });

    if let Some(path) = json_path {
        let doc = obj(vec![
            ("bench", Json::Str("backend-comparison".to_string())),
            (
                "config",
                obj(vec![
                    ("mem", Json::UInt(64)),
                    ("block", Json::UInt(8)),
                    ("omega", Json::UInt(8)),
                    ("scan_elems", Json::UInt(1 << 13)),
                    ("permute_elems", Json::UInt(1 << 13)),
                    ("pq_elems", Json::UInt(1 << 13)),
                ]),
            ),
            ("backends", obj(backend_json)),
        ]);
        std::fs::write(&path, pretty(&doc)).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
