//! Raw simulator overhead: block transfers per second, plain vs
//! round-based machines, and the flash replay path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use aem_core::sort::merge_sort;
use aem_flash::driver::naive_atom_permutation;
use aem_flash::verify_lemma_4_3;
use aem_machine::{AemAccess, AemConfig, Machine, RoundBasedMachine};
use aem_workloads::{KeyDist, PermKind};

fn bench_block_io(c: &mut Criterion) {
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let data: Vec<u64> = (0..1u64 << 13).collect();
    let mut g = c.benchmark_group("machine_io");
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("scan_copy_plain", |b| {
        b.iter(|| {
            let mut m: Machine<u64> = Machine::new(cfg);
            let r = m.install(&data);
            let out = m.alloc_region(r.elems);
            for i in 0..r.blocks {
                let d = m.read_block(r.block(i)).unwrap();
                m.write_block(out.block(i), d).unwrap();
            }
        });
    });
    g.bench_function("scan_copy_round_based", |b| {
        b.iter(|| {
            let mut m: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
            let r = m.install(&data);
            let out = m.alloc_region(r.elems);
            for i in 0..r.blocks {
                let d = m.read_block(r.block(i)).unwrap();
                m.write_block(out.block(i), d).unwrap();
            }
            m.finish().unwrap()
        });
    });
    g.finish();
}

fn bench_round_based_sort(c: &mut Criterion) {
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let input = KeyDist::Uniform { seed: 1 }.generate(1 << 12);
    c.bench_function("merge_sort_round_based", |b| {
        b.iter(|| {
            let mut m: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
            let r = m.install(&input);
            merge_sort(&mut m, r).unwrap();
            m.finish().unwrap()
        });
    });
}

fn bench_flash_chain(c: &mut Criterion) {
    let cfg = AemConfig::new(64, 16, 4).unwrap();
    let pi = PermKind::Random { seed: 2 }.generate(1 << 11);
    c.bench_function("lemma_4_3_full_chain", |b| {
        b.iter(|| {
            let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
            verify_lemma_4_3(&prog.program, cfg).unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_block_io,
    bench_round_based_sort,
    bench_flash_chain
);
criterion_main!(benches);
