//! Raw simulator overhead: block transfers per second, plain vs
//! round-based machines, and the flash replay path.

use aem_bench::timing::{bench, bench_with_elems};
use aem_core::sort::merge_sort;
use aem_flash::driver::naive_atom_permutation;
use aem_flash::verify_lemma_4_3;
use aem_machine::{AemAccess, AemConfig, Machine, RoundBasedMachine};
use aem_workloads::{KeyDist, PermKind};

fn main() {
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let data: Vec<u64> = (0..1u64 << 13).collect();
    bench_with_elems("machine_io/scan_copy_plain", data.len() as u64, || {
        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&data);
        let out = m.alloc_region(r.elems);
        for i in 0..r.blocks {
            let d = m.read_block(r.block(i)).unwrap();
            m.write_block(out.block(i), d).unwrap();
        }
    });
    bench_with_elems(
        "machine_io/scan_copy_round_based",
        data.len() as u64,
        || {
            let mut m: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
            let r = m.install(&data);
            let out = m.alloc_region(r.elems);
            for i in 0..r.blocks {
                let d = m.read_block(r.block(i)).unwrap();
                m.write_block(out.block(i), d).unwrap();
            }
            m.finish().unwrap()
        },
    );

    let input = KeyDist::Uniform { seed: 1 }.generate(1 << 12);
    bench("merge_sort_round_based", || {
        let mut m: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
        let r = m.install(&input);
        merge_sort(&mut m, r).unwrap();
        m.finish().unwrap()
    });

    let cfg = AemConfig::new(64, 16, 4).unwrap();
    let pi = PermKind::Random { seed: 2 }.generate(1 << 11);
    bench("lemma_4_3_full_chain", || {
        let (prog, _) = naive_atom_permutation(cfg, &pi).unwrap();
        verify_lemma_4_3(&prog.program, cfg).unwrap()
    });
}
