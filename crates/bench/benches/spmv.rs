//! Wall-clock throughput of the SpMxV algorithms.

use aem_bench::timing::bench_with_elems;
use aem_core::spmv::{spmv_direct, spmv_sorted, U64Ring};
use aem_machine::AemConfig;
use aem_workloads::{Conformation, MatrixShape};

fn main() {
    let n = 1024usize;
    for &delta in &[2usize, 8, 32] {
        let conf = Conformation::generate(MatrixShape::Random { seed: 1 }, n, delta);
        let a: Vec<U64Ring> = (0..conf.nnz()).map(|i| U64Ring(i as u64)).collect();
        let x: Vec<U64Ring> = (0..n).map(|j| U64Ring(j as u64)).collect();
        let cfg = AemConfig::new(64, 8, 8).unwrap();
        bench_with_elems(
            &format!("spmv/direct/delta{delta}"),
            conf.nnz() as u64,
            || spmv_direct(cfg, &conf, &a, &x).unwrap(),
        );
        bench_with_elems(
            &format!("spmv/sorted/delta{delta}"),
            conf.nnz() as u64,
            || spmv_sorted(cfg, &conf, &a, &x).unwrap(),
        );
    }
}
