//! Wall-clock throughput of the SpMxV algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use aem_core::spmv::{spmv_direct, spmv_sorted, U64Ring};
use aem_machine::AemConfig;
use aem_workloads::{Conformation, MatrixShape};

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmv");
    let n = 1024usize;
    for &delta in &[2usize, 8, 32] {
        let conf = Conformation::generate(MatrixShape::Random { seed: 1 }, n, delta);
        let a: Vec<U64Ring> = (0..conf.nnz()).map(|i| U64Ring(i as u64)).collect();
        let x: Vec<U64Ring> = (0..n).map(|j| U64Ring(j as u64)).collect();
        g.throughput(Throughput::Elements(conf.nnz() as u64));
        g.bench_with_input(BenchmarkId::new("direct", delta), &delta, |b, _| {
            let cfg = AemConfig::new(64, 8, 8).unwrap();
            b.iter(|| spmv_direct(cfg, &conf, &a, &x).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("sorted", delta), &delta, |b, _| {
            let cfg = AemConfig::new(64, 8, 8).unwrap();
            b.iter(|| spmv_sorted(cfg, &conf, &a, &x).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
