//! Markdown table assembly and printing for the experiment binaries.

/// One experiment table/figure, printable as GitHub-flavoured markdown.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (e.g. "T5", "F1").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (observations, pass/fail).
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&dashes));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {}\n", n));
        }
        out.push('\n');
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }

    /// Render as CSV (one file's worth: header row then data rows; the id
    /// and title go into a `#`-prefixed comment line).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = format!("# {} — {}\n", self.id, self.title);
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float ratio compactly.
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        return "—".to_string();
    }
    format!("{:.2}", num / den)
}

/// Format a float compactly.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e6 || x.abs() < 1e-2 {
        format!("{:.3e}", x)
    } else {
        format!("{:.1}", x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("T0", "demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("note here");
        let md = t.to_markdown();
        assert!(md.contains("### T0 — demo"));
        assert!(md.contains("| a | bbbb |"));
        assert!(md.contains("> note here"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("T0", "demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new("T0", "demo", &["a", "b"]);
        t.row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("# T0 — demo\n"));
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(ratio(1.0, 0.0), "—");
        assert_eq!(ratio(3.0, 2.0), "1.50");
    }
}
