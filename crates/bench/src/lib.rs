//! # `aem-bench` — the experiment harness
//!
//! The paper proves bounds instead of plotting measurements, so the
//! "tables and figures" this harness regenerates are the quantitative
//! claims of its theorems (see DESIGN.md §3 for the experiment index):
//!
//! | Id | Claim | Module |
//! |----|-------|--------|
//! | T1/F1 | Thm 3.2 sorting cost; AEM vs EM separation | [`exp::sorting`] |
//! | T2 | Thm 3.2 merging cost | [`exp::merge`] |
//! | T3 | Lemma 4.1 round-based overhead | [`exp::rounds`] |
//! | T4 | Lemma 4.3 flash simulation volume | [`exp::flash`] |
//! | T5/F2 | Thm 4.5 permuting bound & branch crossover | [`exp::permute`] |
//! | T6/T7 | §5 SpMxV upper bounds & Thm 5.1 | [`exp::spmv`] |
//! | F3 | ARAM ≡ (M,1,ω)-AEM | [`exp::model`] |
//!
//! Every experiment is deterministic (seeded workloads, exact I/O
//! metering), so the emitted tables are reproducible bit-for-bit. Each
//! also has a binary (`cargo run --release --bin exp_*`) and `run_all`
//! regenerates the data behind `EXPERIMENTS.md`.
//!
//! Experiments are declared as [`sweep::Sweep`]s — grids of independent,
//! cached, keyed cells — and executed either serially
//! ([`sweep::Sweep::run_serial`]) or on the parallel resumable engine
//! ([`sweep::run`]); `run_all --jobs N --cache FILE` drives the latter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costgate;
pub mod exp;
pub mod perfgate;
pub mod sweep;
pub mod table;
pub mod timing;

pub use table::Table;

/// Parse `--backend NAME` / `--backend=NAME` from a CLI argument list
/// (shared by the `exp_*` binaries and `run_all`). Defaults to the vec
/// backend; exits with a diagnostic on an unknown name.
pub fn backend_from_args(args: &[String]) -> aem_machine::Backend {
    let mut i = 0;
    while i < args.len() {
        let name = if let Some(v) = args[i].strip_prefix("--backend=") {
            Some(v.to_string())
        } else if args[i] == "--backend" {
            i += 1;
            args.get(i).cloned()
        } else {
            None
        };
        if let Some(name) = name {
            match aem_machine::Backend::from_name(&name) {
                Ok(b) => return b,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    aem_machine::Backend::Vec
}

/// Run `f` over `items` on up to `threads` OS threads, preserving input
/// order. The simulators are single-threaded by design; sweeps are
/// embarrassingly parallel at the (machine, workload) granularity, which
/// is where an HPC harness should spend its cores.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let n = items.len();
    if n <= 1 || threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(work);
    let out = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let item = { queue.lock().expect("queue").pop() };
                match item {
                    Some((i, t)) => {
                        let r = f(t);
                        out.lock().expect("slots")[i] = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert!(parallel_map(Vec::<i32>::new(), |x| x).is_empty());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }
}
