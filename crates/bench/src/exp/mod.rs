//! Experiment implementations — one module per table/figure family.
//!
//! Each module exposes `tables(quick: bool) -> Vec<Table>`; `quick` shrinks
//! the sweeps for use inside the test suite, the binaries run the full
//! sizes. All workloads are seeded, all costs exact: tables regenerate
//! bit-for-bit.

pub mod flash;
pub mod merge;
pub mod model;
pub mod optimality;
pub mod permute;
pub mod rounds;
pub mod sorting;
pub mod spmv;

use crate::table::Table;

/// Every experiment in DESIGN.md §3 order.
pub fn all_tables(quick: bool) -> Vec<Table> {
    let mut out = Vec::new();
    out.extend(sorting::tables(quick));
    out.extend(merge::tables(quick));
    out.extend(rounds::tables(quick));
    out.extend(flash::tables(quick));
    out.extend(permute::tables(quick));
    out.extend(spmv::tables(quick));
    out.extend(model::tables(quick));
    out.extend(optimality::tables(quick));
    out
}
