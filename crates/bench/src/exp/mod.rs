//! Experiment implementations — one module per table/figure family.
//!
//! Each module exposes two entry points:
//!
//! * `sweeps(quick: bool) -> Vec<Sweep>` — the declarative form consumed
//!   by the parallel resumable engine ([`crate::sweep::run`]);
//! * `tables(quick: bool) -> Vec<Table>` — the serial convenience wrapper
//!   (`sweeps(quick)` executed via [`crate::sweep::Sweep::run_serial`])
//!   used by the per-experiment binaries and the test suites.
//!
//! `quick` shrinks the grids for use inside the test suite; the binaries
//! run the full sizes. All workloads are seeded, all costs exact: tables
//! regenerate bit-for-bit regardless of worker count or cache state.

pub mod flash;
pub mod merge;
pub mod model;
pub mod optimality;
pub mod permute;
pub mod rounds;
pub mod sorting;
pub mod spmv;

use crate::sweep::Sweep;
use crate::table::Table;

/// Every experiment in DESIGN.md §3 order, in declarative sweep form.
pub fn all_sweeps(quick: bool) -> Vec<Sweep> {
    let mut out = Vec::new();
    out.extend(sorting::sweeps(quick));
    out.extend(merge::sweeps(quick));
    out.extend(rounds::sweeps(quick));
    out.extend(flash::sweeps(quick));
    out.extend(permute::sweeps(quick));
    out.extend(spmv::sweeps(quick));
    out.extend(model::sweeps(quick));
    out.extend(optimality::sweeps(quick));
    out
}

/// Every experiment in DESIGN.md §3 order, executed serially.
pub fn all_tables(quick: bool) -> Vec<Table> {
    all_sweeps(quick).iter().map(Sweep::run_serial).collect()
}
