//! Experiment implementations — one module per table/figure family.
//!
//! Each module exposes two entry points:
//!
//! * `sweeps(quick: bool, backend: Backend) -> Vec<Sweep>` — the
//!   declarative form consumed by the parallel resumable engine
//!   ([`crate::sweep::run`]);
//! * `tables(quick: bool, backend: Backend) -> Vec<Table>` — the serial
//!   convenience wrapper (`sweeps(quick, backend)` executed via
//!   [`crate::sweep::Sweep::run_serial`]) used by the per-experiment
//!   binaries and the test suites.
//!
//! `quick` shrinks the grids for use inside the test suite; the binaries
//! run the full sizes. All workloads are seeded, all costs exact: tables
//! regenerate bit-for-bit regardless of worker count or cache state.
//!
//! The `backend` axis selects the [`aem_machine::BlockStore`] the machine
//! runs on. Cost metering is backend-independent, so every sweep a backend
//! supports renders byte-identically across backends — CI enforces this
//! for `vec` vs `ghost`. Not every sweep runs on every backend:
//!
//! * `vec` / `arena` carry payloads and run **everything**;
//! * `ghost` carries no payload, so only *payload-oblivious* workloads are
//!   sound on it (see `aem_machine::store`): the naive permuter, the tiled
//!   transpose, and machine-free analyses. Merge-based sorting reads keys
//!   and aux pointers to steer control flow and is excluded; ghost instead
//!   adds the frontier sweep `T5X` at sizes the copying backends cannot
//!   reach. One PQ grid crosses the divide: `T9G` runs the buffered
//!   priority queue on **constant keys**, where every comparison resolves
//!   by deterministic positional tie-breaks, so it is payload-oblivious
//!   and byte-compares across `vec` and `ghost`.

pub mod bfs;
pub mod flash;
pub mod matmul;
pub mod merge;
pub mod model;
pub mod optimality;
pub mod permute;
pub mod pq;
pub mod rounds;
pub mod scan;
pub mod search;
pub mod sorting;
pub mod spmv;

use aem_machine::Backend;

use crate::sweep::Sweep;
use crate::table::Table;

/// Every experiment in DESIGN.md §3 order that `backend` supports, in
/// declarative sweep form.
pub fn all_sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    let mut out = Vec::new();
    out.extend(sorting::sweeps(quick, backend));
    out.extend(pq::sweeps(quick, backend));
    out.extend(merge::sweeps(quick, backend));
    out.extend(rounds::sweeps(quick, backend));
    out.extend(flash::sweeps(quick, backend));
    out.extend(permute::sweeps(quick, backend));
    out.extend(spmv::sweeps(quick, backend));
    out.extend(search::sweeps(quick, backend));
    out.extend(scan::sweeps(quick, backend));
    out.extend(matmul::sweeps(quick, backend));
    out.extend(bfs::sweeps(quick, backend));
    out.extend(model::sweeps(quick, backend));
    out.extend(optimality::sweeps(quick, backend));
    out
}

/// Every experiment in DESIGN.md §3 order, executed serially.
pub fn all_tables(quick: bool, backend: Backend) -> Vec<Table> {
    all_sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_sweep_sets_are_consistent() {
        let vec_ids: Vec<String> = all_sweeps(true, Backend::Vec)
            .iter()
            .map(|s| s.id.clone())
            .collect();
        let arena_ids: Vec<String> = all_sweeps(true, Backend::Arena)
            .iter()
            .map(|s| s.id.clone())
            .collect();
        // The payload-carrying backends run the identical experiment set.
        assert_eq!(vec_ids, arena_ids);
        // The trace backend records vec-semantics runs, so it gets exactly
        // the vec sweep set.
        let trace_ids: Vec<String> = all_sweeps(true, Backend::Trace)
            .iter()
            .map(|s| s.id.clone())
            .collect();
        assert_eq!(vec_ids, trace_ids);
        // Ghost runs a strict subset of the shared grid plus its exclusive
        // frontier sweep T5X.
        for s in all_sweeps(true, Backend::Ghost) {
            if s.id == "T5X" {
                assert!(!vec_ids.contains(&s.id), "T5X is ghost-only");
            } else {
                assert!(vec_ids.contains(&s.id), "{} missing from vec set", s.id);
            }
        }
    }
}
