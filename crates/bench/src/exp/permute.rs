//! T5 / F2 — Theorem 4.5: the permuting lower bound against measured
//! algorithm costs, and the `min{N, ωn log_{ωm} n}` branch crossover.

use aem_core::bounds::permute as pbounds;
use aem_core::permute::{choose_strategy, permute_auto, PermuteStrategy};
use aem_machine::AemConfig;
use aem_workloads::{perm, PermKind};

use crate::parallel_map;
use crate::table::{f, Table};

/// All permuting tables.
pub fn tables(quick: bool) -> Vec<Table> {
    vec![t5(quick), f2(quick), t8(quick), f4_transpose(quick)]
}

/// F4 (extension): structured vs general permuting. Matrix transposition
/// is a permutation, so Theorem 4.5 applies — but its structure admits a
/// single-pass tiled algorithm whenever a `B × B` tile fits in `M`,
/// recovering the `log` factor the general bound charges.
pub fn f4_transpose(quick: bool) -> Table {
    use aem_core::permute::{permute_by_sort, permute_naive, transpose_auto};
    let side = if quick { 32usize } else { 128 };
    let n = side * side;
    let omegas: Vec<u64> = vec![1, 8, 64];
    let mut t = Table::new(
        "F4",
        &format!("Extension — {side}x{side} transpose: tiled vs general permuting, M=B²+2B"),
        &[
            "ω",
            "Q tiled",
            "Q naive permute",
            "Q sort permute",
            "tiled speedup",
            "counting LB",
        ],
    );
    let rows = parallel_map(omegas, |omega| {
        let b = 8usize;
        let cfg = AemConfig::new(b * b + 2 * b, b, omega).unwrap();
        let values: Vec<u64> = (0..n as u64).collect();
        let (tiled, used_tiled) = transpose_auto(cfg, &values, side, side).expect("transpose");
        assert!(used_tiled);
        let pi = PermKind::Transpose { rows: side }.generate(n);
        let naive = permute_naive(cfg, &values, &pi).expect("naive");
        assert_eq!(tiled.output, naive.output);
        let sort = permute_by_sort(cfg, &values, &pi).expect("sort");
        let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
        (omega, tiled.q(), naive.q(), sort.q(), lb)
    });
    let mut ok = true;
    for (omega, tq, nq, sq, lb) in rows {
        let best_general = nq.min(sq);
        ok &= tq <= best_general && tq as f64 >= lb;
        t.row(vec![
            omega.to_string(),
            tq.to_string(),
            nq.to_string(),
            sq.to_string(),
            f(best_general as f64 / tq as f64),
            f(lb),
        ]);
    }
    t.note(format!(
        "the tiled transpose beats both general permuters yet never beats the counting \
         bound (structure pays for the log factor, not for the bound): {}",
        if ok { "PASS" } else { "FAIL" }
    ));
    t
}

/// T8 (extension): exhaustive optimal-program search on tiny instances —
/// the sandwich `counting bound ≤ OPTIMAL ≤ best algorithm`, with the
/// middle quantity exact (Dijkstra over the full move-semantics state
/// space).
pub fn t8(quick: bool) -> Table {
    use aem_core::bounds::exhaustive::optimal_permutation_cost;
    let cfg = AemConfig::new(4, 2, 4).unwrap();
    let n = if quick { 6 } else { 8 };
    let mut t = Table::new(
        "T8",
        &format!("Extension — provably optimal program cost, N={n}, {cfg}"),
        &[
            "permutation",
            "counting LB",
            "OPTIMAL (exhaustive)",
            "Q naive",
            "Q by-sort",
            "opt/naive",
        ],
    );
    let rotation: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
    let cases: Vec<(String, Vec<usize>)> = vec![
        ("identity".into(), PermKind::Identity.generate(n)),
        ("reverse".into(), PermKind::Reverse.generate(n)),
        ("rotate-by-1".into(), rotation),
        ("random(1)".into(), PermKind::Random { seed: 1 }.generate(n)),
        ("random(2)".into(), PermKind::Random { seed: 2 }.generate(n)),
        ("random(3)".into(), PermKind::Random { seed: 3 }.generate(n)),
    ];
    let rows = parallel_map(cases, |(name, pi)| {
        let opt = optimal_permutation_cost(&pi, cfg, 2).expect("searchable size");
        let values: Vec<u64> = (0..n as u64).collect();
        let naive = aem_core::permute::permute_naive(cfg, &values, &pi)
            .expect("naive")
            .q();
        let sort = aem_core::permute::permute_by_sort(cfg, &values, &pi)
            .expect("sort")
            .q();
        let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
        (name, lb, opt, naive, sort)
    });
    let mut ok = true;
    for (name, lb, opt, naive, sort) in rows {
        ok &= opt as f64 >= lb && opt <= naive.min(sort);
        t.row(vec![
            name,
            f(lb),
            opt.to_string(),
            naive.to_string(),
            sort.to_string(),
            if naive > 0 {
                f(opt as f64 / naive as f64)
            } else {
                "—".into()
            },
        ]);
    }
    t.note(format!(
        "counting bound ≤ exhaustively optimal program ≤ every algorithm, on every instance: {}",
        if ok { "PASS" } else { "FAIL" }
    ));
    t
}

/// T5: measured best-of-strategies cost vs the exact counting bound.
pub fn t5(quick: bool) -> Table {
    let (mem, b) = (64usize, 8usize);
    let sizes: Vec<usize> = if quick {
        vec![1 << 11, 1 << 13]
    } else {
        vec![1 << 12, 1 << 15, 1 << 18]
    };
    let omegas: Vec<u64> = vec![1, 4, 16, 64, 256];
    let mut t = Table::new(
        "T5",
        &format!("Thm 4.5 — permuting: measured cost vs counting lower bound, M={mem}, B={b}"),
        &[
            "N",
            "ω",
            "strategy",
            "Q measured",
            "counting LB",
            "asymptotic min{N,ωn·log}",
            "measured/LB",
        ],
    );
    let grid: Vec<(usize, u64)> = sizes
        .iter()
        .flat_map(|&n| omegas.iter().map(move |&w| (n, w)))
        .collect();
    let rows = parallel_map(grid, |(n, omega)| {
        let cfg = AemConfig::new(mem, b, omega).unwrap();
        let pi = PermKind::Random { seed: 50 }.generate(n);
        let values: Vec<u64> = (0..n as u64).collect();
        let (run, strategy) = permute_auto(cfg, &values, &pi).expect("permute");
        assert_eq!(run.output, perm::apply(&pi, &values), "must realize pi");
        let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
        let asym = pbounds::permute_lower_bound_asymptotic(n as u64, cfg);
        (n, omega, strategy, run.q(), lb, asym)
    });
    let mut ok = true;
    for (n, omega, strategy, q, lb, asym) in rows {
        // The fundamental soundness check of the whole reproduction:
        // no program may beat the lower bound.
        ok &= (q as f64) >= lb;
        t.row(vec![
            n.to_string(),
            omega.to_string(),
            format!("{strategy:?}"),
            q.to_string(),
            f(lb),
            f(asym),
            if lb > 0.0 {
                f(q as f64 / lb)
            } else {
                "—".into()
            },
        ]);
    }
    t.note(format!(
        "no measured program beats the Theorem 4.5 counting bound: {}",
        if ok { "PASS" } else { "FAIL" }
    ));
    t
}

/// F2: the `min{·,·}` branch crossover across the `(ω, B)` grid — the
/// paper's case split `B ≷ c·ω·log N / log(3eωm)` — against which strategy
/// *measures* cheaper.
pub fn f2(quick: bool) -> Table {
    let n = if quick { 1 << 12 } else { 1 << 15 };
    let omegas: Vec<u64> = vec![1, 4, 16, 64, 256, 1024];
    let blocks: Vec<usize> = vec![4, 16, 64];
    let mut t = Table::new(
        "F2",
        &format!("Thm 4.5 — active bound branch and measured winner, N={n}, M=8B"),
        &[
            "B",
            "ω",
            "bound branch",
            "predicted winner",
            "measured winner",
            "agree",
        ],
    );
    let grid: Vec<(usize, u64)> = blocks
        .iter()
        .flat_map(|&b| omegas.iter().map(move |&w| (b, w)))
        .collect();
    let rows = parallel_map(grid, |(b, omega)| {
        let cfg = AemConfig::new(8 * b, b, omega).unwrap();
        let pi = PermKind::Random { seed: 51 }.generate(n);
        let values: Vec<u64> = (0..n as u64).collect();
        let branch = pbounds::active_branch(n as u64, cfg);
        let predicted = choose_strategy(cfg, n);
        let naive = aem_core::permute::permute_naive(cfg, &values, &pi).expect("naive");
        let sort = aem_core::permute::permute_by_sort(cfg, &values, &pi).expect("sort");
        let measured = if naive.q() <= sort.q() {
            PermuteStrategy::Naive
        } else {
            PermuteStrategy::BySort
        };
        (b, omega, branch, predicted, measured)
    });
    let mut agreements = 0usize;
    let total = rows.len();
    for (b, omega, branch, predicted, measured) in rows {
        let agree = predicted == measured;
        agreements += agree as usize;
        t.row(vec![
            b.to_string(),
            omega.to_string(),
            format!("{branch:?}"),
            format!("{predicted:?}"),
            format!("{measured:?}"),
            agree.to_string(),
        ]);
    }
    t.note(format!(
        "predictor agrees with measurement on {agreements}/{total} grid points \
         (disagreements cluster at the crossover, where both strategies cost the same \
         within constants): {}",
        if agreements * 3 >= total * 2 {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permute_tables_pass() {
        for t in tables(true) {
            assert!(!t.rows.is_empty());
            for n in &t.notes {
                assert!(!n.contains("FAIL"), "{}: {}", t.id, n);
            }
        }
    }
}
