//! T5 / F2 — Theorem 4.5: the permuting lower bound against measured
//! algorithm costs, and the `min{N, ωn log_{ωm} n}` branch crossover.
//!
//! The naive permuter is *payload-oblivious* — its I/O schedule depends
//! only on `π`, which the program knows — so it is the workload that runs
//! on every storage backend including the cost-only ghost store: T5N runs
//! it on a grid shared by all three backend sets (the cross-backend
//! byte-compare target), and T5X is the ghost-only frontier sweep at sizes
//! the copying backends' quick grids do not reach. Sort-based permuting
//! steers its merge on destination tags read back from external memory, so
//! every sweep that touches it is restricted to the payload-carrying
//! backends.

use aem_core::bounds::permute as pbounds;
use aem_core::permute::{
    choose_strategy, permute_by_sort_on, permute_naive_on, transpose_tiled, DestTagged,
    PermuteStrategy,
};
use aem_machine::{
    with_backend_machine, with_payload_machine, AemAccess, AemConfig, Backend, Cost,
};
use aem_workloads::{perm, PermKind};

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::{f, Table};

/// All permuting sweeps `backend` supports. The payload-carrying backends
/// run everything; ghost runs the backend-neutral T8, the shared
/// payload-oblivious T5N, and its exclusive frontier sweep T5X.
pub fn sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    if backend.carries_payload() {
        vec![
            t5(quick, backend),
            f2(quick, backend),
            t8(quick),
            f4_transpose(quick, backend),
            t5n(quick, backend),
        ]
    } else {
        vec![t8(quick), t5n(quick, backend), t5x(quick)]
    }
}

/// All permuting tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// Run the naive permuter on `backend`. Sound on every backend (the I/O
/// schedule never depends on payloads); on ghost the returned output holds
/// placeholder values and only the cost is meaningful.
pub(crate) fn run_naive(
    backend: Backend,
    cfg: AemConfig,
    values: &[u64],
    pi: &[usize],
) -> (Vec<u64>, Cost) {
    with_backend_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let input = m.install(values);
        let out = permute_naive_on(&mut m, input, pi).expect("naive");
        (m.inspect(out), m.cost())
    })
}

/// Run the sort-based permuter on `backend` (payload-carrying only: the
/// merge steers on the destination tags it reads back).
pub(crate) fn run_by_sort(
    backend: Backend,
    cfg: AemConfig,
    values: &[u64],
    pi: &[usize],
) -> (Vec<u64>, Cost) {
    let tagged: Vec<DestTagged<u64>> = values
        .iter()
        .zip(pi.iter())
        .map(|(v, &d)| DestTagged {
            dest: d as u64,
            value: *v,
        })
        .collect();
    with_payload_machine!(backend, DestTagged<u64>, |M| {
        let mut m = M::new(cfg);
        let input = m.install(&tagged);
        let out = permute_by_sort_on(&mut m, input).expect("sort");
        (
            m.inspect(out).into_iter().map(|t| t.value).collect(),
            m.cost(),
        )
    }, ghost => unreachable!("sort-based permuting reads tags; not payload-oblivious"))
}

/// Run the predicted-cheaper strategy on `backend` — the backend-dispatched
/// counterpart of [`aem_core::permute::permute_auto`].
pub(crate) fn run_auto(
    backend: Backend,
    cfg: AemConfig,
    values: &[u64],
    pi: &[usize],
) -> (Vec<u64>, Cost, PermuteStrategy) {
    let strategy = choose_strategy(cfg, values.len());
    let (out, cost) = match strategy {
        PermuteStrategy::Naive => run_naive(backend, cfg, values, pi),
        PermuteStrategy::BySort => run_by_sort(backend, cfg, values, pi),
    };
    (out, cost, strategy)
}

/// Run the tiled transpose on `backend`. Payload-oblivious (every index is
/// derived from tile coordinates), so sound on every backend.
fn run_tiled(backend: Backend, cfg: AemConfig, values: &[u64], side: usize) -> (Vec<u64>, Cost) {
    with_backend_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let input = m.install(values);
        let out = transpose_tiled(&mut m, input, side, side).expect("tiled");
        (m.inspect(out), m.cost())
    })
}

/// F4 (extension): structured vs general permuting. Matrix transposition
/// is a permutation, so Theorem 4.5 applies — but its structure admits a
/// single-pass tiled algorithm whenever a `B × B` tile fits in `M`,
/// recovering the `log` factor the general bound charges.
pub fn f4_transpose(quick: bool, backend: Backend) -> Sweep {
    let side = if quick { 32usize } else { 128 };
    let n = side * side;
    let omegas: Vec<u64> = vec![1, 8, 64];
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let b = 8usize;
                let cfg = AemConfig::new(b * b + 2 * b, b, omega).unwrap();
                let values: Vec<u64> = (0..n as u64).collect();
                let (tiled_out, tiled) = run_tiled(backend, cfg, &values, side);
                let pi = PermKind::Transpose { rows: side }.generate(n);
                let (naive_out, naive) = run_naive(backend, cfg, &values, &pi);
                assert_eq!(tiled_out, naive_out);
                let (_, sort) = run_by_sort(backend, cfg, &values, &pi);
                let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
                CellOut::new()
                    .with_u64("omega", omega)
                    .with_u64("q_tiled", tiled.q(omega))
                    .with_u64("q_naive", naive.q(omega))
                    .with_u64("q_sort", sort.q(omega))
                    .with_f64("lb", lb)
            })
        })
        .collect();
    Sweep::new("F4", cells, move |outs| {
        let mut t = Table::new(
            "F4",
            &format!("Extension — {side}x{side} transpose: tiled vs general permuting, M=B²+2B"),
            &[
                "ω",
                "Q tiled",
                "Q naive permute",
                "Q sort permute",
                "tiled speedup",
                "counting LB",
            ],
        );
        let mut ok = true;
        for o in outs {
            let (tq, nq, sq) = (o.u64("q_tiled"), o.u64("q_naive"), o.u64("q_sort"));
            let lb = o.f64("lb");
            let best_general = nq.min(sq);
            ok &= tq <= best_general && tq as f64 >= lb;
            t.row(vec![
                o.u64("omega").to_string(),
                tq.to_string(),
                nq.to_string(),
                sq.to_string(),
                f(best_general as f64 / tq as f64),
                f(lb),
            ]);
        }
        t.note(format!(
            "the tiled transpose beats both general permuters yet never beats the counting \
             bound (structure pays for the log factor, not for the bound): {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// T8 (extension): exhaustive optimal-program search on tiny instances —
/// the sandwich `counting bound ≤ OPTIMAL ≤ best algorithm`, with the
/// middle quantity exact (Dijkstra over the full move-semantics state
/// space). The search and the baseline columns are closed computations on
/// the reference machine, so this sweep is backend-neutral and appears in
/// every backend's set.
pub fn t8(quick: bool) -> Sweep {
    use aem_core::bounds::exhaustive::optimal_permutation_cost;
    let cfg = AemConfig::new(4, 2, 4).unwrap();
    let n = if quick { 6 } else { 8 };
    let rotation: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
    let cases: Vec<(String, Vec<usize>)> = vec![
        ("identity".into(), PermKind::Identity.generate(n)),
        ("reverse".into(), PermKind::Reverse.generate(n)),
        ("rotate-by-1".into(), rotation),
        ("random(1)".into(), PermKind::Random { seed: 1 }.generate(n)),
        ("random(2)".into(), PermKind::Random { seed: 2 }.generate(n)),
        ("random(3)".into(), PermKind::Random { seed: 3 }.generate(n)),
    ];
    let cells = cases
        .into_iter()
        .map(|(name, pi)| {
            Cell::new(name.clone(), move || {
                let opt = optimal_permutation_cost(&pi, cfg, 2).expect("searchable size");
                let values: Vec<u64> = (0..n as u64).collect();
                let naive = aem_core::permute::permute_naive(cfg, &values, &pi)
                    .expect("naive")
                    .q();
                let sort = aem_core::permute::permute_by_sort(cfg, &values, &pi)
                    .expect("sort")
                    .q();
                let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
                CellOut::new()
                    .with_str("name", name.clone())
                    .with_f64("lb", lb)
                    .with_u64("opt", opt)
                    .with_u64("naive", naive)
                    .with_u64("sort", sort)
            })
        })
        .collect();
    Sweep::new("T8", cells, move |outs| {
        let mut t = Table::new(
            "T8",
            &format!("Extension — provably optimal program cost, N={n}, {cfg}"),
            &[
                "permutation",
                "counting LB",
                "OPTIMAL (exhaustive)",
                "Q naive",
                "Q by-sort",
                "opt/naive",
            ],
        );
        let mut ok = true;
        for o in outs {
            let (opt, naive, sort) = (o.u64("opt"), o.u64("naive"), o.u64("sort"));
            let lb = o.f64("lb");
            ok &= opt as f64 >= lb && opt <= naive.min(sort);
            t.row(vec![
                o.str("name").to_string(),
                f(lb),
                opt.to_string(),
                naive.to_string(),
                sort.to_string(),
                if naive > 0 {
                    f(opt as f64 / naive as f64)
                } else {
                    "—".into()
                },
            ]);
        }
        t.note(format!(
            "counting bound ≤ exhaustively optimal program ≤ every algorithm, on every instance: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// T5: measured best-of-strategies cost vs the exact counting bound.
pub fn t5(quick: bool, backend: Backend) -> Sweep {
    let (mem, b) = (64usize, 8usize);
    let sizes: Vec<usize> = if quick {
        vec![1 << 11, 1 << 13]
    } else {
        vec![1 << 12, 1 << 15, 1 << 18]
    };
    let omegas: Vec<u64> = vec![1, 4, 16, 64, 256];
    let grid: Vec<(usize, u64)> = sizes
        .iter()
        .flat_map(|&n| omegas.iter().map(move |&w| (n, w)))
        .collect();
    let cells = grid
        .iter()
        .map(|&(n, omega)| {
            Cell::new(format!("n={n},omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let pi = PermKind::Random { seed: 50 }.generate(n);
                let values: Vec<u64> = (0..n as u64).collect();
                let (out, cost, strategy) = run_auto(backend, cfg, &values, &pi);
                assert_eq!(out, perm::apply(&pi, &values), "must realize pi");
                let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
                let asym = pbounds::permute_lower_bound_asymptotic(n as u64, cfg);
                CellOut::new()
                    .with_u64("n", n as u64)
                    .with_u64("omega", omega)
                    .with_str("strategy", format!("{strategy:?}"))
                    .with_u64("q", cost.q(omega))
                    .with_f64("lb", lb)
                    .with_f64("asym", asym)
            })
        })
        .collect();
    Sweep::new("T5", cells, move |outs| {
        let mut t = Table::new(
            "T5",
            &format!("Thm 4.5 — permuting: measured cost vs counting lower bound, M={mem}, B={b}"),
            &[
                "N",
                "ω",
                "strategy",
                "Q measured",
                "counting LB",
                "asymptotic min{N,ωn·log}",
                "measured/LB",
            ],
        );
        let mut ok = true;
        for o in outs {
            let q = o.u64("q");
            let lb = o.f64("lb");
            // The fundamental soundness check of the whole reproduction:
            // no program may beat the lower bound.
            ok &= (q as f64) >= lb;
            t.row(vec![
                o.u64("n").to_string(),
                o.u64("omega").to_string(),
                o.str("strategy").to_string(),
                q.to_string(),
                f(lb),
                f(o.f64("asym")),
                if lb > 0.0 {
                    f(q as f64 / lb)
                } else {
                    "—".into()
                },
            ]);
        }
        t.note(format!(
            "no measured program beats the Theorem 4.5 counting bound: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// T5N: the naive permuter on whichever backend is live — the
/// payload-oblivious sweep shared by all three backend sets with identical
/// grid, keys, and renderer, so a vec run and a ghost run of this table
/// must be byte-identical (CI compares them). Output correctness is
/// additionally asserted on the payload-carrying backends.
pub fn t5n(quick: bool, backend: Backend) -> Sweep {
    let (mem, b) = (64usize, 8usize);
    let sizes: Vec<usize> = if quick {
        vec![1 << 11, 1 << 13]
    } else {
        vec![1 << 14, 1 << 17]
    };
    let omegas: Vec<u64> = vec![1, 16, 256];
    let grid: Vec<(usize, u64)> = sizes
        .iter()
        .flat_map(|&n| omegas.iter().map(move |&w| (n, w)))
        .collect();
    let cells = grid
        .iter()
        .map(|&(n, omega)| {
            Cell::new(format!("n={n},omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let pi = PermKind::Random { seed: 52 }.generate(n);
                let values: Vec<u64> = (0..n as u64).collect();
                let (out, cost) = run_naive(backend, cfg, &values, &pi);
                if backend.carries_payload() {
                    assert_eq!(out, perm::apply(&pi, &values), "must realize pi");
                }
                let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
                CellOut::new()
                    .with_u64("n", n as u64)
                    .with_u64("omega", omega)
                    .with_u64("reads", cost.reads)
                    .with_u64("writes", cost.writes)
                    .with_f64("lb", lb)
            })
        })
        .collect();
    Sweep::new("T5N", cells, move |outs| {
        let mut t = Table::new(
            "T5N",
            &format!("Thm 4.5 — naive permuting (payload-oblivious), M={mem}, B={b}"),
            &[
                "N",
                "ω",
                "reads",
                "writes",
                "Q",
                "N + ωn (UB)",
                "counting LB",
            ],
        );
        let mut ok = true;
        for o in outs {
            let (n, omega) = (o.u64("n"), o.u64("omega"));
            let cfg = AemConfig::new(mem, b, omega).unwrap();
            let c = Cost::new(o.u64("reads"), o.u64("writes"));
            let q = c.q(omega);
            let ub = n + omega * cfg.blocks_for(n as usize) as u64;
            let lb = o.f64("lb");
            ok &= q <= ub && q as f64 >= lb;
            t.row(vec![
                n.to_string(),
                omega.to_string(),
                c.reads.to_string(),
                c.writes.to_string(),
                q.to_string(),
                ub.to_string(),
                f(lb),
            ]);
        }
        t.note(format!(
            "the naive permuter stays within its N + ωn upper bound and never beats the \
             Theorem 4.5 counting bound: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// T5X: the ghost-only frontier — the naive permuter at input sizes two
/// orders of magnitude beyond the copying backends' quick grids (the
/// cost-only store keeps block *occupancies*, not payloads, so memory
/// stays proportional to the block count, not to `N`). Quick mode already
/// runs `N = 2^19`, 64× the largest copying quick-grid permute size.
pub fn t5x(quick: bool) -> Sweep {
    let (mem, b) = (64usize, 8usize);
    let sizes: Vec<usize> = if quick {
        vec![1 << 19]
    } else {
        vec![1 << 19, 1 << 20, 1 << 21]
    };
    let omegas: Vec<u64> = vec![16, 256];
    let grid: Vec<(usize, u64)> = sizes
        .iter()
        .flat_map(|&n| omegas.iter().map(move |&w| (n, w)))
        .collect();
    let cells = grid
        .iter()
        .map(|&(n, omega)| {
            Cell::new(format!("n={n},omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let pi = PermKind::Random { seed: 53 }.generate(n);
                let values: Vec<u64> = (0..n as u64).collect();
                let (_, cost) = run_naive(Backend::Ghost, cfg, &values, &pi);
                let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
                CellOut::new()
                    .with_u64("n", n as u64)
                    .with_u64("omega", omega)
                    .with_u64("q", cost.q(omega))
                    .with_f64("lb", lb)
            })
        })
        .collect();
    Sweep::new("T5X", cells, move |outs| {
        let mut t = Table::new(
            "T5X",
            &format!("Thm 4.5 at scale — ghost-backend naive permuting, M={mem}, B={b}"),
            &["N", "ω", "Q measured", "counting LB", "measured/LB"],
        );
        let mut ok = true;
        for o in outs {
            let q = o.u64("q");
            let lb = o.f64("lb");
            ok &= q as f64 >= lb;
            t.row(vec![
                o.u64("n").to_string(),
                o.u64("omega").to_string(),
                q.to_string(),
                f(lb),
                if lb > 0.0 {
                    f(q as f64 / lb)
                } else {
                    "—".into()
                },
            ]);
        }
        t.note(format!(
            "the counting bound holds at N two orders of magnitude beyond the copying \
             backends' quick grids: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// F2: the `min{·,·}` branch crossover across the `(ω, B)` grid — the
/// paper's case split `B ≷ c·ω·log N / log(3eωm)` — against which strategy
/// *measures* cheaper.
pub fn f2(quick: bool, backend: Backend) -> Sweep {
    let n = if quick { 1 << 12 } else { 1 << 15 };
    let omegas: Vec<u64> = vec![1, 4, 16, 64, 256, 1024];
    let blocks: Vec<usize> = vec![4, 16, 64];
    let grid: Vec<(usize, u64)> = blocks
        .iter()
        .flat_map(|&b| omegas.iter().map(move |&w| (b, w)))
        .collect();
    let cells = grid
        .iter()
        .map(|&(b, omega)| {
            Cell::new(format!("b={b},omega={omega}"), move || {
                let cfg = AemConfig::new(8 * b, b, omega).unwrap();
                let pi = PermKind::Random { seed: 51 }.generate(n);
                let values: Vec<u64> = (0..n as u64).collect();
                let branch = pbounds::active_branch(n as u64, cfg);
                let predicted = choose_strategy(cfg, n);
                let (_, naive) = run_naive(backend, cfg, &values, &pi);
                let (_, sort) = run_by_sort(backend, cfg, &values, &pi);
                let measured = if naive.q(omega) <= sort.q(omega) {
                    PermuteStrategy::Naive
                } else {
                    PermuteStrategy::BySort
                };
                CellOut::new()
                    .with_u64("b", b as u64)
                    .with_u64("omega", omega)
                    .with_str("branch", format!("{branch:?}"))
                    .with_str("predicted", format!("{predicted:?}"))
                    .with_str("measured", format!("{measured:?}"))
            })
        })
        .collect();
    Sweep::new("F2", cells, move |outs| {
        let mut t = Table::new(
            "F2",
            &format!("Thm 4.5 — active bound branch and measured winner, N={n}, M=8B"),
            &[
                "B",
                "ω",
                "bound branch",
                "predicted winner",
                "measured winner",
                "agree",
            ],
        );
        let mut agreements = 0usize;
        let total = outs.len();
        for o in outs {
            let agree = o.str("predicted") == o.str("measured");
            agreements += agree as usize;
            t.row(vec![
                o.u64("b").to_string(),
                o.u64("omega").to_string(),
                o.str("branch").to_string(),
                o.str("predicted").to_string(),
                o.str("measured").to_string(),
                agree.to_string(),
            ]);
        }
        t.note(format!(
            "predictor agrees with measurement on {agreements}/{total} grid points \
             (disagreements cluster at the crossover, where both strategies cost the same \
             within constants): {}",
            if agreements * 3 >= total * 2 {
                "PASS"
            } else {
                "FAIL"
            }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permute_tables_pass() {
        for t in tables(true, Backend::Vec) {
            assert!(!t.rows.is_empty());
            for n in &t.notes {
                assert!(!n.contains("FAIL"), "{}: {}", t.id, n);
            }
        }
    }

    #[test]
    fn t5n_is_byte_identical_across_all_backends() {
        // The differential invariant the CI smoke enforces end-to-end,
        // checked here at table granularity: the ghost backend renders the
        // shared payload-oblivious sweep exactly as the copying backends.
        let vec_t = t5n(true, Backend::Vec).run_serial().to_markdown();
        let arena_t = t5n(true, Backend::Arena).run_serial().to_markdown();
        let ghost_t = t5n(true, Backend::Ghost).run_serial().to_markdown();
        assert_eq!(vec_t, arena_t);
        assert_eq!(vec_t, ghost_t);
        assert!(!vec_t.contains("FAIL"));
    }

    #[test]
    fn t5x_frontier_passes_on_ghost() {
        let t = t5x(true).run_serial();
        assert!(!t.rows.is_empty());
        for n in &t.notes {
            assert!(!n.contains("FAIL"), "{}", n);
        }
    }
}
