//! T4 — Lemma 4.3 / Corollary 4.4: the flash-model simulation, executed.
//!
//! The full chain per cell: run a permutation program on the
//! move-semantics atom machine (a §4.2-legal program), compile it to a
//! flash program (removal-time normalization + interval covering), replay
//! it on the enforcing flash machine, verify the realized layout, and
//! compare the measured I/O volume against the lemma's `2N + 2QB/ω`.
//! Two program families run per parameter point: the read-heavy naive
//! gather and the write-heavy two-pass scatter — the lemma must hold for
//! both, and their volumes bracket the interesting range.

use aem_core::bounds::flash as flash_bounds;
use aem_flash::driver::{naive_atom_permutation, two_pass_atom_permutation};
use aem_flash::verify_lemma_4_3;
use aem_machine::{AemConfig, Backend};
use aem_workloads::PermKind;

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::{f, Table};

/// All flash sweeps. These run on the move-semantics atom machine and the
/// flash replay machine — neither stores payloads through a
/// [`aem_machine::BlockStore`] — so the cells are backend-neutral and run
/// identically for every backend (including ghost).
pub fn sweeps(quick: bool, _backend: Backend) -> Vec<Sweep> {
    vec![t4(quick)]
}

/// All flash tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// T4: volume of the simulated programs vs the Lemma 4.3 bound, for two
/// program families of opposite read/write profiles.
pub fn t4(quick: bool) -> Sweep {
    let mem = 2048usize; // two-pass scatter needs N ≤ ~M²/B at the largest N below
    let b = 16usize;
    let sizes: Vec<usize> = if quick {
        vec![1 << 9, 1 << 11]
    } else {
        vec![1 << 10, 1 << 13, 1 << 16]
    };
    let omegas: Vec<u64> = vec![2, 4, 8]; // B > ω and ω | B, per the lemma
    let grid: Vec<(usize, u64, bool)> = sizes
        .iter()
        .flat_map(|&n| {
            omegas
                .iter()
                .flat_map(move |&w| [(n, w, false), (n, w, true)])
        })
        .collect();
    let cells = grid
        .iter()
        .map(|&(n, omega, two_pass)| {
            let kind = if two_pass { "two_pass" } else { "naive" };
            Cell::new(format!("n={n},omega={omega},{kind}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let pi = PermKind::Random { seed: 40 + omega }.generate(n);
                let (prog, _) = if two_pass {
                    two_pass_atom_permutation(cfg, &pi).expect("atom program")
                } else {
                    naive_atom_permutation(cfg, &pi).expect("atom program")
                };
                let realized = prog.realizes(&pi);
                let report = verify_lemma_4_3(&prog.program, cfg).expect("simulation");
                let cor44 = flash_bounds::flash_reduction_cost_bound(n as u64, cfg);
                CellOut::new()
                    .with_bool("two_pass", two_pass)
                    .with_u64("n", n as u64)
                    .with_u64("omega", omega)
                    .with_u64("aem_q", report.aem_q)
                    .with_u64("volume", report.flash_volume)
                    .with_u64("bound", report.volume_bound)
                    .with_bool("bound_holds", report.bound_holds())
                    .with_f64("cor44", cor44)
                    .with_bool("realized", realized)
            })
        })
        .collect();
    Sweep::new("T4", cells, move |outs| {
        let mut t = Table::new(
            "T4",
            &format!("Lemma 4.3 — flash simulation volume, M={mem}, B={b} (read block B/ω)"),
            &[
                "program",
                "N",
                "ω",
                "Q (AEM)",
                "volume",
                "bound 2N+2QB/ω",
                "vol/bound",
                "Cor 4.4 LB",
                "layout ok",
            ],
        );
        let mut ok = true;
        for o in outs {
            let realized = o.bool("realized");
            let cor44 = o.f64("cor44");
            ok &= o.bool("bound_holds") && realized;
            // Corollary 4.4 must also be a valid lower bound on the program.
            ok &= cor44 <= o.u64("aem_q") as f64;
            t.row(vec![
                if o.bool("two_pass") {
                    "two-pass scatter"
                } else {
                    "naive gather"
                }
                .to_string(),
                o.u64("n").to_string(),
                o.u64("omega").to_string(),
                o.u64("aem_q").to_string(),
                o.u64("volume").to_string(),
                o.u64("bound").to_string(),
                f(o.u64("volume") as f64 / o.u64("bound") as f64),
                f(cor44),
                realized.to_string(),
            ]);
        }
        t.note(format!(
            "both program families replay to the correct permutation within the volume bound, \
             and Corollary 4.4 never exceeds any measured program cost: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4_passes() {
        let t = t4(true).run_serial();
        assert_eq!(t.rows.len(), 12);
        for n in &t.notes {
            assert!(!n.contains("FAIL"), "{}", n);
        }
    }
}
