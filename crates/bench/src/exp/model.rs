//! F3 — §2's model observation: the `(M, ω)`-ARAM **is** the
//! `(M, 1, ω)`-AEM.
//!
//! The AEM machine at `B = 1` meters exactly the ARAM cost measure
//! (`Q = Q_r + ωQ_w` over single-element transfers), so every algorithm in
//! the workspace doubles as an ARAM algorithm. This table runs the sorting
//! and permuting stack at `B = 1` and reports costs against the ARAM-form
//! expressions (`log` base `ωM`, since `m = M` at `B = 1`).

use aem_core::sort::merge_sort;
use aem_machine::{with_payload_machine, AemAccess, AemConfig, Backend};
use aem_workloads::{KeyDist, PermKind};

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::{f, Table};

/// All model sweeps. F3 sorts keys and permutes through the auto
/// strategy (which may pick the tag-steered sort), so the ghost backend
/// runs none of them.
pub fn sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    if !backend.carries_payload() {
        return Vec::new();
    }
    vec![f3(quick, backend)]
}

/// All model tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// F3: ARAM specialization.
pub fn f3(quick: bool, backend: Backend) -> Sweep {
    let mem = 32usize;
    let n = if quick { 1 << 10 } else { 1 << 13 };
    let omegas: Vec<u64> = vec![1, 4, 16, 64];
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::aram(mem, omega).unwrap();
                assert_eq!(cfg.block, 1);
                let input = KeyDist::Uniform { seed: 70 }.generate(n);
                let q_sort = with_payload_machine!(backend, u64, |M| {
                    let mut m = M::new(cfg);
                    let r = m.install(&input);
                    merge_sort(&mut m, r).expect("sort");
                    m.cost().q(omega)
                }, ghost => unreachable!("F3 is not built for ghost"));

                let pi = PermKind::Random { seed: 71 }.generate(n);
                let values: Vec<u64> = (0..n as u64).collect();
                let (_, cost, strategy) = crate::exp::permute::run_auto(backend, cfg, &values, &pi);
                CellOut::new()
                    .with_u64("omega", omega)
                    .with_u64("q_sort", q_sort)
                    .with_str("strategy", format!("{strategy:?}"))
                    .with_u64("q_perm", cost.q(omega))
            })
        })
        .collect();
    Sweep::new("F3", cells, move |outs| {
        let mut t = Table::new(
            "F3",
            &format!("§2 — (M,ω)-ARAM ≡ (M,1,ω)-AEM: sorting and permuting at B=1, M={mem}, N={n}"),
            &[
                "ω",
                "Q sort",
                "Q sort / ωN⌈log_ωM N⌉",
                "permute strategy",
                "Q permute",
            ],
        );
        let mut ok = true;
        for o in outs {
            let omega = o.u64("omega");
            let cfg = AemConfig::aram(mem, omega).unwrap();
            let q_sort = o.u64("q_sort");
            let norm = q_sort as f64 / (omega as f64 * n as f64 * cfg.log_fan_in(n as f64).ceil());
            ok &= norm < 40.0;
            t.row(vec![
                omega.to_string(),
                q_sort.to_string(),
                f(norm),
                o.str("strategy").to_string(),
                o.u64("q_perm").to_string(),
            ]);
        }
        t.note(format!(
            "at B = 1 the machine reproduces the ARAM accounting (n = N, m = M): {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_passes() {
        let t = f3(true, Backend::Vec).run_serial();
        assert!(!t.rows.is_empty());
        for n in &t.notes {
            assert!(!n.contains("FAIL"), "{}", n);
        }
    }

    #[test]
    fn ghost_runs_no_model_sweeps() {
        assert!(sweeps(true, Backend::Ghost).is_empty());
    }
}
