//! T3 — Lemma 4.1: round-based execution costs only a constant factor.
//!
//! Every algorithm in the workspace is run twice — on the plain machine
//! and under the [`RoundBasedMachine`] wrapper (internal memory `2M`,
//! writes buffered per round, `M'` snapshot/restore charged at round
//! boundaries) — and the overhead `Q'/Q` is reported, along with the
//! round count. Each algorithm is one sweep cell, so the four
//! double-executions run in parallel under the engine.

use aem_core::permute::by_sort::DestTagged;
use aem_core::sort::{em_merge_sort, merge_sort};
use aem_machine::{
    AemAccess, AemConfig, ArenaStore, Backend, BlockStore, MachineCore, Region, RoundBasedMachine,
    VecStore,
};
use aem_workloads::{KeyDist, PermKind};

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::{ratio, Table};

/// All round-based sweeps. T3 compares sorted outputs between the plain
/// and round-based executions, so the ghost backend runs none of them.
pub fn sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    if !backend.carries_payload() {
        return Vec::new();
    }
    vec![t3(quick, backend)]
}

/// All round-based tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// An algorithm runnable on any machine flavour (the polymorphism
/// Lemma 4.1 needs: the *same* program, two execution disciplines).
trait Algo {
    fn name(&self) -> &'static str;
    fn run<A: AemAccess<u64>>(&self, machine: &mut A, input: Region) -> Region;
}

struct AemSort;
impl Algo for AemSort {
    fn name(&self) -> &'static str {
        "§3 AEM mergesort"
    }
    fn run<A: AemAccess<u64>>(&self, m: &mut A, r: Region) -> Region {
        merge_sort(m, r).expect("sort")
    }
}

struct EmSort;
impl Algo for EmSort {
    fn name(&self) -> &'static str {
        "EM mergesort"
    }
    fn run<A: AemAccess<u64>>(&self, m: &mut A, r: Region) -> Region {
        em_merge_sort(m, r).expect("sort")
    }
}

struct ScanCopy;
impl Algo for ScanCopy {
    fn name(&self) -> &'static str {
        "block scan-copy"
    }
    fn run<A: AemAccess<u64>>(&self, m: &mut A, r: Region) -> Region {
        let out = m.alloc_region(r.elems);
        for i in 0..r.blocks {
            let d = m.read_block(r.block(i)).expect("read");
            m.write_block(out.block(i), d).expect("write");
        }
        out
    }
}

/// Run an algorithm on both machines over one concrete store pair; return
/// (Q, Q', rounds, equal).
fn both_on<G, S, A>(cfg: AemConfig, input: &[u64], algo: &G) -> (u64, u64, u64, bool)
where
    G: Algo,
    S: BlockStore<u64>,
    A: BlockStore<u64>,
{
    let mut plain: MachineCore<u64, S, A> = MachineCore::new(cfg);
    let r = plain.install(input);
    let out_p = algo.run(&mut plain, r);
    let got_p = plain.inspect(out_p);
    let q = plain.cost().q(cfg.omega);

    let mut rb: RoundBasedMachine<u64, S, A> = RoundBasedMachine::new(cfg);
    let r = rb.install(input);
    let out_r = algo.run(&mut rb, r);
    let stats = rb.finish().expect("finish");
    let got_r = rb.inspect(out_r);
    (q, stats.cost.q(cfg.omega), stats.rounds, got_p == got_r)
}

/// [`both_on`] dispatched over the payload-carrying backends. The macro
/// dispatch cannot name the two coupled machine types here, so this is a
/// plain turbofish match.
fn both<G: Algo>(
    backend: Backend,
    cfg: AemConfig,
    input: &[u64],
    algo: &G,
) -> (u64, u64, u64, bool) {
    match backend {
        // The trace backend wraps vec-semantics storage, so the round
        // sweeps run it on the same store pair as vec.
        Backend::Vec | Backend::Trace => {
            both_on::<G, VecStore<u64>, VecStore<u64>>(cfg, input, algo)
        }
        Backend::Arena => both_on::<G, ArenaStore<u64>, ArenaStore<u64>>(cfg, input, algo),
        Backend::Ghost => unreachable!("round sweeps are not built for ghost"),
    }
}

/// Permuting by sorting runs on a (dest, value)-typed machine; it gets
/// its own cell body rather than the [`Algo`] trait.
fn both_permute_on<S, A>(cfg: AemConfig, input: &[u64], n: usize) -> (u64, u64, u64, bool)
where
    S: BlockStore<DestTagged<u64>>,
    A: BlockStore<u64>,
{
    let pi = PermKind::Random { seed: 31 }.generate(n);
    let tagged: Vec<DestTagged<u64>> = input
        .iter()
        .zip(pi.iter())
        .map(|(v, &d)| DestTagged {
            dest: d as u64,
            value: *v,
        })
        .collect();
    let mut plain: MachineCore<DestTagged<u64>, S, A> = MachineCore::new(cfg);
    let r = plain.install(&tagged);
    let out = merge_sort(&mut plain, r).expect("sort");
    let got_p: Vec<u64> = plain.inspect(out).into_iter().map(|t| t.value).collect();
    let q = plain.cost().q(cfg.omega);

    let mut rb: RoundBasedMachine<DestTagged<u64>, S, A> = RoundBasedMachine::new(cfg);
    let r = rb.install(&tagged);
    let out = merge_sort(&mut rb, r).expect("sort");
    let stats = rb.finish().expect("finish");
    let got_r: Vec<u64> = rb.inspect(out).into_iter().map(|t| t.value).collect();
    (q, stats.cost.q(cfg.omega), stats.rounds, got_p == got_r)
}

/// [`both_permute_on`] dispatched over the payload-carrying backends.
fn both_permute(
    backend: Backend,
    cfg: AemConfig,
    input: &[u64],
    n: usize,
) -> (u64, u64, u64, bool) {
    match backend {
        Backend::Vec | Backend::Trace => {
            both_permute_on::<VecStore<DestTagged<u64>>, VecStore<u64>>(cfg, input, n)
        }
        Backend::Arena => {
            both_permute_on::<ArenaStore<DestTagged<u64>>, ArenaStore<u64>>(cfg, input, n)
        }
        Backend::Ghost => unreachable!("round sweeps are not built for ghost"),
    }
}

/// T3: the Lemma 4.1 constant, measured.
pub fn t3(quick: bool, backend: Backend) -> Sweep {
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let n = if quick { 1 << 11 } else { 1 << 14 };
    let pack = |name: &str, (q, q2, rounds, equal): (u64, u64, u64, bool)| {
        CellOut::new()
            .with_str("name", name)
            .with_u64("q", q)
            .with_u64("q2", q2)
            .with_u64("rounds", rounds)
            .with_bool("equal", equal)
    };
    let cells = vec![
        Cell::new("aem-sort", move || {
            let input = KeyDist::Uniform { seed: 30 }.generate(n);
            pack(AemSort.name(), both(backend, cfg, &input, &AemSort))
        }),
        Cell::new("em-sort", move || {
            let input = KeyDist::Uniform { seed: 30 }.generate(n);
            pack(EmSort.name(), both(backend, cfg, &input, &EmSort))
        }),
        Cell::new("scan-copy", move || {
            let input = KeyDist::Uniform { seed: 30 }.generate(n);
            pack(ScanCopy.name(), both(backend, cfg, &input, &ScanCopy))
        }),
        Cell::new("permute-by-sorting", move || {
            let input = KeyDist::Uniform { seed: 30 }.generate(n);
            pack("permute by sorting", both_permute(backend, cfg, &input, n))
        }),
    ];
    Sweep::new("T3", cells, move |outs| {
        let mut t = Table::new(
            "T3",
            &format!("Lemma 4.1 — round-based overhead on {cfg}, N={n}"),
            &[
                "algorithm",
                "Q (plain)",
                "Q' (round-based, 2M)",
                "Q'/Q",
                "rounds",
                "output equal",
            ],
        );
        let mut ok = true;
        for o in outs {
            let (q, q2) = (o.u64("q"), o.u64("q2"));
            let equal = o.bool("equal");
            t.row(vec![
                o.str("name").to_string(),
                q.to_string(),
                q2.to_string(),
                ratio(q2 as f64, q as f64),
                o.u64("rounds").to_string(),
                equal.to_string(),
            ]);
            ok &= equal && q2 <= 4 * q;
        }
        t.note(format!(
            "all overheads within the Lemma 4.1 constant (≤ 4x) and outputs identical: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3_passes() {
        let t = t3(true, Backend::Vec).run_serial();
        assert_eq!(t.rows.len(), 4);
        for n in &t.notes {
            assert!(!n.contains("FAIL"), "{}", n);
        }
    }

    #[test]
    fn t3_arena_matches_vec() {
        let v = t3(true, Backend::Vec).run_serial();
        let a = t3(true, Backend::Arena).run_serial();
        assert_eq!(v.to_markdown(), a.to_markdown());
    }
}
