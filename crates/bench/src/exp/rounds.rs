//! T3 — Lemma 4.1: round-based execution costs only a constant factor.
//!
//! Every algorithm in the workspace is run twice — on the plain machine
//! and under the [`RoundBasedMachine`] wrapper (internal memory `2M`,
//! writes buffered per round, `M'` snapshot/restore charged at round
//! boundaries) — and the overhead `Q'/Q` is reported, along with the
//! round count.

use aem_core::permute::by_sort::DestTagged;
use aem_core::sort::{em_merge_sort, merge_sort};
use aem_machine::{AemAccess, AemConfig, Machine, Region, RoundBasedMachine};
use aem_workloads::{KeyDist, PermKind};

use crate::table::{ratio, Table};

/// All round-based tables.
pub fn tables(quick: bool) -> Vec<Table> {
    vec![t3(quick)]
}

/// An algorithm runnable on any machine flavour (the polymorphism
/// Lemma 4.1 needs: the *same* program, two execution disciplines).
trait Algo {
    fn name(&self) -> &'static str;
    fn run<A: AemAccess<u64>>(&self, machine: &mut A, input: Region) -> Region;
}

struct AemSort;
impl Algo for AemSort {
    fn name(&self) -> &'static str {
        "§3 AEM mergesort"
    }
    fn run<A: AemAccess<u64>>(&self, m: &mut A, r: Region) -> Region {
        merge_sort(m, r).expect("sort")
    }
}

struct EmSort;
impl Algo for EmSort {
    fn name(&self) -> &'static str {
        "EM mergesort"
    }
    fn run<A: AemAccess<u64>>(&self, m: &mut A, r: Region) -> Region {
        em_merge_sort(m, r).expect("sort")
    }
}

struct ScanCopy;
impl Algo for ScanCopy {
    fn name(&self) -> &'static str {
        "block scan-copy"
    }
    fn run<A: AemAccess<u64>>(&self, m: &mut A, r: Region) -> Region {
        let out = m.alloc_region(r.elems);
        for i in 0..r.blocks {
            let d = m.read_block(r.block(i)).expect("read");
            m.write_block(out.block(i), d).expect("write");
        }
        out
    }
}

/// Run an algorithm on both machines; return (Q, Q', rounds, equal).
fn both<G: Algo>(cfg: AemConfig, input: &[u64], algo: &G) -> (u64, u64, u64, bool) {
    let mut plain: Machine<u64> = Machine::new(cfg);
    let r = plain.install(input);
    let out_p = algo.run(&mut plain, r);
    let got_p = plain.inspect(out_p);
    let q = plain.cost().q(cfg.omega);

    let mut rb: RoundBasedMachine<u64> = RoundBasedMachine::new(cfg);
    let r = rb.install(input);
    let out_r = algo.run(&mut rb, r);
    let stats = rb.finish().expect("finish");
    let got_r = rb.inspect(out_r);
    (q, stats.cost.q(cfg.omega), stats.rounds, got_p == got_r)
}

/// T3: the Lemma 4.1 constant, measured.
pub fn t3(quick: bool) -> Table {
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let n = if quick { 1 << 11 } else { 1 << 14 };
    let mut t = Table::new(
        "T3",
        &format!("Lemma 4.1 — round-based overhead on {cfg}, N={n}"),
        &[
            "algorithm",
            "Q (plain)",
            "Q' (round-based, 2M)",
            "Q'/Q",
            "rounds",
            "output equal",
        ],
    );
    let input = KeyDist::Uniform { seed: 30 }.generate(n);
    let mut ok = true;

    let add = |name: &str, q: u64, q2: u64, rounds: u64, equal: bool, t: &mut Table| {
        t.row(vec![
            name.to_string(),
            q.to_string(),
            q2.to_string(),
            ratio(q2 as f64, q as f64),
            rounds.to_string(),
            equal.to_string(),
        ]);
        equal && q2 <= 4 * q
    };

    let (q, q2, rounds, equal) = both(cfg, &input, &AemSort);
    ok &= add(AemSort.name(), q, q2, rounds, equal, &mut t);
    let (q, q2, rounds, equal) = both(cfg, &input, &EmSort);
    ok &= add(EmSort.name(), q, q2, rounds, equal, &mut t);
    let (q, q2, rounds, equal) = both(cfg, &input, &ScanCopy);
    ok &= add(ScanCopy.name(), q, q2, rounds, equal, &mut t);

    // Permuting by sorting runs on a (dest, value)-typed machine.
    {
        let pi = PermKind::Random { seed: 31 }.generate(n);
        let tagged: Vec<DestTagged<u64>> = input
            .iter()
            .zip(pi.iter())
            .map(|(v, &d)| DestTagged {
                dest: d as u64,
                value: *v,
            })
            .collect();
        let mut plain: Machine<DestTagged<u64>> = Machine::new(cfg);
        let r = plain.install(&tagged);
        let out = merge_sort(&mut plain, r).expect("sort");
        let got_p: Vec<u64> = plain.inspect(out).into_iter().map(|t| t.value).collect();
        let q = plain.cost().q(cfg.omega);

        let mut rb: RoundBasedMachine<DestTagged<u64>> = RoundBasedMachine::new(cfg);
        let r = rb.install(&tagged);
        let out = merge_sort(&mut rb, r).expect("sort");
        let stats = rb.finish().expect("finish");
        let got_r: Vec<u64> = rb.inspect(out).into_iter().map(|t| t.value).collect();
        ok &= add(
            "permute by sorting",
            q,
            stats.cost.q(cfg.omega),
            stats.rounds,
            got_p == got_r,
            &mut t,
        );
    }

    t.note(format!(
        "all overheads within the Lemma 4.1 constant (≤ 4x) and outputs identical: {}",
        if ok { "PASS" } else { "FAIL" }
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3_passes() {
        let t = t3(true);
        assert_eq!(t.rows.len(), 4);
        for n in &t.notes {
            assert!(!n.contains("FAIL"), "{}", n);
        }
    }
}
