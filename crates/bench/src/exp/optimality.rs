//! F5 — the paper's headline claim, §1.1: the permuting lower bound
//! "matches the sorting upper bound to within a constant factor for
//! reasonable ranges of the parameters ω, B, M and N".
//!
//! This experiment maps that claim: over a wide parameter grid (far larger
//! `N` than the simulator runs, since both sides are closed forms here) it
//! evaluates the ratio
//!
//! ```text
//!        upper bound (measured-calibrated predictor for the §3 mergesort)
//! gap = ──────────────────────────────────────────────────────────────────
//!        lower bound (Thm 4.5 counting, evaluated exactly)
//! ```
//!
//! and reports where the gap stays in a constant band (optimality) and
//! where the bound goes trivial (the "reasonable ranges" caveat: e.g.
//! `ω > N/B` breaks the theorem's assumption, and tiny `N/B` makes the
//! `min{N, ·}` branch flip). The predictor itself is validated against
//! measured costs in `tests/predictors.rs`, so using it here at scales the
//! simulator cannot reach is calibrated extrapolation, not guesswork.

use aem_core::bounds::{permute as pbounds, predict};
use aem_machine::{AemConfig, Backend};

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::{f, Table};

/// All optimality-map sweeps. Both sides of the gap are closed-form
/// evaluations — no machine runs at all — so the cells are backend-neutral
/// and run identically for every backend (including ghost).
pub fn sweeps(quick: bool, _backend: Backend) -> Vec<Sweep> {
    vec![f5(quick)]
}

/// All optimality-map tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// F5: the optimality gap across the parameter grid.
pub fn f5(quick: bool) -> Sweep {
    let n_exps: Vec<u32> = if quick {
        vec![20, 24]
    } else {
        vec![20, 24, 28, 32]
    };
    let shapes: Vec<(usize, usize)> = vec![(1 << 14, 1 << 8), (1 << 20, 1 << 12)]; // (M, B)
    let omegas: Vec<u64> = vec![1, 4, 16, 64, 256, 4096];
    let mut grid: Vec<(u32, usize, usize, u64)> = Vec::new();
    for &ne in &n_exps {
        for &(m, b) in &shapes {
            for &w in &omegas {
                grid.push((ne, m, b, w));
            }
        }
    }
    let cells = grid
        .iter()
        .map(|&(ne, mem, b, omega)| {
            Cell::new(format!("n=2^{ne},m={mem},b={b},omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let n = 1u64 << ne;
                let ub = predict::merge_sort_cost(cfg, n as usize).q(omega) as f64;
                let lb = pbounds::permute_cost_lower_bound(n, cfg);
                let in_range = omega <= n / b as u64;
                CellOut::new()
                    .with_u64("n", n)
                    .with_u64("m", mem as u64)
                    .with_u64("b", b as u64)
                    .with_u64("omega", omega)
                    .with_bool("in_range", in_range)
                    .with_f64("ub", ub)
                    .with_f64("lb", lb)
            })
        })
        .collect();
    Sweep::new("F5", cells, move |outs| {
        let mut t = Table::new(
            "F5",
            "§1.1 headline — sorting UB vs permuting LB across the parameter grid (closed forms)",
            &[
                "N",
                "M",
                "B",
                "ω",
                "ω ≤ N/B",
                "UB (pred)",
                "LB (Thm 4.5)",
                "gap UB/LB",
            ],
        );
        let mut gaps: Vec<f64> = Vec::new();
        for o in outs {
            let (ub, lb) = (o.f64("ub"), o.f64("lb"));
            let in_range = o.bool("in_range");
            let gap = if lb > 0.0 { ub / lb } else { f64::INFINITY };
            if in_range && lb > 0.0 {
                gaps.push(gap);
            }
            t.row(vec![
                format!("2^{}", (o.u64("n") as f64).log2() as u32),
                o.u64("m").to_string(),
                o.u64("b").to_string(),
                o.u64("omega").to_string(),
                in_range.to_string(),
                f(ub),
                f(lb),
                if gap.is_finite() {
                    f(gap)
                } else {
                    "∞ (bound trivial)".into()
                },
            ]);
        }
        let (lo, hi) = (
            gaps.iter().cloned().fold(f64::MAX, f64::min),
            gaps.iter().cloned().fold(f64::MIN, f64::max),
        );
        // "Constant factor" here: the gap band across 4096x of ω and 4096x of
        // N stays within two orders of magnitude — the product of the counting
        // argument's slack (~8-80x, see T5) and the algorithm's constants —
        // and, crucially, does NOT grow with N: optimality in the theorem's
        // sense (the per-N flatness is asserted in this module's tests).
        let ok = !gaps.is_empty() && hi / lo < 150.0;
        t.note(format!(
            "gap band over the in-range grid: [{lo:.1}, {hi:.1}] — bounded, and flat in N \
             (the claim of §1.1): {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f5_passes() {
        let t = f5(true).run_serial();
        assert!(!t.rows.is_empty());
        for n in &t.notes {
            assert!(!n.contains("FAIL"), "{}", n);
        }
    }

    #[test]
    fn gap_stays_in_a_flat_band_across_n() {
        // The optimality claim in its sharpest testable form: at fixed
        // (M, B, ω) in range, the UB/LB ratio stays in a constant band as
        // N grows by 4096x. (It is not monotone: each additional merge
        // level bumps the UB step-wise while the bound moves smoothly.)
        let cfg = AemConfig::new(1 << 14, 1 << 8, 16).unwrap();
        let gaps: Vec<f64> = [20u32, 24, 28, 32]
            .iter()
            .map(|&ne| {
                let n = 1u64 << ne;
                let ub = predict::merge_sort_cost(cfg, n as usize).q(cfg.omega) as f64;
                let lb = pbounds::permute_cost_lower_bound(n, cfg);
                assert!(lb > 0.0);
                ub / lb
            })
            .collect();
        let (lo, hi) = (
            gaps.iter().cloned().fold(f64::MAX, f64::min),
            gaps.iter().cloned().fold(f64::MIN, f64::max),
        );
        assert!(hi / lo < 5.0, "gap band [{lo}, {hi}] not flat: {gaps:?}");
    }
}
