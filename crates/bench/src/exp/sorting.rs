//! T1 / F1 — Theorem 3.2: the §3 mergesort's cost, for any `ω`, against
//! the `ω`-oblivious EM baseline, plus the fan-in ablation.
//!
//! Each table is a [`Sweep`]: independent cells over the `(N, ω, d)` grid
//! plus a pure renderer, so the engine can run cells in parallel and cache
//! them (see [`crate::sweep`]).

use aem_core::bounds::predict;
use aem_core::sort::{
    distribution_sort, em_merge_sort, heap_sort, merge_sort, merge_sort_with_fan_in,
};
use aem_machine::{with_payload_machine, AemAccess, AemConfig, Backend, Cost};
use aem_obs::{node_depth, InstrumentedMachine};
use aem_workloads::KeyDist;

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::{f, ratio, Table};

/// Run the §3 mergesort on a fresh machine; returns the exact cost.
/// Sorting steers on key comparisons, so `backend` must carry payloads.
pub fn run_merge_sort(backend: Backend, cfg: AemConfig, n: usize, seed: u64) -> Cost {
    let input = KeyDist::Uniform { seed }.generate(n);
    with_payload_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let r = m.install(&input);
        let out = merge_sort(&mut m, r).expect("merge_sort");
        debug_assert_eq!(m.inspect(out).len(), n);
        m.cost()
    }, ghost => unreachable!("merge sort reads keys; not payload-oblivious"))
}

/// Run the EM baseline; returns the exact cost.
pub fn run_em_sort(backend: Backend, cfg: AemConfig, n: usize, seed: u64) -> Cost {
    let input = KeyDist::Uniform { seed }.generate(n);
    with_payload_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let r = m.install(&input);
        em_merge_sort(&mut m, r).expect("em_merge_sort");
        m.cost()
    }, ghost => unreachable!("merge sort reads keys; not payload-oblivious"))
}

/// Run the distribution-sort baseline; returns the exact cost.
pub fn run_distribution_sort(backend: Backend, cfg: AemConfig, n: usize, seed: u64) -> Cost {
    let input = KeyDist::Uniform { seed }.generate(n);
    with_payload_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let r = m.install(&input);
        distribution_sort(&mut m, r).expect("distribution_sort");
        m.cost()
    }, ghost => unreachable!("distribution sort reads keys; not payload-oblivious"))
}

/// The normalization denominator of Theorem 3.2: `ω n ⌈log_{ωm} n⌉`.
fn thm32(cfg: AemConfig, n: usize) -> f64 {
    let nb = cfg.blocks_for(n) as f64;
    cfg.omega as f64 * nb * cfg.log_fan_in(nb).ceil()
}

/// All sorting sweeps, in presentation order. Every sorter here steers on
/// key comparisons, so the ghost backend runs none of them.
pub fn sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    if !backend.carries_payload() {
        return Vec::new();
    }
    vec![
        t1_n_sweep(quick, backend),
        t1_omega_sweep(quick, backend),
        f1_vs_em(quick, backend),
        ablation_fan_in(quick, backend),
        ablation_pointers(quick, backend),
        t1_sorter_zoo(quick, backend),
        t1_phase_attribution(quick, backend),
    ]
}

/// All sorting tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// T1f: where the §3 mergesort's cost goes, phase by phase. An
/// instrumented run attributes every I/O to the enclosing span; the
/// top-level spans (base runs, then each merge level) partition the
/// execution, so their inclusive costs must sum to the total.
pub fn t1_phase_attribution(quick: bool, backend: Backend) -> Sweep {
    let cfg = AemConfig::new(64, 8, 32).unwrap();
    let n = if quick { 1 << 12 } else { 1 << 16 };
    let cells = vec![Cell::new("instrumented", move || {
        let input = KeyDist::Uniform { seed: 7 }.generate(n);
        let (total, rec) = with_payload_machine!(backend, u64, |M| {
            let mut im = InstrumentedMachine::new(M::new(cfg));
            let r = im.inner_mut().install(&input);
            merge_sort(&mut im, r).expect("sort");
            let total = im.inner().cost();
            let rec = im.into_record(aem_obs::WorkloadMeta::new("sort", "aem", n as u64));
            (total, rec)
        }, ghost => unreachable!("sorting sweeps are not built for ghost"));
        let q_total = total.q(cfg.omega).max(1);
        let mut out = CellOut::new();
        let mut top_level_q = 0u64;
        for (i, p) in rec.phases.iter().enumerate() {
            let depth = node_depth(&rec.phases, i);
            if depth == 0 {
                top_level_q += p.q(cfg.omega);
            }
            out = out.with_row(vec![
                format!("{}{}", "· ".repeat(depth), p.name),
                p.q(cfg.omega).to_string(),
                p.cost.reads.to_string(),
                p.cost.writes.to_string(),
                (p.aux_reads + p.aux_writes).to_string(),
                p.volume.to_string(),
                format!("{:.1}%", 100.0 * p.q(cfg.omega) as f64 / q_total as f64),
            ]);
        }
        out.with_u64("top_level_q", top_level_q)
            .with_u64("total_q", total.q(cfg.omega))
    })];
    Sweep::new("T1f", cells, move |outs| {
        let mut t = Table::new(
            "T1f",
            &format!("Phase attribution — AEM mergesort on {cfg}, N={n}"),
            &[
                "phase", "Q", "reads", "writes", "aux I/Os", "volume", "% of Q",
            ],
        );
        let o = &outs[0];
        for row in o.rows() {
            t.row(row.clone());
        }
        let (top_level_q, total_q) = (o.u64("top_level_q"), o.u64("total_q"));
        t.note(format!(
            "top-level phases partition the run: Σ Q_phase = {top_level_q} vs total Q = {total_q}: {}",
            if top_level_q == total_q { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// T1e: all four sorter families side by side across ω. The AEM mergesort
/// and the PQ-backed heapsort share the write-lean profile (both move data
/// through the §3.1 merge); the two ω-oblivious baselines pay ω on every
/// level's writes.
pub fn t1_sorter_zoo(quick: bool, backend: Backend) -> Sweep {
    let (mem, b) = (64usize, 8usize);
    let n = if quick { 1 << 11 } else { 1 << 14 };
    let omegas: Vec<u64> = vec![1, 8, 64, 256];
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let input = KeyDist::Uniform { seed: 6 }.generate(n);
                let run = |which: usize| -> u64 {
                    with_payload_machine!(backend, u64, |M| {
                        let mut m = M::new(cfg);
                        let r = m.install(&input);
                        match which {
                            0 => drop(merge_sort(&mut m, r).expect("sort")),
                            1 => drop(heap_sort(&mut m, r).expect("sort")),
                            2 => drop(em_merge_sort(&mut m, r).expect("sort")),
                            _ => drop(distribution_sort(&mut m, r).expect("sort")),
                        }
                        m.cost().q(omega)
                    }, ghost => unreachable!("sorting sweeps are not built for ghost"))
                };
                CellOut::new()
                    .with_u64("omega", omega)
                    .with_u64("q_aem", run(0))
                    .with_u64("q_heap", run(1))
                    .with_u64("q_em", run(2))
                    .with_u64("q_dist", run(3))
            })
        })
        .collect();
    Sweep::new("T1e", cells, move |outs| {
        let mut t = Table::new(
            "T1e",
            &format!("Sorter families across ω at N={n}, M={mem}, B={b}"),
            &[
                "ω",
                "Q AEM-merge",
                "Q heapsort (PQ)",
                "Q EM-merge",
                "Q distribution",
                "best",
            ],
        );
        let names = ["AEM-merge", "heapsort", "EM-merge", "distribution"];
        let mut ok = true;
        for o in outs {
            let omega = o.u64("omega");
            let qs = [
                o.u64("q_aem"),
                o.u64("q_heap"),
                o.u64("q_em"),
                o.u64("q_dist"),
            ];
            let best = qs
                .iter()
                .enumerate()
                .min_by_key(|(_, q)| **q)
                .expect("4 entries")
                .0;
            // At severe asymmetry one of the write-lean families must win.
            if omega >= 256 {
                ok &= best == 0 || best == 1;
            }
            t.row(vec![
                omega.to_string(),
                qs[0].to_string(),
                qs[1].to_string(),
                qs[2].to_string(),
                qs[3].to_string(),
                names[best].to_string(),
            ]);
        }
        t.note(format!(
            "at ω ≥ 256 a write-lean (merge-§3.1-based) family wins: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// Ablation: pointer placement in the §3.1 merge. External `b[i]` blocks
/// (the paper) vs memory-resident cursors (the `ω < B` assumption of
/// earlier work). The resident variant *honestly fails* once the cursor
/// table exceeds `M`.
pub fn ablation_pointers(quick: bool, backend: Backend) -> Sweep {
    use aem_core::sort::{merge_runs, merge_runs_resident};
    let (mem, b) = (64usize, 8usize);
    let each = if quick { 32 } else { 128 };
    let omegas: Vec<u64> = vec![1, 4, 8, 32, 128];
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let k = cfg.fan_in().min(512);
                with_payload_machine!(backend, u64, |M| {
                    let mk_runs = |m: &mut M| {
                        (0..k)
                            .map(|i| {
                                let mut v = KeyDist::Uniform {
                                    seed: 500 + i as u64,
                                }
                                .generate(each);
                                v.sort();
                                m.install(&v)
                            })
                            .collect::<Vec<_>>()
                    };
                    let mut m1 = M::new(cfg);
                    let r1 = mk_runs(&mut m1);
                    merge_runs(&mut m1, &r1).expect("external-pointer merge always works");
                    let q_ext = m1.cost().q(omega);

                    let mut m2 = M::new(cfg);
                    let r2 = mk_runs(&mut m2);
                    let out = CellOut::new()
                        .with_u64("omega", omega)
                        .with_u64("k", k as u64)
                        .with_u64("q_ext", q_ext);
                    match merge_runs_resident(&mut m2, &r2) {
                        Ok(_) => out
                            .with_bool("resident_ok", true)
                            .with_u64("q_res", m2.cost().q(omega)),
                        Err(e) => out
                            .with_bool("resident_ok", false)
                            .with_str("resident_err", e.to_string()),
                    }
                }, ghost => unreachable!("sorting sweeps are not built for ghost"))
            })
        })
        .collect();
    Sweep::new("T1d", cells, move |outs| {
        let mut t = Table::new(
            "T1d",
            &format!("Ablation — pointer placement in the merge, M={mem}, B={b}, full fan-in"),
            &[
                "ω",
                "k = ωm",
                "Q external b[i] (paper)",
                "Q resident cursors",
                "resident outcome",
            ],
        );
        let mut saw_failure = false;
        let mut saw_success = false;
        for o in outs {
            let (q_res, outcome) = if o.bool("resident_ok") {
                saw_success = true;
                (o.u64("q_res").to_string(), "ok".to_string())
            } else {
                saw_failure = true;
                ("—".to_string(), format!("FAILS: {}", o.str("resident_err")))
            };
            t.row(vec![
                o.u64("omega").to_string(),
                o.u64("k").to_string(),
                o.u64("q_ext").to_string(),
                q_res,
                outcome,
            ]);
        }
        t.note(format!(
            "resident cursors work for small ω and overflow internal memory at large ω, \
             while the paper's external pointers handle every row: {}",
            if saw_failure && saw_success {
                "PASS"
            } else {
                "FAIL"
            }
        ));
        t
    })
}

/// T1a: cost vs `N` at fixed `(M, B, ω)`.
pub fn t1_n_sweep(quick: bool, backend: Backend) -> Sweep {
    let cfg = AemConfig::new(256, 16, 16).unwrap();
    let sizes: Vec<usize> = if quick {
        vec![1 << 10, 1 << 12]
    } else {
        vec![1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20]
    };
    let cells = sizes
        .iter()
        .map(|&n| {
            Cell::new(format!("n={n}"), move || {
                let c = run_merge_sort(backend, cfg, n, 1);
                CellOut::new()
                    .with_u64("n", n as u64)
                    .with_u64("reads", c.reads)
                    .with_u64("writes", c.writes)
                    .with_u64("pred", predict::merge_sort_cost(cfg, n).q(cfg.omega))
            })
        })
        .collect();
    Sweep::new("T1a", cells, move |outs| {
        let mut t = Table::new(
            "T1a",
            &format!("Thm 3.2 — AEM mergesort cost vs N on {cfg}"),
            &["N", "reads", "writes", "Q", "pred Q", "Q / ωn⌈log_ωm n⌉"],
        );
        let mut norms = Vec::new();
        for o in outs {
            let n = o.u64("n") as usize;
            let c = Cost::new(o.u64("reads"), o.u64("writes"));
            let q = c.q(cfg.omega);
            let norm = q as f64 / thm32(cfg, n);
            norms.push(norm);
            t.row(vec![
                n.to_string(),
                c.reads.to_string(),
                c.writes.to_string(),
                q.to_string(),
                o.u64("pred").to_string(),
                f(norm),
            ]);
        }
        let spread = norms.iter().cloned().fold(f64::MIN, f64::max)
            / norms.iter().cloned().fold(f64::MAX, f64::min);
        t.note(format!(
            "normalized-cost spread across the sweep: {:.2}x ({}) — Thm 3.2 predicts a constant",
            spread,
            if spread < 4.0 { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// T1b: cost vs `ω` at fixed `N, M, B` — including `ω > B`, the regime the
/// paper's mergesort newly covers.
pub fn t1_omega_sweep(quick: bool, backend: Backend) -> Sweep {
    let (mem, b) = (64usize, 8usize);
    let n = if quick { 1 << 12 } else { 1 << 16 };
    let omegas: Vec<u64> = vec![1, 2, 4, 8, 16, 64, 256, 1024];
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let c = run_merge_sort(backend, cfg, n, 2);
                CellOut::new()
                    .with_u64("omega", omega)
                    .with_u64("reads", c.reads)
                    .with_u64("writes", c.writes)
            })
        })
        .collect();
    Sweep::new("T1b", cells, move |outs| {
        let mut t = Table::new(
            "T1b",
            &format!("Thm 3.2 — AEM mergesort vs ω at N={n}, M={mem}, B={b} (ω>B from ω=16 on)"),
            &[
                "ω",
                "ω>B",
                "reads",
                "writes",
                "Q",
                "Q / ωn⌈log_ωm n⌉",
                "writes / n⌈log⌉",
            ],
        );
        let mut ok = true;
        for o in outs {
            let omega = o.u64("omega");
            let cfg = AemConfig::new(mem, b, omega).unwrap();
            let c = Cost::new(o.u64("reads"), o.u64("writes"));
            let nb = cfg.blocks_for(n) as f64;
            let lev = cfg.log_fan_in(nb).ceil();
            let norm_q = c.q(omega) as f64 / thm32(cfg, n);
            let norm_w = c.writes as f64 / (nb * lev);
            ok &= norm_q < 40.0 && norm_w < 8.0;
            t.row(vec![
                omega.to_string(),
                if omega > b as u64 {
                    "yes".into()
                } else {
                    "no".into()
                },
                c.reads.to_string(),
                c.writes.to_string(),
                c.q(omega).to_string(),
                f(norm_q),
                f(norm_w),
            ]);
        }
        t.note(format!(
            "both normalizations bounded across four orders of magnitude of ω, incl. ω ≫ B: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// F1: the separation against the `ω`-oblivious EM mergesort.
pub fn f1_vs_em(quick: bool, backend: Backend) -> Sweep {
    let (mem, b) = (64usize, 8usize);
    let n = if quick { 1 << 12 } else { 1 << 16 };
    let omegas: Vec<u64> = vec![1, 4, 16, 64, 256];
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let aem = run_merge_sort(backend, cfg, n, 3);
                let em = run_em_sort(backend, cfg, n, 3);
                let dist = run_distribution_sort(backend, cfg, n, 3);
                CellOut::new()
                    .with_u64("omega", omega)
                    .with_u64("aem_reads", aem.reads)
                    .with_u64("aem_writes", aem.writes)
                    .with_u64("em_reads", em.reads)
                    .with_u64("em_writes", em.writes)
                    .with_u64("dist_reads", dist.reads)
                    .with_u64("dist_writes", dist.writes)
            })
        })
        .collect();
    Sweep::new("F1", cells, move |outs| {
        let mut t = Table::new(
            "F1",
            &format!("AEM mergesort vs ω-oblivious baselines at N={n}, M={mem}, B={b}"),
            &[
                "ω",
                "Q(AEM sort)",
                "Q(EM merge)",
                "Q(EM distrib)",
                "EM-merge/AEM",
                "writes AEM",
                "writes EM",
            ],
        );
        let mut last_ratio = 0.0;
        for o in outs {
            let omega = o.u64("omega");
            let aem = Cost::new(o.u64("aem_reads"), o.u64("aem_writes"));
            let em = Cost::new(o.u64("em_reads"), o.u64("em_writes"));
            let dist = Cost::new(o.u64("dist_reads"), o.u64("dist_writes"));
            let (qa, qe, qd) = (aem.q(omega), em.q(omega), dist.q(omega));
            last_ratio = qe as f64 / qa as f64;
            t.row(vec![
                omega.to_string(),
                qa.to_string(),
                qe.to_string(),
                qd.to_string(),
                ratio(qe as f64, qa as f64),
                aem.writes.to_string(),
                em.writes.to_string(),
            ]);
        }
        t.note(format!(
            "both ω-oblivious baselines (merge- and distribution-family) fall behind as ω \
             grows (EM-merge/AEM at ω=256: {:.1}x); the win is the fewer merge levels \
             (log ωm vs log m) and the read-heavy profile: {}",
            last_ratio,
            if last_ratio > 1.0 { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// Ablation: merge fan-in `d ∈ {2, m, ωm}` — the `log_d n` level count in
/// measured costs.
pub fn ablation_fan_in(quick: bool, backend: Backend) -> Sweep {
    let cfg = AemConfig::new(64, 8, 32).unwrap(); // fan-in ωm = 256
    let n = if quick { 1 << 12 } else { 1 << 16 };
    let fans = [2usize, cfg.m(), cfg.fan_in()];
    let labels = ["2 (binary)", "m (EM classic)", "ωm (paper)"];
    let cells = fans
        .iter()
        .map(|&d| {
            Cell::new(format!("d={d}"), move || {
                let input = KeyDist::Uniform { seed: 4 }.generate(n);
                with_payload_machine!(backend, u64, |M| {
                    let mut m = M::new(cfg);
                    let r = m.install(&input);
                    merge_sort_with_fan_in(&mut m, r, d).expect("sort");
                    CellOut::new()
                        .with_u64("d", d as u64)
                        .with_u64("reads", m.cost().reads)
                        .with_u64("writes", m.cost().writes)
                }, ghost => unreachable!("sorting sweeps are not built for ghost"))
            })
        })
        .collect();
    Sweep::new("T1c", cells, move |outs| {
        let mut t = Table::new(
            "T1c",
            &format!("Ablation — merge fan-in on {cfg}, N={n}"),
            &["fan-in", "reads", "writes", "Q"],
        );
        let mut writes = Vec::new();
        for (o, label) in outs.iter().zip(labels) {
            let c = Cost::new(o.u64("reads"), o.u64("writes"));
            writes.push(c.writes);
            t.row(vec![
                format!("{} = {label}", o.u64("d")),
                c.reads.to_string(),
                c.writes.to_string(),
                c.q(cfg.omega).to_string(),
            ]);
        }
        // Larger fan-in means fewer merge levels, so the paper's d = ωm
        // minimizes the expensive writes unconditionally. Total Q, however,
        // trades those against the ωm-way merge's re-scan reads (a ~6x
        // constant on the read term), so Q only favours d = ωm once
        // log(ωm)/log(m) exceeds that constant — a genuinely useful datum
        // about the algorithm's constants that the asymptotic statement hides.
        t.note(format!(
            "writes decrease monotonically with fan-in (d = ωm minimizes the expensive \
             operation): {}",
            if writes[2] <= writes[1] && writes[1] <= writes[0] {
                "PASS"
            } else {
                "FAIL"
            }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sorting_tables_pass() {
        for t in tables(true, Backend::Vec) {
            assert!(!t.rows.is_empty(), "{} has rows", t.id);
            for n in &t.notes {
                assert!(!n.contains("FAIL"), "{}: {}", t.id, n);
            }
        }
    }

    #[test]
    fn arena_renders_identically_to_vec() {
        // The differential invariant at table granularity: the arena
        // backend reproduces every vec table byte-for-byte.
        let vec_tables = tables(true, Backend::Vec);
        let arena_tables = tables(true, Backend::Arena);
        assert_eq!(vec_tables.len(), arena_tables.len());
        for (v, a) in vec_tables.iter().zip(&arena_tables) {
            assert_eq!(
                v.to_markdown(),
                a.to_markdown(),
                "{} diverges on arena",
                v.id
            );
        }
    }

    #[test]
    fn ghost_runs_no_sorting_sweeps() {
        assert!(sweeps(true, Backend::Ghost).is_empty());
    }
}
