//! T12 — the reduce/scan family through the workload registry: prefix
//! sums under ω, from write-everything to write-nothing.
//!
//! Three strategies span the write spectrum: the classic materialized
//! scan rewrites the whole file once (`⌈n/B⌉` ω-priced writes) and then
//! answers each prefix query with one read; the blocked reduction tree
//! pays a small ω-weighted build (`~⌈n/B⌉/B` block-sum writes) for
//! `height` reads per query; and the pure rescan strategy writes nothing
//! ever, recomputing each prefix from reads alone. Sweeping (δ, ω)
//! exposes both crossovers: at small δ the winner slides tree → rescan
//! as ω grows, at large δ it slides materialize → tree. Every strategy
//! is position-routed, so the cost-only ghost backend runs the full
//! grid too.

use aem_core::workload::{run_workload, LiveHarness, RunCtx, WorkloadKind};
use aem_machine::{AemConfig, Backend, Cost};

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::Table;

/// All scan sweeps. Every registered strategy is ghost-sound, so the
/// grid runs on every backend.
pub fn sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    vec![t12(quick, backend)]
}

/// All scan tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// Run one registered scan strategy live and return its metered cost.
fn measured(backend: Backend, cfg: AemConfig, algo: &str, n: usize, delta: usize) -> Cost {
    let ctx = RunCtx::new(WorkloadKind::Scan, algo, cfg, n, delta, 7).expect("valid shape");
    let (cost, _) = run_workload(&ctx, &mut LiveHarness { backend }).expect("scan run");
    cost
}

/// T12: scan + δ prefix queries across the (δ, ω) grid, every strategy
/// from the registry menu, metered vs predicted.
pub fn t12(quick: bool, backend: Backend) -> Sweep {
    let n = if quick { 512 } else { 2048 };
    let deltas: Vec<usize> = if quick { vec![8, 512] } else { vec![8, 1024] };
    let omegas: Vec<u64> = if quick {
        vec![1, 256]
    } else {
        vec![1, 16, 256]
    };
    let mut cells = Vec::new();
    for &delta in &deltas {
        for &omega in &omegas {
            cells.push(Cell::new(
                format!("delta={delta},omega={omega}"),
                move || {
                    let cfg = AemConfig::new(64, 8, omega).unwrap();
                    let w = WorkloadKind::Scan.descriptor();
                    let mut out = CellOut::new()
                        .with_u64("delta", delta as u64)
                        .with_u64("omega", omega);
                    let mut sound = true;
                    for a in w.algos {
                        let m = measured(backend, cfg, a.name, n, delta);
                        let p = (a.predict)(cfg, n, delta).expect("predictor accepts this config");
                        // materialize/tree predictors are exact schedules;
                        // rescan's is a certified bound (a query at position
                        // p reads ⌊p/B⌋ + 1 ≤ ⌈n/B⌉ blocks).
                        sound &= if a.name == "rescan" {
                            m.reads <= p.reads && m.writes == p.writes
                        } else {
                            m == p
                        };
                        out = out.with_u64(&format!("q_{}", a.name), m.q(cfg.omega));
                    }
                    let (best, _) = w.cheapest(cfg, n, delta).expect("non-empty menu");
                    out.with_bool("sound", sound).with_str("cheapest", best)
                },
            ));
        }
    }
    let (w_lo, w_hi) = (omegas[0], *omegas.last().unwrap());
    Sweep::new("T12", cells, move |outs| {
        let mut t = Table::new(
            "T12",
            &format!("scan — prefix sums under ω, scan + δ queries, N={n}, M=64, B=8, ω swept"),
            &[
                "δ",
                "ω",
                "Q materialize",
                "Q tree",
                "Q rescan",
                "registry cheapest",
                "predictor sound",
            ],
        );
        let mut all_sound = true;
        let mut crossed = true;
        for o in outs {
            all_sound &= o.bool("sound");
            t.row(vec![
                o.u64("delta").to_string(),
                o.u64("omega").to_string(),
                o.u64("q_materialize").to_string(),
                o.u64("q_tree").to_string(),
                o.u64("q_rescan").to_string(),
                o.str("cheapest").to_string(),
                o.bool("sound").to_string(),
            ]);
        }
        // At every δ the winner must change across the ω sweep — the
        // read/write crossover the family exists to exhibit.
        for d in outs.chunks(omegas_len(outs)) {
            let lo = d.iter().find(|o| o.u64("omega") == w_lo).unwrap();
            let hi = d.iter().find(|o| o.u64("omega") == w_hi).unwrap();
            crossed &= lo.str("cheapest") != hi.str("cheapest");
        }
        t.note(format!(
            "metered costs match the exact-schedule predictors (rescan within its \
             certified bound) on every row: {}",
            if all_sound { "PASS" } else { "FAIL" }
        ));
        t.note(format!(
            "at every δ the cheapest strategy flips between ω = {w_lo} and ω = {w_hi} \
             (write-heavy loses to write-avoiding as writes get dearer): {}",
            if crossed { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// Number of ω points per δ group (the grid is rectangular, row-major in
/// δ; recover the stride from the outputs so the renderer stays pure).
fn omegas_len(outs: &[CellOut]) -> usize {
    let first = outs[0].u64("delta");
    outs.iter().take_while(|o| o.u64("delta") == first).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_tables_pass() {
        for t in tables(true, Backend::Vec) {
            assert!(!t.rows.is_empty());
            for n in &t.notes {
                assert!(!n.contains("FAIL"), "{}: {}", t.id, n);
            }
        }
    }

    #[test]
    fn ghost_renders_the_same_scan_table() {
        let vec_t: Vec<String> = tables(true, Backend::Vec)
            .iter()
            .map(Table::to_markdown)
            .collect();
        let ghost_t: Vec<String> = tables(true, Backend::Ghost)
            .iter()
            .map(Table::to_markdown)
            .collect();
        assert_eq!(vec_t, ghost_t);
    }
}
