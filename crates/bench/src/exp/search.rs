//! T11 — the search family through the workload registry: ω-weighted
//! static-layout builds vs read-only batched predecessor lookups.
//!
//! The three layouts trade a one-off build cost (writes, priced at ω)
//! against per-lookup reads: the sorted array builds for free but pays
//! `log₂` block probes per query, the blocked B-tree pays an ω-weighted
//! build once and then `log_B` probes, and the Eytzinger permutation
//! sits in between with a key-dependent descent. Sweeping δ (the lookup
//! batch size) exposes the crossover, and every cell cross-checks the
//! metered cost against the registry's exact-schedule predictors.

use aem_core::workload::{run_workload, LiveHarness, RunCtx, WorkloadKind};
use aem_machine::{AemConfig, Backend, Cost};

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::Table;

/// All search sweeps. The Eytzinger descent routes on keys, so the
/// cost-only ghost backend sits this family out (the registry's
/// ghost-soundness flags say the same thing).
pub fn sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    if !backend.carries_payload() {
        return Vec::new();
    }
    vec![t11(quick, backend)]
}

/// All search tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// Run one registered search layout live and return its metered cost.
fn measured(backend: Backend, cfg: AemConfig, algo: &str, n: usize, delta: usize) -> Cost {
    let ctx = RunCtx::new(WorkloadKind::Search, algo, cfg, n, delta, 7).expect("valid shape");
    let (cost, _) = run_workload(&ctx, &mut LiveHarness { backend }).expect("search run");
    cost
}

/// T11: build + δ lookups across the batch-size sweep, every layout from
/// the registry menu, metered vs predicted.
pub fn t11(quick: bool, backend: Backend) -> Sweep {
    let cfg = AemConfig::new(64, 8, 16).unwrap();
    let n = if quick { 512 } else { 4096 };
    let deltas: Vec<usize> = if quick {
        vec![1, 64]
    } else {
        vec![1, 8, 64, 512, 4096]
    };
    let cells = deltas
        .iter()
        .map(|&delta| {
            Cell::new(format!("delta={delta}"), move || {
                let w = WorkloadKind::Search.descriptor();
                let mut out = CellOut::new().with_u64("delta", delta as u64);
                let mut sound = true;
                for a in w.algos {
                    let m = measured(backend, cfg, a.name, n, delta);
                    let p = (a.predict)(cfg, n, delta).expect("predictor accepts this config");
                    // binary/btree predictors are exact schedules; the
                    // Eytzinger one is a certified upper bound (block
                    // reuse along the descent is key-dependent).
                    sound &= if a.name == "eytzinger" {
                        m.reads <= p.reads && m.writes == p.writes
                    } else {
                        m == p
                    };
                    out = out.with_u64(&format!("q_{}", a.name), m.q(cfg.omega));
                }
                let (best, _) = w.cheapest(cfg, n, delta).expect("non-empty menu");
                out.with_bool("sound", sound).with_str("cheapest", best)
            })
        })
        .collect();
    Sweep::new("T11", cells, move |outs| {
        let mut t = Table::new(
            "T11",
            &format!("search — static layouts, build + δ lookups, N={n}, {cfg}"),
            &[
                "δ",
                "Q binary",
                "Q btree",
                "Q eytzinger",
                "registry cheapest",
                "predictor sound",
            ],
        );
        let mut all_sound = true;
        for o in outs {
            all_sound &= o.bool("sound");
            t.row(vec![
                o.u64("delta").to_string(),
                o.u64("q_binary").to_string(),
                o.u64("q_btree").to_string(),
                o.u64("q_eytzinger").to_string(),
                o.str("cheapest").to_string(),
                o.bool("sound").to_string(),
            ]);
        }
        t.note(format!(
            "metered costs match the exact-schedule predictors (eytzinger within its \
             certified bound) on every row: {}",
            if all_sound { "PASS" } else { "FAIL" }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_tables_pass() {
        for t in tables(true, Backend::Vec) {
            assert!(!t.rows.is_empty());
            for n in &t.notes {
                assert!(!n.contains("FAIL"), "{}: {}", t.id, n);
            }
        }
    }

    #[test]
    fn ghost_gets_no_search_sweeps() {
        assert!(sweeps(true, Backend::Ghost).is_empty());
    }
}
