//! T14 — level-synchronous BFS through the workload registry: the
//! write-marking baseline vs frontier re-derivation under ω.
//!
//! The marking traversal is the textbook algorithm: visit an edge, read
//! the target's distance block, and on a miss write the block back and
//! push the vertex onto an external queue — `Θ(n)` ω-priced writes. The
//! write-avoiding traversal never materializes frontiers: each round it
//! re-reads the adjacency file to re-derive who is newly reachable,
//! writing only the final distance file (`⌈n/B⌉` writes total). The
//! sweep runs both on the path graph — the deepest conformation, so the
//! rescan traversal pays its worst-case round count — and still finds
//! the ω crossover. BFS is data-routed (traversal order derives from
//! adjacency payloads), so this family publishes **no ghost sweeps**;
//! the registry's ghost-soundness flags enforce the same verdict.

use aem_core::workload::{run_workload, LiveHarness, RunCtx, WorkloadKind};
use aem_machine::{AemConfig, Backend, Cost};

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::Table;

/// All BFS sweeps. Traversal is routed by edge payloads, so the
/// cost-only ghost backend sits this family out (the registry's
/// ghost-soundness flags say the same thing).
pub fn sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    if !backend.carries_payload() {
        return Vec::new();
    }
    vec![t14(quick, backend)]
}

/// All BFS tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// Run one registered traversal live and return its metered cost. Seed 0
/// selects the path conformation — the deepest graph the generator
/// emits, i.e. the rescan traversal's worst case.
fn measured(backend: Backend, cfg: AemConfig, algo: &str, n: usize, delta: usize) -> Cost {
    let ctx = RunCtx::new(WorkloadKind::Bfs, algo, cfg, n, delta, 0).expect("valid shape");
    let (cost, _) = run_workload(&ctx, &mut LiveHarness { backend }).expect("bfs run");
    cost
}

/// T14: BFS on the depth-n path graph across the ω sweep, both
/// traversals from the registry menu, metered vs the certified bounds.
pub fn t14(quick: bool, backend: Backend) -> Sweep {
    let n = if quick { 256 } else { 2048 };
    let delta = 3;
    let omegas: Vec<u64> = if quick {
        vec![1, 64]
    } else {
        vec![1, 16, 64, 256]
    };
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::new(64, 8, omega).unwrap();
                let w = WorkloadKind::Bfs.descriptor();
                let mut out = CellOut::new().with_u64("omega", omega);
                let mut sound = true;
                let mut best = ("", u64::MAX);
                for a in w.algos {
                    let m = measured(backend, cfg, a.name, n, delta);
                    let p = (a.predict)(cfg, n, delta).expect("M=64 admits both traversals");
                    // Both predictors are certified bounds: marking's
                    // write term assumes every vertex is reachable,
                    // rescan's read term assumes depth-n rounds that
                    // re-read every block. The path graph meets both
                    // worst cases, but componentwise ≤ is the contract.
                    sound &= m.reads <= p.reads && m.writes <= p.writes;
                    let q = m.q(cfg.omega);
                    if q < best.1 {
                        best = (a.name, q);
                    }
                    out = out
                        .with_u64(&format!("r_{}", a.name), m.reads)
                        .with_u64(&format!("w_{}", a.name), m.writes)
                        .with_u64(&format!("q_{}", a.name), q);
                }
                out.with_bool("sound", sound).with_str("cheapest", best.0)
            })
        })
        .collect();
    let (w_lo, w_hi) = (omegas[0], *omegas.last().unwrap());
    Sweep::new("T14", cells, move |outs| {
        let mut t = Table::new(
            "T14",
            &format!(
                "bfs — path graph, N={n}, δ={delta}, marking vs frontier re-derivation, \
                 M=64, B=8, ω swept"
            ),
            &[
                "ω",
                "mark r/w",
                "Q mark",
                "rescan r/w",
                "Q rescan",
                "measured cheapest",
                "within bounds",
            ],
        );
        let mut all_sound = true;
        for o in outs {
            all_sound &= o.bool("sound");
            t.row(vec![
                o.u64("omega").to_string(),
                format!("{}/{}", o.u64("r_mark"), o.u64("w_mark")),
                o.u64("q_mark").to_string(),
                format!("{}/{}", o.u64("r_rescan"), o.u64("w_rescan")),
                o.u64("q_rescan").to_string(),
                o.str("cheapest").to_string(),
                o.bool("sound").to_string(),
            ]);
        }
        let crossed = outs.first().unwrap().str("cheapest") == "mark"
            && outs.last().unwrap().str("cheapest") == "rescan";
        t.note(format!(
            "metered costs stay componentwise within the certified bounds on every row: {}",
            if all_sound { "PASS" } else { "FAIL" }
        ));
        t.note(format!(
            "the marking traversal wins at ω = {w_lo}, the write-avoiding re-derivation \
             wins at ω = {w_hi} — even on its worst-case (depth-n) graph: {}",
            if crossed { "PASS" } else { "FAIL" }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_tables_pass() {
        for t in tables(true, Backend::Vec) {
            assert!(!t.rows.is_empty());
            for n in &t.notes {
                assert!(!n.contains("FAIL"), "{}: {}", t.id, n);
            }
        }
    }

    #[test]
    fn ghost_gets_no_bfs_sweeps() {
        assert!(sweeps(true, Backend::Ghost).is_empty());
    }
}
