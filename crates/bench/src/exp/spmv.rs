//! T6 / T7 — §5: SpMxV upper-bound crossover and the Theorem 5.1 lower
//! bound.

use aem_core::bounds::spmv as sbounds;
use aem_core::spmv::{
    choose_strategy, reference_multiply, spmv_direct, spmv_sorted, SpmvStrategy, U64Ring,
};
use aem_machine::AemConfig;
use aem_workloads::{Conformation, MatrixShape};

use crate::parallel_map;
use crate::table::{f, Table};

/// All SpMxV tables.
pub fn tables(quick: bool) -> Vec<Table> {
    vec![
        t6_delta_sweep(quick),
        t6_omega_sweep(quick),
        t6_big_blocks(quick),
        t7(quick),
    ]
}

/// T6c: the sorting-based algorithm's home turf — large blocks, mild
/// asymmetry. Direct gathering pays ≈ 2 reads per non-zero regardless of
/// `B`, while sorting moves whole blocks: `ω·lev/B ≪ 1` flips the winner.
pub fn t6_big_blocks(quick: bool) -> Table {
    let (mem, b) = (1024usize, 128usize);
    let n = if quick { 1024 } else { 4096 };
    let delta = 2usize;
    let omegas: Vec<u64> = vec![1, 2, 4, 16, 64];
    let mut t = Table::new(
        "T6c",
        &format!("§5 — SpMxV with large blocks, N={n}, δ={delta}, M={mem}, B={b}"),
        &[
            "ω",
            "Q direct",
            "Q sorted",
            "measured winner",
            "predicted winner",
        ],
    );
    let rows = parallel_map(omegas, |omega| {
        let cfg = AemConfig::new(mem, b, omega).unwrap();
        let (conf, a, x) = instance(n, delta, 63);
        let d = spmv_direct(cfg, &conf, &a, &x).expect("direct");
        let s = spmv_sorted(cfg, &conf, &a, &x).expect("sorted");
        (omega, d.q(), s.q(), choose_strategy(cfg, n, delta))
    });
    let mut sorted_wins = 0usize;
    for (omega, dq, sq, predicted) in rows {
        let measured = if dq <= sq {
            SpmvStrategy::Direct
        } else {
            SpmvStrategy::Sorted
        };
        sorted_wins += (measured == SpmvStrategy::Sorted) as usize;
        t.row(vec![
            omega.to_string(),
            dq.to_string(),
            sq.to_string(),
            format!("{measured:?}"),
            format!("{predicted:?}"),
        ]);
    }
    t.note(format!(
        "with B ≫ ω the sorting-based program wins (it moves blocks, the direct one \
         moves entries); the crossover appears as ω grows: {}",
        if sorted_wins > 0 { "PASS" } else { "FAIL" }
    ));
    t
}

fn instance(n: usize, delta: usize, seed: u64) -> (Conformation, Vec<U64Ring>, Vec<U64Ring>) {
    let conf = Conformation::generate(MatrixShape::Random { seed }, n, delta);
    let a: Vec<U64Ring> = (0..conf.nnz())
        .map(|i| U64Ring((i as u64 * 23 + 11) % 127))
        .collect();
    let x: Vec<U64Ring> = (0..n).map(|j| U64Ring((j as u64 * 7 + 1) % 31)).collect();
    (conf, a, x)
}

/// T6a: direct vs sorting-based cost across the density sweep.
pub fn t6_delta_sweep(quick: bool) -> Table {
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let n = if quick { 256 } else { 2048 };
    let deltas: Vec<usize> = if quick {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    let mut t = Table::new(
        "T6a",
        &format!("§5 — SpMxV direct vs sorting-based across δ, N={n}, {cfg}"),
        &[
            "δ",
            "H",
            "Q direct",
            "Q sorted",
            "measured winner",
            "predicted winner",
        ],
    );
    let rows = parallel_map(deltas, |delta| {
        let (conf, a, x) = instance(n, delta, 60 + delta as u64);
        let want = reference_multiply(&conf, &a, &x);
        let d = spmv_direct(cfg, &conf, &a, &x).expect("direct");
        let s = spmv_sorted(cfg, &conf, &a, &x).expect("sorted");
        assert_eq!(d.output, want);
        assert_eq!(s.output, want);
        (
            delta,
            conf.nnz(),
            d.q(),
            s.q(),
            choose_strategy(cfg, n, delta),
        )
    });
    let mut ok = true;
    for (delta, h, dq, sq, predicted) in rows {
        let measured = if dq <= sq {
            SpmvStrategy::Direct
        } else {
            SpmvStrategy::Sorted
        };
        ok &= dq > 0 && sq > 0;
        t.row(vec![
            delta.to_string(),
            h.to_string(),
            dq.to_string(),
            sq.to_string(),
            format!("{measured:?}"),
            format!("{predicted:?}"),
        ]);
    }
    t.note(format!(
        "both algorithms verified against the reference product on every row: {}",
        if ok { "PASS" } else { "FAIL" }
    ));
    t
}

/// T6b: the same crossover in `ω` at fixed δ.
pub fn t6_omega_sweep(quick: bool) -> Table {
    let (mem, b) = (64usize, 8usize);
    let n = if quick { 256 } else { 2048 };
    let delta = 4usize;
    let omegas: Vec<u64> = vec![1, 4, 16, 64, 256];
    let mut t = Table::new(
        "T6b",
        &format!("§5 — SpMxV direct vs sorting-based across ω, N={n}, δ={delta}, M={mem}, B={b}"),
        &[
            "ω",
            "Q direct",
            "Q sorted",
            "sorted/direct",
            "measured winner",
        ],
    );
    let rows = parallel_map(omegas, |omega| {
        let cfg = AemConfig::new(mem, b, omega).unwrap();
        let (conf, a, x) = instance(n, delta, 61);
        let d = spmv_direct(cfg, &conf, &a, &x).expect("direct");
        let s = spmv_sorted(cfg, &conf, &a, &x).expect("sorted");
        (omega, d.q(), s.q())
    });
    for (omega, dq, sq) in rows {
        let measured = if dq <= sq {
            SpmvStrategy::Direct
        } else {
            SpmvStrategy::Sorted
        };
        t.row(vec![
            omega.to_string(),
            dq.to_string(),
            sq.to_string(),
            f(sq as f64 / dq as f64),
            format!("{measured:?}"),
        ]);
    }
    t.note("the direct O(H + ωn) program is ω-robust; the sorted one pays ω per merge level");
    t
}

/// T7: the Theorem 5.1 numeric lower bound vs measured costs, within the
/// theorem's parameter range.
pub fn t7(quick: bool) -> Table {
    let cfg = AemConfig::new(64, 8, 2).unwrap();
    let n = if quick { 1 << 10 } else { 1 << 13 };
    let deltas: Vec<usize> = vec![1, 2, 4];
    let mut t = Table::new(
        "T7",
        &format!("Thm 5.1 — SpMxV lower bound vs measured, N={n}, {cfg}"),
        &[
            "δ",
            "in range (ε=0.05)",
            "Thm 5.1 LB",
            "asymptotic LB",
            "Q direct",
            "Q sorted",
            "best/LB",
        ],
    );
    let rows = parallel_map(deltas, |delta| {
        let (conf, a, x) = instance(n, delta, 62 + delta as u64);
        let d = spmv_direct(cfg, &conf, &a, &x).expect("direct");
        let s = spmv_sorted(cfg, &conf, &a, &x).expect("sorted");
        let lb = sbounds::spmv_cost_lower_bound(n as u64, delta as u64, cfg);
        let asym = sbounds::spmv_lower_bound_asymptotic(n as u64, delta as u64, cfg);
        let applies = sbounds::theorem_applies(n as u64, delta as u64, cfg, 0.05);
        (delta, applies, lb, asym, d.q(), s.q())
    });
    let mut ok = true;
    for (delta, applies, lb, asym, dq, sq) in rows {
        let best = dq.min(sq);
        // Soundness: the numeric bound may never exceed the best measured
        // program's cost.
        ok &= (best as f64) >= lb;
        t.row(vec![
            delta.to_string(),
            applies.to_string(),
            f(lb),
            f(asym),
            dq.to_string(),
            sq.to_string(),
            if lb > 0.0 {
                f(best as f64 / lb)
            } else {
                "—".into()
            },
        ]);
    }
    t.note(format!(
        "no measured program beats the Theorem 5.1 bound: {}",
        if ok { "PASS" } else { "FAIL" }
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_tables_pass() {
        for t in tables(true) {
            assert!(!t.rows.is_empty());
            for n in &t.notes {
                assert!(!n.contains("FAIL"), "{}: {}", t.id, n);
            }
        }
    }
}
