//! T6 / T7 — §5: SpMxV upper-bound crossover and the Theorem 5.1 lower
//! bound.

use aem_core::bounds::spmv as sbounds;
use aem_core::spmv::{
    choose_strategy, install_instance, reference_multiply, spmv_direct_on, spmv_sorted_on,
    MatEntry, SpmvInstance, SpmvRun, SpmvStrategy, U64Ring,
};
use aem_machine::{with_payload_machine, AemAccess, AemConfig, Backend};
use aem_workloads::{Conformation, MatrixShape};

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::{f, Table};

/// All SpMxV sweeps. Both algorithms move semiring values (and the sorted
/// one merge-sorts them), so the ghost backend runs none of them.
pub fn sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    if !backend.carries_payload() {
        return Vec::new();
    }
    vec![
        t6_delta_sweep(quick, backend),
        t6_omega_sweep(quick, backend),
        t6_big_blocks(quick, backend),
        t7(quick, backend),
    ]
}

/// All SpMxV tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// Run one SpMxV strategy on the selected payload-carrying backend.
fn run_spmv(
    backend: Backend,
    cfg: AemConfig,
    conf: &Conformation,
    a: &[U64Ring],
    x: &[U64Ring],
    strategy: SpmvStrategy,
) -> SpmvRun<U64Ring> {
    let inst = SpmvInstance { conf, a_vals: a, x };
    inst.validate().expect("instance dimensions");
    with_payload_machine!(backend, MatEntry<U64Ring>, |M| {
        let mut m = M::new(cfg);
        let (ra, rx) = install_instance(&mut m, &inst);
        let y = match strategy {
            SpmvStrategy::Direct => spmv_direct_on(&mut m, conf, ra, rx).expect("direct"),
            SpmvStrategy::Sorted => spmv_sorted_on(&mut m, conf, ra, rx).expect("sorted"),
        };
        let output = m.inspect(y).into_iter().map(|e| e.val).collect();
        SpmvRun {
            output,
            cost: m.cost(),
            cfg,
        }
    }, ghost => unreachable!("SpMxV sweeps are not built for ghost"))
}

/// T6c: the sorting-based algorithm's home turf — large blocks, mild
/// asymmetry. Direct gathering pays ≈ 2 reads per non-zero regardless of
/// `B`, while sorting moves whole blocks: `ω·lev/B ≪ 1` flips the winner.
pub fn t6_big_blocks(quick: bool, backend: Backend) -> Sweep {
    let (mem, b) = (1024usize, 128usize);
    let n = if quick { 1024 } else { 4096 };
    let delta = 2usize;
    let omegas: Vec<u64> = vec![1, 2, 4, 16, 64];
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let (conf, a, x) = instance(n, delta, 63);
                let d = run_spmv(backend, cfg, &conf, &a, &x, SpmvStrategy::Direct);
                let s = run_spmv(backend, cfg, &conf, &a, &x, SpmvStrategy::Sorted);
                CellOut::new()
                    .with_u64("omega", omega)
                    .with_u64("q_direct", d.q())
                    .with_u64("q_sorted", s.q())
                    .with_str("predicted", format!("{:?}", choose_strategy(cfg, n, delta)))
            })
        })
        .collect();
    Sweep::new("T6c", cells, move |outs| {
        let mut t = Table::new(
            "T6c",
            &format!("§5 — SpMxV with large blocks, N={n}, δ={delta}, M={mem}, B={b}"),
            &[
                "ω",
                "Q direct",
                "Q sorted",
                "measured winner",
                "predicted winner",
            ],
        );
        let mut sorted_wins = 0usize;
        for o in outs {
            let (dq, sq) = (o.u64("q_direct"), o.u64("q_sorted"));
            let measured = if dq <= sq {
                SpmvStrategy::Direct
            } else {
                SpmvStrategy::Sorted
            };
            sorted_wins += (measured == SpmvStrategy::Sorted) as usize;
            t.row(vec![
                o.u64("omega").to_string(),
                dq.to_string(),
                sq.to_string(),
                format!("{measured:?}"),
                o.str("predicted").to_string(),
            ]);
        }
        t.note(format!(
            "with B ≫ ω the sorting-based program wins (it moves blocks, the direct one \
             moves entries); the crossover appears as ω grows: {}",
            if sorted_wins > 0 { "PASS" } else { "FAIL" }
        ));
        t
    })
}

fn instance(n: usize, delta: usize, seed: u64) -> (Conformation, Vec<U64Ring>, Vec<U64Ring>) {
    let conf = Conformation::generate(MatrixShape::Random { seed }, n, delta);
    let a: Vec<U64Ring> = (0..conf.nnz())
        .map(|i| U64Ring((i as u64 * 23 + 11) % 127))
        .collect();
    let x: Vec<U64Ring> = (0..n).map(|j| U64Ring((j as u64 * 7 + 1) % 31)).collect();
    (conf, a, x)
}

/// T6a: direct vs sorting-based cost across the density sweep.
pub fn t6_delta_sweep(quick: bool, backend: Backend) -> Sweep {
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let n = if quick { 256 } else { 2048 };
    let deltas: Vec<usize> = if quick {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    let cells = deltas
        .iter()
        .map(|&delta| {
            Cell::new(format!("delta={delta}"), move || {
                let (conf, a, x) = instance(n, delta, 60 + delta as u64);
                let want = reference_multiply(&conf, &a, &x);
                let d = run_spmv(backend, cfg, &conf, &a, &x, SpmvStrategy::Direct);
                let s = run_spmv(backend, cfg, &conf, &a, &x, SpmvStrategy::Sorted);
                assert_eq!(d.output, want);
                assert_eq!(s.output, want);
                CellOut::new()
                    .with_u64("delta", delta as u64)
                    .with_u64("h", conf.nnz() as u64)
                    .with_u64("q_direct", d.q())
                    .with_u64("q_sorted", s.q())
                    .with_str("predicted", format!("{:?}", choose_strategy(cfg, n, delta)))
            })
        })
        .collect();
    Sweep::new("T6a", cells, move |outs| {
        let mut t = Table::new(
            "T6a",
            &format!("§5 — SpMxV direct vs sorting-based across δ, N={n}, {cfg}"),
            &[
                "δ",
                "H",
                "Q direct",
                "Q sorted",
                "measured winner",
                "predicted winner",
            ],
        );
        let mut ok = true;
        for o in outs {
            let (dq, sq) = (o.u64("q_direct"), o.u64("q_sorted"));
            let measured = if dq <= sq {
                SpmvStrategy::Direct
            } else {
                SpmvStrategy::Sorted
            };
            ok &= dq > 0 && sq > 0;
            t.row(vec![
                o.u64("delta").to_string(),
                o.u64("h").to_string(),
                dq.to_string(),
                sq.to_string(),
                format!("{measured:?}"),
                o.str("predicted").to_string(),
            ]);
        }
        t.note(format!(
            "both algorithms verified against the reference product on every row: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// T6b: the same crossover in `ω` at fixed δ.
pub fn t6_omega_sweep(quick: bool, backend: Backend) -> Sweep {
    let (mem, b) = (64usize, 8usize);
    let n = if quick { 256 } else { 2048 };
    let delta = 4usize;
    let omegas: Vec<u64> = vec![1, 4, 16, 64, 256];
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let (conf, a, x) = instance(n, delta, 61);
                let d = run_spmv(backend, cfg, &conf, &a, &x, SpmvStrategy::Direct);
                let s = run_spmv(backend, cfg, &conf, &a, &x, SpmvStrategy::Sorted);
                CellOut::new()
                    .with_u64("omega", omega)
                    .with_u64("q_direct", d.q())
                    .with_u64("q_sorted", s.q())
            })
        })
        .collect();
    Sweep::new("T6b", cells, move |outs| {
        let mut t = Table::new(
            "T6b",
            &format!(
                "§5 — SpMxV direct vs sorting-based across ω, N={n}, δ={delta}, M={mem}, B={b}"
            ),
            &[
                "ω",
                "Q direct",
                "Q sorted",
                "sorted/direct",
                "measured winner",
            ],
        );
        for o in outs {
            let (dq, sq) = (o.u64("q_direct"), o.u64("q_sorted"));
            let measured = if dq <= sq {
                SpmvStrategy::Direct
            } else {
                SpmvStrategy::Sorted
            };
            t.row(vec![
                o.u64("omega").to_string(),
                dq.to_string(),
                sq.to_string(),
                f(sq as f64 / dq as f64),
                format!("{measured:?}"),
            ]);
        }
        t.note("the direct O(H + ωn) program is ω-robust; the sorted one pays ω per merge level");
        t
    })
}

/// T7: the Theorem 5.1 numeric lower bound vs measured costs, within the
/// theorem's parameter range.
pub fn t7(quick: bool, backend: Backend) -> Sweep {
    let cfg = AemConfig::new(64, 8, 2).unwrap();
    let n = if quick { 1 << 10 } else { 1 << 13 };
    let deltas: Vec<usize> = vec![1, 2, 4];
    let cells = deltas
        .iter()
        .map(|&delta| {
            Cell::new(format!("delta={delta}"), move || {
                let (conf, a, x) = instance(n, delta, 62 + delta as u64);
                let d = run_spmv(backend, cfg, &conf, &a, &x, SpmvStrategy::Direct);
                let s = run_spmv(backend, cfg, &conf, &a, &x, SpmvStrategy::Sorted);
                let lb = sbounds::spmv_cost_lower_bound(n as u64, delta as u64, cfg);
                let asym = sbounds::spmv_lower_bound_asymptotic(n as u64, delta as u64, cfg);
                let applies = sbounds::theorem_applies(n as u64, delta as u64, cfg, 0.05);
                CellOut::new()
                    .with_u64("delta", delta as u64)
                    .with_bool("applies", applies)
                    .with_f64("lb", lb)
                    .with_f64("asym", asym)
                    .with_u64("q_direct", d.q())
                    .with_u64("q_sorted", s.q())
            })
        })
        .collect();
    Sweep::new("T7", cells, move |outs| {
        let mut t = Table::new(
            "T7",
            &format!("Thm 5.1 — SpMxV lower bound vs measured, N={n}, {cfg}"),
            &[
                "δ",
                "in range (ε=0.05)",
                "Thm 5.1 LB",
                "asymptotic LB",
                "Q direct",
                "Q sorted",
                "best/LB",
            ],
        );
        let mut ok = true;
        for o in outs {
            let (dq, sq) = (o.u64("q_direct"), o.u64("q_sorted"));
            let lb = o.f64("lb");
            let best = dq.min(sq);
            // Soundness: the numeric bound may never exceed the best measured
            // program's cost.
            ok &= (best as f64) >= lb;
            t.row(vec![
                o.u64("delta").to_string(),
                o.bool("applies").to_string(),
                f(lb),
                f(o.f64("asym")),
                dq.to_string(),
                sq.to_string(),
                if lb > 0.0 {
                    f(best as f64 / lb)
                } else {
                    "—".into()
                },
            ]);
        }
        t.note(format!(
            "no measured program beats the Theorem 5.1 bound: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_tables_pass() {
        for t in tables(true, Backend::Vec) {
            assert!(!t.rows.is_empty());
            for n in &t.notes {
                assert!(!n.contains("FAIL"), "{}: {}", t.id, n);
            }
        }
    }
}
