//! T2 — Theorem 3.2's merging primitive: `O(ω(n+m))` reads, `O(n+m)`
//! writes for one `ωm`-way merge.

use aem_core::sort::{merge_runs, MergeStats};
use aem_machine::{with_payload_machine, AemAccess, AemConfig, Backend, Cost, Region};
use aem_workloads::KeyDist;

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::{f, Table};

/// Merge `k` pre-sorted runs of `each` elements; return the cost and the
/// merge statistics (including the measured Lemma 3.1 active-run maximum).
/// The merge compares keys and chases external pointers, so `backend` must
/// carry payloads.
pub fn run_merge(
    backend: Backend,
    cfg: AemConfig,
    k: usize,
    each: usize,
    seed: u64,
) -> (Cost, MergeStats) {
    with_payload_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let regions: Vec<Region> = (0..k)
            .map(|i| {
                let mut run = KeyDist::Uniform {
                    seed: seed + i as u64,
                }
                .generate(each);
                run.sort();
                m.install(&run)
            })
            .collect();
        let (out, stats) = merge_runs(&mut m, &regions).expect("merge");
        debug_assert_eq!(out.elems, k * each);
        (m.cost(), stats)
    }, ghost => unreachable!("the merge reads keys and pointers; not payload-oblivious"))
}

/// All merging sweeps. Merging steers on key comparisons, so the ghost
/// backend runs none of them.
pub fn sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    if !backend.carries_payload() {
        return Vec::new();
    }
    vec![t2_fan_sweep(quick, backend), t2_omega_sweep(quick, backend)]
}

/// All merging tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// T2a: merging cost vs the number of runs `k` up to the full fan-in.
pub fn t2_fan_sweep(quick: bool, backend: Backend) -> Sweep {
    let cfg = AemConfig::new(64, 8, 16).unwrap(); // fan-in = 128
    let each = if quick { 64 } else { 512 };
    let ks: Vec<usize> = vec![2, 8, 32, 128];
    let cells = ks
        .iter()
        .map(|&k| {
            Cell::new(format!("k={k}"), move || {
                let (c, stats) = run_merge(backend, cfg, k, each, 10);
                CellOut::new()
                    .with_u64("k", k as u64)
                    .with_u64("reads", c.reads)
                    .with_u64("writes", c.writes)
                    .with_u64("max_active", stats.max_active as u64)
                    .with_u64("active_bound", stats.active_bound as u64)
            })
        })
        .collect();
    Sweep::new("T2a", cells, move |outs| {
        let mut t = Table::new(
            "T2a",
            &format!("Thm 3.2 — one k-way merge on {cfg}, runs of {each}"),
            &[
                "k",
                "N",
                "reads",
                "writes",
                "reads / ω(n+m)",
                "writes / (n+m)",
                "max active (≤ M̂/B)",
            ],
        );
        let mut ok = true;
        for o in outs {
            let k = o.u64("k") as usize;
            let c = Cost::new(o.u64("reads"), o.u64("writes"));
            let total = k * each;
            let n = cfg.blocks_for(total) as f64;
            let m = cfg.m() as f64;
            let rn = c.reads as f64 / (cfg.omega as f64 * (n + m));
            let wn = c.writes as f64 / (n + m);
            let (max_active, bound) = (o.u64("max_active"), o.u64("active_bound"));
            ok &= rn < 10.0 && wn < 5.0 && max_active <= bound;
            t.row(vec![
                k.to_string(),
                total.to_string(),
                c.reads.to_string(),
                c.writes.to_string(),
                f(rn),
                f(wn),
                format!("{max_active} (≤ {bound})"),
            ]);
        }
        t.note(format!(
            "normalized reads and writes stay in a constant band and Lemma 3.1's active-run \
             bound is never exceeded: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// T2b: merging at the full fan-in as `ω` grows (the pointer-array regime
/// `ωm > M` from ω = 16 on for this configuration).
pub fn t2_omega_sweep(quick: bool, backend: Backend) -> Sweep {
    let (mem, b) = (64usize, 8usize);
    let total = if quick { 1 << 12 } else { 1 << 15 };
    let omegas: Vec<u64> = vec![1, 4, 16, 64];
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let k = cfg.fan_in().min(total / 4).max(2);
                let each = total / k;
                let c = run_merge(backend, cfg, k, each, 20).0;
                CellOut::new()
                    .with_u64("omega", omega)
                    .with_u64("reads", c.reads)
                    .with_u64("writes", c.writes)
            })
        })
        .collect();
    Sweep::new("T2b", cells, move |outs| {
        let mut t = Table::new(
            "T2b",
            &format!("Thm 3.2 — full-fan-in merge vs ω at N={total}, M={mem}, B={b}"),
            &[
                "ω",
                "k = ωm",
                "pointers fit in M?",
                "reads",
                "writes",
                "reads / ω(n+m)",
                "writes / (n+m)",
            ],
        );
        let mut ok = true;
        for o in outs {
            let omega = o.u64("omega");
            let cfg = AemConfig::new(mem, b, omega).unwrap();
            let k = cfg.fan_in().min(total / 4).max(2);
            let c = Cost::new(o.u64("reads"), o.u64("writes"));
            let n = cfg.blocks_for(k * (total / k)) as f64;
            let m = cfg.m() as f64;
            let rn = c.reads as f64 / (omega as f64 * (n + m));
            let wn = c.writes as f64 / (n + m);
            ok &= rn < 10.0 && wn < 5.0;
            t.row(vec![
                omega.to_string(),
                k.to_string(),
                if k <= mem {
                    "yes".into()
                } else {
                    "NO — external b[i] required".into()
                },
                c.reads.to_string(),
                c.writes.to_string(),
                f(rn),
                f(wn),
            ]);
        }
        t.note(format!(
            "cost bands hold even when the ωm run pointers exceed M: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_merge_tables_pass() {
        for t in tables(true, Backend::Vec) {
            assert!(!t.rows.is_empty());
            for n in &t.notes {
                assert!(!n.contains("FAIL"), "{}: {}", t.id, n);
            }
        }
    }
}
