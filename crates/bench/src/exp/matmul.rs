//! T13 — tiled dense matrix multiply through the workload registry:
//! write-avoiding vs streaming tiling under ω.
//!
//! Both tilings read `2·H³·bt` blocks of operand tiles (`H = ⌈d/t⌉`
//! tiles per side, `bt` blocks per tile). They differ only in how the
//! output matrix is produced: the write-avoiding tiling (Blelloch et
//! al.-style) keeps one C tile resident across the whole k-loop and
//! writes each output block exactly once (`H²·bt` writes), paying for
//! it with a smaller tile (three tiles must fit in M); the streaming
//! tiling holds only two tiles, so its C blocks cycle through memory
//! once per k-step (`H³·bt` writes) but its larger tile needs fewer
//! k-steps. Sweeping ω exposes the crossover: cheap writes favor the
//! streaming tiling's larger tiles, dear writes favor the resident
//! output. Both schedules are position-routed, so the cost-only ghost
//! backend runs the grid too.

use aem_core::workload::{run_workload, LiveHarness, RunCtx, WorkloadKind};
use aem_machine::{AemConfig, Backend, Cost};

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::Table;

/// All matmul sweeps. Both registered tilings are ghost-sound, so the
/// grid runs on every backend.
pub fn sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    vec![t13(quick, backend)]
}

/// All matmul tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// Run one registered tiling live and return its metered cost.
fn measured(backend: Backend, cfg: AemConfig, algo: &str, n: usize) -> Cost {
    let ctx = RunCtx::new(WorkloadKind::Matmul, algo, cfg, n, 0, 7).expect("valid shape");
    let (cost, _) = run_workload(&ctx, &mut LiveHarness { backend }).expect("matmul run");
    cost
}

/// T13: d×d multiply across the ω sweep, both tilings from the registry
/// menu, metered vs the exact-schedule predictors.
pub fn t13(quick: bool, backend: Backend) -> Sweep {
    let n = 1764; // d = 42
    let omegas: Vec<u64> = if quick {
        vec![1, 64]
    } else {
        vec![1, 4, 8, 16, 64]
    };
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::new(1024, 64, omega).unwrap();
                let w = WorkloadKind::Matmul.descriptor();
                let mut out = CellOut::new().with_u64("omega", omega);
                let mut sound = true;
                for a in w.algos {
                    let m = measured(backend, cfg, a.name, n);
                    let p = (a.predict)(cfg, n, 0).expect("both tilings fit at M=1024");
                    // Both predictors are exact schedules.
                    sound &= m == p;
                    out = out
                        .with_u64(&format!("r_{}", a.name), m.reads)
                        .with_u64(&format!("w_{}", a.name), m.writes)
                        .with_u64(&format!("q_{}", a.name), m.q(cfg.omega));
                }
                let (best, _) = w.cheapest(cfg, n, 0).expect("non-empty menu");
                out.with_bool("sound", sound).with_str("cheapest", best)
            })
        })
        .collect();
    let (w_lo, w_hi) = (omegas[0], *omegas.last().unwrap());
    Sweep::new("T13", cells, move |outs| {
        let mut t = Table::new(
            "T13",
            &format!("matmul — 42x42 multiply (N={n}), write-avoiding vs streaming tiling, M=1024, B=64, ω swept"),
            &[
                "ω",
                "tiled r/w",
                "Q tiled",
                "stream r/w",
                "Q stream",
                "registry cheapest",
                "predictor sound",
            ],
        );
        let mut all_sound = true;
        for o in outs {
            all_sound &= o.bool("sound");
            t.row(vec![
                o.u64("omega").to_string(),
                format!("{}/{}", o.u64("r_tiled"), o.u64("w_tiled")),
                o.u64("q_tiled").to_string(),
                format!("{}/{}", o.u64("r_stream"), o.u64("w_stream")),
                o.u64("q_stream").to_string(),
                o.str("cheapest").to_string(),
                o.bool("sound").to_string(),
            ]);
        }
        let crossed = outs.first().unwrap().str("cheapest") == "stream"
            && outs.last().unwrap().str("cheapest") == "tiled";
        t.note(format!(
            "metered costs match the exact-schedule predictors on every row: {}",
            if all_sound { "PASS" } else { "FAIL" }
        ));
        t.note(format!(
            "the streaming tiling's larger tiles win at ω = {w_lo}, the write-avoiding \
             resident-output tiling wins at ω = {w_hi}: {}",
            if crossed { "PASS" } else { "FAIL" }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_tables_pass() {
        for t in tables(true, Backend::Vec) {
            assert!(!t.rows.is_empty());
            for n in &t.notes {
                assert!(!n.contains("FAIL"), "{}: {}", t.id, n);
            }
        }
    }

    #[test]
    fn ghost_renders_the_same_matmul_table() {
        let vec_t: Vec<String> = tables(true, Backend::Vec)
            .iter()
            .map(Table::to_markdown)
            .collect();
        let ghost_t: Vec<String> = tables(true, Backend::Ghost)
            .iter()
            .map(Table::to_markdown)
            .collect();
        assert_eq!(vec_t, ghost_t);
    }
}
