//! T9 / T9b / T9G — the buffered external priority queue and replacement
//! selection run generation under the `(M, B, ω)` cost model.
//!
//! * T9 sandwiches the PQ-backed sorter between its exact-schedule
//!   predictor ([`predict::pq_sort_cost`]) and the Theorem 3.2 mergesort.
//! * T9b measures replacement selection across input shapes: the classical
//!   `≈ 2h` expected run length, the `h + 1` adversarial floor on
//!   descending input, and the single-pass, `ω`-independent read cost.
//! * T9G is the backend-differential grid: with **constant keys** every
//!   comparison inside the queue resolves by the deterministic
//!   `(run, position)` tie-break, so the I/O schedule is payload-oblivious
//!   and the cost-only ghost store must reproduce the `vec` table
//!   byte-for-byte (checked in CI next to `T5N`).

use aem_core::bounds::predict;
use aem_core::pq::replacement_select;
use aem_core::sort::sort_via_pq;
use aem_machine::{
    with_backend_machine, with_payload_machine, AemAccess, AemConfig, Backend, Cost,
};
use aem_workloads::KeyDist;

use crate::sweep::{Cell, CellOut, Sweep};
use crate::table::{ratio, Table};

use super::sorting::run_merge_sort;

/// Run the PQ-backed sorter on a fresh machine; returns the exact cost.
/// The queue steers on key comparisons, so `backend` must carry payloads.
pub fn run_pq_sort(backend: Backend, cfg: AemConfig, n: usize, seed: u64) -> Cost {
    let input = KeyDist::Uniform { seed }.generate(n);
    with_payload_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let r = m.install(&input);
        let out = sort_via_pq(&mut m, r).expect("sort_via_pq");
        debug_assert_eq!(m.inspect(out).len(), n);
        m.cost()
    }, ghost => unreachable!("pq sorting on random keys steers on comparisons"))
}

/// Run replacement selection on a fresh machine; returns
/// `(runs produced, heap capacity h, exact cost)`.
pub fn run_replacement_select(
    backend: Backend,
    cfg: AemConfig,
    dist: KeyDist,
    n: usize,
) -> (usize, usize, Cost) {
    let input = dist.generate(n);
    with_payload_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let r = m.install(&input);
        let (runs, stats) = replacement_select(&mut m, r).expect("replacement_select");
        debug_assert_eq!(runs.len(), stats.runs);
        (stats.runs, stats.heap_capacity, m.cost())
    }, ghost => unreachable!("replacement selection steers on key comparisons"))
}

/// Run the PQ-backed sorter on constant keys. Sound on **every** backend:
/// with all keys equal, control flow inside the queue depends only on the
/// deterministic `(run, position)` tie-breaks, never on payload bytes, so
/// the ghost store traces the identical I/O schedule.
fn run_pq_constant(backend: Backend, cfg: AemConfig, n: usize) -> Cost {
    let input = vec![0u64; n];
    with_backend_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let r = m.install(&input);
        sort_via_pq(&mut m, r).expect("sort_via_pq");
        m.cost()
    })
}

/// All priority-queue sweeps `backend` supports. The payload-carrying
/// backends run everything; ghost runs only the constant-key grid T9G.
pub fn sweeps(quick: bool, backend: Backend) -> Vec<Sweep> {
    if !backend.carries_payload() {
        return vec![t9g_constant_keys(quick, backend)];
    }
    vec![
        t9_sandwich(quick, backend),
        t9b_run_generation(quick, backend),
        t9g_constant_keys(quick, backend),
    ]
}

/// All priority-queue tables (serial execution of [`sweeps`]).
pub fn tables(quick: bool, backend: Backend) -> Vec<Table> {
    sweeps(quick, backend)
        .iter()
        .map(Sweep::run_serial)
        .collect()
}

/// T9: the Theorem 3.2 sandwich for the PQ-backed sorter. Measured cost
/// must stay under the exact-schedule predictor (component-wise) and
/// within a constant factor of the §3 mergesort across four orders of
/// magnitude of `ω`, including `ω > B`.
pub fn t9_sandwich(quick: bool, backend: Backend) -> Sweep {
    let (mem, b) = (64usize, 8usize);
    let n = if quick { 1 << 11 } else { 1 << 14 };
    let omegas: Vec<u64> = vec![1, 8, 64, 256];
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let pq = run_pq_sort(backend, cfg, n, 9);
                let merge = run_merge_sort(backend, cfg, n, 9);
                let pred = predict::pq_sort_cost(cfg, n);
                CellOut::new()
                    .with_u64("omega", omega)
                    .with_u64("pq_reads", pq.reads)
                    .with_u64("pq_writes", pq.writes)
                    .with_u64("pred_reads", pred.reads)
                    .with_u64("pred_writes", pred.writes)
                    .with_u64("merge_q", merge.q(omega))
            })
        })
        .collect();
    Sweep::new("T9", cells, move |outs| {
        let mut t = Table::new(
            "T9",
            &format!("Thm 3.2 sandwich — PQ-backed sort vs AEM mergesort at N={n}, M={mem}, B={b}"),
            &[
                "ω",
                "reads PQ",
                "writes PQ",
                "Q PQ-sort",
                "Q predicted",
                "Q AEM-merge",
                "PQ/merge",
            ],
        );
        let mut ok = true;
        for o in outs {
            let omega = o.u64("omega");
            let pq = Cost::new(o.u64("pq_reads"), o.u64("pq_writes"));
            let pred = Cost::new(o.u64("pred_reads"), o.u64("pred_writes"));
            let (qp, qm) = (pq.q(omega), o.u64("merge_q"));
            ok &= pq.reads <= pred.reads && pq.writes <= pred.writes;
            ok &= (qp as f64) < 40.0 * qm as f64;
            t.row(vec![
                omega.to_string(),
                pq.reads.to_string(),
                pq.writes.to_string(),
                qp.to_string(),
                pred.q(omega).to_string(),
                qm.to_string(),
                ratio(qp as f64, qm as f64),
            ]);
        }
        t.note(format!(
            "measured ≤ exact-schedule predictor (component-wise) and within the 40x \
             constant of the mergesort side of the Thm 3.2 sandwich at every ω: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// T9b: replacement selection across input shapes at fixed `(M, B, ω)`.
/// Sorted input collapses to one run, descending input is the adversarial
/// floor (`h + 1` per run), random input shows the classical `≈ 2h`
/// snow-plow expectation — and the pass reads exactly `⌈n/B⌉` blocks
/// regardless of shape, because run generation is a single scan.
pub fn t9b_run_generation(quick: bool, backend: Backend) -> Sweep {
    let cfg = AemConfig::new(64, 8, 16).unwrap();
    let n = if quick { 1 << 11 } else { 1 << 14 };
    let dists: Vec<(&str, KeyDist)> = vec![
        ("sorted", KeyDist::Sorted),
        ("reversed", KeyDist::Reversed),
        ("uniform", KeyDist::Uniform { seed: 9 }),
        (
            "dup-heavy",
            KeyDist::FewDistinct {
                distinct: 4,
                seed: 9,
            },
        ),
    ];
    let cells = dists
        .iter()
        .map(|&(label, dist)| {
            Cell::new(format!("dist={label}"), move || {
                let (runs, h, cost) = run_replacement_select(backend, cfg, dist, n);
                CellOut::new()
                    .with_str("dist", label)
                    .with_u64("runs", runs as u64)
                    .with_u64("h", h as u64)
                    .with_u64("reads", cost.reads)
                    .with_u64("writes", cost.writes)
            })
        })
        .collect();
    Sweep::new("T9b", cells, move |outs| {
        let mut t = Table::new(
            "T9b",
            &format!("Replacement selection — run generation on {cfg}, N={n}"),
            &["input", "runs", "avg run len", "avg / h", "reads", "writes"],
        );
        let nb = cfg.blocks_for(n) as u64;
        let mut ok = true;
        for o in outs {
            let (runs, h) = (o.u64("runs"), o.u64("h"));
            let avg = n as f64 / runs as f64;
            match o.str("dist") {
                // Presorted input never evicts across a boundary.
                "sorted" => ok &= runs == 1,
                // Descending input defeats the heap: h + 1 per full run.
                "reversed" => ok &= runs == (n as u64).div_ceil(h + 1),
                // Snow-plow effect: average run length well beyond h.
                "uniform" => ok &= avg >= 1.5 * h as f64,
                // Ties join the current run (`x ≥ last`), so duplicates
                // stretch runs beyond the continuous-key ≈2h expectation.
                _ => ok &= avg >= 2.0 * h as f64,
            }
            // Single pass: exactly ⌈n/B⌉ input reads, shape-independent.
            ok &= o.u64("reads") == nb;
            t.row(vec![
                o.str("dist").to_string(),
                runs.to_string(),
                format!("{avg:.1}"),
                format!("{:.2}", avg / h as f64),
                o.u64("reads").to_string(),
                o.u64("writes").to_string(),
            ]);
        }
        t.note(format!(
            "1 run on presorted, ⌈n/(h+1)⌉ on descending, ≥ 1.5h average on random, \
             ≥ 2h on duplicate-heavy, and exactly ⌈n/B⌉ reads on every shape: {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

/// T9G: the backend-differential PQ grid. Constant keys make the queue's
/// I/O schedule payload-oblivious, so this one table also runs on the
/// cost-only ghost store — CI byte-compares the ghost rendering against
/// `vec`, extending the `T5N` differential to the PQ subsystem.
pub fn t9g_constant_keys(quick: bool, backend: Backend) -> Sweep {
    let (mem, b) = (64usize, 8usize);
    let n = if quick { 1 << 10 } else { 1 << 13 };
    let omegas: Vec<u64> = vec![1, 16, 256];
    let cells = omegas
        .iter()
        .map(|&omega| {
            Cell::new(format!("omega={omega}"), move || {
                let cfg = AemConfig::new(mem, b, omega).unwrap();
                let c = run_pq_constant(backend, cfg, n);
                let pred = predict::pq_sort_cost(cfg, n);
                CellOut::new()
                    .with_u64("omega", omega)
                    .with_u64("reads", c.reads)
                    .with_u64("writes", c.writes)
                    .with_u64("pred_reads", pred.reads)
                    .with_u64("pred_writes", pred.writes)
            })
        })
        .collect();
    Sweep::new("T9G", cells, move |outs| {
        let mut t = Table::new(
            "T9G",
            &format!("PQ-backed sort, constant keys (payload-oblivious) at N={n}, M={mem}, B={b}"),
            &["ω", "reads", "writes", "Q", "Q predicted"],
        );
        let mut ok = true;
        for o in outs {
            let omega = o.u64("omega");
            let c = Cost::new(o.u64("reads"), o.u64("writes"));
            let pred = Cost::new(o.u64("pred_reads"), o.u64("pred_writes"));
            ok &= c.reads <= pred.reads && c.writes <= pred.writes;
            t.row(vec![
                omega.to_string(),
                c.reads.to_string(),
                c.writes.to_string(),
                c.q(omega).to_string(),
                pred.q(omega).to_string(),
            ]);
        }
        t.note(format!(
            "measured ≤ exact-schedule predictor on the constant-key grid \
             (identical on every storage backend): {}",
            if ok { "PASS" } else { "FAIL" }
        ));
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pq_tables_pass() {
        for t in tables(true, Backend::Vec) {
            assert!(!t.rows.is_empty(), "{} has rows", t.id);
            for n in &t.notes {
                assert!(!n.contains("FAIL"), "{}: {}", t.id, n);
            }
        }
    }

    #[test]
    fn arena_renders_identically_to_vec() {
        let vec_tables = tables(true, Backend::Vec);
        let arena_tables = tables(true, Backend::Arena);
        assert_eq!(vec_tables.len(), arena_tables.len());
        for (v, a) in vec_tables.iter().zip(&arena_tables) {
            assert_eq!(
                v.to_markdown(),
                a.to_markdown(),
                "{} diverges on arena",
                v.id
            );
        }
    }

    #[test]
    fn ghost_runs_only_the_constant_key_grid() {
        let ids: Vec<String> = sweeps(true, Backend::Ghost)
            .iter()
            .map(|s| s.id.clone())
            .collect();
        assert_eq!(ids, vec!["T9G".to_string()]);
    }

    #[test]
    fn ghost_t9g_matches_vec_byte_for_byte() {
        // The constant-key grid is payload-oblivious, so the cost-only
        // ghost store must render the identical table.
        let vec_t = t9g_constant_keys(true, Backend::Vec).run_serial();
        let ghost_t = t9g_constant_keys(true, Backend::Ghost).run_serial();
        assert_eq!(vec_t.to_markdown(), ghost_t.to_markdown());
    }
}
