//! The strict deterministic cost gate: metered `(Q_r, Q_w)` per canonical
//! workload/backend cell, compared **exactly** against the committed
//! `COSTS.json` snapshot.
//!
//! Wall-clock benchmarks jitter, so [`crate::perfgate`] tolerates slack.
//! I/O costs do not: the simulator is deterministic, every cell is a pure
//! function of `(kind, algo, backend, M, B, ω, n, δ, seed)`, and the
//! exact read/write counts are the quantity the paper's theorems bound.
//! Any drift — one extra read on one cell — is a cost-model change that
//! must be reviewed, so the gate compares integers for equality and
//! `--strict` fails on the first mismatch. The committed snapshot is
//! refreshed deliberately with `cost_gate --write` when a change is
//! intentional, never silently.
//!
//! The cells are metered through the serving stack ([`aem_serve::planner`]
//! picks the algorithm, [`aem_serve::exec`] runs and meters it), so the
//! gate also pins the planner's choices: an algorithm flip on a canonical
//! cell shows up as a missing + new cell pair, not just new numbers.

use std::path::Path;

use aem_obs::json::{obj, Json};
use aem_serve::exec::{execute, TraceCache};
use aem_serve::planner::plan;
use aem_serve::protocol::{JobKind, JobSpec};

/// The two canonical machine shapes: the paper-default sweet spot and a
/// small, block-hungry shape where algorithm crossovers sit nearby.
pub const CONFIGS: [(usize, usize, u64); 2] = [(1024, 64, 16), (64, 8, 16)];

/// The canonical cell registry: every registered kind's `gate_shapes`
/// on every config, once on the payload-carrying vec backend and once
/// cost-only through the trace backend (whose replay-equals-live
/// contract the gate thereby pins), plus a ghost cell wherever the
/// planner deems ghost pricing sound. A kind registered in `aem-core`
/// is metered here with zero edits — its descriptor names its shapes.
pub fn canonical_cells() -> Vec<JobSpec> {
    let mut cells = Vec::new();
    let mut id = 0;
    for &(mem, block, omega) in &CONFIGS {
        for kind in JobKind::ALL {
            for &(n, delta) in kind.descriptor().gate_shapes {
                for backend in ["vec", "trace"] {
                    id += 1;
                    cells.push(JobSpec {
                        id,
                        kind,
                        n,
                        mem,
                        block,
                        omega,
                        delta,
                        seed: 1,
                        payload: backend == "vec",
                        backend: Some(backend.to_string()),
                    });
                }
                // Ghost is only sound where the cheapest algorithm is
                // payload-oblivious; the planner is the authority on
                // that, so the cell is included exactly when it accepts
                // a forced ghost.
                id += 1;
                let ghost = JobSpec {
                    id,
                    kind,
                    n,
                    mem,
                    block,
                    omega,
                    delta,
                    seed: 1,
                    payload: false,
                    backend: Some("ghost".to_string()),
                };
                if plan(&ghost).is_ok() {
                    cells.push(ghost);
                }
            }
        }
    }
    cells
}

/// The stable identity of a cell in `COSTS.json`. Includes the chosen
/// algorithm so a planner flip is visible as a key change.
pub fn cell_name(spec: &JobSpec, algo: &str) -> String {
    format!(
        "{}/{}/{}/M{}/B{}/w{}/n{}/d{}/s{}",
        spec.kind.name(),
        algo,
        spec.backend.as_deref().unwrap_or("auto"),
        spec.mem,
        spec.block,
        spec.omega,
        spec.n,
        spec.delta,
        spec.seed
    )
}

/// Meter every canonical cell and render the snapshot document.
pub fn measure() -> Result<Json, String> {
    let cache = TraceCache::new();
    let mut cells = Vec::new();
    for spec in canonical_cells() {
        let p = plan(&spec).map_err(|e| format!("plan {}: {e}", spec.kind.name()))?;
        let r =
            execute(&spec, &p, &cache).map_err(|e| format!("exec {}: {e}", spec.kind.name()))?;
        cells.push((
            cell_name(&spec, p.algo),
            obj(vec![
                ("reads", Json::UInt(r.measured.reads)),
                ("writes", Json::UInt(r.measured.writes)),
            ]),
        ));
    }
    cells.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(Json::Obj(vec![
        ("gate".to_string(), Json::Str("cost-model".into())),
        (
            "note".to_string(),
            Json::Str(
                "exact metered (Q_r, Q_w) per canonical cell; regenerate with \
                 `cargo run -p aem-bench --bin cost_gate -- --write` only when \
                 a cost-model change is intentional"
                    .into(),
            ),
        ),
        ("cells".to_string(), Json::Obj(cells)),
    ]))
}

/// One cell's verdict: exact match, integer drift, or a key that exists
/// on only one side (all three are failures for this gate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostVerdict {
    /// The cell key.
    pub cell: String,
    /// Committed `(reads, writes)`, `None` when the cell is new.
    pub baseline: Option<(u64, u64)>,
    /// Freshly metered `(reads, writes)`, `None` when the cell vanished.
    pub current: Option<(u64, u64)>,
}

impl CostVerdict {
    /// Exact equality is the only passing state.
    pub fn drifted(&self) -> bool {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) => b != c,
            _ => true, // missing or new cells are drift: the registry is fixed
        }
    }

    fn status(&self) -> &'static str {
        match (self.baseline, self.current) {
            (None, _) => "NEW",
            (_, None) => "GONE",
            (Some(b), Some(c)) if b != c => "DRIFT",
            _ => "ok",
        }
    }
}

/// The full gate report.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// One verdict per cell key seen on either side, key-sorted.
    pub verdicts: Vec<CostVerdict>,
}

impl CostReport {
    /// Cells that are not exact matches.
    pub fn drifts(&self) -> Vec<&CostVerdict> {
        self.verdicts.iter().filter(|v| v.drifted()).collect()
    }

    /// Render the verdict table.
    pub fn render(&self) -> String {
        let fmt = |x: Option<(u64, u64)>| match x {
            Some((r, w)) => format!("{r}r+{w}w"),
            None => "-".to_string(),
        };
        let mut out = String::from("cost gate: exact (Q_r, Q_w) vs committed COSTS.json\n");
        for v in &self.verdicts {
            out.push_str(&format!(
                "  {:<44} {:>16} -> {:>16}  {}\n",
                v.cell,
                fmt(v.baseline),
                fmt(v.current),
                v.status()
            ));
        }
        let drifts = self.drifts();
        if drifts.is_empty() {
            out.push_str("verdict: all cells exact\n");
        } else {
            out.push_str(&format!(
                "verdict: {} cell(s) drifted — if intentional, regenerate with --write\n",
                drifts.len()
            ));
        }
        out
    }
}

type CellCosts = Vec<(String, (u64, u64))>;

fn cells_of(doc: &Json) -> Result<CellCosts, String> {
    let cells = doc.get("cells").ok_or("document has no 'cells' object")?;
    let Json::Obj(members) = cells else {
        return Err("'cells' is not an object".into());
    };
    let mut out = Vec::new();
    for (name, v) in members {
        let reads = v
            .get("reads")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cell '{name}' has no integer 'reads'"))?;
        let writes = v
            .get("writes")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cell '{name}' has no integer 'writes'"))?;
        out.push((name.clone(), (reads, writes)));
    }
    Ok(out)
}

/// Compare a committed snapshot against a fresh measurement.
pub fn compare(baseline: &Json, current: &Json) -> Result<CostReport, String> {
    let base = cells_of(baseline)?;
    let cur = cells_of(current)?;
    let mut verdicts = Vec::new();
    for (cell, b) in &base {
        verdicts.push(CostVerdict {
            cell: cell.clone(),
            baseline: Some(*b),
            current: cur.iter().find(|(c, _)| c == cell).map(|&(_, x)| x),
        });
    }
    for (cell, c) in &cur {
        if !base.iter().any(|(b, _)| b == cell) {
            verdicts.push(CostVerdict {
                cell: cell.clone(),
                baseline: None,
                current: Some(*c),
            });
        }
    }
    verdicts.sort_by(|a, b| a.cell.cmp(&b.cell));
    Ok(CostReport { verdicts })
}

/// Meter the canonical cells and gate them against the snapshot at
/// `costs_path`.
pub fn run_cost_gate(costs_path: &Path) -> Result<CostReport, String> {
    let text = std::fs::read_to_string(costs_path)
        .map_err(|e| format!("cannot read {}: {e}", costs_path.display()))?;
    let baseline =
        aem_obs::json::parse(&text).map_err(|e| format!("{}: {e}", costs_path.display()))?;
    let current = measure()?;
    compare(&baseline, &current)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_nonempty_with_unique_stable_keys() {
        let cells = canonical_cells();
        assert!(cells.len() >= 2 * CONFIGS.len() * JobKind::ALL.len());
        let mut keys: Vec<String> = cells
            .iter()
            .map(|s| cell_name(s, plan(s).unwrap().algo))
            .collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "cell keys must be unique");
        // Both shapes and both standard backends appear.
        assert!(keys.iter().any(|k| k.contains("/vec/M1024/")));
        assert!(keys.iter().any(|k| k.contains("/trace/M64/")));
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = measure().unwrap().to_string_compact();
        let b = measure().unwrap().to_string_compact();
        assert_eq!(a, b);
    }

    #[test]
    fn exact_match_passes_and_any_drift_fails() {
        let doc = |r: u64| {
            obj(vec![(
                "cells",
                obj(vec![(
                    "sort/aem/vec/x",
                    obj(vec![("reads", Json::UInt(r)), ("writes", Json::UInt(10))]),
                )]),
            )])
        };
        let same = compare(&doc(100), &doc(100)).unwrap();
        assert!(same.drifts().is_empty());
        assert!(same.render().contains("all cells exact"));

        let off = compare(&doc(100), &doc(101)).unwrap();
        assert_eq!(off.drifts().len(), 1);
        assert!(off.render().contains("DRIFT"), "{}", off.render());
    }

    #[test]
    fn missing_and_new_cells_are_drift_not_schema_growth() {
        let empty = obj(vec![("cells", obj(vec![]))]);
        let one = obj(vec![(
            "cells",
            obj(vec![(
                "a",
                obj(vec![("reads", Json::UInt(1)), ("writes", Json::UInt(2))]),
            )]),
        )]);
        let gone = compare(&one, &empty).unwrap();
        assert_eq!(gone.drifts().len(), 1);
        assert!(gone.render().contains("GONE"));
        let new = compare(&empty, &one).unwrap();
        assert_eq!(new.drifts().len(), 1);
        assert!(new.render().contains("NEW"));
    }

    #[test]
    fn committed_costs_json_is_exact() {
        // The real gate, run as a unit test: the repo's committed snapshot
        // must match a fresh metering bit for bit.
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../COSTS.json");
        let report = run_cost_gate(&path).unwrap();
        assert!(report.drifts().is_empty(), "{}", report.render());
        assert!(!report.verdicts.is_empty());
    }
}
