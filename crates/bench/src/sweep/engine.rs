//! The parallel, resumable sweep executor.
//!
//! Takes a list of [`Sweep`]s, flattens them into independent cells,
//! subtracts the cells already present in the result cache, and executes
//! the remainder on a pool of `std::thread::scope` workers pulling from a
//! shared queue (work stealing at cell granularity — no static
//! partitioning, so one slow table cannot idle the other workers).
//!
//! Determinism: execution order is whatever the pool produces, but results
//! are reassembled **in cell-declaration order** (each cell is keyed, and
//! the per-sweep `render` always sees the sorted sequence), so the tables
//! a parallel run prints are byte-identical to a `--jobs 1` run — and to a
//! fully cached run. Wall-clock timings never enter a table cell; they are
//! reported separately via [`RunReport::stats_table`] and the
//! [`aem_obs::Metrics`] registry.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use aem_machine::Backend;
use aem_obs::Metrics;

use super::cache::{self, Cache, CacheWriter};
use super::value::CellOut;
use super::Sweep;
use crate::table::Table;

/// Options controlling one engine run (the `run_all` / `aemsim exp`
/// flags, in struct form).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Result-cache file (JSONL). `None` disables caching.
    pub cache: Option<PathBuf>,
    /// Truncate the cache before running (`--fresh`).
    pub fresh: bool,
    /// Restrict to experiments whose id matches one of these patterns
    /// (case-insensitive exact match or prefix, so `t1` selects T1a–T1f).
    pub only: Option<Vec<String>>,
    /// Storage backend the sweeps were built for; part of every cache key
    /// so runs on different backends never share cached cells.
    pub backend: Backend,
}

impl RunOptions {
    /// `true` if `id` is selected by the `only` filter (everything is
    /// selected when no filter is set).
    pub fn selects(&self, id: &str) -> bool {
        match &self.only {
            None => true,
            Some(pats) => pats
                .iter()
                .any(|p| id.len() >= p.len() && id[..p.len()].eq_ignore_ascii_case(p)),
        }
    }

    /// The effective worker count.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        }
    }
}

/// Per-experiment outcome of an engine run.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Experiment id (e.g. "T1a").
    pub id: String,
    /// The rendered table, unless a cell or the renderer panicked.
    pub table: Option<Table>,
    /// First panic message observed, if any.
    pub panic: Option<String>,
    /// Total cells in the sweep's grid.
    pub cells: usize,
    /// Cells simulated in this run.
    pub executed: usize,
    /// Cells served from the result cache.
    pub cached: usize,
    /// Summed wall time of this sweep's executed cells.
    pub cell_nanos: u128,
}

impl SweepOutcome {
    /// Machine-checked verdict: `PANIC` if any cell or the renderer
    /// panicked, `FAIL` if a rendered note carries a failed check,
    /// `PASS` otherwise.
    pub fn verdict(&self) -> &'static str {
        if self.panic.is_some() {
            "PANIC"
        } else if self
            .table
            .as_ref()
            .is_some_and(|t| t.notes.iter().any(|n| n.contains("FAIL")))
        {
            "FAIL"
        } else {
            "PASS"
        }
    }
}

/// The result of one engine run.
#[derive(Debug)]
pub struct RunReport {
    /// Per-experiment outcomes, in declaration order.
    pub outcomes: Vec<SweepOutcome>,
    /// Total cells simulated.
    pub executed: usize,
    /// Total cells served from cache.
    pub cached: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock time of the execution phase.
    pub wall: Duration,
    /// Summed busy time across all workers.
    pub busy_nanos: u128,
    /// Phase-attributed engine metrics (cell timings, utilization).
    pub metrics: Metrics,
}

impl RunReport {
    /// `true` when every experiment's verdict is PASS.
    pub fn all_pass(&self) -> bool {
        self.outcomes.iter().all(|o| o.verdict() == "PASS")
    }

    /// Worker utilization in `[0, 1]`: busy time / (wall × workers).
    pub fn utilization(&self) -> f64 {
        let denom = self.wall.as_nanos() as f64 * self.jobs as f64;
        if denom == 0.0 {
            return 0.0;
        }
        (self.busy_nanos as f64 / denom).min(1.0)
    }

    /// The engine's own report: per-experiment cell counts, cache hits and
    /// wall time, plus pool totals. Timings are wall-clock, so this table
    /// is diagnostic output (stderr), never part of the deterministic
    /// experiment document.
    pub fn stats_table(&self) -> Table {
        let mut t = Table::new(
            "SWEEP",
            &format!(
                "sweep engine — {} workers, {} cells simulated, {} cached",
                self.jobs, self.executed, self.cached
            ),
            &[
                "experiment",
                "verdict",
                "cells",
                "executed",
                "cached",
                "cell time (ms)",
            ],
        );
        for o in &self.outcomes {
            t.row(vec![
                o.id.clone(),
                o.verdict().to_string(),
                o.cells.to_string(),
                o.executed.to_string(),
                o.cached.to_string(),
                format!("{:.1}", o.cell_nanos as f64 / 1e6),
            ]);
        }
        let serial_ms = self.busy_nanos as f64 / 1e6;
        let wall_ms = self.wall.as_nanos() as f64 / 1e6;
        t.note(format!(
            "wall {:.1} ms vs {:.1} ms of cell work — speedup {:.2}x at {:.0}% worker utilization",
            wall_ms,
            serial_ms,
            if wall_ms > 0.0 {
                serial_ms / wall_ms
            } else {
                0.0
            },
            100.0 * self.utilization(),
        ));
        t
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute `sweeps` under `opts`: subtract cached cells, run the rest on
/// the worker pool (appending each completed cell to the cache), then
/// render every table from results in declaration order.
///
/// # Errors
///
/// Returns `Err` for cache-file I/O failures and for `--only` patterns
/// that match no experiment (listing the valid ids); cell and renderer
/// panics are captured per experiment in the report instead.
pub fn run(sweeps: &[Sweep], opts: &RunOptions) -> Result<RunReport, String> {
    let salt = cache::code_salt();
    if let Some(pats) = &opts.only {
        let unmatched: Vec<&str> = pats
            .iter()
            .filter(|p| {
                !sweeps
                    .iter()
                    .any(|s| s.id.len() >= p.len() && s.id[..p.len()].eq_ignore_ascii_case(p))
            })
            .map(String::as_str)
            .collect();
        if !unmatched.is_empty() {
            let ids: Vec<&str> = sweeps.iter().map(|s| s.id.as_str()).collect();
            return Err(format!(
                "--only pattern(s) {} match no experiment; valid ids: {}",
                unmatched.join(", "),
                ids.join(", ")
            ));
        }
    }
    let selected: Vec<&Sweep> = sweeps.iter().filter(|s| opts.selects(&s.id)).collect();

    let cache_map = match (&opts.cache, opts.fresh) {
        (Some(path), false) => Cache::load(path),
        _ => Cache::new(),
    };
    let writer = match &opts.cache {
        Some(path) => Some(
            CacheWriter::open(path, opts.fresh)
                .map_err(|e| format!("cannot open cache {}: {e}", path.display()))?,
        ),
        None => None,
    };

    // Slot per cell: cache hits pre-filled, the rest queued as tasks.
    let mut slots: Vec<Vec<Option<Result<CellOut, String>>>> = Vec::new();
    let mut tasks: Vec<(usize, usize)> = Vec::new();
    let mut cached_total = 0usize;
    for (si, sweep) in selected.iter().enumerate() {
        let mut row = Vec::with_capacity(sweep.cells.len());
        for (ci, cell) in sweep.cells.iter().enumerate() {
            let hash = cache::cell_hash(&sweep.id, &cell.key, opts.backend, salt);
            match cache_map.get(&hash) {
                Some(out) => {
                    cached_total += 1;
                    row.push(Some(Ok(out.clone())));
                }
                None => {
                    tasks.push((si, ci));
                    row.push(None);
                }
            }
        }
        slots.push(row);
    }

    let jobs = opts.effective_jobs();
    let next = AtomicUsize::new(0);
    let busy = AtomicU64::new(0);
    // (sweep idx, cell idx, run result, elapsed nanos) per finished cell.
    type Finished = (usize, usize, Result<CellOut, String>, u128);
    let done: Mutex<Vec<Finished>> = Mutex::new(Vec::with_capacity(tasks.len()));
    let writer = Mutex::new(writer);

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(tasks.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(&(si, ci)) = tasks.get(i) else { break };
                let cell = &selected[si].cells[ci];
                let start = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| (cell.run)()));
                let nanos = start.elapsed().as_nanos();
                busy.fetch_add(nanos as u64, Ordering::Relaxed);
                let result = match result {
                    Ok(out) => {
                        if let Some(w) = writer.lock().expect("cache writer").as_mut() {
                            // A failed append degrades resumability, not
                            // correctness; the in-memory result survives.
                            let _ = w.append(&selected[si].id, &cell.key, opts.backend, salt, &out);
                        }
                        Ok(out)
                    }
                    Err(payload) => Err(panic_message(payload)),
                };
                done.lock().expect("results").push((si, ci, result, nanos));
            });
        }
    });
    let wall = t0.elapsed();

    let mut metrics = Metrics::new();
    metrics.histogram_with_bounds(
        "sweep.cell.micros",
        vec![100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
    );
    let mut cell_nanos: Vec<u128> = vec![0; selected.len()];
    let mut executed: Vec<usize> = vec![0; selected.len()];
    let mut executed_total = 0usize;
    for (si, ci, result, nanos) in done.into_inner().expect("results") {
        metrics.observe("sweep.cell.micros", (nanos / 1_000) as u64);
        cell_nanos[si] += nanos;
        executed[si] += 1;
        executed_total += 1;
        slots[si][ci] = Some(result);
    }

    let mut outcomes = Vec::with_capacity(selected.len());
    for (si, sweep) in selected.iter().enumerate() {
        let row = std::mem::take(&mut slots[si]);
        let mut outs = Vec::with_capacity(row.len());
        let mut panic = None;
        for slot in row {
            match slot.expect("every cell executed or cached") {
                Ok(out) => outs.push(out),
                Err(msg) => {
                    if panic.is_none() {
                        panic = Some(msg);
                    }
                }
            }
        }
        let table = if panic.is_none() {
            match catch_unwind(AssertUnwindSafe(|| (sweep.render)(&outs))) {
                Ok(table) => Some(table),
                Err(payload) => {
                    panic = Some(panic_message(payload));
                    None
                }
            }
        } else {
            None
        };
        metrics.add(
            &format!("sweep.cell_nanos.{}", sweep.id),
            cell_nanos[si] as u64,
        );
        outcomes.push(SweepOutcome {
            id: sweep.id.clone(),
            table,
            panic,
            cells: sweep.cells.len(),
            executed: executed[si],
            cached: sweep.cells.len() - executed[si],
            cell_nanos: cell_nanos[si],
        });
    }

    metrics.add("sweep.cells.executed", executed_total as u64);
    metrics.add("sweep.cells.cached", cached_total as u64);
    metrics.gauge_set("sweep.jobs", jobs as u64);
    let busy_nanos = busy.load(Ordering::Relaxed) as u128;
    let mut report = RunReport {
        outcomes,
        executed: executed_total,
        cached: cached_total,
        jobs,
        wall,
        busy_nanos,
        metrics,
    };
    let util_pct = (100.0 * report.utilization()).round() as u64;
    report.metrics.gauge_set("sweep.utilization.pct", util_pct);
    Ok(report)
}
