//! # The experiment sweep engine
//!
//! Every EXPERIMENTS.md table is a grid over `(N, M, B, ω, …)` whose
//! points are **independent deterministic simulations** — embarrassingly
//! parallel work that the original harness executed serially per table.
//! This module turns each experiment into a declarative [`Sweep`]:
//!
//! * a list of [`Cell`]s — one per grid point, each a keyed closure
//!   returning a typed [`CellOut`];
//! * a `render` function assembling the cells' outputs (always presented
//!   in declaration order) into the final [`Table`].
//!
//! Splitting *compute* from *render* buys three things at once:
//!
//! 1. **Parallelism** — [`engine::run`] executes all cells of all tables
//!    on one work-stealing pool ([`engine::RunOptions::jobs`] workers), so
//!    a wide `ω`-sweep in T1b can overlap with T5's big-`N` rows instead
//!    of queueing behind them.
//! 2. **Resumability** — each finished cell is appended to a JSONL
//!    [`cache`] keyed by `(experiment id, cell key, code-version salt)`;
//!    an interrupted or repeated run skips completed cells, `--fresh`
//!    invalidates, and editing any experiment changes the build-time salt
//!    (see `build.rs`) so stale results can never leak into a table.
//! 3. **Determinism** — rendering never sees execution order or timing,
//!    so `--jobs N` output is byte-identical to `--jobs 1` and to a fully
//!    cached replay. (Wall-clock goes to [`engine::RunReport`] instead.)

pub mod cache;
pub mod engine;
pub mod value;

pub use engine::{run, RunOptions, RunReport, SweepOutcome};
pub use value::{CellOut, Value};

use crate::table::Table;

/// One grid point of a sweep: a stable key plus the deterministic
/// simulation producing its output.
pub struct Cell {
    /// Unique (within the sweep), stable identifier of the grid point —
    /// the cache key component, e.g. `"n=4096"` or `"omega=64,two_pass"`.
    pub key: String,
    /// The simulation. Must be deterministic: the cache replays its
    /// output verbatim on later runs.
    pub run: Box<dyn Fn() -> CellOut + Send + Sync>,
}

impl Cell {
    /// Build a cell from a key and a closure.
    pub fn new(key: impl Into<String>, run: impl Fn() -> CellOut + Send + Sync + 'static) -> Self {
        Self {
            key: key.into(),
            run: Box::new(run),
        }
    }
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cell").field("key", &self.key).finish()
    }
}

/// The renderer half of a [`Sweep`]: a pure function from cell outputs
/// (in declaration order) to the finished table.
pub type RenderFn = Box<dyn Fn(&[CellOut]) -> Table + Send + Sync>;

/// A declarative experiment: independent cells plus a pure renderer.
pub struct Sweep {
    /// Experiment id ("T1a", "F5", …) — names the table and scopes the
    /// cells' cache keys.
    pub id: String,
    /// The grid, in presentation order.
    pub cells: Vec<Cell>,
    /// Assembles cell outputs (given in declaration order) into the
    /// table. Must be pure: it runs on cached outputs too.
    pub render: RenderFn,
}

impl Sweep {
    /// Build a sweep from an id, its cells and a renderer.
    pub fn new(
        id: &str,
        cells: Vec<Cell>,
        render: impl Fn(&[CellOut]) -> Table + Send + Sync + 'static,
    ) -> Self {
        assert!(
            {
                let mut keys: Vec<&str> = cells.iter().map(|c| c.key.as_str()).collect();
                keys.sort_unstable();
                keys.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate cell key in sweep {id}"
        );
        Self {
            id: id.to_string(),
            cells,
            render: Box::new(render),
        }
    }

    /// Execute every cell inline (no pool, no cache) and render — the
    /// serial baseline the parallel engine must reproduce byte-for-byte,
    /// and the path `exp::*::tables` uses for the quick test suites.
    pub fn run_serial(&self) -> Table {
        let outs: Vec<CellOut> = self.cells.iter().map(|c| (c.run)()).collect();
        (self.render)(&outs)
    }
}

impl std::fmt::Debug for Sweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("id", &self.id)
            .field("cells", &self.cells)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_sweep() -> Sweep {
        let cells = (0..4u64)
            .map(|i| {
                Cell::new(format!("i={i}"), move || {
                    CellOut::new().with_u64("sq", i * i)
                })
            })
            .collect();
        Sweep::new("D1", cells, |outs| {
            let mut t = Table::new("D1", "squares", &["i", "sq"]);
            for (i, o) in outs.iter().enumerate() {
                t.row(vec![i.to_string(), o.u64("sq").to_string()]);
            }
            t
        })
    }

    #[test]
    fn serial_run_renders_in_declaration_order() {
        let t = demo_sweep().run_serial();
        assert_eq!(t.rows[3], vec!["3".to_string(), "9".to_string()]);
    }

    #[test]
    #[should_panic(expected = "duplicate cell key")]
    fn duplicate_keys_rejected() {
        let cells = vec![
            Cell::new("same", CellOut::new),
            Cell::new("same", CellOut::new),
        ];
        Sweep::new("D2", cells, |_| Table::new("D2", "", &[]));
    }

    #[test]
    fn parallel_equals_serial_and_cache_hits_skip_execution() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let path = std::env::temp_dir().join(format!(
            "aem-sweep-engine-{}-unit.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let runs = Arc::new(AtomicUsize::new(0));
        let make = |runs: Arc<AtomicUsize>| {
            let cells = (0..8u64)
                .map(|i| {
                    let runs = runs.clone();
                    Cell::new(format!("i={i}"), move || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        CellOut::new().with_u64("v", i * 7)
                    })
                })
                .collect();
            Sweep::new("D3", cells, |outs| {
                let mut t = Table::new("D3", "sevens", &["v"]);
                for o in outs {
                    t.row(vec![o.u64("v").to_string()]);
                }
                t
            })
        };

        let serial = make(runs.clone()).run_serial().to_markdown();
        let opts = RunOptions {
            jobs: 4,
            cache: Some(path.clone()),
            ..Default::default()
        };
        let report = run(&[make(runs.clone())], &opts).unwrap();
        assert_eq!(report.executed, 8);
        assert_eq!(
            report.outcomes[0].table.as_ref().unwrap().to_markdown(),
            serial
        );

        let before = runs.load(Ordering::SeqCst);
        let report = run(&[make(runs.clone())], &opts).unwrap();
        assert_eq!(report.executed, 0, "warm cache must skip every cell");
        assert_eq!(report.cached, 8);
        assert_eq!(runs.load(Ordering::SeqCst), before);
        assert_eq!(
            report.outcomes[0].table.as_ref().unwrap().to_markdown(),
            serial
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn panicking_cell_is_contained() {
        let cells = vec![
            Cell::new("ok", || CellOut::new().with_u64("v", 1)),
            Cell::new("boom", || panic!("cell exploded")),
        ];
        let sweep = Sweep::new("D4", cells, |outs| {
            let mut t = Table::new("D4", "", &["v"]);
            for o in outs {
                t.row(vec![o.u64("v").to_string()]);
            }
            t
        });
        let report = run(&[sweep], &RunOptions::default()).unwrap();
        let o = &report.outcomes[0];
        assert_eq!(o.verdict(), "PANIC");
        assert!(o.table.is_none());
        assert!(o.panic.as_deref().unwrap().contains("cell exploded"));
        assert!(!report.all_pass());
    }

    #[test]
    fn only_filter_selects_by_prefix() {
        let opts = RunOptions {
            only: Some(vec!["t1".into(), "F5".into()]),
            ..Default::default()
        };
        assert!(opts.selects("T1a"));
        assert!(opts.selects("T1f"));
        assert!(opts.selects("F5"));
        assert!(!opts.selects("T5"));
        assert!(!opts.selects("F2"));
        assert!(RunOptions::default().selects("anything"));
    }

    #[test]
    fn only_filter_with_unknown_id_is_an_error_listing_valid_ids() {
        let sweep = Sweep::new(
            "T9",
            vec![Cell::new("c", || CellOut::new().with_u64("v", 1))],
            |_| Table::new("T9", "", &["v"]),
        );
        let opts = RunOptions {
            only: Some(vec!["t9".into(), "nope".into()]),
            ..Default::default()
        };
        let err = run(&[sweep], &opts).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("valid ids: T9"), "{err}");
        assert!(
            !err.contains("t9,"),
            "matched patterns are not reported: {err}"
        );
    }
}
