//! Typed cell outputs with an exact JSONL round-trip.
//!
//! A sweep cell returns a [`CellOut`]: an ordered list of named scalar
//! fields plus (optionally) pre-rendered table rows, for experiments whose
//! per-cell row count is only known at run time (e.g. the T1f phase
//! attribution). The representation is deliberately flat so that a cell's
//! result can be cached as one JSONL record and replayed later with
//! bit-identical rendering: `u64` survives as JSON integers, `f64` is
//! stored as its shortest round-tripping decimal string (Rust's `{:?}`
//! float formatting), so a cache hit reproduces *exactly* the bytes a
//! fresh simulation would have produced.

use aem_obs::json::Json;

/// A single typed scalar stored in a [`CellOut`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (costs, sizes, counts).
    U64(u64),
    /// A float, serialized via its shortest round-trip representation.
    F64(f64),
    /// A boolean verdict.
    Bool(bool),
    /// A label or pre-formatted fragment.
    Str(String),
}

/// The result of one sweep cell: ordered named fields plus optional
/// pre-rendered rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellOut {
    fields: Vec<(String, Value)>,
    rows: Vec<Vec<String>>,
}

impl CellOut {
    /// An empty output.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an unsigned-integer field (builder style).
    pub fn with_u64(mut self, name: &str, v: u64) -> Self {
        self.fields.push((name.to_string(), Value::U64(v)));
        self
    }

    /// Append a float field (builder style).
    pub fn with_f64(mut self, name: &str, v: f64) -> Self {
        self.fields.push((name.to_string(), Value::F64(v)));
        self
    }

    /// Append a boolean field (builder style).
    pub fn with_bool(mut self, name: &str, v: bool) -> Self {
        self.fields.push((name.to_string(), Value::Bool(v)));
        self
    }

    /// Append a string field (builder style).
    pub fn with_str(mut self, name: &str, v: impl Into<String>) -> Self {
        self.fields.push((name.to_string(), Value::Str(v.into())));
        self
    }

    /// Append one pre-rendered table row (builder style).
    pub fn with_row(mut self, row: Vec<String>) -> Self {
        self.rows.push(row);
        self
    }

    /// The pre-rendered rows (empty for purely scalar cells).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    fn field(&self, name: &str) -> &Value {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("cell output has no field {name:?}"))
    }

    /// Read back a `u64` field.
    ///
    /// # Panics
    ///
    /// Panics if the field is absent or has a different type — a sweep's
    /// `render` reading a field its own cells never wrote is a programming
    /// error, not a runtime condition.
    pub fn u64(&self, name: &str) -> u64 {
        match self.field(name) {
            Value::U64(v) => *v,
            other => panic!("field {name:?} is {other:?}, not u64"),
        }
    }

    /// Read back an `f64` field (see [`CellOut::u64`] for panics).
    pub fn f64(&self, name: &str) -> f64 {
        match self.field(name) {
            Value::F64(v) => *v,
            other => panic!("field {name:?} is {other:?}, not f64"),
        }
    }

    /// Read back a boolean field (see [`CellOut::u64`] for panics).
    pub fn bool(&self, name: &str) -> bool {
        match self.field(name) {
            Value::Bool(v) => *v,
            other => panic!("field {name:?} is {other:?}, not bool"),
        }
    }

    /// Read back a string field (see [`CellOut::u64`] for panics).
    pub fn str(&self, name: &str) -> &str {
        match self.field(name) {
            Value::Str(v) => v,
            other => panic!("field {name:?} is {other:?}, not str"),
        }
    }

    /// Serialize to a JSON object (used by the result cache).
    pub fn to_json(&self) -> Json {
        let fields = self
            .fields
            .iter()
            .map(|(k, v)| {
                let (tag, val) = match v {
                    Value::U64(x) => ("u", Json::UInt(*x)),
                    // {:?} is Rust's shortest round-trip float repr; going
                    // through a string keeps 2.0 distinguishable from 2u64.
                    Value::F64(x) => ("f", Json::Str(format!("{x:?}"))),
                    Value::Bool(x) => ("b", Json::Bool(*x)),
                    Value::Str(x) => ("s", Json::Str(x.clone())),
                };
                Json::Arr(vec![Json::Str(k.clone()), Json::Str(tag.to_string()), val])
            })
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|r| Json::Arr(r.iter().map(|c| Json::Str(c.clone())).collect()))
            .collect();
        Json::Obj(vec![
            ("fields".to_string(), Json::Arr(fields)),
            ("rows".to_string(), Json::Arr(rows)),
        ])
    }

    /// Parse back from [`CellOut::to_json`]'s representation.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let mut out = CellOut::new();
        let fields = j
            .get("fields")
            .and_then(Json::as_array)
            .ok_or("cell output missing 'fields' array")?;
        for f in fields {
            let triple = f.as_array().ok_or("field is not an array")?;
            let [name, tag, val] = triple else {
                return Err("field is not a [name, tag, value] triple".into());
            };
            let name = name.as_str().ok_or("field name is not a string")?;
            let value = match tag.as_str().ok_or("field tag is not a string")? {
                "u" => Value::U64(val.as_u64().ok_or("u-field is not a u64")?),
                "f" => Value::F64(
                    val.as_str()
                        .ok_or("f-field is not a string")?
                        .parse()
                        .map_err(|e| format!("bad float: {e}"))?,
                ),
                "b" => Value::Bool(val.as_bool().ok_or("b-field is not a bool")?),
                "s" => Value::Str(val.as_str().ok_or("s-field is not a string")?.to_string()),
                other => return Err(format!("unknown field tag {other:?}")),
            };
            out.fields.push((name.to_string(), value));
        }
        let rows = j
            .get("rows")
            .and_then(Json::as_array)
            .ok_or("cell output missing 'rows' array")?;
        for r in rows {
            let cells = r.as_array().ok_or("row is not an array")?;
            let mut row = Vec::with_capacity(cells.len());
            for c in cells {
                row.push(c.as_str().ok_or("row cell is not a string")?.to_string());
            }
            out.rows.push(row);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aem_obs::json::parse;

    #[test]
    fn round_trips_all_types_exactly() {
        let out = CellOut::new()
            .with_u64("n", u64::MAX)
            .with_f64("ratio", 0.1 + 0.2) // not exactly 0.3
            .with_f64("whole", 2.0) // would collide with u64 in naive JSON
            .with_bool("ok", true)
            .with_str("label", "ωm — \"quoted\"")
            .with_row(vec!["a".into(), "b".into()]);
        let text = out.to_json().to_string_compact();
        let back = CellOut::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, out);
        assert_eq!(back.u64("n"), u64::MAX);
        assert_eq!(back.f64("ratio"), 0.1 + 0.2);
        assert_eq!(back.f64("whole"), 2.0);
        assert!(back.bool("ok"));
        assert_eq!(back.str("label"), "ωm — \"quoted\"");
        assert_eq!(back.rows().len(), 1);
    }

    #[test]
    #[should_panic(expected = "no field")]
    fn missing_field_panics() {
        CellOut::new().u64("absent");
    }

    #[test]
    #[should_panic(expected = "not u64")]
    fn wrong_type_panics() {
        CellOut::new().with_f64("x", 1.0).u64("x");
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "{}",
            "{\"fields\":[[\"a\",\"u\",\"nope\"]],\"rows\":[]}",
            "{\"fields\":[[\"a\",\"z\",1]],\"rows\":[]}",
            "{\"fields\":[],\"rows\":[[1]]}",
        ] {
            assert!(CellOut::from_json(&parse(bad).unwrap()).is_err(), "{bad}");
        }
    }
}
