//! The resumable result cache: JSONL records keyed by a stable hash.
//!
//! Each completed cell is appended to the cache file as one self-contained
//! JSON line `{"v", "key", "exp", "cell", "salt", "out"}`. The lookup key
//! is an FNV-1a hash of `(experiment id, cell key, code-version salt)`:
//!
//! * the **experiment id** and **cell key** pin the record to one grid
//!   point of one table;
//! * the **salt** is derived at build time from the source of every
//!   experiment and sweep module (see `build.rs`), so editing any
//!   experiment automatically invalidates the whole cache — stale results
//!   can never leak into a regenerated table.
//!
//! Appends happen as each cell finishes (under a file lock), so an
//! interrupted `run_all` resumes from exactly the cells it completed.
//! Unparseable or foreign lines are skipped on load, which makes the file
//! safe to share between `--quick` and full-size runs (their cell keys
//! differ) and across code versions (their salts differ).

use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;

use aem_machine::Backend;
use aem_obs::json::{parse, Json};

use super::value::CellOut;

/// Cache line format version.
const CACHE_VERSION: u64 = 1;

/// The build-time code-version salt: a hash of every `src/exp/*` and
/// `src/sweep/*` source file, computed by `build.rs`. Editing any
/// experiment changes the salt and therefore invalidates every cached
/// cell.
pub fn code_salt() -> &'static str {
    env!("AEM_SWEEP_SALT")
}

/// The stable cache key of a cell: FNV-1a over
/// `(experiment id, cell key, storage backend, salt)`, hex-encoded. The
/// backend is part of the key because the build-time salt only covers the
/// bench sources: a ghost run must never be served a cell simulated on the
/// payload-carrying `vec` backend (or vice versa), even though their cell
/// keys and grids coincide.
pub fn cell_hash(exp_id: &str, cell_key: &str, backend: Backend, salt: &str) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for chunk in [
        exp_id.as_bytes(),
        b"\x00",
        cell_key.as_bytes(),
        b"\x00",
        backend.name().as_bytes(),
        b"\x00",
        salt.as_bytes(),
    ] {
        for &b in chunk {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    format!("{h:016x}")
}

/// An in-memory view of a cache file: hash → cached cell output.
#[derive(Debug, Default)]
pub struct Cache {
    entries: HashMap<String, CellOut>,
}

impl Cache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a cache file, skipping lines that fail to parse (partial
    /// writes from an interrupted run, records from other versions). A
    /// missing file loads as an empty cache.
    pub fn load(path: &Path) -> Self {
        let mut cache = Cache::new();
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache;
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(j) = parse(line) else { continue };
            if j.get("v").and_then(Json::as_u64) != Some(CACHE_VERSION) {
                continue;
            }
            let (Some(key), Some(out)) = (j.get("key").and_then(Json::as_str), j.get("out")) else {
                continue;
            };
            if let Ok(out) = CellOut::from_json(out) {
                cache.entries.insert(key.to_string(), out);
            }
        }
        cache
    }

    /// Look up a cell by its hash.
    pub fn get(&self, hash: &str) -> Option<&CellOut> {
        self.entries.get(hash)
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no cells are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Render one cache line (no trailing newline).
pub fn record_line(
    exp_id: &str,
    cell_key: &str,
    backend: Backend,
    salt: &str,
    out: &CellOut,
) -> String {
    Json::Obj(vec![
        ("v".to_string(), Json::UInt(CACHE_VERSION)),
        (
            "key".to_string(),
            Json::Str(cell_hash(exp_id, cell_key, backend, salt)),
        ),
        ("exp".to_string(), Json::Str(exp_id.to_string())),
        ("cell".to_string(), Json::Str(cell_key.to_string())),
        ("backend".to_string(), Json::Str(backend.name().to_string())),
        ("salt".to_string(), Json::Str(salt.to_string())),
        ("out".to_string(), out.to_json()),
    ])
    .to_string_compact()
}

/// An append handle on a cache file; each append is one flushed line, so
/// an interrupted run leaves at most one torn record (which `load` skips).
#[derive(Debug)]
pub struct CacheWriter {
    file: std::fs::File,
}

impl CacheWriter {
    /// Open (creating parent directories as needed) for appending. With
    /// `fresh`, the file is truncated first — the `--fresh` invalidation.
    pub fn open(path: &Path, fresh: bool) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(!fresh)
            .write(true)
            .truncate(fresh)
            .open(path)?;
        Ok(Self { file })
    }

    /// Append one completed cell.
    pub fn append(
        &mut self,
        exp_id: &str,
        cell_key: &str,
        backend: Backend,
        salt: &str,
        out: &CellOut,
    ) -> std::io::Result<()> {
        let mut line = record_line(exp_id, cell_key, backend, salt, out);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("aem-sweep-cache-{}-{name}", std::process::id()))
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let h = cell_hash("T1a", "n=4096", Backend::Vec, "salt-1");
        assert_eq!(h, cell_hash("T1a", "n=4096", Backend::Vec, "salt-1"));
        assert_ne!(h, cell_hash("T1b", "n=4096", Backend::Vec, "salt-1"));
        assert_ne!(h, cell_hash("T1a", "n=8192", Backend::Vec, "salt-1"));
        assert_ne!(h, cell_hash("T1a", "n=4096", Backend::Vec, "salt-2"));
        // The separator prevents concatenation collisions.
        assert_ne!(
            cell_hash("ab", "c", Backend::Vec, "s"),
            cell_hash("a", "bc", Backend::Vec, "s")
        );
    }

    #[test]
    fn hash_is_backend_sensitive() {
        // A ghost run must never be served a cached vec cell: every pair of
        // distinct backends keys to a distinct hash for the same cell.
        for a in Backend::ALL {
            for b in Backend::ALL {
                let ha = cell_hash("T5N", "n=1024", a, "s");
                let hb = cell_hash("T5N", "n=1024", b, "s");
                assert_eq!(a == b, ha == hb, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn append_then_load_round_trips() {
        let path = tmp("roundtrip.jsonl");
        std::fs::remove_file(&path).ok();
        let out = CellOut::new().with_u64("q", 42).with_f64("norm", 1.5);
        let mut w = CacheWriter::open(&path, false).unwrap();
        w.append("T1a", "n=4096", Backend::Vec, "s", &out).unwrap();
        drop(w);
        let cache = Cache::load(&path);
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.get(&cell_hash("T1a", "n=4096", Backend::Vec, "s")),
            Some(&out)
        );
        assert!(cache
            .get(&cell_hash("T1a", "n=4096", Backend::Vec, "other"))
            .is_none());
        assert!(cache
            .get(&cell_hash("T1a", "n=4096", Backend::Ghost, "s"))
            .is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_truncates_and_torn_lines_are_skipped() {
        let path = tmp("fresh.jsonl");
        std::fs::remove_file(&path).ok();
        let out = CellOut::new().with_u64("q", 1);
        let mut w = CacheWriter::open(&path, false).unwrap();
        w.append("T", "a", Backend::Vec, "s", &out).unwrap();
        drop(w);
        // Simulate a torn write from an interrupted run.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"v\":1,\"key\":\"torn");
        std::fs::write(&path, &text).unwrap();
        let cache = Cache::load(&path);
        assert_eq!(cache.len(), 1);

        let w = CacheWriter::open(&path, true).unwrap();
        drop(w);
        assert!(Cache::load(&path).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        assert!(Cache::load(&tmp("never-created.jsonl")).is_empty());
    }
}
