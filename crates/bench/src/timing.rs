//! A minimal wall-clock benchmarking harness.
//!
//! The workspace builds offline with zero external dependencies, so instead
//! of Criterion the `benches/` targets (all `harness = false`) use this
//! self-calibrating timer: warm up, pick an iteration count targeting a
//! fixed measurement window, report mean time per iteration and optional
//! element throughput. Results print as one aligned line per benchmark —
//! good enough to spot order-of-magnitude regressions, which is all the
//! simulator benches are for (the I/O-cost *tables* are exact and live in
//! the `exp_*` binaries).

use std::time::{Duration, Instant};

/// Target wall-clock time for the measured phase of one benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(200);
/// Hard cap on measured iterations (cheap closures would otherwise spin).
const MAX_ITERS: u32 = 10_000;

/// One benchmark measurement: mean wall-clock per iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Iterations actually measured.
    pub iters: u32,
    /// Mean time per iteration.
    pub per_iter: Duration,
    /// Elements processed per iteration (0 = unknown, no throughput line).
    pub elems: u64,
}

impl Measurement {
    /// Elements per second, if an element count was attached.
    pub fn throughput(&self) -> Option<f64> {
        if self.elems == 0 || self.per_iter.is_zero() {
            return None;
        }
        Some(self.elems as f64 / self.per_iter.as_secs_f64())
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} {:>12.3?}/iter  ({} iters)",
            self.name, self.per_iter, self.iters
        )?;
        if let Some(t) = self.throughput() {
            write!(f, "  {:>10.0} elems/s", t)?;
        }
        Ok(())
    }
}

/// Time `f`, self-calibrating the iteration count, and print one line.
///
/// The closure's return value is passed through `std::hint::black_box` so
/// the optimizer cannot delete the benchmarked work.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    bench_with_elems(name, 0, &mut f)
}

/// [`bench()`] with an element count attached for throughput reporting.
pub fn bench_with_elems<R>(name: &str, elems: u64, mut f: impl FnMut() -> R) -> Measurement {
    // Warm-up and calibration: one timed run decides the iteration count.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters =
        (MEASURE_TARGET.as_nanos() / once.as_nanos().max(1)).clamp(1, MAX_ITERS as u128) as u32;

    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = t0.elapsed();

    let m = Measurement {
        name: name.to_string(),
        iters,
        // Floor at 1ns: a closure the optimizer reduces to nearly nothing
        // can otherwise truncate to a zero Duration and lose throughput.
        per_iter: (total / iters).max(Duration::from_nanos(1)),
        elems,
    };
    println!("{m}");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        let m = bench("noop", || 1 + 1);
        assert!(m.iters >= 1);
        assert!(m.throughput().is_none());
    }

    #[test]
    fn throughput_uses_elems() {
        let m = bench_with_elems("spin", 1000, || {
            std::hint::black_box((0..100u64).sum::<u64>())
        });
        assert!(m.throughput().unwrap() > 0.0);
    }
}
