//! The bench-regression gate: compare a fresh `BENCH_*.json` backend
//! comparison against the newest committed baseline, metric by metric.
//!
//! The committed snapshots (`BENCH_PR4.json`, `BENCH_PR6.json`, … at the
//! repo root) pin the simulator's wall-clock behavior at each PR. The
//! gate re-reads both documents, matches backends and metrics by name,
//! and classifies every shared metric by its direction — suffix
//! `_per_sec` means higher is better, `_secs` means lower is better —
//! against a relative tolerance. Metrics present on only one side are
//! reported as `new`/`gone`, never as failures (schemas are allowed to
//! grow, as PR6's `pq_sort_elems_per_sec` row did).
//!
//! CI wall-clock is noisy, so the gate defaults to **report-only**: the
//! verdict table is printed, regressions are flagged `REGRESS`, but the
//! exit code stays zero unless `--strict` is passed. The committed
//! baselines are refreshed deliberately (a human re-runs
//! `cargo bench -p aem-bench --bench machine -- --json BENCH_PRn.json`
//! on a quiet machine), never from CI.

use std::path::{Path, PathBuf};

use aem_obs::json::{self, Json};

/// Default relative tolerance: a metric may be this fraction worse than
/// the baseline before it is flagged. Simulator throughput on shared CI
/// runners routinely jitters ±20%; half-speed is a real regression.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// Which way a metric's "better" points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `*_per_sec`: throughput, higher is better.
    HigherIsBetter,
    /// `*_secs`: wall time, lower is better.
    LowerIsBetter,
}

/// Classify a metric name by its unit suffix; unknown units are treated
/// as throughput-like (higher better) so a misnamed metric still gets
/// compared rather than silently skipped.
pub fn direction_of(metric: &str) -> Direction {
    if metric.ends_with("_secs") {
        Direction::LowerIsBetter
    } else {
        Direction::HigherIsBetter
    }
}

/// The verdict for one `(backend, metric)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricVerdict {
    /// Backend name (`vec`/`arena`/`ghost`).
    pub backend: String,
    /// Metric name, e.g. `scan_copy_elems_per_sec`.
    pub metric: String,
    /// Baseline value, `None` if the metric is new.
    pub baseline: Option<f64>,
    /// Current value, `None` if the metric disappeared.
    pub current: Option<f64>,
    /// `true` when the metric is worse than baseline beyond tolerance.
    pub regressed: bool,
}

impl MetricVerdict {
    /// `current / baseline` when both sides exist and the baseline is
    /// nonzero.
    pub fn ratio(&self) -> Option<f64> {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) if b != 0.0 => Some(c / b),
            _ => None,
        }
    }

    fn status(&self) -> &'static str {
        match (self.baseline, self.current) {
            (None, _) => "new",
            (_, None) => "gone",
            _ if self.regressed => "REGRESS",
            _ => "ok",
        }
    }
}

/// The full comparison of one run against one baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Path of the baseline document compared against.
    pub baseline_path: String,
    /// One verdict per `(backend, metric)` seen on either side, in
    /// baseline-document order (current-only entries appended).
    pub verdicts: Vec<MetricVerdict>,
    /// The tolerance used.
    pub tolerance: f64,
}

impl GateReport {
    /// Verdicts flagged as regressions.
    pub fn regressions(&self) -> Vec<&MetricVerdict> {
        self.verdicts.iter().filter(|v| v.regressed).collect()
    }

    /// Render the verdict table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "perf gate: baseline {} (tolerance {:.0}%)\n",
            self.baseline_path,
            self.tolerance * 100.0
        );
        for v in &self.verdicts {
            let fmt = |x: Option<f64>| match x {
                Some(v) => format!("{v:.3}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "  {:<7} {:<28} {:>16} -> {:>16}  {:>7}  {}\n",
                v.backend,
                v.metric,
                fmt(v.baseline),
                fmt(v.current),
                v.ratio()
                    .map(|r| format!("{r:.2}x"))
                    .unwrap_or_else(|| "-".to_string()),
                v.status(),
            ));
        }
        let regs = self.regressions();
        if regs.is_empty() {
            out.push_str("verdict: no regressions beyond tolerance\n");
        } else {
            out.push_str(&format!(
                "verdict: {} metric(s) regressed beyond tolerance\n",
                regs.len()
            ));
        }
        out
    }
}

fn numbers_of(doc: &Json) -> Result<Vec<(String, String, f64)>, String> {
    let backends = doc
        .get("backends")
        .ok_or("document has no 'backends' object")?;
    let Json::Obj(members) = backends else {
        return Err("'backends' is not an object".into());
    };
    let mut out = Vec::new();
    for (backend, metrics) in members {
        let Json::Obj(inner) = metrics else {
            return Err(format!("backend '{backend}' is not an object"));
        };
        for (metric, v) in inner {
            let x = match v {
                Json::Num(x) => *x,
                Json::UInt(x) => *x as f64,
                other => {
                    return Err(format!(
                        "{backend}.{metric} is not a number: {}",
                        other.to_string_compact()
                    ))
                }
            };
            out.push((backend.clone(), metric.clone(), x));
        }
    }
    Ok(out)
}

/// `true` if `current` is worse than `baseline` by more than `tol`
/// (relative), in the metric's own direction.
pub fn is_regression(metric: &str, baseline: f64, current: f64, tol: f64) -> bool {
    if baseline <= 0.0 {
        return false; // degenerate baseline: nothing meaningful to gate
    }
    match direction_of(metric) {
        Direction::HigherIsBetter => current < baseline * (1.0 - tol),
        Direction::LowerIsBetter => current > baseline * (1.0 + tol),
    }
}

/// Compare two parsed `backend-comparison` documents.
pub fn compare_docs(
    baseline: &Json,
    current: &Json,
    baseline_path: &str,
    tolerance: f64,
) -> Result<GateReport, String> {
    let base = numbers_of(baseline)?;
    let cur = numbers_of(current)?;
    let mut verdicts = Vec::new();
    for (backend, metric, b) in &base {
        let c = cur
            .iter()
            .find(|(bk, m, _)| bk == backend && m == metric)
            .map(|&(_, _, x)| x);
        verdicts.push(MetricVerdict {
            backend: backend.clone(),
            metric: metric.clone(),
            baseline: Some(*b),
            current: c,
            regressed: c.map(|c| is_regression(metric, *b, c, tolerance)) == Some(true),
        });
    }
    for (backend, metric, c) in &cur {
        if !base.iter().any(|(bk, m, _)| bk == backend && m == metric) {
            verdicts.push(MetricVerdict {
                backend: backend.clone(),
                metric: metric.clone(),
                baseline: None,
                current: Some(*c),
                regressed: false,
            });
        }
    }
    Ok(GateReport {
        baseline_path: baseline_path.to_string(),
        verdicts,
        tolerance,
    })
}

/// Parse a `BENCH_*.json` file.
pub fn load_doc(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Find the newest committed baseline in `dir`: the `BENCH_PR<k>.json`
/// with the highest `k`.
pub fn newest_baseline(dir: &Path) -> Result<PathBuf, String> {
    let mut best: Option<(u64, PathBuf)> = None;
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot scan {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(k) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|num| num.parse::<u64>().ok())
        else {
            continue;
        };
        match &best {
            Some((bk, _)) if *bk >= k => {}
            _ => best = Some((k, entry.path())),
        }
    }
    best.map(|(_, p)| p)
        .ok_or_else(|| format!("no BENCH_PR<k>.json baseline found in {}", dir.display()))
}

/// Compare the document at `current` against the newest baseline in
/// `baseline_dir`.
pub fn run_gate(baseline_dir: &Path, current: &Path, tolerance: f64) -> Result<GateReport, String> {
    let baseline_path = newest_baseline(baseline_dir)?;
    let base = load_doc(&baseline_path)?;
    let cur = load_doc(current)?;
    compare_docs(&base, &cur, &baseline_path.display().to_string(), tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aem_obs::json::obj;

    fn doc(rows: Vec<(&str, Vec<(&str, f64)>)>) -> Json {
        obj(vec![
            ("bench", Json::Str("backend-comparison".into())),
            (
                "backends",
                obj(rows
                    .into_iter()
                    .map(|(b, ms)| {
                        (
                            b,
                            obj(ms.into_iter().map(|(m, v)| (m, Json::Num(v))).collect()),
                        )
                    })
                    .collect()),
            ),
        ])
    }

    #[test]
    fn direction_by_suffix() {
        assert_eq!(
            direction_of("scan_copy_elems_per_sec"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_of("quick_sweep_secs"), Direction::LowerIsBetter);
        assert_eq!(direction_of("mystery_count"), Direction::HigherIsBetter);
    }

    #[test]
    fn regression_respects_direction_and_tolerance() {
        // Throughput: dropping below (1 - tol) x baseline regresses.
        assert!(is_regression("x_per_sec", 100.0, 49.0, 0.5));
        assert!(!is_regression("x_per_sec", 100.0, 51.0, 0.5));
        assert!(!is_regression("x_per_sec", 100.0, 500.0, 0.5));
        // Wall time: rising above (1 + tol) x baseline regresses.
        assert!(is_regression("x_secs", 1.0, 1.6, 0.5));
        assert!(!is_regression("x_secs", 1.0, 1.4, 0.5));
        assert!(!is_regression("x_secs", 1.0, 0.1, 0.5));
        // Degenerate baselines never gate.
        assert!(!is_regression("x_per_sec", 0.0, 0.0, 0.5));
    }

    #[test]
    fn compare_flags_only_out_of_tolerance_metrics() {
        let base = doc(vec![
            ("vec", vec![("scan_per_sec", 100.0), ("sweep_secs", 1.0)]),
            ("ghost", vec![("scan_per_sec", 200.0)]),
        ]);
        let cur = doc(vec![
            ("vec", vec![("scan_per_sec", 90.0), ("sweep_secs", 5.0)]),
            ("ghost", vec![("scan_per_sec", 10.0), ("pq_per_sec", 7.0)]),
        ]);
        let report = compare_docs(&base, &cur, "BENCH_PRX.json", 0.5).unwrap();
        let flag = |bk: &str, m: &str| {
            report
                .verdicts
                .iter()
                .find(|v| v.backend == bk && v.metric == m)
                .unwrap()
        };
        assert!(!flag("vec", "scan_per_sec").regressed); // within tolerance
        assert!(flag("vec", "sweep_secs").regressed); // 5x slower
        assert!(flag("ghost", "scan_per_sec").regressed); // 20x less throughput
        let new = flag("ghost", "pq_per_sec");
        assert!(!new.regressed && new.baseline.is_none()); // schema growth is fine
        assert_eq!(report.regressions().len(), 2);
        let text = report.render();
        assert!(text.contains("REGRESS"), "{text}");
        assert!(text.contains("new"), "{text}");
        assert!(text.contains("2 metric(s) regressed"), "{text}");
    }

    #[test]
    fn gone_metrics_are_reported_not_failed() {
        let base = doc(vec![("vec", vec![("old_per_sec", 10.0)])]);
        let cur = doc(vec![("vec", vec![])]);
        let report = compare_docs(&base, &cur, "b", 0.5).unwrap();
        assert_eq!(report.verdicts.len(), 1);
        assert!(!report.verdicts[0].regressed);
        assert!(report.render().contains("gone"));
    }

    #[test]
    fn malformed_documents_error() {
        let bad = Json::Str("nope".into());
        let good = doc(vec![]);
        assert!(compare_docs(&bad, &good, "b", 0.5).is_err());
        assert!(compare_docs(&good, &bad, "b", 0.5).is_err());
    }

    #[test]
    fn newest_baseline_picks_highest_pr_number() {
        let dir = std::env::temp_dir().join(format!("aem-perfgate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["BENCH_PR4.json", "BENCH_PR6.json", "BENCH_notes.json"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let newest = newest_baseline(&dir).unwrap();
        assert!(newest.ends_with("BENCH_PR6.json"), "{newest:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newest_baseline_orders_numerically_not_lexically() {
        // Lexically "BENCH_PR10.json" < "BENCH_PR9.json"; the discovery
        // must compare the PR numbers, not the strings.
        let dir = std::env::temp_dir().join(format!("aem-perfgate-num-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["BENCH_PR9.json", "BENCH_PR10.json", "BENCH_PR2.json"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let newest = newest_baseline(&dir).unwrap();
        assert!(newest.ends_with("BENCH_PR10.json"), "{newest:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_gate_against_committed_baselines() {
        // The repo's own committed snapshots must gate cleanly against
        // themselves (identity comparison: zero regressions) and parse.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let newest = newest_baseline(&root).unwrap();
        let report = run_gate(&root, &newest, DEFAULT_TOLERANCE).unwrap();
        assert!(report.regressions().is_empty(), "{}", report.render());
        assert!(!report.verdicts.is_empty());
    }
}
