//! T2: Theorem 3.2 merging experiments. `--quick` shrinks the sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for t in aem_bench::exp::merge::tables(quick) {
        t.print();
    }
}
