//! `perf_gate` — compare a fresh `machine` bench JSON against the newest
//! committed `BENCH_PR<k>.json` baseline.
//!
//! ```text
//! cargo bench -p aem-bench --bench machine -- --json BENCH_CI.json
//! cargo run -p aem-bench --bin perf_gate -- --current BENCH_CI.json
//! ```
//!
//! Report-only by default (prints the verdict table, exits 0); pass
//! `--strict` to exit nonzero on any regression. `--baseline-dir DIR`
//! overrides where baselines are searched (default: the working
//! directory), `--tolerance F` the relative slack (default 0.5).

use std::path::Path;

use aem_bench::perfgate::{run_gate, DEFAULT_TOLERANCE};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    let eq = format!("{key}=");
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix(&eq) {
            return Some(v.to_string());
        }
        if args[i] == key {
            return args.get(i + 1).cloned();
        }
        i += 1;
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let current = arg_value(&args, "--current").unwrap_or_else(|| {
        eprintln!("perf_gate: --current FILE required (a `--json` bench export)");
        std::process::exit(2);
    });
    let baseline_dir = arg_value(&args, "--baseline-dir").unwrap_or_else(|| ".".to_string());
    let tolerance = match arg_value(&args, "--tolerance") {
        None => DEFAULT_TOLERANCE,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("perf_gate: invalid --tolerance '{v}'");
            std::process::exit(2);
        }),
    };
    let strict = args.iter().any(|a| a == "--strict");

    match run_gate(Path::new(&baseline_dir), Path::new(&current), tolerance) {
        Ok(report) => {
            print!("{}", report.render());
            if strict && !report.regressions().is_empty() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("perf_gate: {e}");
            std::process::exit(2);
        }
    }
}
