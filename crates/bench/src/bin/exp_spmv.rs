//! T6/T7: §5 SpMxV experiments. `--quick` shrinks the sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for t in aem_bench::exp::spmv::tables(quick) {
        t.print();
    }
}
