//! T1/F1: Theorem 3.2 sorting experiments. `--quick` shrinks the sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for t in aem_bench::exp::sorting::tables(quick) {
        t.print();
    }
}
