//! T5/F2: Theorem 4.5 permuting experiments. `--quick` shrinks the sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for t in aem_bench::exp::permute::tables(quick) {
        t.print();
    }
}
