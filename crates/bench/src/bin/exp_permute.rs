//! T5/F2: Theorem 4.5 permuting experiments. `--quick` shrinks the sweep;
//! `--backend {vec,arena,ghost}` picks the storage backend.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let backend = aem_bench::backend_from_args(&args);
    for t in aem_bench::exp::permute::tables(quick, backend) {
        t.print();
    }
}
