//! T4: Lemma 4.3 flash simulation. `--quick` shrinks the sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for t in aem_bench::exp::flash::tables(quick) {
        t.print();
    }
}
