//! T3: Lemma 4.1 round-based overhead. `--quick` shrinks the sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for t in aem_bench::exp::rounds::tables(quick) {
        t.print();
    }
}
