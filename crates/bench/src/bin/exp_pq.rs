//! T9/T9b/T9G: buffered priority queue and replacement-selection run
//! generation. `--quick` shrinks the sweep; `--backend {vec,arena,ghost}`
//! picks the storage backend.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let backend = aem_bench::backend_from_args(&args);
    for t in aem_bench::exp::pq::tables(quick, backend) {
        t.print();
    }
}
