//! `cost_gate` — meter the canonical workload/backend cells and compare
//! the exact `(Q_r, Q_w)` integers against the committed `COSTS.json`.
//!
//! ```text
//! cargo run -p aem-bench --bin cost_gate                # report
//! cargo run -p aem-bench --bin cost_gate -- --strict    # CI: fail on drift
//! cargo run -p aem-bench --bin cost_gate -- --write     # refresh snapshot
//! ```
//!
//! Unlike `perf_gate` there is no tolerance: the simulator is
//! deterministic and a single-I/O drift is a cost-model change. Pass
//! `--costs FILE` to override the snapshot path (default `COSTS.json` in
//! the working directory). `--write` re-meters and overwrites the
//! snapshot — only for deliberate, reviewed refreshes.

use std::path::Path;

use aem_bench::costgate::{measure, run_cost_gate};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    let eq = format!("{key}=");
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix(&eq) {
            return Some(v.to_string());
        }
        if args[i] == key {
            return args.get(i + 1).cloned();
        }
        i += 1;
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let costs = arg_value(&args, "--costs").unwrap_or_else(|| "COSTS.json".to_string());
    let strict = args.iter().any(|a| a == "--strict");
    let write = args.iter().any(|a| a == "--write");

    if write {
        match measure() {
            Ok(doc) => {
                let mut text = doc.to_string_compact();
                text.push('\n');
                if let Err(e) = std::fs::write(&costs, &text) {
                    eprintln!("cost_gate: cannot write {costs}: {e}");
                    std::process::exit(2);
                }
                println!("cost_gate: wrote {costs}");
            }
            Err(e) => {
                eprintln!("cost_gate: {e}");
                std::process::exit(2);
            }
        }
        return;
    }

    match run_cost_gate(Path::new(&costs)) {
        Ok(report) => {
            print!("{}", report.render());
            if strict && !report.drifts().is_empty() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("cost_gate: {e}");
            std::process::exit(2);
        }
    }
}
