//! F3: ARAM ≡ (M,1,ω)-AEM. `--quick` shrinks the sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for t in aem_bench::exp::model::tables(quick) {
        t.print();
    }
}
