//! Key-array generators for the sorting experiments (§3 of the paper).
//!
//! Sorting algorithms in the comparison model are input-oblivious in their
//! *worst-case* I/O cost, but measured costs still vary with duplicates and
//! presortedness; the distributions here cover the usual corners.

use crate::rng::SplitMix64;

/// Key distributions for sorting inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// Uniform random `u64` keys.
    Uniform {
        /// RNG seed.
        seed: u64,
    },
    /// Already sorted ascending (best case for adaptive algorithms; ours are
    /// not adaptive, so costs should match Uniform).
    Sorted,
    /// Sorted descending.
    Reversed,
    /// Only `distinct` different key values, uniformly assigned.
    FewDistinct {
        /// Number of distinct key values.
        distinct: u64,
        /// RNG seed.
        seed: u64,
    },
    /// Ascending then descending ("organ pipe").
    OrganPipe,
    /// Zipf-distributed keys over `distinct` values with exponent `s_x10 / 10`
    /// (the exponent is passed premultiplied by ten so the enum stays `Eq`).
    /// Heavy skew: value `k` has probability ∝ `1/k^s`. The distribution of
    /// choice for join/group-by skew experiments.
    Zipf {
        /// Number of distinct values.
        distinct: u64,
        /// Exponent times ten (e.g. `12` means `s = 1.2`).
        s_x10: u32,
        /// RNG seed.
        seed: u64,
    },
}

impl KeyDist {
    /// Generate `n` keys.
    pub fn generate(self, n: usize) -> Vec<u64> {
        match self {
            KeyDist::Uniform { seed } => {
                let mut rng = SplitMix64::seed_from_u64(seed);
                (0..n).map(|_| rng.next_u64()).collect()
            }
            KeyDist::Sorted => (0..n as u64).collect(),
            KeyDist::Reversed => (0..n as u64).rev().collect(),
            KeyDist::FewDistinct { distinct, seed } => {
                let mut rng = SplitMix64::seed_from_u64(seed);
                let d = distinct.max(1);
                (0..n).map(|_| rng.next_below(d)).collect()
            }
            KeyDist::OrganPipe => {
                let half = n / 2;
                let mut v: Vec<u64> = (0..half as u64).collect();
                v.extend((0..(n - half) as u64).rev());
                v
            }
            KeyDist::Zipf {
                distinct,
                s_x10,
                seed,
            } => {
                let d = distinct.max(1) as usize;
                let s = s_x10 as f64 / 10.0;
                // Cumulative weights for inverse-CDF sampling.
                let mut cdf = Vec::with_capacity(d);
                let mut acc = 0.0f64;
                for k in 1..=d {
                    acc += 1.0 / (k as f64).powf(s);
                    cdf.push(acc);
                }
                let total = acc;
                let mut rng = SplitMix64::seed_from_u64(seed);
                (0..n)
                    .map(|_| {
                        let u: f64 = rng.next_f64() * total;
                        cdf.partition_point(|&c| c < u) as u64
                    })
                    .collect()
            }
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            KeyDist::Uniform { .. } => "uniform",
            KeyDist::Sorted => "sorted",
            KeyDist::Reversed => "reversed",
            KeyDist::FewDistinct { .. } => "few-distinct",
            KeyDist::OrganPipe => "organ-pipe",
            KeyDist::Zipf { .. } => "zipf",
        }
    }
}

/// `true` if `v` is sorted ascending (validation helper).
pub fn is_sorted<T: Ord>(v: &[T]) -> bool {
    v.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_length() {
        for d in [
            KeyDist::Uniform { seed: 1 },
            KeyDist::Sorted,
            KeyDist::Reversed,
            KeyDist::FewDistinct {
                distinct: 3,
                seed: 1,
            },
            KeyDist::OrganPipe,
        ] {
            assert_eq!(d.generate(37).len(), 37, "{:?}", d);
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        assert_eq!(
            KeyDist::Uniform { seed: 5 }.generate(20),
            KeyDist::Uniform { seed: 5 }.generate(20)
        );
        assert_ne!(
            KeyDist::Uniform { seed: 5 }.generate(20),
            KeyDist::Uniform { seed: 6 }.generate(20)
        );
    }

    #[test]
    fn sorted_and_reversed_shapes() {
        assert!(is_sorted(&KeyDist::Sorted.generate(10)));
        let mut r = KeyDist::Reversed.generate(10);
        r.reverse();
        assert!(is_sorted(&r));
    }

    #[test]
    fn few_distinct_respects_bound() {
        let v = KeyDist::FewDistinct {
            distinct: 4,
            seed: 2,
        }
        .generate(100);
        assert!(v.iter().all(|&k| k < 4));
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let v = KeyDist::Zipf {
            distinct: 100,
            s_x10: 12,
            seed: 3,
        }
        .generate(10_000);
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().all(|&k| k < 100));
        // Skew: the most frequent value dominates any mid-range value.
        let count = |x: u64| v.iter().filter(|&&k| k == x).count();
        assert!(count(0) > 5 * count(50).max(1));
        // Deterministic per seed.
        assert_eq!(
            v,
            KeyDist::Zipf {
                distinct: 100,
                s_x10: 12,
                seed: 3
            }
            .generate(10_000)
        );
    }

    #[test]
    fn organ_pipe_peaks_in_middle() {
        let v = KeyDist::OrganPipe.generate(10);
        assert!(is_sorted(&v[..5]));
        let mut tail = v[5..].to_vec();
        tail.reverse();
        assert!(is_sorted(&tail));
    }
}
