//! Seeded instances for the reduce/scan workload (T12).
//!
//! A scan instance is a value file of `n` unsigned words plus a batch of
//! `q` prefix queries: query `p` asks for the (wrapping) inclusive prefix
//! sum `values[0] + … + values[p]`. The value *shape* is seed-derived so
//! seed sweeps cover the degenerate corners the reduction tree must
//! survive — in particular the all-equal file, where every partial sum
//! collides and any comparison-based shortcut would mis-merge.
//!
//! The instance is what the registry's seeded constructor hands to every
//! layer (serve exec, fuzz, the cost gate, the T12 sweep), so the same
//! `(n, q, seed)` triple always denotes the same workload.

use crate::rng::SplitMix64;

/// A generated scan workload: values plus prefix-query positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanInstance {
    /// The value file the prefix sums range over.
    pub values: Vec<u64>,
    /// Query positions, each in `0..n` (inclusive prefix ends).
    pub queries: Vec<usize>,
}

/// Deterministically generate the canonical instance for `(n, q, seed)`.
///
/// `seed % 4` picks the value shape: all-equal (the adversarial
/// duplicate-heavy corner), a ramp, a spiky file (mostly zeros with
/// seeded bursts), or uniform random words. Query positions are uniform
/// in `0..n`.
pub fn scan_instance(n: usize, q: usize, seed: u64) -> ScanInstance {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5CA4_0000_7E57_0002);
    let values: Vec<u64> = match seed % 4 {
        0 => vec![1 + (seed / 4) % 97; n],
        1 => (0..n as u64).collect(),
        2 => (0..n)
            .map(|_| {
                if rng.next_below(8) == 0 {
                    rng.next_below(1 << 40)
                } else {
                    0
                }
            })
            .collect(),
        _ => (0..n).map(|_| rng.next_u64()).collect(),
    };
    let queries: Vec<usize> = (0..q).map(|_| rng.next_below_usize(n.max(1))).collect();
    ScanInstance { values, queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_deterministic_and_in_range() {
        let a = scan_instance(512, 64, 9);
        let b = scan_instance(512, 64, 9);
        assert_eq!(a, b);
        assert_eq!(a.values.len(), 512);
        assert_eq!(a.queries.len(), 64);
        assert!(a.queries.iter().all(|&p| p < 512));
    }

    #[test]
    fn seed_shapes_cover_the_all_equal_corner() {
        let eq = scan_instance(64, 4, 4); // 4 % 4 == 0 → all-equal
        assert!(eq.values.windows(2).all(|w| w[0] == w[1]));
        let ramp = scan_instance(64, 4, 5);
        assert!(ramp.values.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        let inst = scan_instance(1, 4, 1);
        assert_eq!(inst.values.len(), 1);
        assert!(inst.queries.iter().all(|&p| p == 0));
        assert!(scan_instance(0, 0, 1).values.is_empty());
    }
}
