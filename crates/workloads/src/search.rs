//! Seeded instances for the static-search workload (T11).
//!
//! A search instance is a strictly increasing key file of `n` keys plus a
//! batch of `q` lookup queries. Keys are generated with seeded gaps of at
//! least 2, so for every key `k` the probe `k + 1` is guaranteed absent —
//! that gives the query sampler a deterministic way to mix hits and
//! misses without scanning the key set.
//!
//! The instance is what the registry's seeded constructor hands to every
//! layer (serve exec, fuzz, the cost gate, the T11 sweep), so the same
//! `(n, q, seed)` triple always denotes the same workload.

use crate::rng::SplitMix64;

/// A generated search workload: sorted keys plus a query batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchInstance {
    /// Strictly increasing keys (the file the index is built over).
    pub keys: Vec<u64>,
    /// Lookup probes; roughly half are present in `keys`.
    pub queries: Vec<u64>,
}

/// Deterministically generate the canonical instance for `(n, q, seed)`.
///
/// Keys start at a seeded offset and grow by gaps in `2..=8`; queries pick
/// a uniform key position and then probe either the key itself (a hit) or
/// the key plus one (a guaranteed miss).
pub fn search_instance(n: usize, q: usize, seed: u64) -> SearchInstance {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5EAC_11A5_7E57_0001);
    let mut keys = Vec::with_capacity(n);
    let mut key = 1 + rng.next_below(64);
    for _ in 0..n {
        keys.push(key);
        key += 2 + rng.next_below(7);
    }
    let mut queries = Vec::with_capacity(q);
    for _ in 0..q {
        let pos = rng.next_below_usize(n.max(1));
        let base = keys.get(pos).copied().unwrap_or(0);
        queries.push(if rng.next_bool() { base } else { base + 1 });
    }
    SearchInstance { keys, queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_deterministic_and_strictly_increasing() {
        let a = search_instance(512, 64, 9);
        let b = search_instance(512, 64, 9);
        assert_eq!(a, b);
        assert!(a.keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(a.keys.len(), 512);
        assert_eq!(a.queries.len(), 64);
    }

    #[test]
    fn queries_mix_hits_and_guaranteed_misses() {
        let inst = search_instance(256, 200, 3);
        let hits = inst
            .queries
            .iter()
            .filter(|q| inst.keys.binary_search(q).is_ok())
            .count();
        assert!(hits > 0 && hits < inst.queries.len());
        // Gaps >= 2 make every `key + 1` probe a miss, never another key.
        for q in &inst.queries {
            if inst.keys.binary_search(q).is_err() {
                assert!(inst.keys.binary_search(&(q - 1)).is_ok());
            }
        }
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        let inst = search_instance(1, 4, 1);
        assert_eq!(inst.keys.len(), 1);
        assert!(inst.queries.iter().all(|&q| q >= inst.keys[0]));
        assert!(search_instance(0, 0, 1).keys.is_empty());
    }
}
