//! Seeded CSR graph instances for the BFS workload (T14).
//!
//! A graph instance is a directed graph over vertices `0..n` in CSR
//! form: an offsets array of `n + 1` words and an adjacency array of
//! exactly `m = n · δ` target ids (every vertex has out-degree `δ`, so
//! the registry's `delta` knob fixes the edge volume). The *shape* is
//! seed-derived so seed sweeps cover the traversal corners:
//!
//! * **path** — vertex `v` points at `v + 1` (self-loops at the end),
//!   giving BFS depth `≈ n`: the worst case for any level-synchronous
//!   strategy that pays a fixed cost per round;
//! * **random** — uniform targets, the `O(log n)`-depth typical case;
//! * **star** — vertex 0 fans out to a seeded spread and everything
//!   else points back at 0, so most vertices are unreachable (the
//!   `MISS` side of the distance oracle).
//!
//! The instance is what the registry's seeded constructor hands to every
//! layer (serve exec, fuzz, the cost gate, the T14 sweep), so the same
//! `(n, delta, seed)` triple always denotes the same workload.

use crate::rng::SplitMix64;

/// A generated BFS workload: a CSR graph searched from vertex 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInstance {
    /// Vertex count.
    pub n: usize,
    /// CSR offsets, `n + 1` entries; `offs[v]..offs[v+1]` indexes `adj`.
    pub offs: Vec<u64>,
    /// Adjacency targets, `n * delta` entries, each `< n`.
    pub adj: Vec<u64>,
}

/// Deterministically generate the canonical instance for
/// `(n, delta, seed)`; `seed % 3` picks path / random / star.
pub fn graph_instance(n: usize, delta: usize, seed: u64) -> GraphInstance {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0BF5_0000_7E57_0004);
    let offs: Vec<u64> = (0..=n as u64).map(|v| v * delta as u64).collect();
    let mut adj = Vec::with_capacity(n * delta);
    match seed % 3 {
        0 => {
            // Path: first edge v → v+1 (self-loop at the last vertex),
            // remaining out-edges are self-loops.
            for v in 0..n as u64 {
                let next = if (v as usize) + 1 < n { v + 1 } else { v };
                adj.push(next);
                for _ in 1..delta {
                    adj.push(v);
                }
            }
        }
        1 => {
            for _ in 0..n * delta {
                adj.push(rng.next_below(n.max(1) as u64));
            }
        }
        _ => {
            // Star: vertex 0 spreads over the id range, the rest point
            // back at the hub; most vertices stay unreachable.
            for v in 0..n {
                for e in 0..delta {
                    if v == 0 {
                        let spread = 1 + (e * n.saturating_sub(1)) / delta.max(1);
                        adj.push(spread.min(n - 1) as u64);
                    } else {
                        adj.push(0);
                    }
                }
            }
        }
    }
    GraphInstance { n, offs, adj }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_deterministic_and_well_formed() {
        for seed in 0..6u64 {
            let g = graph_instance(100, 3, seed);
            assert_eq!(g, graph_instance(100, 3, seed));
            assert_eq!(g.offs.len(), 101);
            assert_eq!(g.adj.len(), 300);
            assert!(g.adj.iter().all(|&w| (w as usize) < 100), "seed {seed}");
            assert!(g.offs.windows(2).all(|w| w[1] - w[0] == 3));
        }
    }

    #[test]
    fn path_shape_is_deep() {
        let g = graph_instance(50, 2, 3); // 3 % 3 == 0 → path
        for v in 0..49u64 {
            assert_eq!(g.adj[v as usize * 2], v + 1);
        }
        assert_eq!(g.adj[49 * 2], 49);
    }

    #[test]
    fn star_shape_leaves_vertices_unreachable() {
        let g = graph_instance(100, 2, 2); // 2 % 3 == 2 → star
                                           // Only vertex 0's targets (≤ delta of them) are reachable.
        let hub_targets: std::collections::BTreeSet<u64> = g.adj[..2].iter().copied().collect();
        assert!(hub_targets.len() <= 2);
        assert!(g.adj[2..].iter().all(|&w| w == 0));
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        let g = graph_instance(1, 3, 0);
        assert_eq!(g.adj, vec![0, 0, 0]);
        let empty = graph_instance(0, 2, 1);
        assert_eq!(empty.offs, vec![0]);
        assert!(empty.adj.is_empty());
    }
}
