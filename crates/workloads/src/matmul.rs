//! Seeded instances for the dense matrix-multiply workload (T13).
//!
//! A matmul instance is a pair of `d × d` row-major matrices over
//! wrapping `u64` arithmetic, with `d = ⌊√n⌋` so the workload registry's
//! single size knob `n` fixes the element count. The matrix *shape* is
//! seed-derived so seed sweeps cover the adversarial corners: rank-one
//! (rank-deficient — every product column is a scalar multiple of one
//! vector, so an indexing slip tends to still look "plausible"), and
//! dense-row/dense-column (a single heavy row meeting a heavy column,
//! the worst case for any tiling that assumes balanced tiles).
//!
//! The instance is what the registry's seeded constructor hands to every
//! layer (serve exec, fuzz, the cost gate, the T13 sweep), so the same
//! `(n, seed)` pair always denotes the same workload.

use crate::rng::SplitMix64;

/// A generated matmul workload: two `d × d` row-major factor matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatmulInstance {
    /// Matrix side; `d = ⌊√n⌋`, at least 1.
    pub d: usize,
    /// Left factor, row-major, `d * d` entries.
    pub a: Vec<u64>,
    /// Right factor, row-major, `d * d` entries.
    pub b: Vec<u64>,
}

/// Integer square root (largest `r` with `r² ≤ n`).
pub fn isqrt(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut r = (n as f64).sqrt() as usize;
    while r * r > n {
        r -= 1;
    }
    while (r + 1) * (r + 1) <= n {
        r += 1;
    }
    r
}

/// Deterministically generate the canonical instance for `(n, seed)`.
///
/// `seed % 3` picks the shape: uniform random words, rank-one
/// (`a[i][j] = u[i]·v[j]`), or dense-row (zero except one seeded heavy
/// row of `a` and one heavy column of `b`).
pub fn matmul_instance(n: usize, seed: u64) -> MatmulInstance {
    let d = isqrt(n).max(1);
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x3A73_0000_7E57_0003);
    let mut gen = |shape: u64, heavy: usize, by_col: bool| -> Vec<u64> {
        match shape {
            0 => (0..d * d).map(|_| rng.next_u64()).collect(),
            1 => {
                let u: Vec<u64> = (0..d).map(|_| rng.next_below(1 << 20)).collect();
                let v: Vec<u64> = (0..d).map(|_| rng.next_below(1 << 20)).collect();
                (0..d * d)
                    .map(|k| u[k / d].wrapping_mul(v[k % d]))
                    .collect()
            }
            _ => (0..d * d)
                .map(|k| {
                    let lane = if by_col { k % d } else { k / d };
                    if lane == heavy {
                        rng.next_u64()
                    } else {
                        0
                    }
                })
                .collect(),
        }
    };
    let shape = seed % 3;
    let heavy = (seed as usize / 3) % d;
    let a = gen(shape, heavy, false);
    let b = gen(shape, heavy, true);
    MatmulInstance { d, a, b }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_is_exact() {
        for n in 0..500usize {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "n={n}");
        }
        assert_eq!(isqrt(1764), 42);
    }

    #[test]
    fn instances_are_deterministic_and_sized() {
        let a = matmul_instance(1764, 9);
        let b = matmul_instance(1764, 9);
        assert_eq!(a, b);
        assert_eq!(a.d, 42);
        assert_eq!(a.a.len(), 42 * 42);
        assert_eq!(a.b.len(), 42 * 42);
    }

    #[test]
    fn shapes_cover_rank_one_and_dense_row() {
        // seed 1 → rank-one: every 2×2 minor of `a` vanishes (mod 2^64).
        let r1 = matmul_instance(100, 1);
        let d = r1.d;
        let m = |i: usize, j: usize| r1.a[i * d + j];
        assert_eq!(m(0, 0).wrapping_mul(m(1, 1)), m(0, 1).wrapping_mul(m(1, 0)));
        // seed 2 → dense-row: all of `a` outside one row is zero.
        let dr = matmul_instance(100, 2);
        let nonzero_rows: Vec<usize> = (0..dr.d)
            .filter(|&i| (0..dr.d).any(|j| dr.a[i * dr.d + j] != 0))
            .collect();
        assert!(nonzero_rows.len() <= 1);
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        let one = matmul_instance(1, 3);
        assert_eq!((one.d, one.a.len()), (1, 1));
        // n below 1 still yields the 1×1 matrix (the registry rejects
        // n = 0 before generation; this is belt-and-braces).
        assert_eq!(matmul_instance(0, 3).d, 1);
    }
}
