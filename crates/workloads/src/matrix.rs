//! Sparse matrix *conformations* for the SpMxV experiments (§5).
//!
//! §5 of the paper fixes the structure of the sparse matrix: an `N × N`
//! matrix with **exactly `δ ≥ 1` non-zero entries per column** (so
//! `H = δN` non-zeros in total), stored in **column-major order**: for each
//! column in increasing order, its non-zero entries are listed with
//! increasing row index, as triples `(i, j, a_ij)`.
//!
//! A [`Conformation`] captures exactly the structural information the
//! lower-bound argument fixes per program: the positions, not the values.

use crate::rng::SplitMix64;

/// One non-zero position `(row, col)` of the matrix. Values are supplied
/// separately when a multiplication is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Row index `i` (`0 ≤ i < n`).
    pub row: usize,
    /// Column index `j` (`0 ≤ j < n`).
    pub col: usize,
}

/// Families of conformations used by the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixShape {
    /// Each column's `δ` rows are drawn uniformly without replacement — the
    /// "almost all conformations are hard" regime of Theorem 5.1.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Entries clustered near the diagonal within the given half-bandwidth
    /// (easy locality: the direct algorithm shines here).
    Banded {
        /// Maximum distance of an entry from the diagonal.
        bandwidth: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Rows of each column drawn within the column's diagonal block of the
    /// given size (block-diagonal locality).
    BlockDiagonal {
        /// Side length of each diagonal block (must be ≥ δ).
        block: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// A fixed sparse-matrix structure: `n`, `δ`, and the non-zero positions in
/// column-major order.
#[derive(Debug, Clone)]
pub struct Conformation {
    /// Matrix dimension `N`.
    pub n: usize,
    /// Non-zeros per column `δ`.
    pub delta: usize,
    /// The `H = δ·N` positions, sorted by `(col, row)`.
    pub triples: Vec<Triple>,
}

impl Conformation {
    /// Generate a conformation with exactly `delta` entries per column.
    ///
    /// # Panics
    ///
    /// Panics if `delta > n` (a column cannot hold more distinct rows) or if
    /// a shape's structural parameter is infeasible.
    pub fn generate(shape: MatrixShape, n: usize, delta: usize) -> Self {
        assert!(delta >= 1 && delta <= n, "need 1 <= delta <= n");
        let mut triples = Vec::with_capacity(n * delta);
        match shape {
            MatrixShape::Random { seed } => {
                let mut rng = SplitMix64::seed_from_u64(seed);
                for col in 0..n {
                    let rows = sample_distinct(&mut rng, n, delta, 0);
                    triples.extend(rows.into_iter().map(|row| Triple { row, col }));
                }
            }
            MatrixShape::Banded { bandwidth, seed } => {
                let mut rng = SplitMix64::seed_from_u64(seed);
                for col in 0..n {
                    let lo = col.saturating_sub(bandwidth);
                    let hi = (col + bandwidth + 1).min(n);
                    assert!(hi - lo >= delta, "band too narrow for delta");
                    let rows = sample_distinct(&mut rng, hi - lo, delta, lo);
                    triples.extend(rows.into_iter().map(|row| Triple { row, col }));
                }
            }
            MatrixShape::BlockDiagonal { block, seed } => {
                assert!(block >= delta, "block must be >= delta");
                let mut rng = SplitMix64::seed_from_u64(seed);
                for col in 0..n {
                    let base = (col / block) * block;
                    let width = block.min(n - base);
                    assert!(width >= delta, "tail block too small for delta");
                    let rows = sample_distinct(&mut rng, width, delta, base);
                    triples.extend(rows.into_iter().map(|row| Triple { row, col }));
                }
            }
        }
        let c = Self { n, delta, triples };
        debug_assert!(c.validate().is_ok());
        c
    }

    /// Total number of non-zeros `H = δ·N`.
    pub fn nnz(&self) -> usize {
        self.triples.len()
    }

    /// Check all structural invariants: column-major order, increasing rows
    /// within each column, exactly `δ` entries per column, indices in range.
    pub fn validate(&self) -> Result<(), String> {
        if self.triples.len() != self.n * self.delta {
            return Err(format!(
                "expected {} triples, found {}",
                self.n * self.delta,
                self.triples.len()
            ));
        }
        let mut per_col = vec![0usize; self.n];
        for w in self.triples.windows(2) {
            let (a, b) = (w[0], w[1]);
            if (b.col, b.row) <= (a.col, a.row) {
                return Err(format!(
                    "triples not in column-major order at {:?} -> {:?}",
                    a, b
                ));
            }
        }
        for t in &self.triples {
            if t.row >= self.n || t.col >= self.n {
                return Err(format!("triple {:?} out of range n={}", t, self.n));
            }
            per_col[t.col] += 1;
        }
        if let Some(col) = per_col.iter().position(|&c| c != self.delta) {
            return Err(format!(
                "column {col} has {} entries, want {}",
                per_col[col], self.delta
            ));
        }
        Ok(())
    }

    /// Dense reference multiply over `f64`-like addition on `u64` values is
    /// deliberately *not* provided here; the `aem-core` SpMxV module defines
    /// the semiring and the reference product. This helper only exposes the
    /// per-column row lists for reference computations.
    pub fn rows_of_column(&self, col: usize) -> &[Triple] {
        let start = col * self.delta;
        &self.triples[start..start + self.delta]
    }
}

/// Sample `k` distinct values from `offset..offset+range`, returned sorted.
fn sample_distinct(rng: &mut SplitMix64, range: usize, k: usize, offset: usize) -> Vec<usize> {
    debug_assert!(k <= range);
    // For small ranges shuffle; for large, rejection-sample.
    let mut rows: Vec<usize> = if range <= 4 * k {
        let mut all: Vec<usize> = (0..range).collect();
        rng.shuffle(&mut all);
        all.truncate(k);
        all
    } else {
        let mut seen = std::collections::HashSet::with_capacity(k * 2);
        while seen.len() < k {
            seen.insert(rng.next_below_usize(range));
        }
        seen.into_iter().collect()
    };
    rows.sort_unstable();
    rows.iter_mut().for_each(|r| *r += offset);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_conformation_is_valid() {
        let c = Conformation::generate(MatrixShape::Random { seed: 1 }, 64, 4);
        assert_eq!(c.nnz(), 256);
        c.validate().unwrap();
    }

    #[test]
    fn banded_stays_in_band() {
        let c = Conformation::generate(
            MatrixShape::Banded {
                bandwidth: 6,
                seed: 2,
            },
            100,
            3,
        );
        c.validate().unwrap();
        for t in &c.triples {
            assert!(t.row.abs_diff(t.col) <= 6);
        }
    }

    #[test]
    fn block_diagonal_stays_in_block() {
        let c = Conformation::generate(MatrixShape::BlockDiagonal { block: 8, seed: 3 }, 64, 4);
        c.validate().unwrap();
        for t in &c.triples {
            assert_eq!(t.row / 8, t.col / 8);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Conformation::generate(MatrixShape::Random { seed: 9 }, 32, 2);
        let b = Conformation::generate(MatrixShape::Random { seed: 9 }, 32, 2);
        assert_eq!(a.triples, b.triples);
    }

    #[test]
    fn rows_of_column_slices_correctly() {
        let c = Conformation::generate(MatrixShape::Random { seed: 4 }, 16, 3);
        for col in 0..16 {
            let rows = c.rows_of_column(col);
            assert_eq!(rows.len(), 3);
            assert!(rows.iter().all(|t| t.col == col));
            assert!(rows.windows(2).all(|w| w[0].row < w[1].row));
        }
    }

    #[test]
    fn delta_equals_n_is_dense_column() {
        let c = Conformation::generate(MatrixShape::Random { seed: 5 }, 8, 8);
        c.validate().unwrap();
        for col in 0..8 {
            let rows: Vec<usize> = c.rows_of_column(col).iter().map(|t| t.row).collect();
            assert_eq!(rows, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn validate_catches_corruption() {
        let mut c = Conformation::generate(MatrixShape::Random { seed: 6 }, 16, 2);
        c.triples.swap(0, 1);
        assert!(c.validate().is_err());
    }
}
