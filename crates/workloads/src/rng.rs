//! A small deterministic PRNG for workload generation and property tests.
//!
//! The workspace has a zero-external-dependency policy, so instead of the
//! `rand` crate we use SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
//! 64-bit state, a Weyl increment and a finalizer with full period 2^64.
//! It is more than adequate for seeded workload generation — the paper's
//! experiments need *reproducible* hard instances, not cryptographic
//! quality — and its determinism per seed is part of the experiment
//! contract (tables are reproducible bit-for-bit).

/// SplitMix64: 64 bits of state, one multiply-shift finalizer per draw.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Equal seeds yield equal streams forever.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[0, bound)` via Lemire's multiply-shift rejection
    /// (unbiased). `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below needs a positive bound");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[0, bound)`.
    pub fn next_below_usize(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// A random `bool`.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        let mut c = SplitMix64::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn bounded_draws_stay_in_range_and_cover() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.next_below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn shuffle_handles_degenerate_sizes() {
        let mut rng = SplitMix64::seed_from_u64(13);
        let mut empty: Vec<u8> = vec![];
        rng.shuffle(&mut empty);
        let mut one = vec![5u8];
        rng.shuffle(&mut one);
        assert_eq!(one, vec![5]);
    }
}
