//! # `aem-workloads` — deterministic workload generators
//!
//! Inputs for the experiments that reproduce *Jacob & Sitchinava, SPAA 2017*:
//!
//! * [`perm`] — permutations of `0..N` (random, bit-reversal, transpose,
//!   stride, …): the inputs of the §4 permutation lower bound experiments.
//! * [`keys`] — key arrays for the §3 sorting experiments (uniform random,
//!   sorted, reverse-sorted, few-distinct, organ-pipe).
//! * [`matrix`] — sparse `N×N` matrix *conformations* with exactly `δ`
//!   non-zero entries per column, laid out in column-major order as the §5
//!   SpMxV lower bound demands (random, banded, block-diagonal, clustered).
//! * [`search`] — strictly increasing key files plus hit/miss query
//!   batches for the static-search (T11) experiments.
//! * [`scan`] — value files plus prefix-query batches for the
//!   reduce/scan (T12) experiments, including the all-equal corner.
//! * [`matmul`] — seeded `d×d` factor pairs for the dense multiply (T13)
//!   experiments (uniform, rank-one, dense-row shapes).
//! * [`graph`] — uniform-out-degree CSR graphs for the BFS (T14)
//!   experiments (path, random, star shapes).
//!
//! Everything is seeded and reproducible: the same `(generator, seed, size)`
//! triple always yields the same workload, so the experiment tables in
//! `EXPERIMENTS.md` regenerate bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod keys;
pub mod matmul;
pub mod matrix;
pub mod perm;
pub mod rng;
pub mod scan;
pub mod search;

pub use graph::{graph_instance, GraphInstance};
pub use keys::KeyDist;
pub use matmul::{matmul_instance, MatmulInstance};
pub use matrix::{Conformation, MatrixShape, Triple};
pub use perm::PermKind;
pub use rng::SplitMix64;
pub use scan::{scan_instance, ScanInstance};
pub use search::{search_instance, SearchInstance};
