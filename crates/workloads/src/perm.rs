//! Permutation generators.
//!
//! A permutation workload is a vector `pi` of length `N` with
//! `pi[i] = j` meaning "the element at input position `i` must end up at
//! output position `j`". The §4 lower bound holds for *worst-case*
//! permutations; random permutations are the standard stand-in (almost all
//! permutations are hard in the counting sense), while the structured
//! families (transpose, bit-reversal) are classical hard instances from the
//! external-memory literature.

use crate::rng::SplitMix64;

/// The permutation families used by tests and experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermKind {
    /// The identity permutation (easy case; lower bound trivial).
    Identity,
    /// Reversal: `pi[i] = N − 1 − i` (still streamable).
    Reverse,
    /// A uniformly random permutation (the hard case of Thm 4.5).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Matrix transpose of an `r × c` matrix stored row-major: element
    /// `(i, j)` moves to `(j, i)`. Requires `r·c = N`.
    Transpose {
        /// Number of rows `r`.
        rows: usize,
    },
    /// Bit reversal of the index (requires `N` a power of two): the FFT
    /// shuffle, a classical worst case for blocked memories.
    BitReversal,
    /// Stride permutation: `pi[i] = (i·s) mod N` with `gcd(s, N) = 1`.
    Stride {
        /// The stride `s`.
        stride: usize,
    },
}

impl PermKind {
    /// Generate the permutation vector for `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if the family's structural requirement is violated
    /// (`Transpose` needs `rows | n`; `BitReversal` needs `n` a power of
    /// two; `Stride` needs `gcd(s, n) = 1`).
    pub fn generate(self, n: usize) -> Vec<usize> {
        match self {
            PermKind::Identity => (0..n).collect(),
            PermKind::Reverse => (0..n).map(|i| n - 1 - i).collect(),
            PermKind::Random { seed } => {
                let mut pi: Vec<usize> = (0..n).collect();
                let mut rng = SplitMix64::seed_from_u64(seed);
                rng.shuffle(&mut pi);
                pi
            }
            PermKind::Transpose { rows } => {
                assert!(rows > 0 && n % rows == 0, "transpose needs rows | n");
                let cols = n / rows;
                (0..n)
                    .map(|i| {
                        let (r, c) = (i / cols, i % cols);
                        c * rows + r
                    })
                    .collect()
            }
            PermKind::BitReversal => {
                assert!(n.is_power_of_two(), "bit reversal needs a power of two");
                let bits = n.trailing_zeros();
                (0..n).map(|i| reverse_low_bits(i, bits)).collect()
            }
            PermKind::Stride { stride } => {
                assert!(gcd(stride, n) == 1, "stride must be coprime with n");
                (0..n).map(|i| (i * stride) % n).collect()
            }
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            PermKind::Identity => "identity",
            PermKind::Reverse => "reverse",
            PermKind::Random { .. } => "random",
            PermKind::Transpose { .. } => "transpose",
            PermKind::BitReversal => "bit-reversal",
            PermKind::Stride { .. } => "stride",
        }
    }
}

fn reverse_low_bits(x: usize, bits: u32) -> usize {
    let mut y = 0usize;
    for b in 0..bits {
        if x & (1 << b) != 0 {
            y |= 1 << (bits - 1 - b);
        }
    }
    y
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Check that `pi` is a permutation of `0..pi.len()`.
pub fn is_permutation(pi: &[usize]) -> bool {
    let n = pi.len();
    let mut seen = vec![false; n];
    for &p in pi {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Invert a permutation: `inv[pi[i]] = i`.
pub fn invert(pi: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; pi.len()];
    for (i, &p) in pi.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Apply `pi` to `data` directly (reference implementation used to verify
/// the AEM permutation algorithms): output position `pi[i]` receives
/// `data[i]`.
pub fn apply<T: Clone>(pi: &[usize], data: &[T]) -> Vec<T> {
    assert_eq!(pi.len(), data.len());
    let mut out: Vec<Option<T>> = vec![None; data.len()];
    for (i, &p) in pi.iter().enumerate() {
        out[p] = Some(data[i].clone());
    }
    out.into_iter()
        .map(|x| x.expect("pi is a permutation"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_generate_valid_permutations() {
        let kinds = [
            PermKind::Identity,
            PermKind::Reverse,
            PermKind::Random { seed: 42 },
            PermKind::Transpose { rows: 8 },
            PermKind::BitReversal,
            PermKind::Stride { stride: 5 },
        ];
        for k in kinds {
            let pi = k.generate(64);
            assert!(is_permutation(&pi), "{:?} not a permutation", k);
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = PermKind::Random { seed: 7 }.generate(100);
        let b = PermKind::Random { seed: 7 }.generate(100);
        let c = PermKind::Random { seed: 8 }.generate(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn transpose_round_trips() {
        // Transposing an r×c matrix then a c×r matrix is the identity.
        let n = 24;
        let t1 = PermKind::Transpose { rows: 4 }.generate(n);
        let t2 = PermKind::Transpose { rows: 6 }.generate(n);
        let composed: Vec<usize> = (0..n).map(|i| t2[t1[i]]).collect();
        assert_eq!(composed, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn bit_reversal_is_involution() {
        let pi = PermKind::BitReversal.generate(64);
        for i in 0..64 {
            assert_eq!(pi[pi[i]], i);
        }
    }

    #[test]
    fn invert_really_inverts() {
        let pi = PermKind::Random { seed: 3 }.generate(50);
        let inv = invert(&pi);
        for i in 0..50 {
            assert_eq!(inv[pi[i]], i);
        }
    }

    #[test]
    fn apply_reference_semantics() {
        // pi = [2,0,1]: element 0 -> pos 2, element 1 -> pos 0, elem 2 -> pos 1.
        let out = apply(&[2, 0, 1], &['a', 'b', 'c']);
        assert_eq!(out, vec!['b', 'c', 'a']);
    }

    #[test]
    #[should_panic]
    fn stride_requires_coprime() {
        let _ = PermKind::Stride { stride: 4 }.generate(64);
    }

    #[test]
    fn is_permutation_rejects_duplicates_and_range() {
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[2, 0, 1]));
    }
}
