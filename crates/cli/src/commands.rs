//! `aemsim` subcommand implementations. Each returns its report as a
//! `String` so the handlers are unit-testable without capturing stdout.

use aem_core::bounds::predict;
use aem_core::bounds::{flash as fbounds, permute as pbounds, spmv as sbounds};
use aem_core::permute::{
    permute_auto, permute_by_sort, permute_by_sort_on, permute_naive, DestTagged,
};
use aem_core::pq::replacement_select;
use aem_core::relational::{group_aggregate, sort_merge_join, Tuple};
use aem_core::sort::{distribution_sort, em_merge_sort, heap_sort, merge_sort, sort_via_pq};
use aem_core::spmv::{
    install_instance, reference_multiply, spmv_direct, spmv_direct_on, spmv_sorted, spmv_sorted_on,
    MatEntry, SpmvInstance, U64Ring,
};
use aem_core::workload::{run_workload, LiveHarness, RunCtx, WorkloadKind};
use aem_flash::driver::naive_atom_permutation;
use aem_flash::verify_lemma_4_3;
use aem_fuzz::{DistKind, FuzzCase, FuzzOptions};
use aem_machine::{AemAccess, AemConfig, Backend, Cost, Machine};
use aem_obs::{
    render_markdown, render_text, run_all, tail_from_record, InstrumentedMachine, Profile,
    ProfileHarness, RunRecord, WorkloadMeta,
};
use aem_workloads::{perm, Conformation, KeyDist, MatrixShape, PermKind};

use aem_serve::{install_shutdown_signals, run_load, serve, LoadOptions, ServeOptions};

use crate::args::Args;

/// Write `record` as JSONL to `path` and return the lines to append to the
/// command's report: the export note plus the paper-invariant verdicts.
fn export_record(path: &str, record: &RunRecord) -> Result<String, String> {
    std::fs::write(path, record.to_jsonl()).map_err(|e| format!("cannot write {path}: {e}"))?;
    let mut out = format!(
        "\ntrace record: {} events, {} phases -> {path}\n",
        record.trace.len(),
        record.phases.len()
    );
    for c in run_all(record) {
        out.push_str(&format!("  [{}] {}: {}\n", c.verdict(), c.name, c.detail));
    }
    Ok(out)
}

/// Parse the shared machine options (`--mem --block --omega`).
pub fn machine_config(args: &Args) -> Result<AemConfig, String> {
    let mem = args.get_or("mem", 1024usize)?;
    let block = args.get_or("block", 64usize)?;
    let omega = args.get_or("omega", 16u64)?;
    AemConfig::new(mem, block, omega).map_err(|e| e.to_string())
}

fn key_dist(args: &Args, seed: u64) -> Result<KeyDist, String> {
    Ok(match args.get("dist").unwrap_or("uniform") {
        "uniform" => KeyDist::Uniform { seed },
        "sorted" => KeyDist::Sorted,
        "reversed" => KeyDist::Reversed,
        "few-distinct" => KeyDist::FewDistinct { distinct: 16, seed },
        "organ-pipe" => KeyDist::OrganPipe,
        other => return Err(format!("unknown --dist '{other}'")),
    })
}

fn perm_kind(args: &Args, n: usize, seed: u64) -> Result<PermKind, String> {
    Ok(match args.get("kind").unwrap_or("random") {
        "random" => PermKind::Random { seed },
        "identity" => PermKind::Identity,
        "reverse" => PermKind::Reverse,
        "bit-reversal" => {
            if !n.is_power_of_two() {
                return Err("--kind bit-reversal requires a power-of-two --n".into());
            }
            PermKind::BitReversal
        }
        "transpose" => {
            let rows = args.get_or("rows", (n as f64).sqrt() as usize)?;
            if rows == 0 || n % rows != 0 {
                return Err("--kind transpose requires --rows dividing --n".into());
            }
            PermKind::Transpose { rows }
        }
        other => return Err(format!("unknown --kind '{other}'")),
    })
}

fn cost_line(label: &str, cost: Cost, omega: u64) -> String {
    format!(
        "{label:<24} {: >10} reads  {: >10} writes  Q = {}\n",
        cost.reads,
        cost.writes,
        cost.q(omega)
    )
}

/// `aemsim sort` — run one (or all) sorter on a generated workload.
pub fn cmd_sort(args: &Args) -> Result<String, String> {
    let cfg = machine_config(args)?;
    let n = args.get_or("n", 100_000usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let input = key_dist(args, seed)?.generate(n);
    let algo = args.get("algo").unwrap_or("all");

    let mut out = format!(
        "machine: {cfg}\nworkload: sort N={n} ({})\n\n",
        args.get("dist").unwrap_or("uniform")
    );
    let mut run = |name: &str, which: &str| -> Result<(), String> {
        let mut m: Machine<u64> = Machine::new(cfg);
        let r = m.install(&input);
        let sorted = match which {
            "aem" => merge_sort(&mut m, r),
            "em" => em_merge_sort(&mut m, r),
            "dist" => distribution_sort(&mut m, r),
            "heap" => heap_sort(&mut m, r),
            "pq" => sort_via_pq(&mut m, r),
            _ => unreachable!(),
        }
        .map_err(|e| e.to_string())?;
        let got = m.inspect(sorted);
        if !got.windows(2).all(|w| w[0] <= w[1]) || got.len() != n {
            return Err(format!("{name}: output verification failed"));
        }
        out.push_str(&cost_line(name, m.cost(), cfg.omega));
        Ok(())
    };
    match algo {
        "all" => {
            run("AEM mergesort (§3)", "aem")?;
            run("EM mergesort", "em")?;
            run("distribution sort", "dist")?;
            run("heapsort (ext. PQ)", "heap")?;
            run("PQ sort (buffered)", "pq")?;
        }
        "aem" | "em" | "dist" | "heap" | "pq" => run(algo, algo)?,
        other => {
            return Err(format!(
                "unknown --algo '{other}' (aem|em|dist|heap|pq|all)"
            ))
        }
    }
    let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
    out.push_str(&format!(
        "\nThm 4.5 lower bound (applies to sorting): {lb:.0}\n"
    ));

    if let Some(path) = args.get("trace-out") {
        // Instrumented re-run of one sorter (the chosen one, or the §3
        // mergesort under --algo all) to capture the full run record.
        let which = if algo == "all" { "aem" } else { algo };
        let mut im = InstrumentedMachine::new(Machine::<u64>::new(cfg));
        let r = im.inner_mut().install(&input);
        let sorted = match which {
            "aem" => merge_sort(&mut im, r),
            "em" => em_merge_sort(&mut im, r),
            "dist" => distribution_sort(&mut im, r),
            "heap" => heap_sort(&mut im, r),
            "pq" => sort_via_pq(&mut im, r),
            _ => unreachable!(),
        }
        .map_err(|e| e.to_string())?;
        let got = im.inner().inspect(sorted);
        if !got.windows(2).all(|w| w[0] <= w[1]) || got.len() != n {
            return Err(format!("{which}: output verification failed"));
        }
        let rec = im.into_record(WorkloadMeta::new("sort", which, n as u64));
        out.push_str(&export_record(path, &rec)?);
    }
    Ok(out)
}

/// `aemsim permute` — run the permuting strategies and compare with bounds.
pub fn cmd_permute(args: &Args) -> Result<String, String> {
    let cfg = machine_config(args)?;
    let n = args.get_or("n", 65_536usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let kind = perm_kind(args, n, seed)?;
    let pi = kind.generate(n);
    let values: Vec<u64> = (0..n as u64).collect();
    let want = perm::apply(&pi, &values);

    let mut out = format!(
        "machine: {cfg}\nworkload: permute N={n} ({})\n\n",
        kind.label()
    );
    let naive = permute_naive(cfg, &values, &pi).map_err(|e| e.to_string())?;
    if naive.output != want {
        return Err("naive: verification failed".into());
    }
    out.push_str(&cost_line("naive gather", naive.cost, cfg.omega));
    let sort = permute_by_sort(cfg, &values, &pi).map_err(|e| e.to_string())?;
    if sort.output != want {
        return Err("by-sort: verification failed".into());
    }
    out.push_str(&cost_line("by sorting (§3)", sort.cost, cfg.omega));
    let (auto, strategy) = permute_auto(cfg, &values, &pi).map_err(|e| e.to_string())?;
    out.push_str(&cost_line(
        &format!("auto → {strategy:?}"),
        auto.cost,
        cfg.omega,
    ));

    let lb = pbounds::permute_cost_lower_bound(n as u64, cfg);
    let branch = pbounds::active_branch(n as u64, cfg);
    let flash = fbounds::flash_reduction_cost_bound(n as u64, cfg);
    out.push_str(&format!(
        "\nThm 4.5 counting bound: {lb:.0} (active branch: {branch:?}); best measured/bound = {:.1}\n",
        naive.q().min(sort.q()) as f64 / lb.max(1.0)
    ));
    if flash > 0.0 {
        out.push_str(&format!("Cor 4.4 flash-reduction bound: {flash:.0}\n"));
    }

    if let Some(path) = args.get("trace-out") {
        // Instrumented re-run of the sort-based permuter.
        let tagged: Vec<DestTagged<u64>> = values
            .iter()
            .zip(pi.iter())
            .map(|(v, &d)| DestTagged {
                dest: d as u64,
                value: *v,
            })
            .collect();
        let mut im = InstrumentedMachine::new(Machine::<DestTagged<u64>>::new(cfg));
        let input = im.inner_mut().install(&tagged);
        let outr = permute_by_sort_on(&mut im, input).map_err(|e| e.to_string())?;
        let got: Vec<u64> = im
            .inner()
            .inspect(outr)
            .into_iter()
            .map(|t| t.value)
            .collect();
        if got != want {
            return Err("by-sort (instrumented): verification failed".into());
        }
        let rec = im.into_record(WorkloadMeta::new("permute", "by_sort", n as u64));
        out.push_str(&export_record(path, &rec)?);
    }
    Ok(out)
}

/// `aemsim spmv` — run both SpMxV programs on a generated conformation.
pub fn cmd_spmv(args: &Args) -> Result<String, String> {
    let cfg = machine_config(args)?;
    let n = args.get_or("n", 4096usize)?;
    let delta = args.get_or("delta", 4usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let shape = match args.get("shape").unwrap_or("random") {
        "random" => MatrixShape::Random { seed },
        "banded" => MatrixShape::Banded {
            bandwidth: args.get_or("bandwidth", 4 * delta)?,
            seed,
        },
        "block-diagonal" => MatrixShape::BlockDiagonal {
            block: args.get_or("mblock", (2 * delta).max(8))?,
            seed,
        },
        other => return Err(format!("unknown --shape '{other}'")),
    };
    let conf = Conformation::generate(shape, n, delta);
    let a: Vec<U64Ring> = (0..conf.nnz())
        .map(|i| U64Ring((i as u64 * 37 + 1) % 97))
        .collect();
    let x: Vec<U64Ring> = (0..n).map(|j| U64Ring((j as u64 * 13 + 5) % 89)).collect();
    let want = reference_multiply(&conf, &a, &x);

    let mut out = format!(
        "machine: {cfg}\nworkload: SpMxV {n}x{n}, δ={delta} (H={}), {} conformation\n\n",
        conf.nnz(),
        args.get("shape").unwrap_or("random")
    );
    let d = spmv_direct(cfg, &conf, &a, &x).map_err(|e| e.to_string())?;
    if d.output != want {
        return Err("direct: verification failed".into());
    }
    out.push_str(&cost_line("direct O(H + ωn)", d.cost, cfg.omega));
    let s = spmv_sorted(cfg, &conf, &a, &x).map_err(|e| e.to_string())?;
    if s.output != want {
        return Err("sorted: verification failed".into());
    }
    out.push_str(&cost_line("sorting-based (§5)", s.cost, cfg.omega));

    let lb = sbounds::spmv_cost_lower_bound(n as u64, delta as u64, cfg);
    let applies = sbounds::theorem_applies(n as u64, delta as u64, cfg, 0.05);
    out.push_str(&format!(
        "\nThm 5.1 bound: {lb:.0} (parameter range {}); best measured/bound = {}\n",
        if applies {
            "satisfied"
        } else {
            "NOT satisfied — bound informational"
        },
        if lb > 0.0 {
            format!("{:.1}", d.q().min(s.q()) as f64 / lb)
        } else {
            "—".into()
        },
    ));

    if let Some(path) = args.get("trace-out") {
        // Instrumented re-run of the chosen SpMxV program (sorted by
        // default — it is the paper's §5 upper bound).
        let which = args.get("algo").unwrap_or("sorted");
        let inst = SpmvInstance {
            conf: &conf,
            a_vals: &a,
            x: &x,
        };
        let mut im = InstrumentedMachine::new(Machine::<MatEntry<U64Ring>>::new(cfg));
        let (ar, xr) = install_instance(im.inner_mut(), &inst);
        let y = match which {
            "sorted" => spmv_sorted_on(&mut im, &conf, ar, xr),
            "direct" => spmv_direct_on(&mut im, &conf, ar, xr),
            other => return Err(format!("unknown --algo '{other}' (sorted|direct)")),
        }
        .map_err(|e| e.to_string())?;
        let got: Vec<U64Ring> = im.inner().inspect(y).into_iter().map(|e| e.val).collect();
        if got != want {
            return Err(format!("{which} (instrumented): verification failed"));
        }
        let rec = im.into_record(WorkloadMeta::with_delta(
            "spmv",
            which,
            n as u64,
            delta as u64,
        ));
        out.push_str(&export_record(path, &rec)?);
    }
    Ok(out)
}

/// `aemsim bounds` — print every bound value for a parameter point.
pub fn cmd_bounds(args: &Args) -> Result<String, String> {
    let cfg = machine_config(args)?;
    let n = args.get_or("n", 1u64 << 20)?;
    let delta = args.get_or("delta", 8u64)?;
    let cb = pbounds::counting_rounds(n, cfg);
    let mut out = format!("machine: {cfg}, N = {n}\n\n");
    out.push_str(&format!(
        "permuting/sorting (Thm 4.5):\n  counting rounds R ≥ {} (target ln = {:.1}, per-round ln = {:.1})\n  cost ≥ {:.0} (round-based, this config); ≥ {:.0} (any program)\n  asymptotic form min{{N, ωn·log_ωm n}} = {:.0} (branch: {:?})\n",
        cb.rounds,
        cb.target_ln,
        cb.per_round_ln,
        cb.cost,
        pbounds::permute_cost_lower_bound(n, cfg),
        pbounds::permute_lower_bound_asymptotic(n, cfg),
        pbounds::active_branch(n, cfg),
    ));
    let fl = fbounds::flash_reduction_cost_bound(n, cfg);
    out.push_str(&format!(
        "\nflash reduction (Cor 4.4): {}\n",
        if fl > 0.0 {
            format!("{fl:.0}")
        } else {
            "vacuous here (needs B > ω)".into()
        }
    ));
    out.push_str(&format!(
        "\nSpMxV (Thm 5.1) at δ = {delta}:\n  numeric bound = {:.0}\n  asymptotic min{{H, ωh·log_ωm N/max{{δ,B}}}} = {:.0}\n  parameter range ωδMB ≤ N^0.95: {}\n",
        sbounds::spmv_cost_lower_bound(n, delta, cfg),
        sbounds::spmv_lower_bound_asymptotic(n, delta, cfg),
        sbounds::theorem_applies(n, delta, cfg, 0.05),
    ));
    Ok(out)
}

/// `aemsim lemma43` — run the flash-model reduction end to end.
pub fn cmd_lemma43(args: &Args) -> Result<String, String> {
    let cfg = machine_config(args)?;
    let n = args.get_or("n", 4096usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let pi = PermKind::Random { seed }.generate(n);
    let (prog, _) = naive_atom_permutation(cfg, &pi).map_err(|e| e.to_string())?;
    if !prog.realizes(&pi) {
        return Err("atom program failed to realize pi".into());
    }
    let report = verify_lemma_4_3(&prog.program, cfg).map_err(|e| e.to_string())?;
    Ok(format!(
        "machine: {cfg}\nAEM program: Q = {} ({} reads, {} writes)\nflash program: {} sector reads, {} big writes\nvolume = {} ≤ bound 2N + 2QB/ω = {}  ({:.0}% of bound)\nlayout verified against the AEM program ✓\n",
        report.aem_q,
        report.aem_cost.reads,
        report.aem_cost.writes,
        report.sector_reads,
        report.big_writes,
        report.flash_volume,
        report.volume_bound,
        100.0 * report.flash_volume as f64 / report.volume_bound as f64,
    ))
}

/// `aemsim join` — sort-merge join two generated relations and aggregate.
pub fn cmd_join(args: &Args) -> Result<String, String> {
    let cfg = machine_config(args)?;
    let n_left = args.get_or("left", 20_000usize)?;
    let n_right = args.get_or("right", 5_000usize)?;
    let keys = args.get_or("keys", 1_000u64)?;
    let seed = args.get_or("seed", 1u64)?;

    let left: Vec<Tuple<u64>> = KeyDist::Zipf {
        distinct: keys,
        s_x10: 11,
        seed,
    }
    .generate(n_left)
    .into_iter()
    .enumerate()
    .map(|(i, k)| Tuple {
        key: k,
        payload: i as u64,
    })
    .collect();
    let right: Vec<Tuple<u64>> = (0..n_right as u64)
        .map(|i| Tuple {
            key: i % keys,
            payload: i,
        })
        .collect();

    let mut m: Machine<Tuple<u64>> = Machine::new(cfg);
    let (lr, rr) = (m.install(&right), m.install(&left));
    // Unique-ish side left (buffered per key); skewed side streamed.
    let joined =
        sort_merge_join(&mut m, lr, rr, |a: &u64, b: &u64| a ^ b).map_err(|e| e.to_string())?;
    let join_cost = m.cost();
    let grouped =
        group_aggregate(&mut m, joined, |acc: u64, _x: &u64| acc + 1).map_err(|e| e.to_string())?;
    let groups = grouped.elems;
    let cost = m.cost();

    Ok(format!(
        "machine: {cfg}\n\
         workload: {n_left} zipf tuples ⋈ {n_right} tuples on {keys} keys, then COUNT(*) GROUP BY key\n\n\
         join:  {} reads, {} writes, Q = {}\n\
         total (join+group): Q = {} across {groups} groups\n\
         (write-lean: both operators sort with the §3 mergesort)\n",
        join_cost.reads,
        join_cost.writes,
        join_cost.q(cfg.omega),
        cost.q(cfg.omega),
    ))
}

/// `aemsim trace` — record an algorithm's I/O trace and report its
/// structure (the §2 program view of an execution).
pub fn cmd_trace(args: &Args) -> Result<String, String> {
    use aem_machine::rounds::{round_based_cost, round_decompose};
    let cfg = machine_config(args)?;
    let n = args.get_or("n", 16_384usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let input = key_dist(args, seed)?.generate(n);
    let algo = args.get("algo").unwrap_or("aem");

    let mut m: Machine<u64> = Machine::new(cfg);
    let r = m.install(&input);
    m.start_trace();
    match algo {
        "aem" => drop(merge_sort(&mut m, r).map_err(|e| e.to_string())?),
        "em" => drop(em_merge_sort(&mut m, r).map_err(|e| e.to_string())?),
        "dist" => drop(distribution_sort(&mut m, r).map_err(|e| e.to_string())?),
        "heap" => drop(heap_sort(&mut m, r).map_err(|e| e.to_string())?),
        "pq" => drop(sort_via_pq(&mut m, r).map_err(|e| e.to_string())?),
        other => return Err(format!("unknown --algo '{other}' (aem|em|dist|heap|pq)")),
    }
    let trace = m.take_trace().ok_or("no trace recorded")?;
    let stats = trace.stats();
    let rounds = round_decompose(&trace, cfg);
    let q = trace.cost().q(cfg.omega);
    let q_rb = round_based_cost(&trace, cfg).q(cfg.omega);

    let mut extra = String::new();
    if let Some(path) = args.get("trace-out") {
        // Instrumented re-run with full phase attribution (the plain
        // machine trace above has no phase spans).
        let mut im = InstrumentedMachine::new(Machine::<u64>::new(cfg));
        let r = im.inner_mut().install(&input);
        match algo {
            "aem" => drop(merge_sort(&mut im, r).map_err(|e| e.to_string())?),
            "em" => drop(em_merge_sort(&mut im, r).map_err(|e| e.to_string())?),
            "dist" => drop(distribution_sort(&mut im, r).map_err(|e| e.to_string())?),
            "heap" => drop(heap_sort(&mut im, r).map_err(|e| e.to_string())?),
            "pq" => drop(sort_via_pq(&mut im, r).map_err(|e| e.to_string())?),
            _ => unreachable!(),
        }
        let rec = im.into_record(WorkloadMeta::new("sort", algo, n as u64));
        extra = export_record(path, &rec)?;
    }

    Ok(format!(
        "machine: {cfg}\n\
         program: {algo} sort of N={n} ({} events)\n\n\
         data I/O:   {} reads, {} writes\n\
         aux  I/O:   {} reads, {} writes  ({:.1}% of all I/O)\n\
         distinct blocks read: {}; max re-reads of one block: {}\n\
         I/O volume: {} elements\n\n\
         Q = {}\n\
         ωm-rounds (greedy decomposition): {}\n\
         Lemma 4.1 round-based conversion cost: {} ({:.2}x)\n{extra}",
        trace.len(),
        stats.data_reads,
        stats.data_writes,
        stats.aux_reads,
        stats.aux_writes,
        100.0 * stats.aux_fraction(),
        stats.distinct_blocks_read,
        stats.max_rereads,
        stats.volume,
        q,
        rounds.len(),
        q_rb,
        q_rb as f64 / q.max(1) as f64,
    ))
}

/// `aemsim pq` — exercise the buffered external priority queue: one
/// replacement-selection pass over the workload, then a full
/// insert-all/extract-all sort reported against the exact-schedule
/// predictor and the §3 mergesort.
pub fn cmd_pq(args: &Args) -> Result<String, String> {
    let cfg = machine_config(args)?;
    let n = args.get_or("n", 65_536usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let input = key_dist(args, seed)?.generate(n);

    let mut out = format!(
        "machine: {cfg}\nworkload: pq N={n} ({})\n\n",
        args.get("dist").unwrap_or("uniform")
    );

    // One replacement-selection pass: the run-generation workload.
    let mut m: Machine<u64> = Machine::new(cfg);
    let r = m.install(&input);
    let (runs, stats) = replacement_select(&mut m, r).map_err(|e| e.to_string())?;
    if runs.iter().map(|r| r.elems).sum::<usize>() != n {
        return Err("run generation: element count mismatch".into());
    }
    let avg = n as f64 / stats.runs.max(1) as f64;
    out.push_str(&format!(
        "run generation (replacement selection, h = {}):\n  {} runs, avg length {:.1} ({:.2}x h)\n",
        stats.heap_capacity,
        stats.runs,
        avg,
        avg / stats.heap_capacity as f64,
    ));
    out.push_str(&cost_line("  single pass", m.cost(), cfg.omega));

    // Full sort through the queue, against the predictor and mergesort.
    let mut mp: Machine<u64> = Machine::new(cfg);
    let rp = mp.install(&input);
    let sorted = sort_via_pq(&mut mp, rp).map_err(|e| e.to_string())?;
    let got = mp.inspect(sorted);
    if !got.windows(2).all(|w| w[0] <= w[1]) || got.len() != n {
        return Err("pq sort: output verification failed".into());
    }
    let mut mm: Machine<u64> = Machine::new(cfg);
    let rm = mm.install(&input);
    merge_sort(&mut mm, rm).map_err(|e| e.to_string())?;
    out.push('\n');
    out.push_str(&cost_line("PQ sort (buffered)", mp.cost(), cfg.omega));
    out.push_str(&cost_line("AEM mergesort (§3)", mm.cost(), cfg.omega));
    let pred = predict::pq_sort_cost(cfg, n);
    out.push_str(&format!(
        "\nexact-schedule predictor: Q = {} (measured = {:.0}% of predicted)\nQ(PQ) / Q(mergesort) = {:.2}\n",
        pred.q(cfg.omega),
        100.0 * mp.cost().q(cfg.omega) as f64 / pred.q(cfg.omega).max(1) as f64,
        mp.cost().q(cfg.omega) as f64 / mm.cost().q(cfg.omega).max(1) as f64,
    ));

    if let Some(path) = args.get("trace-out") {
        // Instrumented re-run of the PQ-backed sorter.
        let mut im = InstrumentedMachine::new(Machine::<u64>::new(cfg));
        let r = im.inner_mut().install(&input);
        sort_via_pq(&mut im, r).map_err(|e| e.to_string())?;
        let rec = im.into_record(WorkloadMeta::new("sort", "pq", n as u64));
        out.push_str(&export_record(path, &rec)?);
    }
    Ok(out)
}

/// Parse the `--backend {vec,arena,ghost,trace}` option (default: vec).
fn parse_backend(args: &Args) -> Result<aem_machine::Backend, String> {
    match args.get("backend") {
        None => Ok(aem_machine::Backend::Vec),
        Some(name) => aem_machine::Backend::from_name(name),
    }
}

/// `aemsim exp` — run EXPERIMENTS.md experiments on the parallel,
/// resumable sweep engine (`aem_bench::sweep`).
pub fn cmd_exp(args: &Args) -> Result<String, String> {
    let backend = parse_backend(args)?;
    let opts = aem_bench::sweep::RunOptions {
        jobs: args.get_or("jobs", 0usize)?,
        cache: args.get("cache").map(std::path::PathBuf::from),
        fresh: args.flag("fresh"),
        only: args.get("only").map(|s| {
            s.split(',')
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect()
        }),
        backend,
    };
    let quick = args.flag("quick");
    let sweeps = aem_bench::exp::all_sweeps(quick, backend);
    let report = aem_bench::sweep::run(&sweeps, &opts)?;

    let mut out = String::new();
    for o in &report.outcomes {
        if let Some(t) = &o.table {
            out.push_str(&t.to_markdown());
        }
    }
    for o in &report.outcomes {
        match &o.panic {
            Some(msg) => out.push_str(&format!("{:5} PANIC  {}\n", o.id, msg)),
            None => out.push_str(&format!("{:5} {}\n", o.id, o.verdict())),
        }
    }
    out.push_str(&format!(
        "{} experiments, {} cells simulated, {} cached\n",
        report.outcomes.len(),
        report.executed,
        report.cached
    ));
    if args.flag("stats") {
        out.push('\n');
        out.push_str(&report.stats_table().to_markdown());
    }
    if report.all_pass() {
        Ok(out)
    } else {
        Err(format!("{out}\nsome experiments did not PASS"))
    }
}

/// Render the result of replaying one fuzz case.
fn render_fuzz_replay(
    target: &str,
    case: &FuzzCase,
    outcome: aem_fuzz::Outcome,
) -> Result<String, String> {
    let head = format!("replay: target '{target}' on {case}\n");
    match outcome {
        aem_fuzz::Outcome::Pass => Ok(format!("{head}result: PASS\n")),
        aem_fuzz::Outcome::Skip(why) => Ok(format!("{head}result: SKIP ({why})\n")),
        aem_fuzz::Outcome::Fail(msg) => Err(format!("{head}result: FAIL\n  {msg}\n")),
    }
}

/// `aemsim fuzz` — deterministic differential fuzzing of every algorithm
/// against the in-memory oracles and the paper's theorem bounds.
///
/// Three modes:
/// * generative (default): sample `--iters` corner-biased cases from
///   `--seed` and run them through every (or `--target`-filtered) check;
/// * seed-file replay: `--replay FILE` re-runs one corpus/repro JSON;
/// * inline replay: the `--target … --case-seed …` shape that failure
///   reports emit as their one-line repro command.
pub fn cmd_fuzz(args: &Args) -> Result<String, String> {
    if let Some(path) = args.get("replay") {
        let entry = aem_fuzz::corpus::load_file(std::path::Path::new(path))?;
        let outcome = aem_fuzz::corpus::replay(&entry)?;
        return render_fuzz_replay(&entry.target, &entry.case, outcome);
    }

    if args.get("case-seed").is_some() {
        let target = args
            .get("target")
            .ok_or("inline replay requires --target (alongside --case-seed)")?;
        let dist = DistKind::from_name(
            args.get("dist").unwrap_or("uniform"),
            args.get_or("distinct", 1u64)?,
        )?;
        let case = FuzzCase {
            mem: args.get_or("mem", 1024usize)?,
            block: args.get_or("block", 64usize)?,
            omega: args.get_or("omega", 16u64)?,
            n: args.get_or("n", 100usize)?,
            case_seed: args.get_or("case-seed", 0u64)?,
            dist,
            delta: args.get_or("delta", 4usize)?,
        };
        let outcome = aem_fuzz::runner::replay_on(target, &case, parse_backend(args)?)?;
        return render_fuzz_replay(target, &case, outcome);
    }

    let opts = FuzzOptions {
        backend: parse_backend(args)?,
        seed: args.get_or("seed", 42u64)?,
        iters: args.get_or("iters", 200u64)?,
        time_budget_secs: match args.get("time-budget-secs") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value for --time-budget-secs: '{v}'"))?,
            ),
        },
        targets: args.get("target").map(|s| {
            s.split(',')
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect()
        }),
    };
    let report = aem_fuzz::run(&opts)?;
    if let Some(f) = &report.failure {
        if let Some(path) = args.get("repro-out") {
            std::fs::write(path, format!("{}\n", f.repro_json()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        return Err(report.render());
    }
    Ok(report.render())
}

/// `aemsim report` — load a JSONL run record, re-check the paper
/// invariants, and render the phase-attributed cost report. Exits
/// nonzero (an `Err`) when any paper-invariant checker fails, naming the
/// failing checker and attaching the I/O tail, so the command is usable
/// as a CI gate over exported traces.
pub fn cmd_report(args: &Args) -> Result<String, String> {
    let path = args
        .get("in")
        .ok_or("report requires --in FILE (a --trace-out export)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let rec = RunRecord::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    let checks = run_all(&rec);
    let rendered = match args.get("format").unwrap_or("text") {
        "text" => render_text(&rec, &checks),
        "md" | "markdown" => render_markdown(&rec, &checks),
        other => return Err(format!("unknown --format '{other}' (text|md)")),
    };
    if let Some(bad) = checks.iter().find(|c| !c.passed) {
        return Err(format!(
            "{rendered}\npaper-invariant checker FAILED: {} — {}\n{}",
            bad.name,
            bad.detail,
            tail_from_record(&rec, aem_obs::DEFAULT_FLIGHT_CAPACITY),
        ));
    }
    Ok(rendered)
}

/// The `kind1|kind2|…` operand menu, straight from the registry.
fn workload_names() -> String {
    WorkloadKind::ALL
        .iter()
        .map(|k| k.name())
        .collect::<Vec<_>>()
        .join("|")
}

/// Resolve the shared registry options (`--n --delta --algo --seed`) for
/// one workload operand into a validated run context. Defaults come from
/// the kind's descriptor, so each registered kind names its own
/// canonical profile shape.
fn registry_ctx(kind: WorkloadKind, args: &Args) -> Result<RunCtx, String> {
    let w = kind.descriptor();
    let cfg = machine_config(args)?;
    let n = args.get_or("n", w.profile_n)?;
    let delta = args.get_or("delta", w.default_delta)?;
    let seed = args.get_or("seed", 1u64)?;
    let algo = args.get("algo").unwrap_or(w.default_algo);
    RunCtx::new(kind, algo, cfg, n, delta, seed)
}

/// Build the instrumented run record — plus the live flight-recorder
/// tail, which only exists machine-side — for one `profile` workload on
/// one backend.
///
/// Fully registry-driven: the kind name, algorithm menu, shape defaults,
/// and ghost policy all come from the `Workload` descriptor, so a newly
/// registered kind is profilable with zero edits here.
fn profile_record(
    workload: &str,
    backend: Backend,
    args: &Args,
) -> Result<(RunRecord, String), String> {
    let kind = WorkloadKind::from_name(workload).map_err(|_| {
        format!(
            "unknown profile workload '{workload}' ({})",
            workload_names()
        )
    })?;
    let ctx = registry_ctx(kind, args)?;
    // The cost-only backend carries no payloads: algorithms whose
    // schedule routes on data refuse it (the registry says which).
    if !backend.carries_payload() && !ctx.algo.ghost_runnable {
        return Err(format!(
            "profile {}/{} {}; use --backend vec|arena",
            kind.name(),
            ctx.algo.name,
            ctx.algo.ghost_note
        ));
    }
    let p = run_workload(&ctx, &mut ProfileHarness { backend }).map_err(|e| e.to_string())?;
    Ok((p.record, p.flight_jsonl))
}

/// `aemsim run <workload>` — execute a registered workload live and
/// report the measured cost next to the registry's priced candidate
/// menu (every predictor that accepts this config, cheapest flagged).
pub fn cmd_run(args: &Args) -> Result<String, String> {
    let workload = args.operand.as_deref().ok_or_else(|| {
        format!(
            "run requires a workload operand: aemsim run {} [--algo --n --delta --backend ...]",
            workload_names()
        )
    })?;
    let kind = WorkloadKind::from_name(workload)?;
    let w = kind.descriptor();
    let backend = parse_backend(args)?;
    let ctx = registry_ctx(kind, args)?;
    let (cost, checksum) =
        run_workload(&ctx, &mut LiveHarness { backend }).map_err(|e| e.to_string())?;

    let delta_note = if w.requires_delta {
        format!(", {} = {}", w.delta_name, ctx.delta)
    } else {
        String::new()
    };
    let mut out = format!(
        "machine: {}\nworkload: {}/{} N={}{delta_note} backend={}\n\n",
        ctx.cfg,
        kind.name(),
        ctx.algo.name,
        ctx.n,
        backend.name(),
    );
    out.push_str(&cost_line("measured", cost, ctx.cfg.omega));
    if backend.carries_payload() {
        out.push_str(&format!("output checksum: {checksum:#018x}\n"));
    } else {
        out.push_str("output checksum: none (cost-only backend)\n");
    }
    let menu = w.menu(ctx.cfg, ctx.n, ctx.delta);
    if menu.is_empty() {
        out.push_str("\ncandidate menu: no predictor accepts this config\n");
    } else {
        let best = w.cheapest(ctx.cfg, ctx.n, ctx.delta).map(|(name, _)| name);
        out.push_str("\ncandidate menu (exact-schedule predictions):\n");
        for (name, c) in &menu {
            let mut marks = String::new();
            if *name == ctx.algo.name {
                marks.push_str("  ← ran");
            }
            if Some(*name) == best {
                marks.push_str("  (cheapest)");
            }
            out.push_str(&format!("  {name:<12} Q = {}{marks}\n", c.q(ctx.cfg.omega)));
        }
    }
    Ok(out)
}

/// `aemsim profile <workload>` — run a workload on an instrumented
/// machine and write its cost-attribution profile: folded stacks
/// (flamegraph input), the per-block access heatmap, a Prometheus-style
/// text exposition, and the flight-recorder tail. The summary printed to
/// stdout carries the predictor-residual gauges and the heatmap.
pub fn cmd_profile(args: &Args) -> Result<String, String> {
    let workload = args.operand.as_deref().ok_or_else(|| {
        format!(
            "profile requires a workload operand: aemsim profile {} [--backend ...]",
            workload_names()
        )
    })?;
    let backend = parse_backend(args)?;
    let cfg = machine_config(args)?;
    let (rec, flight_jsonl) = profile_record(workload, backend, args)?;
    let profile = Profile::build(&rec, &[("backend", backend.name())]);

    let prefix = args.get("out").unwrap_or("aemsim-profile");
    for (suffix, content) in [
        (".folded", profile.folded.as_str()),
        (".prom", profile.prometheus.as_str()),
        (".flight.jsonl", flight_jsonl.as_str()),
    ] {
        let path = format!("{prefix}{suffix}");
        std::fs::write(&path, content).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let heat_text = profile.heatmap.render();
    let heat_path = format!("{prefix}.heatmap.txt");
    std::fs::write(&heat_path, &heat_text).map_err(|e| format!("cannot write {heat_path}: {e}"))?;

    let cost = rec.trace.cost();
    let mut out = format!(
        "machine: {cfg}\nworkload: {}/{} N={} backend={}\n\nQ = {} ({} reads, {} writes)\n",
        rec.workload.kind,
        rec.workload.algo,
        rec.workload.n,
        backend.name(),
        rec.q(),
        cost.reads,
        cost.writes,
    );
    if profile.residuals.is_empty() {
        out.push_str("\npredictor residuals: no closed-form predictor for this workload\n");
    } else {
        out.push_str("\npredictor residuals (measured / predicted Q):\n");
        for r in &profile.residuals {
            out.push_str(&format!(
                "  {:<16} {:>6.3}  ({} / {})\n",
                r.scope,
                r.ratio(),
                r.measured_q,
                r.predicted_q
            ));
        }
    }
    out.push('\n');
    out.push_str(&heat_text);
    out.push_str(&format!(
        "\nprofile artifacts (ω-weighted cost attribution):\n  {prefix}.folded        folded stacks, {} frames (flamegraph.pl/inferno input)\n  {prefix}.heatmap.txt   the heatmap above\n  {prefix}.prom          Prometheus text exposition, {} samples\n  {prefix}.flight.jsonl  flight-recorder tail, last {} of {} I/O events\n",
        profile.folded.lines().count(),
        profile
            .prometheus
            .lines()
            .filter(|l| !l.starts_with('#'))
            .count(),
        flight_jsonl.lines().count(),
        rec.trace.len(),
    ));
    Ok(out)
}

/// `aemsim serve`: boot the cost-metered multi-tenant job service and
/// block until SIGTERM/SIGINT (or a client `shutdown` frame) drains it.
pub fn cmd_serve(args: &Args) -> Result<String, String> {
    let opts = ServeOptions {
        addr: args.get("addr").unwrap_or("127.0.0.1:7979").to_string(),
        workers: args.get_or("workers", 4usize)?,
        queue_over_budget: !args.flag("no-queue"),
        admission_log: args.get("admission-log").map(str::to_string),
        metering_out: args.get("metering-out").map(str::to_string),
        prom_out: args.get("prom-out").map(str::to_string),
        addr_file: args.get("addr-file").map(str::to_string),
    };
    let shutdown = install_shutdown_signals();
    serve(&opts, shutdown)
}

/// `aemsim serve-load`: seeded synthetic multi-tenant traffic against a
/// running server. Same seed, same server state ⇒ byte-identical report
/// (the determinism contract the CI serve job checks with `cmp`).
pub fn cmd_serve_load(args: &Args) -> Result<String, String> {
    let opts = LoadOptions {
        addr: args.get("addr").unwrap_or("127.0.0.1:7979").to_string(),
        tenants: args.get_or("tenants", 8usize)?,
        jobs: args.get_or("jobs", 12usize)?,
        seed: args.get_or("seed", 1u64)?,
    };
    run_load(&opts)
}

/// Usage text. The workload, fuzz-target and backend lists are
/// enumerated from the registries (`WorkloadKind::ALL`,
/// `aem_fuzz::targets::all_targets`, `Backend::ALL`) so the help can
/// never drift from what the binary actually accepts.
pub fn usage() -> String {
    let backends = aem_machine::Backend::ALL
        .iter()
        .map(|b| b.name())
        .collect::<Vec<_>>()
        .join("|");
    let targets = aem_fuzz::targets::all_targets()
        .iter()
        .map(|t| t.name)
        .collect::<Vec<_>>()
        .join(", ");
    let workloads = workload_names();
    let mut workload_lines = String::new();
    for kind in WorkloadKind::ALL {
        let w = kind.descriptor();
        let algos = w.algos.iter().map(|a| a.name).collect::<Vec<_>>().join("|");
        workload_lines.push_str(&format!(
            "  {:<8} {}  (--algo {algos})\n",
            w.name, w.summary
        ));
    }
    format!(
        "aemsim — the (M, B, ω)-Asymmetric External Memory simulator
(reproduction of Jacob & Sitchinava, SPAA 2017)

USAGE: aemsim <command> [--key value]...

COMMANDS
  sort      run sorters        --n --dist --algo aem|em|dist|heap|pq|all
  pq        priority queue     --n --dist (replacement-selection run
                               generation + PQ-backed sort vs predictor)
  permute   run permuters      --n --kind random|identity|reverse|transpose|bit-reversal
  spmv      run SpMxV          --n --delta --shape random|banded|block-diagonal
  bounds    evaluate bounds    --n --delta
  join      relational ops     --left --right --keys
  trace     record + analyze   --n --algo aem|em|dist|heap|pq
  lemma43   flash reduction    --n
  report    render a trace     --in FILE [--format text|md]
                               (exits nonzero if a paper-invariant
                               checker fails, with the I/O tail)
  run       registry run       <workload> = {workloads}
                               [--backend {backends} --n --algo --delta]
                               executes a registered workload live and
                               prints the measured cost beside the
                               priced candidate menu (cheapest flagged)
  profile   cost attribution   <workload> = {workloads}
                               [--backend {backends} --out PREFIX
                                --n --algo --delta]
                               writes PREFIX.folded (flamegraph input),
                               PREFIX.heatmap.txt, PREFIX.prom,
                               PREFIX.flight.jsonl; prints predictor
                               residuals + the per-block heatmap
  serve     job service        [--addr HOST:PORT --workers N --no-queue
                                --admission-log FILE --metering-out FILE
                                --prom-out FILE --addr-file FILE]
                               long-lived TCP server; every job is priced
                               by the predictor before it runs, per-tenant
                               budgets gate admission, SIGTERM drains and
                               writes the admission log + metering reports
  serve-load seeded load gen   [--addr HOST:PORT --tenants N --jobs N
                                --seed S]
                               deterministic synthetic tenants; same seed
                               ⇒ byte-identical report
  exp       run experiments    [--quick --jobs N --cache FILE --fresh
                                --only IDS --stats --backend {backends}]
                               (parallel sweep engine; --cache resumes
                               interrupted runs)
  fuzz      differential fuzz  [--seed S --iters N --target NAMES
                                --time-budget-secs T --repro-out FILE
                                --backend {backends}]
                               or --replay FILE, or the inline
                               --target/--case-seed repro shape failure
                               reports print

WORKLOADS (the registry behind run, profile, serve and fuzz)
{workload_lines}
FUZZ TARGETS (--target takes exact names, prefixes, or comma lists)
  {targets}

MACHINE OPTIONS (all commands)
  --mem M      internal memory in elements   (default 1024)
  --block B    block size in elements        (default 64)
  --omega W    write/read cost ratio         (default 16)
  --seed S     workload seed                 (default 1)

OBSERVABILITY
  sort, pq, permute, spmv and trace accept --trace-out FILE: the workload
  is re-run on an instrumented machine and the full run record (config,
  I/O events, phase spans, metrics) is exported as JSONL. The paper
  invariants (§3 pointer rewrites, Lemma 4.1 rounds, cost sandwich) are
  checked on export and again by `report`, which renders the
  phase-attributed cost breakdown. Options use --key value or
  --key=value.
"
    )
}

/// Dispatch a parsed command line.
pub fn dispatch(args: &Args) -> Result<String, String> {
    if args.flag("help") {
        return Ok(usage());
    }
    match args.command.as_deref() {
        Some("sort") => cmd_sort(args),
        Some("pq") => cmd_pq(args),
        Some("permute") => cmd_permute(args),
        Some("spmv") => cmd_spmv(args),
        Some("bounds") => cmd_bounds(args),
        Some("join") => cmd_join(args),
        Some("trace") => cmd_trace(args),
        Some("lemma43") => cmd_lemma43(args),
        Some("report") => cmd_report(args),
        Some("run") => cmd_run(args),
        Some("profile") => cmd_profile(args),
        Some("serve") => cmd_serve(args),
        Some("serve-load") => cmd_serve_load(args),
        Some("exp") => cmd_exp(args),
        Some("fuzz") => cmd_fuzz(args),
        Some(other) => Err(format!("unknown command '{other}'\n\n{}", usage())),
        None => Ok(usage()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &str) -> Result<String, String> {
        let args = Args::parse(line.split_whitespace().map(String::from)).expect("parse");
        dispatch(&args)
    }

    #[test]
    fn sort_all_small() {
        let out = run("sort --n 2000 --mem 64 --block 8 --omega 8").unwrap();
        assert!(out.contains("AEM mergesort"));
        assert!(out.contains("heapsort"));
        assert!(out.contains("lower bound"));
    }

    #[test]
    fn sort_single_algo_and_dists() {
        for d in [
            "uniform",
            "sorted",
            "reversed",
            "few-distinct",
            "organ-pipe",
        ] {
            let out = run(&format!(
                "sort --n 500 --mem 64 --block 8 --algo aem --dist {d}"
            ))
            .unwrap();
            assert!(out.contains("Q ="), "{d}");
        }
        assert!(run("sort --algo nope --n 10 --mem 64 --block 8").is_err());
        assert!(run("sort --dist nope --n 10 --mem 64 --block 8").is_err());
    }

    #[test]
    fn pq_command_and_sort_algo() {
        let out = run("pq --n 2000 --mem 64 --block 8 --omega 16").unwrap();
        assert!(out.contains("replacement selection"), "{out}");
        assert!(out.contains("PQ sort (buffered)"), "{out}");
        assert!(out.contains("exact-schedule predictor"), "{out}");

        let out = run("sort --n 1000 --mem 64 --block 8 --algo pq").unwrap();
        assert!(out.contains("Q ="), "{out}");
        let out = run("trace --n 1024 --mem 64 --block 8 --algo pq").unwrap();
        assert!(out.contains("ωm-rounds"), "{out}");
    }

    #[test]
    fn pq_trace_export_checks_pass() {
        let path = tmp_path("pq.jsonl");
        let p = path.to_str().unwrap();
        let out = run(&format!(
            "pq --n 2048 --mem 64 --block 8 --omega 16 --trace-out {p}"
        ))
        .unwrap();
        assert_eq!(out.matches("[PASS]").count(), 3, "{out}");
        assert!(!out.contains("[FAIL]"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let rec = RunRecord::from_jsonl(&text).unwrap();
        assert_eq!(rec.workload.algo, "pq");
        assert!(rec.phases.iter().any(|ph| ph.name == "pq-drain"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn usage_enumerates_registries() {
        // The help text is generated from the fuzz-target and backend
        // registries, so every registered name must appear verbatim.
        let out = usage();
        for t in aem_fuzz::targets::all_targets() {
            assert!(out.contains(t.name), "usage missing target {}", t.name);
        }
        for b in aem_machine::Backend::ALL {
            assert!(out.contains(b.name()), "usage missing backend {}", b.name());
        }
    }

    #[test]
    fn registry_completeness_across_every_surface() {
        // Every registered kind must be reachable from every consumer
        // layer: a priced menu, a live `aemsim run`, a fuzz target per
        // algorithm, a strict-gate cell in COSTS.json, the help text,
        // and the docs/WORKLOADS.md catalog. A kind that registers but
        // misses a surface fails here.
        let cfg = AemConfig::new(1024, 64, 16).unwrap();
        let usage_text = usage();
        let costs =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../COSTS.json"))
                .expect("COSTS.json at the repo root");
        let catalog = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../docs/WORKLOADS.md"
        ))
        .expect("docs/WORKLOADS.md at the repo root");
        let fuzz_names: Vec<&str> = aem_fuzz::targets::all_targets()
            .iter()
            .map(|t| t.name)
            .collect();
        for kind in WorkloadKind::ALL {
            let w = kind.descriptor();
            let (n, d) = w.gate_shapes[0];
            assert!(
                !w.menu(cfg, n, d).is_empty(),
                "{}: empty menu on the canonical gate shape",
                w.name
            );
            let out = run(&format!("run {} --n 300 --mem 64 --block 8", w.name)).unwrap();
            assert!(out.contains("measured"), "{}: {out}", w.name);
            assert!(out.contains("candidate menu"), "{}: {out}", w.name);
            for a in w.algos {
                assert!(
                    fuzz_names.contains(&a.fuzz_target),
                    "{}/{}: fuzz target '{}' not registered",
                    w.name,
                    a.name,
                    a.fuzz_target
                );
            }
            assert!(
                costs.contains(&format!("\"{}/", w.name)),
                "{}: no strict-gate cell in COSTS.json",
                w.name
            );
            assert!(usage_text.contains(w.name), "{}: not in usage", w.name);
            // The catalog page documents every kind as a section and
            // every algorithm and alias as a literal `code` token, so
            // registering something new without cataloguing it fails.
            assert!(
                catalog.contains(&format!("\n## {} — ", w.name)),
                "{}: no section in docs/WORKLOADS.md",
                w.name
            );
            for a in w.algos {
                for token in std::iter::once(&a.name).chain(a.aliases) {
                    assert!(
                        catalog.contains(&format!("`{token}`")),
                        "{}/{}: `{token}` missing from docs/WORKLOADS.md",
                        w.name,
                        a.name
                    );
                }
                assert!(
                    catalog.contains(&format!("`{}`", a.fuzz_target)),
                    "{}/{}: fuzz target `{}` missing from docs/WORKLOADS.md",
                    w.name,
                    a.name,
                    a.fuzz_target
                );
            }
        }
    }

    #[test]
    fn run_command_reports_cost_and_menu() {
        let out = run("run search --n 512 --delta 32 --mem 64 --block 8").unwrap();
        assert!(out.contains("search/btree"), "{out}");
        assert!(out.contains("← ran"), "{out}");
        assert!(out.contains("(cheapest)"), "{out}");
        assert!(out.contains("output checksum: 0x"), "{out}");
        // Algo aliases resolve through the registry.
        let alias = run("run permute --algo by_sort --n 256 --mem 64 --block 8").unwrap();
        assert!(alias.contains("permute/by-sort"), "{alias}");
        // Ghost runs price but don't verify; payload-routed algorithms
        // refuse the cost-only backend outright.
        let ghost =
            run("run permute --algo naive --n 256 --mem 64 --block 8 --backend ghost").unwrap();
        assert!(ghost.contains("cost-only backend"), "{ghost}");
        assert!(
            run("run permute --algo by-sort --n 256 --mem 64 --block 8 --backend ghost").is_err()
        );
        // Shape validity comes from the registry predicate.
        assert!(run("run spmv --n 16 --delta 32 --mem 64 --block 8").is_err());
        assert!(run("run search --n 100 --delta 0 --mem 64 --block 8").is_err());
        assert!(run("run bogus --n 10").is_err());
        assert!(run("run").is_err());
    }

    #[test]
    fn profile_search_via_registry() {
        let prefix = tmp_path("prof-search");
        let p = prefix.to_str().unwrap();
        let out = run(&format!(
            "profile search --n 512 --delta 16 --mem 64 --block 8 --out {p}"
        ))
        .unwrap();
        assert!(out.contains("search/btree"), "{out}");
        assert!(out.contains("profile artifacts"), "{out}");
        let folded = std::fs::read_to_string(format!("{p}.folded")).unwrap();
        assert!(folded.contains("search/btree;"), "{folded}");
        for suffix in [".folded", ".heatmap.txt", ".prom", ".flight.jsonl"] {
            std::fs::remove_file(format!("{p}{suffix}")).ok();
        }
        // Key-routed descent refuses the ghost backend; the oblivious
        // layouts accept it.
        assert!(
            run("profile search --algo eytzinger --n 256 --mem 64 --block 8 --backend ghost")
                .is_err()
        );
        let prefix = tmp_path("prof-search-ghost");
        let p = prefix.to_str().unwrap();
        let out = run(&format!(
            "profile search --algo binary --n 256 --mem 64 --block 8 --backend ghost --out {p}"
        ))
        .unwrap();
        assert!(out.contains("search/binary"), "{out}");
        for suffix in [".folded", ".heatmap.txt", ".prom", ".flight.jsonl"] {
            std::fs::remove_file(format!("{p}{suffix}")).ok();
        }
    }

    #[test]
    fn permute_kinds() {
        for k in ["random", "identity", "reverse"] {
            let out = run(&format!("permute --n 1024 --mem 64 --block 8 --kind {k}")).unwrap();
            assert!(out.contains("counting bound"), "{k}");
        }
        let out = run("permute --n 1024 --mem 64 --block 8 --kind bit-reversal").unwrap();
        assert!(out.contains("bit-reversal"));
        let out = run("permute --n 1024 --mem 64 --block 8 --kind transpose --rows 32").unwrap();
        assert!(out.contains("transpose"));
        assert!(run("permute --n 1000 --mem 64 --block 8 --kind bit-reversal").is_err());
    }

    #[test]
    fn spmv_shapes() {
        for s in ["random", "banded", "block-diagonal"] {
            let out = run(&format!(
                "spmv --n 128 --delta 2 --mem 64 --block 8 --shape {s}"
            ))
            .unwrap();
            assert!(out.contains("Thm 5.1"), "{s}");
        }
    }

    #[test]
    fn bounds_report() {
        let out = run("bounds --n 1048576 --mem 1024 --block 64 --omega 32").unwrap();
        assert!(out.contains("counting rounds"));
        assert!(out.contains("Thm 5.1"));
    }

    #[test]
    fn join_report() {
        let out = run("join --left 2000 --right 500 --keys 100 --mem 256 --block 16").unwrap();
        assert!(out.contains("groups"));
        assert!(out.contains("Q ="));
    }

    #[test]
    fn trace_report() {
        let out = run("trace --n 2048 --mem 64 --block 8 --omega 32 --algo aem").unwrap();
        assert!(out.contains("ωm-rounds"));
        assert!(out.contains("aux  I/O"));
        assert!(run("trace --algo nope --n 10 --mem 64 --block 8").is_err());
    }

    #[test]
    fn lemma43_report() {
        let out = run("lemma43 --n 512 --mem 64 --block 16 --omega 4").unwrap();
        assert!(out.contains("layout verified"));
        assert!(out.contains("% of bound"));
    }

    #[test]
    fn exp_quick_only_runs_selected_and_caches() {
        let path = tmp_path("exp-cache.jsonl");
        let p = path.to_str().unwrap();
        let out = run(&format!("exp --quick --only t2 --jobs 2 --cache {p}")).unwrap();
        assert!(out.contains("### T2a"), "{out}");
        assert!(out.contains("### T2b"), "{out}");
        assert!(!out.contains("### T1a"), "{out}");
        assert!(
            out.contains("2 experiments, 8 cells simulated, 0 cached"),
            "{out}"
        );

        let warm = run(&format!("exp --quick --only t2 --jobs 2 --cache {p}")).unwrap();
        assert!(
            warm.contains("2 experiments, 0 cells simulated, 8 cached"),
            "{warm}"
        );
        // The rendered document must be identical from cache.
        assert_eq!(
            out.split("experiments,").next(),
            warm.split("experiments,").next()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fuzz_generative_is_deterministic_and_passes() {
        let a = run("fuzz --seed 42 --iters 20").unwrap();
        let b = run("fuzz --seed 42 --iters 20").unwrap();
        assert_eq!(a, b);
        assert!(a.contains("result: PASS"), "{a}");
        assert!(a.contains("seed 42"), "{a}");
        let c = run("fuzz --seed 43 --iters 20").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn fuzz_target_filter_and_unknown_target() {
        let out = run("fuzz --seed 1 --iters 5 --target spmv").unwrap();
        assert!(out.contains("targets: spmv_direct, spmv_sorted"), "{out}");
        let err = run("fuzz --seed 1 --iters 5 --target bogus").unwrap_err();
        assert!(err.contains("valid targets"), "{err}");
    }

    #[test]
    fn fuzz_inline_replay_shape() {
        let out = run(
            "fuzz --target merge_sort --mem 8 --block 4 --omega 64 --n 33 \
             --case-seed 11 --dist uniform --distinct 1 --delta 4",
        )
        .unwrap();
        assert!(out.contains("result: PASS"), "{out}");
        assert!(run("fuzz --case-seed 1 --n 5").is_err()); // missing --target
    }

    #[test]
    fn fuzz_replay_corpus_file() {
        // The corpus lives in the fuzz crate; resolve it relative to this
        // crate's manifest so the test runs from any working directory.
        let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../fuzz/corpus/omega_ge_block_merge_sort.json");
        let out = run(&format!("fuzz --replay {}", corpus.display())).unwrap();
        assert!(out.contains("result: PASS"), "{out}");
        assert!(run("fuzz --replay /nonexistent.json").is_err());
    }

    #[test]
    fn no_command_prints_usage() {
        let out = run("").unwrap();
        assert!(out.contains("USAGE"));
        assert!(run("bogus").is_err());
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("aemsim-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn sort_trace_export_then_report() {
        let path = tmp_path("sort.jsonl");
        let p = path.to_str().unwrap();
        let out = run(&format!(
            "sort --n 2048 --mem 64 --block 8 --algo aem --trace-out {p}"
        ))
        .unwrap();
        assert_eq!(out.matches("[PASS]").count(), 3, "{out}");
        assert!(!out.contains("[FAIL]"), "{out}");

        let report = run(&format!("report --in {p}")).unwrap();
        assert!(report.contains("Phases"), "{report}");
        assert!(report.contains("merge-level-1"), "{report}");
        assert_eq!(report.matches("PASS").count(), 3, "{report}");

        let md = run(&format!("report --in {p} --format md")).unwrap();
        assert!(md.contains("| phase | Q |"), "{md}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn permute_and_spmv_trace_export() {
        let path = tmp_path("permute.jsonl");
        let p = path.to_str().unwrap();
        let out = run(&format!(
            "permute --n 1024 --mem 64 --block 8 --trace-out {p}"
        ))
        .unwrap();
        assert_eq!(out.matches("[PASS]").count(), 3, "{out}");
        let report = run(&format!("report --in {p}")).unwrap();
        assert!(report.contains("permute-tag-sort"), "{report}");
        std::fs::remove_file(&path).ok();

        let path = tmp_path("spmv.jsonl");
        let p = path.to_str().unwrap();
        let out = run(&format!(
            "spmv --n 128 --delta 2 --mem 64 --block 8 --trace-out {p}"
        ))
        .unwrap();
        assert_eq!(out.matches("[PASS]").count(), 3, "{out}");
        let report = run(&format!("report --in {p}")).unwrap();
        assert!(report.contains("merge-add"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_command_export_roundtrips() {
        let path = tmp_path("trace.jsonl");
        let p = path.to_str().unwrap();
        let out = run(&format!(
            "trace --n 2048 --mem 64 --block 8 --algo heap --trace-out {p}"
        ))
        .unwrap();
        assert!(out.contains("trace record:"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let rec = RunRecord::from_jsonl(&text).unwrap();
        assert_eq!(rec.workload.algo, "heap");
        assert!(rec.phases.iter().any(|ph| ph.name == "pq-extract"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_sort_writes_artifacts_per_backend() {
        for b in aem_machine::Backend::ALL {
            let prefix = tmp_path(&format!("prof-{}", b.name()));
            let p = prefix.to_str().unwrap();
            let out = run(&format!(
                "profile sort --n 2048 --mem 64 --block 8 --omega 16 --backend {} --out {p}",
                b.name()
            ))
            .unwrap();
            assert!(out.contains("predictor residuals"), "{out}");
            assert!(out.contains("run"), "{out}");
            assert!(out.contains("per-block heatmap"), "{out}");
            let folded = std::fs::read_to_string(format!("{p}.folded")).unwrap();
            assert!(folded.contains("sort/aem;"), "{folded}");
            assert!(
                folded.contains(";read ") || folded.contains(";write "),
                "{folded}"
            );
            let prom = std::fs::read_to_string(format!("{p}.prom")).unwrap();
            assert!(prom.contains("# TYPE aem_run_q gauge"), "{prom}");
            assert!(
                prom.contains(&format!("backend=\"{}\"", b.name())),
                "{prom}"
            );
            let flight = std::fs::read_to_string(format!("{p}.flight.jsonl")).unwrap();
            assert!(flight.lines().count() <= aem_obs::DEFAULT_FLIGHT_CAPACITY);
            assert!(flight.contains("\"t\":\"flight\""), "{flight}");
            assert!(std::fs::read_to_string(format!("{p}.heatmap.txt"))
                .unwrap()
                .contains("reads  |"));
            for suffix in [".folded", ".heatmap.txt", ".prom", ".flight.jsonl"] {
                std::fs::remove_file(format!("{p}{suffix}")).ok();
            }
        }
    }

    #[test]
    fn profile_other_workloads_and_ghost_rejection() {
        let prefix = tmp_path("prof-misc");
        let p = prefix.to_str().unwrap();
        for w in ["pq", "permute", "spmv"] {
            let out = run(&format!("profile {w} --n 512 --mem 64 --block 8 --out {p}")).unwrap();
            assert!(out.contains("profile artifacts"), "{w}: {out}");
        }
        for suffix in [".folded", ".heatmap.txt", ".prom", ".flight.jsonl"] {
            std::fs::remove_file(format!("{p}{suffix}")).ok();
        }
        // Payload-dependent workloads refuse the cost-only backend.
        assert!(run("profile permute --n 512 --mem 64 --block 8 --backend ghost").is_err());
        assert!(run("profile spmv --n 128 --mem 64 --block 8 --backend ghost").is_err());
        // Missing/unknown operand.
        assert!(run("profile").is_err());
        assert!(run("profile bogus --n 64 --mem 64 --block 8").is_err());
    }

    #[test]
    fn report_fails_nonzero_on_checker_violation() {
        let path = tmp_path("tampered.jsonl");
        let p = path.to_str().unwrap();
        run(&format!(
            "sort --n 2048 --mem 64 --block 8 --algo aem --trace-out {p}"
        ))
        .unwrap();
        // Shrink the recorded workload size: the Thm 3.2 predictor upper
        // bound for N=64 is far below the measured N=2048 cost, so the
        // cost-sandwich checker must fail.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace("\"n\":2048", "\"n\":64");
        assert_ne!(text, tampered, "workload line not found to tamper");
        std::fs::write(&path, tampered).unwrap();
        let err = run(&format!("report --in {p}")).unwrap_err();
        assert!(err.contains("paper-invariant checker FAILED"), "{err}");
        assert!(err.contains("cost-sandwich"), "{err}");
        assert!(err.contains("flight recorder"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_errors() {
        assert!(run("report").is_err());
        assert!(run("report --in /nonexistent/x.jsonl").is_err());
        let path = tmp_path("bad.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        let p = path.to_str().unwrap();
        assert!(run(&format!("report --in {p}")).is_err());
        assert!(run(&format!("report --in {p} --format bogus")).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn usage_lists_the_serving_commands() {
        let out = usage();
        assert!(out.contains("serve "), "{out}");
        assert!(out.contains("serve-load"), "{out}");
    }

    #[test]
    fn serve_rejects_an_unbindable_addr() {
        let err = run("serve --addr not-an-address").unwrap_err();
        assert!(err.contains("not-an-address"), "{err}");
    }

    /// Boot `aemsim serve` in a thread, drive it with `aemsim serve-load`,
    /// then drain it through the shared SIGTERM flag. Returns the load
    /// report and the admission log.
    fn serve_cycle(tag: &str, seed: u64) -> (String, String) {
        use std::sync::atomic::Ordering;
        // This helper is only called from one test, sequentially, so the
        // process-wide flag can be reset between cycles.
        aem_serve::SHUTDOWN.store(false, Ordering::SeqCst);
        let addr_file = tmp_path(&format!("serve-{tag}.addr"));
        let log_file = tmp_path(&format!("serve-{tag}.admission.jsonl"));
        let _ = std::fs::remove_file(&addr_file);
        let line = format!(
            "serve --addr 127.0.0.1:0 --workers 2 --addr-file {} --admission-log {}",
            addr_file.display(),
            log_file.display()
        );
        let server = std::thread::spawn(move || run(&line));
        let addr = {
            let mut tries = 0;
            loop {
                if let Ok(s) = std::fs::read_to_string(&addr_file) {
                    if s.trim().contains(':') {
                        break s.trim().to_string();
                    }
                }
                tries += 1;
                assert!(tries < 200, "serve never wrote its address file");
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        };
        let report = run(&format!(
            "serve-load --addr {addr} --tenants 2 --jobs 4 --seed {seed}"
        ))
        .unwrap();
        aem_serve::SHUTDOWN.store(true, Ordering::SeqCst);
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("drained cleanly"), "{summary}");
        let log = std::fs::read_to_string(&log_file).unwrap();
        std::fs::remove_file(&addr_file).ok();
        std::fs::remove_file(&log_file).ok();
        (report, log)
    }

    #[test]
    fn serve_and_serve_load_cycles_are_deterministic() {
        let (report1, log1) = serve_cycle("det1", 7);
        let (report2, log2) = serve_cycle("det2", 7);
        assert_eq!(report1, report2, "same-seed reports must be identical");
        assert_eq!(log1, log2, "same-seed admission logs must be identical");
        assert!(log1.contains("\"decision\""), "{log1}");
        assert!(report1.contains("stats"), "{report1}");
    }
}
