//! `aemsim` — command-line driver for the AEM workspace.
//!
//! Run `aemsim` with no arguments for usage. Every subcommand configures an
//! enforcing `(M, B, ω)`-AEM machine, generates a seeded workload, runs the
//! relevant algorithms with exact I/O metering, verifies their outputs, and
//! reports measured costs next to the paper's bounds.

mod args;
mod commands;

fn main() {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(2);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
