//! Minimal `--key value` / `--key=value` argument parsing (no external
//! dependency; the workspace's allowed-crates policy keeps the CLI surface
//! tiny anyway).

use std::collections::HashMap;

/// `true` if `tok` looks like a (possibly negative, possibly fractional)
/// number rather than an option. `-1`, `-2.5` and `-1e3` are values;
/// `-v` is not.
fn is_number(tok: &str) -> bool {
    tok.parse::<f64>().is_ok()
}

/// Parsed arguments: a subcommand, an optional operand (second
/// positional, e.g. `profile sort`), plus `--key value` / `--key=value`
/// options and bare `--flag` switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    /// The operand (second non-flag token), for commands like
    /// `profile <workload>`.
    pub operand: Option<String>,
    opts: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of argument tokens (excluding `argv[0]`).
    ///
    /// Accepted shapes: `command`, `--flag`, `--key value`, `--key=value`.
    /// A token following `--key` is taken as its value unless it is itself
    /// an option; numeric tokens are always values, so `--delta -1` parses
    /// as `delta = "-1"` rather than as a flag named `delta` plus a stray
    /// `-1`.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(body) = tok.strip_prefix("--") {
                if body.is_empty() {
                    return Err("empty option name '--'".into());
                }
                if let Some((key, value)) = body.split_once('=') {
                    if key.is_empty() {
                        return Err(format!("empty option name in '{tok}'"));
                    }
                    out.opts.insert(key.to_string(), value.to_string());
                    continue;
                }
                let takes_value = match it.peek() {
                    Some(next) => !next.starts_with('-') || is_number(next),
                    None => false,
                };
                if takes_value {
                    let v = it.next().expect("peeked");
                    out.opts.insert(body.to_string(), v);
                } else {
                    out.flags.push(body.to_string());
                }
            } else if tok.starts_with('-') && !is_number(&tok) {
                return Err(format!("unknown option '{tok}' (options use --name)"));
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else if out.operand.is_none() {
                out.operand = Some(tok);
            } else {
                return Err(format!("unexpected positional argument '{tok}'"));
            }
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(|s| s.as_str())
    }

    /// A parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opts.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: '{v}'")),
        }
    }

    /// A bare `--flag`.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = Args::parse(toks("sort --n 1000 --algo aem --verbose")).unwrap();
        assert_eq!(a.command.as_deref(), Some("sort"));
        assert_eq!(a.get("n"), Some("1000"));
        assert_eq!(a.get("algo"), Some("aem"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn parses_key_equals_value() {
        let a = Args::parse(toks("sort --n=4096 --algo=aem --trace-out=t.jsonl")).unwrap();
        assert_eq!(a.get("n"), Some("4096"));
        assert_eq!(a.get("algo"), Some("aem"));
        assert_eq!(a.get("trace-out"), Some("t.jsonl"));
        assert_eq!(a.get_or("n", 0usize).unwrap(), 4096);
    }

    #[test]
    fn key_equals_empty_value_is_allowed() {
        let a = Args::parse(toks("x --label=")).unwrap();
        assert_eq!(a.get("label"), Some(""));
        assert!(!a.flag("label"));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = Args::parse(toks("bounds --delta -1 --n 100")).unwrap();
        assert_eq!(a.get("delta"), Some("-1"));
        assert_eq!(a.get("n"), Some("100"));
        assert!(!a.flag("delta"));
        let b = Args::parse(toks("x --shift -2.5 --scale -1e3")).unwrap();
        assert_eq!(b.get("shift"), Some("-2.5"));
        assert_eq!(b.get("scale"), Some("-1e3"));
        let c = Args::parse(toks("x --delta=-7")).unwrap();
        assert_eq!(c.get("delta"), Some("-7"));
    }

    #[test]
    fn defaults_and_typed_parsing() {
        let a = Args::parse(toks("sort --n 42")).unwrap();
        assert_eq!(a.get_or("n", 7usize).unwrap(), 42);
        assert_eq!(a.get_or("mem", 64usize).unwrap(), 64);
        assert!(a.get_or::<usize>("n", 0).is_ok());
        let b = Args::parse(toks("sort --n xyz")).unwrap();
        assert!(b.get_or::<usize>("n", 0).is_err());
    }

    #[test]
    fn rejects_stray_positionals_and_empty_options() {
        assert!(Args::parse(toks("sort extra surplus")).is_err());
        assert!(Args::parse(toks("sort --")).is_err());
        assert!(Args::parse(toks("sort --=3")).is_err());
        assert!(Args::parse(toks("sort -v")).is_err());
    }

    #[test]
    fn second_positional_is_the_operand() {
        let a = Args::parse(toks("profile sort --backend vec")).unwrap();
        assert_eq!(a.command.as_deref(), Some("profile"));
        assert_eq!(a.operand.as_deref(), Some("sort"));
        assert_eq!(a.get("backend"), Some("vec"));
        let b = Args::parse(toks("sort --n 8")).unwrap();
        assert_eq!(b.operand, None);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = Args::parse(toks("x --a --b 3")).unwrap();
        assert!(a.flag("a"));
        assert_eq!(a.get("b"), Some("3"));
    }

    #[test]
    fn flag_at_end_of_line() {
        let a = Args::parse(toks("x --n 5 --verbose")).unwrap();
        assert_eq!(a.get("n"), Some("5"));
        assert!(a.flag("verbose"));
    }

    #[test]
    fn no_command() {
        let a = Args::parse(toks("--help")).unwrap();
        assert_eq!(a.command, None);
        assert!(a.flag("help"));
    }
}
