//! Minimal `--key value` argument parsing (no external dependency; the
//! workspace's allowed-crates policy keeps the CLI surface tiny anyway).

use std::collections::HashMap;

/// Parsed arguments: a subcommand plus `--key value` options and bare
/// `--flag` switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    opts: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of argument tokens (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name '--'".into());
                }
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.opts.insert(key.to_string(), v);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                return Err(format!("unexpected positional argument '{tok}'"));
            }
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(|s| s.as_str())
    }

    /// A parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opts.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: '{v}'")),
        }
    }

    /// A bare `--flag`.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = Args::parse(toks("sort --n 1000 --algo aem --verbose")).unwrap();
        assert_eq!(a.command.as_deref(), Some("sort"));
        assert_eq!(a.get("n"), Some("1000"));
        assert_eq!(a.get("algo"), Some("aem"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_and_typed_parsing() {
        let a = Args::parse(toks("sort --n 42")).unwrap();
        assert_eq!(a.get_or("n", 7usize).unwrap(), 42);
        assert_eq!(a.get_or("mem", 64usize).unwrap(), 64);
        assert!(a.get_or::<usize>("n", 0).is_ok());
        let b = Args::parse(toks("sort --n xyz")).unwrap();
        assert!(b.get_or::<usize>("n", 0).is_err());
    }

    #[test]
    fn rejects_stray_positionals_and_empty_options() {
        assert!(Args::parse(toks("sort extra")).is_err());
        assert!(Args::parse(toks("sort --")).is_err());
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = Args::parse(toks("x --a --b 3")).unwrap();
        assert!(a.flag("a"));
        assert_eq!(a.get("b"), Some("3"));
    }

    #[test]
    fn no_command() {
        let a = Args::parse(toks("--help")).unwrap();
        assert_eq!(a.command, None);
        assert!(a.flag("help"));
    }
}
