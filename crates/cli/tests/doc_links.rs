//! Markdown link check over the repo's own documentation.
//!
//! Every relative link target in the top-level docs and `docs/*.md` must
//! exist in the working tree, so renaming or deleting a file without
//! updating its references is a test failure (CI runs this as a named
//! step). External links (`http://`, `https://`, `mailto:`) and pure
//! in-page anchors are out of scope — the gate is offline and
//! deterministic.

use std::path::{Path, PathBuf};

/// Workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/cli sits two levels below the repo root")
        .to_path_buf()
}

/// The documents the gate covers: the repo's own prose, not driver
/// artifacts or generated benchmark dumps.
fn documents(root: &Path) -> Vec<PathBuf> {
    let mut docs = vec![
        root.join("README.md"),
        root.join("DESIGN.md"),
        root.join("EXPERIMENTS.md"),
        root.join("ROADMAP.md"),
        root.join("CHANGES.md"),
    ];
    let dir = root.join("docs");
    let mut extra: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("docs/ directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    extra.sort();
    docs.extend(extra);
    docs
}

/// Extract inline-link targets `](target)` from one markdown document.
/// Good enough for this repo's docs: no reference-style links, no
/// parenthesized relative paths.
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(off) = text[i..].find("](") {
        let start = i + off + 2;
        match text[start..].find(')') {
            Some(len) => {
                // Guard against "](" inside a fenced block mangling the
                // scan: a target containing whitespace or a newline is
                // not a link, skip it.
                let target = &text[start..start + len];
                if !target.bytes().any(|b| b.is_ascii_whitespace()) {
                    out.push(target.to_string());
                }
                i = start + len + 1;
            }
            None => break,
        }
        debug_assert!(i <= bytes.len());
    }
    out
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = repo_root();
    let mut broken = Vec::new();
    for doc in documents(&root) {
        let text = std::fs::read_to_string(&doc)
            .unwrap_or_else(|e| panic!("reading {}: {e}", doc.display()));
        let base = doc.parent().expect("documents live in a directory");
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            // Strip an in-page anchor; a pure anchor has no file to check.
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            if !base.join(path_part).exists() {
                broken.push(format!("{} -> {target}", doc.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn the_crosswalk_and_architecture_docs_are_linked_from_the_readme() {
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md");
    for target in [
        "docs/PAPER_MAP.md",
        "docs/ARCHITECTURE.md",
        "docs/FUZZING.md",
    ] {
        assert!(
            readme.contains(&format!("({target})")),
            "README.md must link {target}"
        );
    }
}
