//! Planner ghost-routing property: across every registered kind and
//! algorithm, the serve planner never lands a ghost-unsound schedule on
//! the cost-only backend — neither by defaulting a cost-only job onto
//! ghost nor by honoring a forced `--backend ghost`.
//!
//! This is the registry's soundness contract exercised from the outside
//! (the serve crate itself is frozen; the property must hold purely
//! through `aem_core::workload` flags the planner consults).

use aem_machine::Backend;
use aem_serve::planner;
use aem_serve::protocol::{JobKind, JobSpec};

fn spec(kind: JobKind, n: usize, delta: usize, payload: bool, backend: Option<&str>) -> JobSpec {
    JobSpec {
        id: 1,
        kind,
        n,
        mem: 1024,
        block: 64,
        omega: 16,
        delta,
        seed: 7,
        payload,
        backend: backend.map(str::to_string),
    }
}

/// The planner's default routing never puts a ghost-unsound algorithm
/// on the ghost backend, on any registered kind or gate shape.
#[test]
fn default_routing_never_ghosts_unsound_algorithms() {
    for kind in JobKind::ALL {
        let w = kind.descriptor();
        for &(n, delta) in w.gate_shapes {
            for payload in [false, true] {
                let plan = planner::plan(&spec(kind, n, delta, payload, None))
                    .unwrap_or_else(|e| panic!("{}: plan on gate shape failed: {e}", w.name));
                if plan.backend == Backend::Ghost {
                    assert!(
                        planner::ghost_sound(kind, plan.algo),
                        "{}/{}: ghost-routed but not ghost-sound",
                        w.name,
                        plan.algo
                    );
                    assert!(!payload, "{}: payload job routed to ghost", w.name);
                }
            }
        }
    }
}

/// Forcing `backend: ghost` succeeds exactly for ghost-sound cheapest
/// picks and is refused (not silently downgraded) everywhere else —
/// so a kind whose whole menu is data-routed (BFS, SpMxV) can never
/// reach the cost-only store.
#[test]
fn forced_ghost_is_refused_unless_sound() {
    for kind in JobKind::ALL {
        let w = kind.descriptor();
        for &(n, delta) in w.gate_shapes {
            let forced = planner::plan(&spec(kind, n, delta, false, Some("ghost")));
            match forced {
                Ok(plan) => {
                    assert_eq!(plan.backend, Backend::Ghost, "{}: forced ghost", w.name);
                    assert!(
                        planner::ghost_sound(kind, plan.algo),
                        "{}/{}: accepted forced ghost while unsound",
                        w.name,
                        plan.algo
                    );
                }
                Err(e) => assert!(
                    e.contains("unsound"),
                    "{}: refusal must name the soundness rule, got: {e}",
                    w.name
                ),
            }
            // A payload-carrying job can never be forced onto ghost,
            // sound algorithm or not.
            assert!(
                planner::plan(&spec(kind, n, delta, true, Some("ghost"))).is_err(),
                "{}: payload job accepted forced ghost",
                w.name
            );
        }
    }
}
