//! Pinned degenerate-configuration coverage (seeded from the first fuzz
//! corpus entries): `ω > B`, `B = 1`, `M = 2B`, and `n % B ≠ 0` on both
//! the Theorem 3.2 mergesort and the Lemma 4.3 flash simulation.
//!
//! The fuzzer samples these corners probabilistically; this test makes
//! the four named corners unconditional on every `cargo test`.

use aem_fuzz::runner::replay;
use aem_fuzz::{DistKind, FuzzCase};

fn case(mem: usize, block: usize, omega: u64, n: usize) -> FuzzCase {
    FuzzCase {
        mem,
        block,
        omega,
        n,
        case_seed: 0xDE9E,
        dist: DistKind::FewDistinct(3),
        delta: 2,
    }
}

fn assert_clean(target: &str, c: &FuzzCase) {
    let outcome = replay(target, c).expect("target name must resolve");
    assert!(!outcome.is_fail(), "{target} on {c}: {outcome:?}");
}

#[test]
fn merge_sort_with_omega_exceeding_block() {
    // ω = 4B: Theorem 3.2's whole point is that no ω < B assumption is
    // needed. Non-aligned n rides along.
    assert_clean("merge_sort", &case(16, 4, 16, 203));
}

#[test]
fn merge_sort_in_aram_mode() {
    // B = 1 specializes the AEM to the ARAM of §2.
    assert_clean("merge_sort", &case(2, 1, 8, 129));
    assert_clean("merge_sort", &case(3, 1, 64, 77));
}

#[test]
fn merge_sort_at_minimum_memory() {
    // M = 2B is the floor: one input block + one output block.
    assert_clean("merge_sort", &case(8, 4, 2, 100));
    assert_clean("merge_sort", &case(8, 4, 32, 101));
}

#[test]
fn merge_sort_with_partial_tail_block() {
    for n in [97, 99, 101, 103] {
        assert_clean("merge_sort", &case(32, 8, 4, n));
    }
}

#[test]
fn flash_simulation_survives_the_same_corners() {
    // The flash target internally lifts each config to the Lemma 4.3
    // preconditions (B > ω, ω | B) while preserving the corner's spirit.
    assert_clean("flash_lemma43", &case(16, 4, 16, 203)); // ω > B requested
    assert_clean("flash_lemma43", &case(2, 1, 8, 129)); // B = 1 requested
    assert_clean("flash_lemma43", &case(8, 4, 2, 100)); // M = 2B
    assert_clean("flash_lemma43", &case(32, 8, 4, 97)); // n % B ≠ 0
}

#[test]
fn every_sort_algorithm_survives_duplicate_floods() {
    // All-equal keys at ω ≥ B: tie handling must not break stability of
    // the differential check anywhere.
    for target in ["merge_sort", "em_sort", "dist_sort", "heap_sort"] {
        let c = FuzzCase {
            dist: DistKind::FewDistinct(1),
            ..case(16, 4, 8, 150)
        };
        let outcome = replay(target, &c).expect("target resolves");
        assert!(!outcome.is_fail(), "{target}: {outcome:?}");
    }
}
