//! Every corpus seed file replays as an ordinary regression test.
//!
//! The corpus is the fuzzer's long-term memory: each file is either a
//! minimized failure from a past session (fixed since, or it would not
//! be on main) or a hand-seeded degenerate corner. Replaying them here
//! keeps the whole set green on every `cargo test`.

use aem_fuzz::corpus;

#[test]
fn every_corpus_entry_replays_clean() {
    let entries = corpus::load_dir(&corpus::default_dir()).expect("corpus dir must load");
    assert!(!entries.is_empty(), "corpus must ship at least one seed");
    let mut failures = Vec::new();
    for entry in &entries {
        match corpus::replay(entry) {
            Ok(outcome) if !outcome.is_fail() => {}
            Ok(outcome) => failures.push(format!("{}: {:?}", entry.path.display(), outcome)),
            Err(e) => failures.push(format!("{}: {e}", entry.path.display())),
        }
    }
    assert!(
        failures.is_empty(),
        "corpus regressions:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_files_are_canonical_single_line_json() {
    for entry in corpus::load_dir(&corpus::default_dir()).unwrap() {
        let text = std::fs::read_to_string(&entry.path).unwrap();
        let trimmed = text.trim_end();
        assert!(
            !trimmed.contains('\n'),
            "{} must be single-line JSON",
            entry.path.display()
        );
        // Round-tripping through FuzzCase must reproduce the file exactly
        // (field order and all), so corpus diffs stay minimal.
        assert_eq!(
            trimmed,
            entry.case.to_json(&entry.target),
            "{} is not in canonical form",
            entry.path.display()
        );
    }
}
