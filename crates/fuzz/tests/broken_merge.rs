//! End-to-end validation that the harness catches a planted bug.
//!
//! The ISSUE's acceptance criterion: a deliberately broken merge (an
//! off-by-one block pointer) must be caught by the differential check
//! and shrunk to a repro of at most `4B` elements. This is the
//! mutation-test for the whole pipeline — sampler, differential oracle,
//! panic containment, shrinker, and replay-recipe rendering.

use aem_fuzz::fault::broken_merge_check;
use aem_fuzz::shrink::{fails, shrink};
use aem_fuzz::{sample_case, FuzzCase};
use aem_workloads::SplitMix64;

/// Sampled cases that actually exercise data reads (n > B so the sort
/// cannot stay within one block).
fn failing_case(seed: u64) -> FuzzCase {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..500)
        .map(|_| sample_case(&mut rng))
        .find(|c| fails(&broken_merge_check, c))
        .expect("an off-by-one block pointer must be caught within 500 cases")
}

#[test]
fn broken_merge_is_caught_and_shrinks_small() {
    for seed in [42, 7, 1000] {
        let case = failing_case(seed);
        let shrunk = shrink(&case, &broken_merge_check);
        assert!(
            fails(&broken_merge_check, &shrunk),
            "shrunk case must still fail"
        );
        assert!(
            shrunk.n <= 4 * shrunk.block.max(1),
            "seed {seed}: shrunk repro n = {} exceeds 4B = {} ({shrunk})",
            shrunk.n,
            4 * shrunk.block.max(1)
        );
        // The recipe must be replayable: JSON round-trips to the same case.
        let json = shrunk.to_json("merge_sort");
        let (target, back) = FuzzCase::from_json(&json).unwrap();
        assert_eq!(target, "merge_sort");
        assert_eq!(back, shrunk);
    }
}

#[test]
fn shrinking_is_deterministic() {
    let case = failing_case(42);
    let a = shrink(&case, &broken_merge_check);
    let b = shrink(&case, &broken_merge_check);
    assert_eq!(a, b);
}
