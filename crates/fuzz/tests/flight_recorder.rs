//! The flight recorder must survive a mid-phase fault: when an algorithm
//! panics halfway through a phase, the last `K` I/O events — with their
//! phase attribution — must reach the panic sink during the unwind.
//!
//! The fault is the fuzz crate's own [`OffByOneMachine`] with a tiny
//! read budget: its budget assertion fires deterministically on the
//! (budget+1)-th read, deep inside the §3 mergesort's phase tree.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use aem_core::sort::merge_sort;
use aem_fuzz::fault::OffByOneMachine;
use aem_machine::{AemConfig, Machine};
use aem_obs::InstrumentedMachine;

const CAPACITY: usize = 8;
const BUDGET: u64 = 32;

#[test]
fn flight_recorder_dump_survives_a_mid_phase_panic() {
    let sink = Arc::new(Mutex::new(String::new()));
    let sink_in = sink.clone();

    let result = catch_unwind(AssertUnwindSafe(move || {
        // The machine must be created INSIDE the unwound closure so its
        // drop (and the recorder's dump) happens during the panic.
        let cfg = AemConfig::new(64, 8, 2).unwrap();
        // Stride 1 redirects every read; the budget assertion panics on
        // read 33, mid-phase.
        let faulty = OffByOneMachine::with_read_budget(Machine::<u64>::new(cfg), 1, BUDGET);
        let mut im = InstrumentedMachine::new(faulty);
        im.flight_mut().set_capacity(CAPACITY);
        im.flight_mut().set_label("sort/aem faulted");
        im.flight_mut().set_panic_sink(sink_in);
        let input: Vec<u64> = (0..256u64).rev().collect();
        let region = im.inner_mut().inner_mut().install(&input);
        let _ = merge_sort(&mut im, region);
        unreachable!("the read budget must fire before the sort finishes");
    }));
    assert!(result.is_err(), "the fault must panic");

    let dump = sink.lock().unwrap().clone();
    assert!(
        dump.contains("flight recorder [sort/aem faulted]"),
        "dump header missing:\n{dump}"
    );
    // Exactly the last K events are retained and serialized.
    let event_lines: Vec<&str> = dump.lines().filter(|l| l.contains(" dQ ")).collect();
    assert_eq!(event_lines.len(), CAPACITY, "{dump}");
    assert!(
        dump.contains(&format!("last {CAPACITY} of")),
        "header should state the retained/total split:\n{dump}"
    );
    // The events carry phase attribution from inside the sort — a fault
    // mid-phase means the tail is NOT unattributed.
    assert!(
        event_lines.iter().any(|l| !l.trim_end().ends_with("@ -")),
        "tail events should carry phase names:\n{dump}"
    );
    // The recorder saw reads (dQ 1); the panicking read itself is not
    // recorded (the machine died before the event was observed).
    assert!(event_lines.iter().any(|l| l.contains("dQ 1")), "{dump}");
}

#[test]
fn no_dump_without_a_panic() {
    let sink = Arc::new(Mutex::new(String::new()));
    {
        let cfg = AemConfig::new(64, 8, 2).unwrap();
        // A generous budget: the run completes, nothing panics.
        let faulty = OffByOneMachine::with_read_budget(Machine::<u64>::new(cfg), u64::MAX, 1 << 40);
        let mut im = InstrumentedMachine::new(faulty);
        im.flight_mut().set_panic_sink(sink.clone());
        let input: Vec<u64> = (0..64u64).rev().collect();
        let region = im.inner_mut().inner_mut().install(&input);
        merge_sort(&mut im, region).unwrap();
    }
    assert!(
        sink.lock().unwrap().is_empty(),
        "a clean run must not dump its flight recorder"
    );
}
