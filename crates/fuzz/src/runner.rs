//! The fuzz loop: sample → check all targets → on failure, shrink and
//! emit a replay recipe.
//!
//! The loop is seed-deterministic: the case stream is a pure function of
//! `--seed`, targets run in a fixed order, and the report renders no
//! timestamps or durations — two runs with the same seed and iteration
//! count produce byte-identical output. The optional
//! `--time-budget-secs` cap is the one escape hatch: it may stop the
//! loop early on a slow machine, so CI determinism checks leave it
//! unset.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use aem_machine::Backend;
use aem_workloads::SplitMix64;

use crate::case::FuzzCase;
use crate::sample::sample_case;
use crate::shrink::shrink;
use crate::targets::{select_targets, Outcome, Target};

/// Options for one fuzz session.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed of the case stream.
    pub seed: u64,
    /// Number of cases to sample.
    pub iters: u64,
    /// Optional wall-clock cap in seconds; `None` (the default) keeps
    /// the session fully deterministic.
    pub time_budget_secs: Option<u64>,
    /// `--target` filter patterns (prefix match); `None` runs all.
    pub targets: Option<Vec<String>>,
    /// Storage backend every check runs against (default: vec). Targets
    /// whose algorithm reads payloads skip on the ghost backend.
    pub backend: Backend,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            iters: 100,
            time_budget_secs: None,
            targets: None,
            backend: Backend::Vec,
        }
    }
}

/// A failing case, original and minimized.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Target that failed.
    pub target: String,
    /// Iteration (0-based) at which the failure was sampled.
    pub iteration: u64,
    /// The case as sampled.
    pub original: FuzzCase,
    /// The case after greedy shrinking.
    pub shrunk: FuzzCase,
    /// Failure message on the shrunk case.
    pub message: String,
}

impl Failure {
    /// The single-line JSON seed-file form of the shrunk case.
    pub fn repro_json(&self) -> String {
        self.shrunk.to_json(&self.target)
    }

    /// The one-line command that replays the shrunk case.
    pub fn replay_command(&self) -> String {
        self.shrunk.replay_command(&self.target)
    }
}

/// What a fuzz session did.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Seed the session ran with.
    pub seed: u64,
    /// Iterations actually executed (< requested iff a failure stopped
    /// the loop or the time budget ran out).
    pub iters_run: u64,
    /// Iterations requested.
    pub iters_requested: u64,
    /// Names of the targets exercised, in run order.
    pub target_names: Vec<String>,
    /// Total (case, target) checks that passed.
    pub passes: u64,
    /// Total checks skipped (config outside a target's range).
    pub skips: u64,
    /// The first failure, if any (the loop stops at the first).
    pub failure: Option<Failure>,
    /// `true` if the loop stopped because the time budget ran out.
    pub budget_exhausted: bool,
}

impl FuzzReport {
    /// Deterministic multi-line human rendering (no timings).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "aem-fuzz: seed {} · {}/{} iterations · targets: {}\n",
            self.seed,
            self.iters_run,
            self.iters_requested,
            self.target_names.join(", ")
        ));
        out.push_str(&format!(
            "checks: {} passed, {} skipped\n",
            self.passes, self.skips
        ));
        if self.budget_exhausted {
            out.push_str("note: time budget exhausted before all iterations ran\n");
        }
        match &self.failure {
            None => out.push_str("result: PASS\n"),
            Some(f) => {
                out.push_str(&format!(
                    "result: FAIL in target '{}' at iteration {}\n",
                    f.target, f.iteration
                ));
                out.push_str(&format!("  original case: {}\n", f.original));
                out.push_str(&format!("  shrunk case:   {}\n", f.shrunk));
                out.push_str(&format!("  failure:       {}\n", f.message));
                out.push_str(&format!("  replay:        {}\n", f.replay_command()));
                out.push_str(&format!("  seed file:     {}\n", f.repro_json()));
            }
        }
        out
    }
}

/// Run one target on one case against one backend, converting panics
/// into failures.
pub fn check_case(target: &Target, case: &FuzzCase, backend: Backend) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| target.run(case, backend))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Outcome::Fail(format!("{}: panic: {msg}", target.name))
        }
    }
}

/// Run a fuzz session. Returns an error only for invalid options
/// (e.g. an unknown `--target`); a failing check is reported inside the
/// [`FuzzReport`], not as an `Err`.
pub fn run(opts: &FuzzOptions) -> Result<FuzzReport, String> {
    let targets = select_targets(opts.targets.as_deref())?;
    let started = Instant::now();
    let mut rng = SplitMix64::seed_from_u64(opts.seed);
    let mut report = FuzzReport {
        seed: opts.seed,
        iters_run: 0,
        iters_requested: opts.iters,
        target_names: targets.iter().map(|t| t.name.to_string()).collect(),
        passes: 0,
        skips: 0,
        failure: None,
        budget_exhausted: false,
    };

    'outer: for iter in 0..opts.iters {
        if let Some(budget) = opts.time_budget_secs {
            if started.elapsed().as_secs() >= budget {
                report.budget_exhausted = true;
                break;
            }
        }
        let case = sample_case(&mut rng);
        report.iters_run = iter + 1;
        for target in &targets {
            match check_case(target, &case, opts.backend) {
                Outcome::Pass => report.passes += 1,
                Outcome::Skip(_) => report.skips += 1,
                Outcome::Fail(_) => {
                    let check = |c: &FuzzCase| check_case(target, c, opts.backend);
                    let shrunk = shrink(&case, &check);
                    let message = match check_case(target, &shrunk, opts.backend) {
                        Outcome::Fail(msg) => msg,
                        other => {
                            format!("shrunk case no longer fails deterministically ({other:?})")
                        }
                    };
                    report.failure = Some(Failure {
                        target: target.name.to_string(),
                        iteration: iter,
                        original: case.clone(),
                        shrunk,
                        message,
                    });
                    break 'outer;
                }
            }
        }
    }
    Ok(report)
}

/// Run a single explicit case against one named target (the replay
/// path behind `aemsim fuzz --target … --n …` and corpus regression
/// tests). Returns the outcome of that one check.
pub fn replay(target_name: &str, case: &FuzzCase) -> Result<Outcome, String> {
    replay_on(target_name, case, Backend::Vec)
}

/// [`replay`] against an explicit storage backend.
pub fn replay_on(target_name: &str, case: &FuzzCase, backend: Backend) -> Result<Outcome, String> {
    let targets = select_targets(Some(&[target_name.to_string()]))?;
    let mut last = Outcome::Skip("no target ran".to_string());
    for t in &targets {
        last = check_case(t, case, backend);
        if last.is_fail() {
            return Ok(last);
        }
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::broken_merge_check;

    #[test]
    fn same_seed_same_report() {
        let opts = FuzzOptions {
            seed: 7,
            iters: 25,
            ..FuzzOptions::default()
        };
        let a = run(&opts).unwrap().render();
        let b = run(&opts).unwrap().render();
        assert_eq!(a, b);
        assert!(a.contains("result: PASS"), "{a}");
    }

    #[test]
    fn ghost_session_skips_payload_targets_but_passes() {
        let opts = FuzzOptions {
            seed: 7,
            iters: 10,
            backend: Backend::Ghost,
            ..FuzzOptions::default()
        };
        let r = run(&opts).unwrap();
        assert!(r.failure.is_none(), "{}", r.render());
        assert!(r.skips > 0, "payload targets must skip on ghost");
        assert!(r.passes > 0, "oblivious targets must still run on ghost");
    }

    #[test]
    fn unknown_target_is_an_error() {
        let opts = FuzzOptions {
            targets: Some(vec!["no_such_target".to_string()]),
            ..FuzzOptions::default()
        };
        let err = run(&opts).unwrap_err();
        assert!(err.contains("valid targets"), "{err}");
    }

    #[test]
    fn failure_report_carries_replay_recipe() {
        // Drive the loop with the deliberately broken merge as the sole
        // target by reproducing the loop manually through check/shrink.
        // The corrupted machine may make the algorithm panic, so every
        // probe goes through the panic-safe `fails`.
        use crate::shrink::fails;
        let mut rng = aem_workloads::SplitMix64::seed_from_u64(3);
        let case = (0..200)
            .map(|_| crate::sample::sample_case(&mut rng))
            .find(|c| fails(&broken_merge_check, c))
            .expect("off-by-one fault must fail within 200 sampled cases");
        let shrunk = shrink(&case, &broken_merge_check);
        assert!(fails(&broken_merge_check, &shrunk));
        let f = Failure {
            target: "merge_sort".to_string(),
            iteration: 0,
            original: case,
            shrunk,
            message: "x".to_string(),
        };
        assert!(f.replay_command().contains("--target merge_sort"));
        assert!(f.repro_json().contains("\"target\":"));
    }
}
