//! Corpus loading and replay.
//!
//! `crates/fuzz/corpus/` holds one single-line JSON seed file per
//! previously-interesting case (minimized failures, hand-seeded
//! degenerate corners). Every file replays as an ordinary `cargo test`
//! regression via the `corpus_replay` integration test, and
//! `aemsim fuzz --replay <file>` replays one on demand.

use std::path::{Path, PathBuf};

use crate::case::FuzzCase;
use crate::runner;
use crate::targets::Outcome;

/// One parsed corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Source file.
    pub path: PathBuf,
    /// Target the case is pinned to.
    pub target: String,
    /// The case itself.
    pub case: FuzzCase,
}

/// The in-repo corpus directory (valid when running from the workspace,
/// e.g. under `cargo test`).
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Parse one seed file.
pub fn load_file(path: &Path) -> Result<CorpusEntry, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let (target, case) =
        FuzzCase::from_json(text.trim()).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(CorpusEntry {
        path: path.to_path_buf(),
        target,
        case,
    })
}

/// Load every `*.json` seed file in `dir`, sorted by file name so replay
/// order (and therefore output) is deterministic.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    paths.iter().map(|p| load_file(p)).collect()
}

/// Replay one entry against its pinned target.
pub fn replay(entry: &CorpusEntry) -> Result<Outcome, String> {
    runner::replay(&entry.target, &entry.case)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_dir_exists_and_is_nonempty() {
        let entries = load_dir(&default_dir()).expect("corpus dir must load");
        assert!(!entries.is_empty(), "corpus must ship at least one seed");
    }

    #[test]
    fn corpus_covers_the_degenerate_corners() {
        let entries = load_dir(&default_dir()).unwrap();
        assert!(entries.iter().any(|e| e.case.omega >= e.case.block as u64));
        assert!(entries.iter().any(|e| e.case.block == 1));
        assert!(entries.iter().any(|e| e.case.mem == 2 * e.case.block));
        assert!(entries
            .iter()
            .any(|e| e.case.block > 1 && e.case.n % e.case.block != 0));
    }

    #[test]
    fn load_reports_missing_dir() {
        let err = load_dir(Path::new("/nonexistent-corpus-dir")).unwrap_err();
        assert!(err.contains("nonexistent-corpus-dir"));
    }
}
