//! Fault injection: deliberately broken machines for validating the
//! harness itself.
//!
//! A fuzzer that has never caught a bug is indistinguishable from one
//! that cannot. [`OffByOneMachine`] wraps any [`AemAccess`] machine and
//! silently redirects every `stride`-th data-block read to the *next*
//! block id — the classic off-by-one block-pointer bug. Running a
//! correct algorithm on it must make the differential check fail, and
//! the shrinker must reduce the failure to a minimal case; the
//! `broken_merge` integration test pins both properties.

use aem_machine::{AemAccess, AemConfig, BlockId, Cost, MachineError, Region};

type Result<T> = std::result::Result<T, MachineError>;

/// Read budget before the wrapper panics. Corrupted block contents can
/// send an otherwise-correct algorithm into a livelock (a merge cursor
/// that never reaches its end), and no differential check fires on a run
/// that never finishes — so after this many reads the wrapper panics,
/// which the harness already converts into a failure. Orders of
/// magnitude above any legitimate run at fuzz-sized `n`.
pub const READ_BUDGET: u64 = 1_000_000;

/// A machine whose every `stride`-th data-block read fetches the block
/// *after* the requested one. Reads that would fall off the end of
/// allocated storage (or otherwise error) fall back to the true block,
/// so the fault corrupts data instead of crashing the run. Panics after
/// [`READ_BUDGET`] reads so a corruption-induced livelock still
/// surfaces as a (panic) failure.
#[derive(Debug)]
pub struct OffByOneMachine<A> {
    inner: A,
    stride: u64,
    budget: u64,
    reads_seen: u64,
    /// Number of reads actually redirected.
    pub faults_injected: u64,
}

impl<A> OffByOneMachine<A> {
    /// Wrap `inner`, redirecting every `stride`-th data read (`stride ≥ 1`).
    pub fn new(inner: A, stride: u64) -> Self {
        Self::with_read_budget(inner, stride, READ_BUDGET)
    }

    /// Like [`OffByOneMachine::new`] but with an explicit read budget —
    /// tests that want a deterministic mid-phase panic (the flight
    /// recorder's dump-on-panic test) set a budget far below
    /// [`READ_BUDGET`].
    pub fn with_read_budget(inner: A, stride: u64, budget: u64) -> Self {
        OffByOneMachine {
            inner,
            stride: stride.max(1),
            budget: budget.max(1),
            reads_seen: 0,
            faults_injected: 0,
        }
    }

    /// The wrapped machine.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The wrapped machine, mutably (for `install`).
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }
}

impl<T, A: AemAccess<T>> AemAccess<T> for OffByOneMachine<A> {
    fn cfg(&self) -> AemConfig {
        self.inner.cfg()
    }

    fn read_block(&mut self, id: BlockId) -> Result<Vec<T>> {
        self.reads_seen += 1;
        assert!(
            self.reads_seen <= self.budget,
            "OffByOneMachine: read budget exhausted ({} reads) — \
             the injected corruption livelocked the algorithm",
            self.budget
        );
        if self.reads_seen % self.stride == 0 {
            if let Ok(data) = self.inner.read_block(BlockId(id.0 + 1)) {
                self.faults_injected += 1;
                return Ok(data);
            }
        }
        self.inner.read_block(id)
    }

    fn write_block(&mut self, id: BlockId, data: Vec<T>) -> Result<()> {
        self.inner.write_block(id, data)
    }

    fn alloc_block(&mut self) -> BlockId {
        self.inner.alloc_block()
    }

    fn alloc_region(&mut self, elems: usize) -> Region {
        self.inner.alloc_region(elems)
    }

    fn discard(&mut self, k: usize) -> Result<()> {
        self.inner.discard(k)
    }

    fn reserve(&mut self, k: usize) -> Result<()> {
        self.inner.reserve(k)
    }

    fn read_aux_block(&mut self, id: BlockId) -> Result<Vec<u64>> {
        self.inner.read_aux_block(id)
    }

    fn write_aux_block(&mut self, id: BlockId, data: Vec<u64>) -> Result<()> {
        self.inner.write_aux_block(id, data)
    }

    fn alloc_aux_region(&mut self, words: usize) -> Region {
        self.inner.alloc_aux_region(words)
    }

    fn internal_used(&self) -> usize {
        self.inner.internal_used()
    }

    fn cost(&self) -> Cost {
        self.inner.cost()
    }

    fn phase_enter(&mut self, name: &str) {
        self.inner.phase_enter(name)
    }

    fn phase_exit(&mut self) {
        self.inner.phase_exit()
    }
}

/// Differential check of `merge_sort` running on an [`OffByOneMachine`]
/// (every data read redirected). Correct harness behaviour is for this
/// to [`Outcome::Fail`](crate::targets::Outcome::Fail) on any case large enough to read data blocks.
pub fn broken_merge_check(case: &crate::case::FuzzCase) -> crate::targets::Outcome {
    use crate::targets::Outcome;
    use aem_core::oracle;
    use aem_core::sort::merge_sort;
    use aem_machine::Machine;

    let cfg = match case.cfg() {
        Ok(cfg) => cfg,
        Err(e) => return Outcome::Skip(format!("config: {e}")),
    };
    let input = case.keys();
    let want = oracle::sorted_reference(&input);
    let mut m = OffByOneMachine::new(Machine::<u64>::new(cfg), 1);
    let region = m.inner_mut().install(&input);
    let out = match merge_sort(&mut m, region) {
        Ok(out) => out,
        Err(e) => return Outcome::Fail(format!("broken merge: machine error: {e}")),
    };
    let got = m.inner().inspect(out);
    if got != want {
        return Outcome::Fail(format!(
            "broken merge: output diverges from oracle ({} faults injected)",
            m.faults_injected
        ));
    }
    Outcome::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use aem_machine::Machine;

    #[test]
    fn redirects_reads_and_counts_faults() {
        let cfg = AemConfig::new(16, 4, 2).unwrap();
        let mut m = OffByOneMachine::new(Machine::<u64>::new(cfg), 1);
        let r = m.inner_mut().install(&(0..8).collect::<Vec<u64>>());
        // Reading block 0 with stride 1 fetches block 1's contents.
        let data = m.read_block(r.block(0)).unwrap();
        assert_eq!(data, vec![4, 5, 6, 7]);
        assert_eq!(m.faults_injected, 1);
        m.discard(data.len()).unwrap();
    }

    #[test]
    fn falls_back_when_past_the_end() {
        let cfg = AemConfig::new(16, 4, 2).unwrap();
        let mut m = OffByOneMachine::new(Machine::<u64>::new(cfg), 1);
        let r = m.inner_mut().install(&(0..4).collect::<Vec<u64>>());
        // Block 1 does not exist; the faulty read falls back to block 0.
        let data = m.read_block(r.block(0)).unwrap();
        assert_eq!(data, vec![0, 1, 2, 3]);
        assert_eq!(m.faults_injected, 0);
        m.discard(data.len()).unwrap();
    }
}
