//! Greedy case minimization.
//!
//! When a target fails, replaying the raw sampled case is rarely
//! pleasant: `n` can be over a thousand and the failure usually survives
//! far smaller instances. [`shrink`] runs a greedy fixed-point loop: at
//! each step it proposes a fixed list of candidate simplifications in
//! priority order — halve `n`, drop a block, drop one element, collapse
//! `ω`, `B`, `M`, simplify the key distribution — and commits the first
//! candidate that still fails the same target. The loop ends when no
//! candidate fails (a local minimum) or after [`MAX_STEPS`] commits.
//!
//! Checks are wrapped in `catch_unwind`, so a candidate that makes the
//! algorithm panic counts as "still failing" — panics are exactly the
//! bugs worth keeping.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::case::{DistKind, FuzzCase};
use crate::targets::Outcome;

/// Cap on committed shrink steps; a pure safety valve (greedy halving
/// reaches a fixed point in far fewer).
pub const MAX_STEPS: usize = 200;

/// `true` if `check` fails (or panics) on `case`.
pub fn fails<F>(check: &F, case: &FuzzCase) -> bool
where
    F: Fn(&FuzzCase) -> Outcome,
{
    catch_unwind(AssertUnwindSafe(|| check(case)))
        .map(|o| o.is_fail())
        .unwrap_or(true)
}

/// Candidate simplifications of `case`, most aggressive first. Only
/// candidates with a valid machine config are proposed.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let mut push = |c: FuzzCase| {
        if c != *case && c.cfg().is_ok() && !out.contains(&c) {
            out.push(c);
        }
    };

    // Input size first: the biggest lever on repro readability.
    push(FuzzCase {
        n: case.n / 2,
        ..case.clone()
    });
    push(FuzzCase {
        n: case.n.saturating_sub(case.block.max(1)),
        ..case.clone()
    });
    push(FuzzCase {
        n: case.n.saturating_sub(1),
        ..case.clone()
    });

    // Collapse the asymmetry, then the geometry.
    push(FuzzCase {
        omega: 1,
        ..case.clone()
    });
    push(FuzzCase {
        omega: case.omega / 2,
        ..case.clone()
    });
    push(FuzzCase {
        block: 1,
        mem: case.mem.max(2),
        ..case.clone()
    });
    push(FuzzCase {
        block: case.block / 2,
        ..case.clone()
    });
    push(FuzzCase {
        mem: 2 * case.block,
        ..case.clone()
    });
    push(FuzzCase {
        mem: case.mem / 2,
        ..case.clone()
    });

    // Simplify the workload shape.
    push(FuzzCase {
        dist: DistKind::Sorted,
        ..case.clone()
    });
    push(FuzzCase {
        dist: DistKind::FewDistinct(1),
        ..case.clone()
    });
    push(FuzzCase {
        delta: 1,
        ..case.clone()
    });
    push(FuzzCase {
        case_seed: 0,
        ..case.clone()
    });

    out
}

/// Greedily minimize a failing `case` under `check`. Returns the local
/// minimum (possibly `case` itself if nothing smaller still fails).
/// The input is assumed to fail; the output is guaranteed to fail.
pub fn shrink<F>(case: &FuzzCase, check: &F) -> FuzzCase
where
    F: Fn(&FuzzCase) -> Outcome,
{
    let mut current = case.clone();
    for _ in 0..MAX_STEPS {
        let Some(next) = candidates(&current).into_iter().find(|c| fails(check, c)) else {
            break;
        };
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_case() -> FuzzCase {
        FuzzCase {
            mem: 96,
            block: 8,
            omega: 64,
            n: 1000,
            case_seed: 7,
            dist: DistKind::Uniform,
            delta: 5,
        }
    }

    #[test]
    fn shrinks_a_size_threshold_failure_to_the_threshold() {
        // "Fails whenever n ≥ 10" must shrink to exactly n = 10.
        let check = |c: &FuzzCase| {
            if c.n >= 10 {
                Outcome::Fail("n too big".into())
            } else {
                Outcome::Pass
            }
        };
        let min = shrink(&big_case(), &check);
        assert_eq!(min.n, 10);
        // Unrelated dimensions collapse too.
        assert_eq!(min.omega, 1);
        assert_eq!(min.block, 1);
    }

    #[test]
    fn treats_panics_as_failures() {
        let check = |c: &FuzzCase| {
            if c.n >= 3 {
                panic!("boom");
            }
            Outcome::Pass
        };
        // Silence the default panic-hook backtrace chatter for this test.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let min = shrink(&big_case(), &check);
        std::panic::set_hook(prev);
        assert_eq!(min.n, 3);
    }

    #[test]
    fn result_always_fails_and_is_deterministic() {
        let check = |c: &FuzzCase| {
            if c.n > 0 && c.n % 3 == 0 && c.omega > 2 {
                Outcome::Fail("composite condition".into())
            } else {
                Outcome::Pass
            }
        };
        let a = shrink(&big_case(), &check);
        let b = shrink(&big_case(), &check);
        assert_eq!(a, b);
        assert!(fails(&check, &a));
        assert!(a.n <= big_case().n);
    }
}
