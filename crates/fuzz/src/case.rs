//! A fuzz case: one fully-specified `(M, B, ω, n, workload)` point.
//!
//! A [`FuzzCase`] is everything needed to reproduce one differential
//! check byte-for-byte: the machine parameters, the input size, the seed
//! and shape of the generated workload, and (for SpMxV) the row density.
//! Cases serialize to single-line JSON seed files — the format of
//! `crates/fuzz/corpus/` and of the repro file the runner writes when a
//! check fails — and render to a one-line `aemsim fuzz` replay command.

use aem_machine::{AemConfig, MachineError};
use aem_obs::json::{self, Json};
use aem_workloads::KeyDist;

/// Key-distribution shape of a case, biased toward the degenerate corner
/// the paper cares about: duplicate-heavy inputs (`FewDistinct` with a
/// tiny alphabet stresses tie handling in every comparison sort).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistKind {
    /// Uniform random 64-bit keys.
    Uniform,
    /// Already sorted (best case / adversarial for balance).
    Sorted,
    /// Reverse sorted.
    Reversed,
    /// Duplicate-heavy: keys drawn from an alphabet of this size.
    FewDistinct(u64),
    /// Ascending then descending.
    OrganPipe,
}

impl DistKind {
    /// The stable name used in seed files and replay commands.
    pub fn name(self) -> &'static str {
        match self {
            DistKind::Uniform => "uniform",
            DistKind::Sorted => "sorted",
            DistKind::Reversed => "reversed",
            DistKind::FewDistinct(_) => "few_distinct",
            DistKind::OrganPipe => "organ_pipe",
        }
    }

    /// Alphabet size for duplicate-heavy shapes (1 otherwise).
    pub fn distinct(self) -> u64 {
        match self {
            DistKind::FewDistinct(d) => d,
            _ => 1,
        }
    }

    /// Parse a `(name, distinct)` pair back into a shape.
    pub fn from_name(name: &str, distinct: u64) -> Result<Self, String> {
        Ok(match name {
            "uniform" => DistKind::Uniform,
            "sorted" => DistKind::Sorted,
            "reversed" => DistKind::Reversed,
            "few_distinct" => DistKind::FewDistinct(distinct.max(1)),
            "organ_pipe" => DistKind::OrganPipe,
            other => return Err(format!("unknown dist '{other}'")),
        })
    }

    /// The corresponding workload generator.
    pub fn key_dist(self, seed: u64) -> KeyDist {
        match self {
            DistKind::Uniform => KeyDist::Uniform { seed },
            DistKind::Sorted => KeyDist::Sorted,
            DistKind::Reversed => KeyDist::Reversed,
            DistKind::FewDistinct(distinct) => KeyDist::FewDistinct { distinct, seed },
            DistKind::OrganPipe => KeyDist::OrganPipe,
        }
    }
}

/// One sampled configuration-and-workload point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// Internal memory `M` in elements.
    pub mem: usize,
    /// Block size `B` in elements.
    pub block: usize,
    /// Write/read cost ratio `ω`.
    pub omega: u64,
    /// Input size `n` in elements.
    pub n: usize,
    /// Seed of the generated workload (keys, permutation, matrix).
    pub case_seed: u64,
    /// Key-distribution shape (sort targets).
    pub dist: DistKind,
    /// Row density `δ` (SpMxV targets).
    pub delta: usize,
}

impl FuzzCase {
    /// The validated machine configuration of this case.
    pub fn cfg(&self) -> Result<AemConfig, MachineError> {
        AemConfig::new(self.mem, self.block, self.omega)
    }

    /// Generated sort keys for this case.
    pub fn keys(&self) -> Vec<u64> {
        self.dist.key_dist(self.case_seed).generate(self.n)
    }

    /// `true` when the case sits in a corner the paper's theorems must
    /// survive: `ω ≥ B`, single-element blocks, minimal memory, or a
    /// non-block-aligned input.
    pub fn is_degenerate(&self) -> bool {
        self.omega >= self.block as u64
            || self.block == 1
            || self.mem <= 2 * self.block + 1
            || (self.block > 0 && self.n % self.block != 0)
    }

    /// Single-line JSON seed-file form (the corpus / repro format).
    pub fn to_json(&self, target: &str) -> String {
        json::obj(vec![
            ("target", Json::Str(target.to_string())),
            ("mem", Json::UInt(self.mem as u64)),
            ("block", Json::UInt(self.block as u64)),
            ("omega", Json::UInt(self.omega)),
            ("n", Json::UInt(self.n as u64)),
            ("case_seed", Json::UInt(self.case_seed)),
            ("dist", Json::Str(self.dist.name().to_string())),
            ("distinct", Json::UInt(self.dist.distinct())),
            ("delta", Json::UInt(self.delta as u64)),
        ])
        .to_string_compact()
    }

    /// Parse a seed file produced by [`FuzzCase::to_json`]; returns the
    /// target name alongside the case.
    pub fn from_json(text: &str) -> Result<(String, FuzzCase), String> {
        let v = json::parse(text).map_err(|e| format!("seed file is not JSON: {e}"))?;
        let field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("seed file missing numeric field '{k}'"))
        };
        let target = v
            .get("target")
            .and_then(Json::as_str)
            .ok_or("seed file missing 'target'")?
            .to_string();
        let dist_name = v.get("dist").and_then(Json::as_str).unwrap_or("uniform");
        let distinct = v.get("distinct").and_then(Json::as_u64).unwrap_or(1);
        let case = FuzzCase {
            mem: field("mem")? as usize,
            block: field("block")? as usize,
            omega: field("omega")?,
            n: field("n")? as usize,
            case_seed: field("case_seed")?,
            dist: DistKind::from_name(dist_name, distinct)?,
            delta: v.get("delta").and_then(Json::as_u64).unwrap_or(4) as usize,
        };
        Ok((target, case))
    }

    /// The one-line `aemsim` command that replays exactly this case.
    pub fn replay_command(&self, target: &str) -> String {
        format!(
            "cargo run -p aem-cli -- fuzz --target {target} --mem {} --block {} --omega {} \
             --n {} --case-seed {} --dist {} --distinct {} --delta {}",
            self.mem,
            self.block,
            self.omega,
            self.n,
            self.case_seed,
            self.dist.name(),
            self.dist.distinct(),
            self.delta,
        )
    }
}

impl std::fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(M={}, B={}, ω={}) n={} seed={} dist={}/{} δ={}",
            self.mem,
            self.block,
            self.omega,
            self.n,
            self.case_seed,
            self.dist.name(),
            self.dist.distinct(),
            self.delta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case() -> FuzzCase {
        FuzzCase {
            mem: 4,
            block: 2,
            omega: 32,
            n: 37,
            case_seed: 99,
            dist: DistKind::FewDistinct(2),
            delta: 3,
        }
    }

    #[test]
    fn json_round_trip() {
        let c = case();
        let text = c.to_json("merge_sort");
        let (target, back) = FuzzCase::from_json(&text).unwrap();
        assert_eq!(target, "merge_sort");
        assert_eq!(back, c);
    }

    #[test]
    fn rejects_malformed_seed_files() {
        assert!(FuzzCase::from_json("not json").is_err());
        assert!(FuzzCase::from_json("{\"target\":\"x\"}").is_err());
        assert!(FuzzCase::from_json(
            "{\"target\":\"x\",\"mem\":4,\"block\":2,\"omega\":1,\"n\":1,\
                 \"case_seed\":0,\"dist\":\"bogus\",\"distinct\":1,\"delta\":1}"
        )
        .is_err());
    }

    #[test]
    fn degenerate_detection() {
        assert!(case().is_degenerate()); // ω = 32 ≥ B = 2 and n % B ≠ 0
        let tame = FuzzCase {
            mem: 64,
            block: 8,
            omega: 2,
            n: 64,
            case_seed: 1,
            dist: DistKind::Uniform,
            delta: 4,
        };
        assert!(!tame.is_degenerate());
    }

    #[test]
    fn replay_command_mentions_every_field() {
        let cmd = case().replay_command("merge_sort");
        for needle in [
            "--target merge_sort",
            "--mem 4",
            "--block 2",
            "--omega 32",
            "--n 37",
            "--case-seed 99",
            "--dist few_distinct",
            "--distinct 2",
            "--delta 3",
        ] {
            assert!(cmd.contains(needle), "missing {needle} in {cmd}");
        }
    }

    #[test]
    fn keys_are_deterministic_and_duplicate_heavy() {
        let c = case();
        assert_eq!(c.keys(), c.keys());
        let distinct: std::collections::HashSet<u64> = c.keys().into_iter().collect();
        assert!(distinct.len() <= 2);
    }
}
