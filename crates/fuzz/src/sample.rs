//! Corner-biased sampling of `(M, B, ω, n)` configurations.
//!
//! A uniform sampler would spend almost all its budget in the benign
//! interior of the parameter space, where `ω < B ≪ M` and `n` is a round
//! multiple of everything. The regimes this paper exists for — and where
//! the asymmetric-sorting line of Blelloch et al. shows implementations
//! actually break — are the edges:
//!
//! * `B = 1` (the ARAM specialization of §2),
//! * `ω ≥ B` (the case Theorem 3.2 removes the classical assumption for),
//! * `M = 2B` (the minimum memory any block algorithm can run in),
//! * `n` not a multiple of `B` (partial tail blocks),
//! * duplicate-heavy keys (tie handling in every merge).
//!
//! So the sampler draws each dimension from a small weighted palette in
//! which those corners dominate. Everything is a pure function of the
//! shared [`SplitMix64`] stream: same seed, same cases, forever — the
//! determinism contract `aemsim fuzz` advertises.

use aem_workloads::SplitMix64;

use crate::case::{DistKind, FuzzCase};

/// Upper bound on sampled input sizes, in elements. Kept small enough
/// that a full sweep of all targets over hundreds of cases stays within
/// a CI smoke budget, yet large enough to force several merge levels at
/// the tiny `M`, `B` the sampler prefers.
pub const MAX_N: usize = 1200;

fn pick(rng: &mut SplitMix64, palette: &[u64]) -> u64 {
    palette[rng.next_below_usize(palette.len())]
}

/// Draw the next case from the stream.
///
/// The palette weights are encoded by repetition: `B = 1` appears three
/// times in the block palette, so roughly a third of all cases run in
/// ARAM mode, and so on.
pub fn sample_case(rng: &mut SplitMix64) -> FuzzCase {
    // Block size: heavy on 1 and tiny blocks, occasional "normal" 8/16.
    let block = pick(rng, &[1, 1, 1, 2, 2, 3, 4, 4, 5, 8, 8, 16]) as usize;

    // Memory: mostly barely above the M >= 2B floor.
    let mem = match rng.next_below(6) {
        0 | 1 => 2 * block,                                 // the floor itself
        2 => 2 * block + 1,                                 // just off the floor
        3 => 3 * block,                                     //
        4 => 4 * block,                                     //
        _ => (2 + rng.next_below_usize(15)) * block.max(1), // roomier
    };

    // ω: biased toward ω ≥ B — the regime the paper's mergesort exists
    // for — with the classical ω = 1 and mild ratios still present.
    let b = block as u64;
    let omega = pick(
        rng,
        &[1, 1, 2, b.max(1), b + 1, 2 * b.max(1), 4 * b.max(1), 16, 64],
    )
    .max(1);

    // n: mostly near block multiples, ±1 to force partial tail blocks,
    // plus the empty/singleton edge cases.
    let blocks = rng.next_below_usize(MAX_N / block.max(1)) + 1;
    let aligned = blocks * block;
    let n = match rng.next_below(8) {
        0 => 0,
        1 => 1,
        2 | 3 => aligned,
        4 | 5 => aligned.saturating_sub(1),
        _ => aligned + 1,
    }
    .min(MAX_N);

    // Key shape: half duplicate-heavy.
    let dist = match rng.next_below(8) {
        0 => DistKind::Sorted,
        1 => DistKind::Reversed,
        2 => DistKind::OrganPipe,
        3 => DistKind::Uniform,
        _ => DistKind::FewDistinct(pick(rng, &[1, 2, 2, 3, 5, 16])),
    };

    FuzzCase {
        mem,
        block,
        omega,
        n,
        case_seed: rng.next_u64(),
        dist,
        delta: rng.next_below_usize(8) + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cases(seed: u64, count: usize) -> Vec<FuzzCase> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..count).map(|_| sample_case(&mut rng)).collect()
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        assert_eq!(cases(42, 200), cases(42, 200));
        assert_ne!(cases(42, 200), cases(43, 200));
    }

    #[test]
    fn every_sampled_config_is_valid() {
        for c in cases(7, 500) {
            let cfg = c.cfg().expect("sampler must emit valid configs");
            assert!(cfg.block >= 1);
            assert!(cfg.memory >= 2 * cfg.block);
            assert!(cfg.omega >= 1);
            assert!(c.n <= MAX_N);
        }
    }

    #[test]
    fn corners_actually_dominate() {
        let all = cases(1, 500);
        let degenerate = all.iter().filter(|c| c.is_degenerate()).count();
        assert!(
            degenerate * 2 > all.len(),
            "only {degenerate}/{} cases hit a degenerate corner",
            all.len()
        );
        assert!(all.iter().any(|c| c.block == 1));
        assert!(all.iter().any(|c| c.omega >= c.block as u64));
        assert!(all.iter().any(|c| c.mem == 2 * c.block));
        assert!(all.iter().any(|c| c.block > 1 && c.n % c.block != 0));
        assert!(all.iter().any(|c| c.n == 0));
        assert!(all
            .iter()
            .any(|c| matches!(c.dist, DistKind::FewDistinct(_))));
    }
}
