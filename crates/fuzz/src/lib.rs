//! # aem-fuzz — deterministic differential fuzzing against the paper
//!
//! A generative harness that hammers every algorithm in the workspace
//! with `(M, B, ω, n)` configurations biased toward the degenerate
//! corners the paper's theorems must survive — `B = 1`, `ω ≥ B`, `M`
//! barely above `2B`, non-block-aligned `n`, duplicate-heavy keys — and
//! checks each run three ways:
//!
//! * **differentially** against the trivial in-memory oracles in
//!   [`aem_core::oracle`] (sorted order, gathered permutation, Theorem
//!   5.1 semiring-output equality);
//! * against the **paper's cost bounds** via the `aem-obs` invariant
//!   checkers (Theorem 3.2 upper bound, Theorem 4.5 lower bound, §3
//!   pointer-rewrite discipline, Lemma 4.1 round structure and exact
//!   cost conservation);
//! * against the **Lemma 4.3 flash-simulation volume bound**
//!   `≤ 2N + 2QB/ω` by compiling a recorded permutation program to the
//!   unit-cost flash model.
//!
//! Everything is a pure function of the master seed (the shared
//! [`aem_workloads::SplitMix64`] stream): same seed, same cases, same
//! report, byte for byte. On failure the harness greedily shrinks the
//! case to a local minimum ([`shrink()`]) and emits a one-line replay
//! command plus a single-line JSON seed file; minimized seeds live in
//! `crates/fuzz/corpus/` and replay as ordinary `cargo test` regressions
//! ([`corpus`]). The CLI front end is `aemsim fuzz`; see
//! `docs/FUZZING.md` for the design discussion.

pub mod case;
pub mod corpus;
pub mod fault;
pub mod runner;
pub mod sample;
pub mod shrink;
pub mod targets;

pub use case::{DistKind, FuzzCase};
pub use runner::{replay_on, run, Failure, FuzzOptions, FuzzReport};
pub use sample::{sample_case, MAX_N};
pub use shrink::shrink;
pub use targets::{all_targets, select_targets, Outcome, Target};
