//! Fuzz targets: one differential check per registered algorithm, plus
//! the harness-level specials no single workload owns.
//!
//! The table is *generated from the workload registry*
//! ([`aem_core::workload::WorkloadKind::ALL`]): every
//! [`AlgoSpec`](aem_core::workload::AlgoSpec) contributes one target
//! named by its stable `fuzz_target` field (corpus seed files reference
//! these names). A registry target runs the kind's seeded instance
//! through [`run_workload`] on an instrumented machine
//! ([`aem_obs::ProfileHarness`]) and checks three layers:
//!
//! 1. **Differential correctness** — the workload body verifies the
//!    machine output against the in-memory oracle exactly (sorted order
//!    for sorters, the gathered permutation, semiring output equality
//!    for SpMxV per Theorem 5.1, lookup answers for the search family).
//! 2. **Predictor upper bound** — the metered cost may never exceed the
//!    algorithm's closed-form menu price (`AlgoSpec::predict`), the
//!    Theorem 3.2 / Theorem 4.5-upper-branch contract the planner
//!    quotes from.
//! 3. **Paper invariants on the record** — for algorithms flagged
//!    `invariants`: the `aem-obs` checkers (§3 pointer-rewrite
//!    discipline, Lemma 4.1 round structure, the cost sandwich) plus
//!    exact round-cost conservation
//!    ([`aem_machine::rounds::rounds_cost`] must equal `Q`).
//!
//! Three specials ride alongside: `pq_ops` (interleaved queue schedule
//! vs `BinaryHeap`), `flash_lemma43` (the Lemma 4.3 flash-volume
//! reduction), and `backend_diff` (one program, every backend,
//! identical metered cost). Registering a new workload kind adds its
//! fuzz targets here without touching this file.
//!
//! A target never panics by design; the runner additionally wraps every
//! call in `catch_unwind` so that a panicking algorithm is reported as an
//! ordinary failure with a shrunk repro, not a harness crash.

use aem_core::permute::permute_naive_on;
use aem_core::pq::BufferedPq;
use aem_core::sort::merge_sort;
use aem_core::workload::{run_workload, RunCtx, WorkloadError, WorkloadKind};
use aem_flash::driver::naive_atom_permutation;
use aem_flash::verify_lemma_4_3;
use aem_machine::rounds::{round_decompose, rounds_cost};
use aem_machine::{
    with_backend_machine, with_payload_machine, AemAccess, AemConfig, Backend, Cost, MachineError,
};
use aem_obs::{first_failure, tail_from_record, ProfileHarness, RunRecord};
use aem_workloads::PermKind;

use crate::case::FuzzCase;

/// Outcome of one target on one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// All checks held.
    Pass,
    /// The case cannot run on this target (e.g. the config is outside the
    /// algorithm's declared parameter range). Not a failure.
    Skip(String),
    /// A check failed; the message says which and with what numbers.
    Fail(String),
}

impl Outcome {
    /// `true` for [`Outcome::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, Outcome::Fail(_))
    }
}

/// What a target actually runs.
#[derive(Clone, Copy)]
enum Check {
    /// A registry algorithm: the kind's seeded instance through
    /// [`run_workload`] with differential + predictor + invariant checks.
    Registry(WorkloadKind, &'static str),
    /// A hand-written harness check (queue schedules, flash reduction,
    /// cross-backend diff).
    Special(SpecialCheck),
}

/// A hand-written check's function signature.
type SpecialCheck = fn(&FuzzCase, Backend) -> Outcome;

/// A named fuzz target.
#[derive(Clone, Copy)]
pub struct Target {
    /// Stable name, used by `--target` filters, seed files and replay
    /// commands. For registry targets this is
    /// [`AlgoSpec::fuzz_target`](aem_core::workload::AlgoSpec::fuzz_target).
    pub name: &'static str,
    check: Check,
}

impl Target {
    /// Run the target's check against one storage backend. Targets whose
    /// algorithm is not ghost-sound return [`Outcome::Skip`] on the ghost
    /// backend rather than comparing placeholder data to the oracle.
    pub fn run(&self, case: &FuzzCase, backend: Backend) -> Outcome {
        match self.check {
            Check::Registry(kind, algo) => registry_check(kind, algo, case, backend),
            Check::Special(f) => f(case, backend),
        }
    }
}

impl std::fmt::Debug for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Target").field("name", &self.name).finish()
    }
}

/// Every built-in target, in report order: the registry's algorithms in
/// canonical kind order (deduplicated on `fuzz_target` — the buffered PQ
/// backs both the `sort/pq` candidate and the `pq` kind), then the
/// specials.
pub fn all_targets() -> Vec<Target> {
    let mut out: Vec<Target> = Vec::new();
    for kind in WorkloadKind::ALL {
        for algo in kind.descriptor().algos {
            if out.iter().any(|t| t.name == algo.fuzz_target) {
                continue;
            }
            out.push(Target {
                name: algo.fuzz_target,
                check: Check::Registry(kind, algo.name),
            });
        }
    }
    let specials: [(&'static str, SpecialCheck); 3] = [
        ("pq_ops", pq_ops_check),
        ("flash_lemma43", flash_check),
        ("backend_diff", backend_diff_check),
    ];
    for (name, f) in specials {
        out.push(Target {
            name,
            check: Check::Special(f),
        });
    }
    out
}

/// Resolve `--target` filter patterns (exact names or prefixes, comma
/// logic handled by the caller) to targets. Unknown patterns are an
/// error listing the valid names.
pub fn select_targets(patterns: Option<&[String]>) -> Result<Vec<Target>, String> {
    let all = all_targets();
    let Some(pats) = patterns else { return Ok(all) };
    let mut out: Vec<Target> = Vec::new();
    for p in pats {
        let matched: Vec<&Target> = all
            .iter()
            .filter(|t| t.name.len() >= p.len() && t.name[..p.len()].eq_ignore_ascii_case(p))
            .collect();
        if matched.is_empty() {
            let names: Vec<&str> = all.iter().map(|t| t.name).collect();
            return Err(format!(
                "unknown fuzz target '{p}'; valid targets: {}",
                names.join(", ")
            ));
        }
        for t in matched {
            if !out.iter().any(|o| o.name == t.name) {
                out.push(*t);
            }
        }
    }
    Ok(out)
}

/// Classify a machine error: configs an algorithm explicitly rejects are
/// skips, everything else (overflow, underflow, malformed traces) is the
/// kind of bug the fuzzer exists to find.
fn machine_error(context: &str, e: MachineError) -> Outcome {
    match e {
        MachineError::InvalidConfig(_) => Outcome::Skip(format!("{context}: {e}")),
        other => Outcome::Fail(format!("{context}: machine error: {other}")),
    }
}

/// Shared invariant suite on an instrumented record: the obs checkers
/// (pointer rewrites, Lemma 4.1 round structure, cost sandwich) plus
/// exact round-cost conservation.
fn record_invariants(rec: &RunRecord) -> Result<(), String> {
    if let Some(c) = first_failure(rec) {
        return Err(format!("invariant {}: {}", c.name, c.detail));
    }
    let cfg = rec.config;
    let q = rec.trace.cost().q(cfg.omega);
    let split = rounds_cost(&round_decompose(&rec.trace, cfg));
    if split != q {
        return Err(format!(
            "Lemma 4.1 conservation: round costs sum to {split}, trace Q = {q}"
        ));
    }
    Ok(())
}

/// One registry algorithm on one case: the kind's seeded instance
/// through [`run_workload`] on an instrumented machine. The workload
/// body performs the differential check (exact oracle equality); this
/// wrapper adds the predictor upper bound and, for `invariants`
/// algorithms, the record invariant suite.
fn registry_check(
    kind: WorkloadKind,
    algo_name: &'static str,
    case: &FuzzCase,
    backend: Backend,
) -> Outcome {
    let cfg = match case.cfg() {
        Ok(cfg) => cfg,
        Err(e) => return Outcome::Skip(format!("config: {e}")),
    };
    let algo = kind
        .descriptor()
        .algo(algo_name)
        .expect("target table names a registered algorithm");
    if !backend.carries_payload() && !algo.ghost_sound {
        let why = if algo.ghost_note.is_empty() {
            "schedule is payload-routed"
        } else {
            algo.ghost_note
        };
        return Outcome::Skip(format!("{algo_name}: {why}; ghost backend skipped"));
    }
    // The registry's validity predicate decides which shapes this kind
    // accepts (n = 0, delta constraints); rejected shapes are skips.
    let ctx = match RunCtx::new(kind, algo_name, cfg, case.n, case.delta, case.case_seed) {
        Ok(ctx) => ctx,
        Err(e) => return Outcome::Skip(format!("{algo_name}: {e}")),
    };
    let profiled = match run_workload(&ctx, &mut ProfileHarness { backend }) {
        Ok(p) => p,
        Err(WorkloadError::Machine(e)) => return machine_error(algo_name, e),
        Err(WorkloadError::Check(msg)) => {
            return Outcome::Fail(format!("{}/{algo_name}: {msg}", kind.name()))
        }
    };
    // Thm 3.2 / closed-form upper branch: the metered Q may never exceed
    // the menu price the planner quotes for this algorithm.
    if let Some(bound) = (algo.predict)(cfg, ctx.n, ctx.delta) {
        let q = profiled.record.trace.cost().q(cfg.omega);
        let b = bound.q(cfg.omega);
        if q > b {
            return Outcome::Fail(format!(
                "{}/{algo_name}: measured Q {q} exceeds predictor {b} (n={}, delta={})\n{}",
                kind.name(),
                ctx.n,
                ctx.delta,
                tail_from_record(&profiled.record, 16)
            ));
        }
    }
    if algo.invariants {
        if let Err(msg) = record_invariants(&profiled.record) {
            return Outcome::Fail(format!(
                "{algo_name}: {msg}\n{}",
                tail_from_record(&profiled.record, 16)
            ));
        }
    }
    Outcome::Pass
}

/// Interleaved `push`/`pop` schedule differential: the multiway-buffered
/// queue against `std::collections::BinaryHeap` as the in-memory oracle.
///
/// The schedule is a pure function of the case seed (roughly one pop per
/// three pushes, plus a full drain), so every divergence replays exactly.
/// Beyond value equality, the target checks the budget contract: after the
/// drain every internal slot must be released (`internal_used() == 0`).
fn pq_ops_check(case: &FuzzCase, backend: Backend) -> Outcome {
    let cfg = match case.cfg() {
        Ok(cfg) => cfg,
        Err(e) => return Outcome::Skip(format!("config: {e}")),
    };
    if !backend.carries_payload() {
        return Outcome::Skip("pq_ops: the queue compares keys; ghost backend skipped".into());
    }
    let keys = case.keys();

    with_payload_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let mut pq = match BufferedPq::new(cfg) {
            Ok(pq) => pq,
            Err(e) => return machine_error("pq_ops", e),
        };
        let mut reference = std::collections::BinaryHeap::new();
        let step = |m: &mut M, pq: &mut BufferedPq<u64>, reference: &mut std::collections::BinaryHeap<std::cmp::Reverse<u64>>| -> Result<Option<String>, MachineError> {
            let got = pq.pop(m)?;
            if got.is_some() {
                m.discard(1)?;
            }
            let want = reference.pop().map(|std::cmp::Reverse(x)| x);
            if got != want {
                return Ok(Some(format!("pop returned {got:?}, oracle says {want:?}")));
            }
            Ok(None)
        };
        for (i, &x) in keys.iter().enumerate() {
            if let Err(e) = pq.push(&mut m, x) {
                return machine_error("pq_ops push", e);
            }
            reference.push(std::cmp::Reverse(x));
            // Seed-derived schedule: pop after roughly every third push.
            let roll = case
                .case_seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                >> 33;
            if roll % 3 == 0 {
                match step(&mut m, &mut pq, &mut reference) {
                    Ok(None) => {}
                    Ok(Some(msg)) => return Outcome::Fail(format!("pq_ops at step {i}: {msg}")),
                    Err(e) => return machine_error("pq_ops pop", e),
                }
            }
        }
        while !reference.is_empty() || !pq.is_empty() {
            match step(&mut m, &mut pq, &mut reference) {
                Ok(None) => {}
                Ok(Some(msg)) => return Outcome::Fail(format!("pq_ops drain: {msg}")),
                Err(e) => return machine_error("pq_ops drain", e),
            }
        }
        if m.internal_used() != 0 {
            return Outcome::Fail(format!(
                "pq_ops: queue leaked {} internal slots after drain",
                m.internal_used()
            ));
        }
        Outcome::Pass
    }, ghost => unreachable!("skipped above"))
}

/// Run the naive permuter for a case on one backend; returns
/// `(output, cost)`. Payload-oblivious, so `backend_diff` runs it on the
/// ghost backend too — where the returned output holds placeholders.
fn naive_permute_on_backend(
    backend: Backend,
    cfg: AemConfig,
    values: &[u64],
    pi: &[usize],
) -> Result<(Vec<u64>, Cost), MachineError> {
    with_backend_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let r = m.install(values);
        let out = permute_naive_on(&mut m, r, pi)?;
        Ok((m.inspect(out), m.cost()))
    })
}

/// Derive a flash-compatible configuration from a case: Lemma 4.3 needs
/// `B > ω` and `ω | B`, so the target keeps the case's block size (raised
/// to 2 if needed), sets `ω` to its largest proper divisor, and gives the
/// gather driver the `M ≥ B` it requires.
pub fn flash_config(case: &FuzzCase) -> AemConfig {
    let block = case.block.max(2);
    let omega = (1..block as u64)
        .rev()
        .find(|d| block as u64 % d == 0)
        .unwrap_or(1);
    let mem = case.mem.max(2 * block);
    AemConfig::new(mem, block, omega).expect("derived flash config is valid")
}

/// Backend-neutral: the flash reduction records and replays programs on
/// the move-semantics atom machine, which stores no payloads at all.
fn flash_check(case: &FuzzCase, _backend: Backend) -> Outcome {
    let cfg = flash_config(case);
    // Compilation walks every recorded event with hash maps; cap the
    // instance so a full fuzz session stays inside the smoke budget.
    let n = case.n.min(512);
    let pi = PermKind::Random {
        seed: case.case_seed,
    }
    .generate(n);
    let (prog, _) = match naive_atom_permutation(cfg, &pi) {
        Ok(p) => p,
        Err(e) => return machine_error("flash driver", e),
    };
    if !prog.realizes(&pi) {
        return Outcome::Fail("flash driver: atom program does not realize π".into());
    }
    let report = match verify_lemma_4_3(&prog.program, cfg) {
        Ok(r) => r,
        Err(e) => return Outcome::Fail(format!("lemma 4.3 compile/replay: {e}")),
    };
    if !report.bound_holds() {
        return Outcome::Fail(format!(
            "lemma 4.3: flash volume {} exceeds 2N + 2QB/ω = {} (N = {n}, Q = {})",
            report.flash_volume, report.volume_bound, report.aem_q
        ));
    }
    Outcome::Pass
}

/// The tentpole invariant of the pluggable-store refactor, fuzzed: one
/// program, every backend, identical metered [`Cost`] — and identical
/// output wherever the store actually carries payloads. Two program
/// families per case: the §3 mergesort across the payload-carrying
/// backends (vec, arena, trace), and the payload-oblivious naive
/// permuter across all four (including ghost). The trace backend
/// additionally checks the compiled-schedule invariant: replaying the
/// recorded schedule as pure arithmetic must reproduce the live meter
/// exactly. This target ignores the session's `--backend`; it *is* the
/// cross-backend comparison.
fn backend_diff_check(case: &FuzzCase, _backend: Backend) -> Outcome {
    let cfg = match case.cfg() {
        Ok(cfg) => cfg,
        Err(e) => return Outcome::Skip(format!("config: {e}")),
    };

    // Mergesort: vec vs arena vs trace, cost and output.
    let input = case.keys();
    let mut sort_runs: Vec<(Backend, Vec<u64>, Cost)> = Vec::new();
    for b in [Backend::Vec, Backend::Arena, Backend::Trace] {
        let run = with_payload_machine!(b, u64, |M| {
            let mut m = M::new(cfg);
            let r = m.install(&input);
            merge_sort(&mut m, r).map(|out| (m.inspect(out), m.cost()))
        }, ghost => unreachable!("loop covers payload backends only"));
        match run {
            Ok((out, cost)) => sort_runs.push((b, out, cost)),
            Err(e) => return machine_error("backend_diff/merge_sort", e),
        }
    }
    let (_, vec_out, vec_cost) = &sort_runs[0];
    let vec_sort_cost = *vec_cost;
    for (b, out, cost) in &sort_runs[1..] {
        if cost != vec_cost {
            return Outcome::Fail(format!(
                "backend_diff: merge_sort cost diverges — vec {vec_cost:?} vs {} {cost:?}",
                b.name()
            ));
        }
        if out != vec_out {
            return Outcome::Fail(format!(
                "backend_diff: merge_sort output diverges between vec and {}",
                b.name()
            ));
        }
    }

    // Naive permute: all backends must meter the identical cost;
    // the payload-carrying runs must agree on output too.
    let pi = PermKind::Random {
        seed: case.case_seed,
    }
    .generate(case.n);
    let values: Vec<u64> = (0..case.n as u64).collect();
    let mut perm_runs: Vec<(Backend, Vec<u64>, Cost)> = Vec::new();
    for b in Backend::ALL {
        match naive_permute_on_backend(b, cfg, &values, &pi) {
            Ok((out, cost)) => perm_runs.push((b, out, cost)),
            Err(e) => return machine_error("backend_diff/permute_naive", e),
        }
    }
    let (_, vec_out, vec_cost) = &perm_runs[0];
    for (b, out, cost) in &perm_runs[1..] {
        if cost != vec_cost {
            return Outcome::Fail(format!(
                "backend_diff: permute_naive cost diverges — vec {vec_cost:?} vs {} {cost:?}",
                b.name()
            ));
        }
        if b.carries_payload() && out != vec_out {
            return Outcome::Fail(format!(
                "backend_diff: permute_naive output diverges between vec and {}",
                b.name()
            ));
        }
    }

    // Compiled-trace replay: record the mergesort schedule once, then
    // re-evaluate its cost as pure arithmetic. The replayed tuple must be
    // byte-equal to the live vec meter (which sort_runs[0] holds).
    let mut tm: aem_machine::TraceMachine<u64> = aem_machine::TraceMachine::new(cfg);
    let r = tm.install(&input);
    if let Err(e) = merge_sort(&mut tm, r) {
        return machine_error("backend_diff/trace_record", e);
    }
    let live = tm.cost();
    let schedule = tm.into_schedule();
    let replayed = schedule.replay();
    if replayed != live || replayed != vec_sort_cost {
        return Outcome::Fail(format!(
            "backend_diff: replayed schedule cost {replayed:?} diverges from live {live:?} / vec {vec_sort_cost:?}"
        ));
    }
    Outcome::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::DistKind;

    fn tame_case() -> FuzzCase {
        FuzzCase {
            mem: 64,
            block: 8,
            omega: 16,
            n: 300,
            case_seed: 5,
            dist: DistKind::Uniform,
            delta: 3,
        }
    }

    #[test]
    fn target_table_mirrors_the_registry() {
        // One target per registered fuzz_target (names are corpus-stable),
        // registry kinds in canonical order, the specials last. The
        // buffered PQ backs both sort/pq and the pq kind — one target.
        let names: Vec<&str> = all_targets().iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            vec![
                "merge_sort",
                "em_sort",
                "pq_sort",
                "dist_sort",
                "heap_sort",
                "permute_naive",
                "permute_by_sort",
                "spmv_direct",
                "spmv_sorted",
                "search_binary",
                "search_btree",
                "search_eytzinger",
                "scan_materialize",
                "scan_tree",
                "scan_rescan",
                "matmul_tiled",
                "matmul_stream",
                "bfs_mark",
                "bfs_rescan",
                "pq_ops",
                "flash_lemma43",
                "backend_diff",
            ]
        );
        for kind in WorkloadKind::ALL {
            for algo in kind.descriptor().algos {
                assert!(
                    names.contains(&algo.fuzz_target),
                    "{kind}/{} has no fuzz target",
                    algo.name
                );
            }
        }
    }

    #[test]
    fn all_targets_pass_on_a_tame_case() {
        let case = tame_case();
        for t in all_targets() {
            let outcome = t.run(&case, Backend::Vec);
            assert_eq!(outcome, Outcome::Pass, "{}: {:?}", t.name, outcome);
        }
    }

    #[test]
    fn all_targets_pass_on_the_arena_backend() {
        let case = tame_case();
        for t in all_targets() {
            let outcome = t.run(&case, Backend::Arena);
            assert_eq!(outcome, Outcome::Pass, "{}: {:?}", t.name, outcome);
        }
    }

    #[test]
    fn ghost_backend_skips_payload_targets_and_passes_the_rest() {
        let case = tame_case();
        for t in all_targets() {
            let outcome = t.run(&case, Backend::Ghost);
            match t.name {
                // Ghost-sound registry algorithms (naive permute, the
                // fixed-schedule search descents, the position-routed
                // scan and matmul families) and the machine-free /
                // backend-neutral specials must still run.
                "permute_naive" | "search_binary" | "search_btree" | "scan_materialize"
                | "scan_tree" | "scan_rescan" | "matmul_tiled" | "matmul_stream"
                | "flash_lemma43" | "backend_diff" => {
                    assert_eq!(outcome, Outcome::Pass, "{}: {:?}", t.name, outcome)
                }
                _ => assert!(
                    matches!(outcome, Outcome::Skip(_)),
                    "{} must skip on ghost: {:?}",
                    t.name,
                    outcome
                ),
            }
        }
    }

    #[test]
    fn all_targets_pass_on_empty_and_singleton_inputs() {
        for n in [0usize, 1] {
            let case = FuzzCase { n, ..tame_case() };
            for t in all_targets() {
                let outcome = t.run(&case, Backend::Vec);
                assert!(!outcome.is_fail(), "{} at n={n}: {:?}", t.name, outcome);
            }
        }
    }

    #[test]
    fn target_selection_by_prefix_and_unknown_error() {
        let sel = select_targets(Some(&["spmv".to_string()])).unwrap();
        let names: Vec<&str> = sel.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["spmv_direct", "spmv_sorted"]);
        let err = select_targets(Some(&["bogus".to_string()])).unwrap_err();
        assert!(err.contains("valid targets"), "{err}");
        assert!(err.contains("merge_sort"), "{err}");
        assert_eq!(select_targets(None).unwrap().len(), all_targets().len());
    }

    #[test]
    fn flash_config_always_satisfies_lemma_preconditions() {
        for block in [1usize, 2, 3, 4, 5, 8, 16] {
            let case = FuzzCase {
                block,
                ..tame_case()
            };
            let cfg = flash_config(&case);
            assert!(
                cfg.block as u64 > cfg.omega,
                "B={} ω={}",
                cfg.block,
                cfg.omega
            );
            assert_eq!(cfg.block as u64 % cfg.omega, 0);
        }
    }
}
