//! Fuzz targets: one differential check per algorithm family.
//!
//! Every target takes a [`FuzzCase`], runs one `aem-core`/`aem-flash`
//! algorithm on an enforcing machine, and checks three layers:
//!
//! 1. **Differential correctness** — the machine output must equal the
//!    in-memory oracle ([`aem_core::oracle`]) exactly: sorted order for
//!    sorters, the gathered permutation for permuters, semiring output
//!    equality for SpMxV (Theorem 5.1's statement of correctness).
//! 2. **Paper invariants on the metered cost** — via the `aem-obs`
//!    checkers: the Theorem 3.2 / closed-form predictor upper bound, the
//!    Theorem 4.5 counting lower bound, the §3 pointer-rewrite
//!    discipline, and Lemma 4.1's round structure; plus the round
//!    decomposition's exact cost conservation
//!    ([`aem_machine::rounds::rounds_cost`] must equal `Q`).
//! 3. **Model-level bounds** — the Lemma 4.3 flash-simulation target
//!    compiles a recorded permutation program to the unit-cost flash
//!    model and checks the I/O volume against `2N + 2QB/ω`.
//!
//! A target never panics by design; the runner additionally wraps every
//! call in `catch_unwind` so that a panicking algorithm is reported as an
//! ordinary failure with a shrunk repro, not a harness crash.

use aem_core::bounds::predict;
use aem_core::oracle;
use aem_core::permute::{permute_by_sort_on, permute_naive_on, DestTagged};
use aem_core::pq::BufferedPq;
use aem_core::sort::{distribution_sort, em_merge_sort, heap_sort, merge_sort, sort_via_pq};
use aem_core::spmv::{
    install_instance, reference_multiply, spmv_direct_on, spmv_sorted_on, MatEntry, SpmvInstance,
    U64Ring,
};
use aem_flash::driver::naive_atom_permutation;
use aem_flash::verify_lemma_4_3;
use aem_machine::rounds::{round_decompose, rounds_cost};
use aem_machine::{
    with_backend_machine, with_payload_machine, AemAccess, AemConfig, Backend, Cost, MachineError,
    Region,
};
use aem_obs::{first_failure, tail_from_record, InstrumentedMachine, RunRecord, WorkloadMeta};
use aem_workloads::{Conformation, MatrixShape, PermKind};

use crate::case::FuzzCase;

/// Outcome of one target on one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// All checks held.
    Pass,
    /// The case cannot run on this target (e.g. the config is outside the
    /// algorithm's declared parameter range). Not a failure.
    Skip(String),
    /// A check failed; the message says which and with what numbers.
    Fail(String),
}

impl Outcome {
    /// `true` for [`Outcome::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, Outcome::Fail(_))
    }
}

/// A named fuzz target.
#[derive(Clone, Copy)]
pub struct Target {
    /// Stable name, used by `--target` filters, seed files and replay
    /// commands.
    pub name: &'static str,
    /// The check itself, run against one storage backend. Targets whose
    /// algorithm reads payloads return [`Outcome::Skip`] on the ghost
    /// backend rather than comparing placeholder data to the oracle.
    pub check: fn(&FuzzCase, Backend) -> Outcome,
}

impl std::fmt::Debug for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Target").field("name", &self.name).finish()
    }
}

/// Every built-in target, in report order.
pub fn all_targets() -> Vec<Target> {
    vec![
        Target {
            name: "merge_sort",
            check: |c, b| sort_check(c, b, "aem"),
        },
        Target {
            name: "em_sort",
            check: |c, b| sort_check(c, b, "em"),
        },
        Target {
            name: "dist_sort",
            check: |c, b| sort_check(c, b, "dist"),
        },
        Target {
            name: "heap_sort",
            check: |c, b| sort_check(c, b, "heap"),
        },
        Target {
            name: "pq_sort",
            check: |c, b| sort_check(c, b, "pq"),
        },
        Target {
            name: "pq_ops",
            check: pq_ops_check,
        },
        Target {
            name: "permute_naive",
            check: permute_naive_check,
        },
        Target {
            name: "permute_by_sort",
            check: permute_by_sort_check,
        },
        Target {
            name: "spmv_direct",
            check: |c, b| spmv_check(c, b, "direct"),
        },
        Target {
            name: "spmv_sorted",
            check: |c, b| spmv_check(c, b, "sorted"),
        },
        Target {
            name: "flash_lemma43",
            check: flash_check,
        },
        Target {
            name: "backend_diff",
            check: backend_diff_check,
        },
    ]
}

/// Resolve `--target` filter patterns (exact names or prefixes, comma
/// logic handled by the caller) to targets. Unknown patterns are an
/// error listing the valid names.
pub fn select_targets(patterns: Option<&[String]>) -> Result<Vec<Target>, String> {
    let all = all_targets();
    let Some(pats) = patterns else { return Ok(all) };
    let mut out: Vec<Target> = Vec::new();
    for p in pats {
        let matched: Vec<&Target> = all
            .iter()
            .filter(|t| t.name.len() >= p.len() && t.name[..p.len()].eq_ignore_ascii_case(p))
            .collect();
        if matched.is_empty() {
            let names: Vec<&str> = all.iter().map(|t| t.name).collect();
            return Err(format!(
                "unknown fuzz target '{p}'; valid targets: {}",
                names.join(", ")
            ));
        }
        for t in matched {
            if !out.iter().any(|o| o.name == t.name) {
                out.push(*t);
            }
        }
    }
    Ok(out)
}

/// Classify a machine error: configs an algorithm explicitly rejects are
/// skips, everything else (overflow, underflow, malformed traces) is the
/// kind of bug the fuzzer exists to find.
fn machine_error(context: &str, e: MachineError) -> Outcome {
    match e {
        MachineError::InvalidConfig(_) => Outcome::Skip(format!("{context}: {e}")),
        other => Outcome::Fail(format!("{context}: machine error: {other}")),
    }
}

/// Shared invariant suite on an instrumented record: the obs checkers
/// (pointer rewrites, Lemma 4.1 round structure, cost sandwich) plus
/// exact round-cost conservation.
fn record_invariants(rec: &RunRecord) -> Result<(), String> {
    if let Some(c) = first_failure(rec) {
        return Err(format!("invariant {}: {}", c.name, c.detail));
    }
    let cfg = rec.config;
    let q = rec.trace.cost().q(cfg.omega);
    let split = rounds_cost(&round_decompose(&rec.trace, cfg));
    if split != q {
        return Err(format!(
            "Lemma 4.1 conservation: round costs sum to {split}, trace Q = {q}"
        ));
    }
    Ok(())
}

fn run_sorter<A: AemAccess<u64>>(algo: &str, m: &mut A, r: Region) -> Result<Region, MachineError> {
    match algo {
        "aem" => merge_sort(m, r),
        "em" => em_merge_sort(m, r),
        "dist" => distribution_sort(m, r),
        "heap" => heap_sort(m, r),
        "pq" => sort_via_pq(m, r),
        other => unreachable!("unknown sorter {other}"),
    }
}

fn sort_check(case: &FuzzCase, backend: Backend, algo: &str) -> Outcome {
    let cfg = match case.cfg() {
        Ok(cfg) => cfg,
        Err(e) => return Outcome::Skip(format!("config: {e}")),
    };
    if !backend.carries_payload() {
        return Outcome::Skip(format!("{algo}: sorting reads keys; ghost backend skipped"));
    }
    let input = case.keys();
    let want = oracle::sorted_reference(&input);

    with_payload_machine!(backend, u64, |M| {
        let mut im = InstrumentedMachine::new(M::new(cfg));
        let region = im.inner_mut().install(&input);
        let out = match run_sorter(algo, &mut im, region) {
            Ok(out) => out,
            Err(e) => return machine_error(algo, e),
        };
        let got = im.inner().inspect(out);
        if got != want {
            // The live flight recorder still has the tail (with phases).
            return Outcome::Fail(format!(
                "{}\n{}",
                differential_message(algo, &got, &want),
                im.flight().render()
            ));
        }
        let rec = im.into_record(WorkloadMeta::new("sort", algo, case.n as u64));
        match record_invariants(&rec) {
            Ok(()) => Outcome::Pass,
            Err(msg) => Outcome::Fail(format!(
                "{algo}: {msg}\n{}",
                tail_from_record(&rec, 16)
            )),
        }
    }, ghost => unreachable!("skipped above"))
}

/// Interleaved `push`/`pop` schedule differential: the multiway-buffered
/// queue against `std::collections::BinaryHeap` as the in-memory oracle.
///
/// The schedule is a pure function of the case seed (roughly one pop per
/// three pushes, plus a full drain), so every divergence replays exactly.
/// Beyond value equality, the target checks the budget contract: after the
/// drain every internal slot must be released (`internal_used() == 0`).
fn pq_ops_check(case: &FuzzCase, backend: Backend) -> Outcome {
    let cfg = match case.cfg() {
        Ok(cfg) => cfg,
        Err(e) => return Outcome::Skip(format!("config: {e}")),
    };
    if !backend.carries_payload() {
        return Outcome::Skip("pq_ops: the queue compares keys; ghost backend skipped".into());
    }
    let keys = case.keys();

    with_payload_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let mut pq = match BufferedPq::new(cfg) {
            Ok(pq) => pq,
            Err(e) => return machine_error("pq_ops", e),
        };
        let mut reference = std::collections::BinaryHeap::new();
        let step = |m: &mut M, pq: &mut BufferedPq<u64>, reference: &mut std::collections::BinaryHeap<std::cmp::Reverse<u64>>| -> Result<Option<String>, MachineError> {
            let got = pq.pop(m)?;
            if got.is_some() {
                m.discard(1)?;
            }
            let want = reference.pop().map(|std::cmp::Reverse(x)| x);
            if got != want {
                return Ok(Some(format!("pop returned {got:?}, oracle says {want:?}")));
            }
            Ok(None)
        };
        for (i, &x) in keys.iter().enumerate() {
            if let Err(e) = pq.push(&mut m, x) {
                return machine_error("pq_ops push", e);
            }
            reference.push(std::cmp::Reverse(x));
            // Seed-derived schedule: pop after roughly every third push.
            let roll = case
                .case_seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                >> 33;
            if roll % 3 == 0 {
                match step(&mut m, &mut pq, &mut reference) {
                    Ok(None) => {}
                    Ok(Some(msg)) => return Outcome::Fail(format!("pq_ops at step {i}: {msg}")),
                    Err(e) => return machine_error("pq_ops pop", e),
                }
            }
        }
        while !reference.is_empty() || !pq.is_empty() {
            match step(&mut m, &mut pq, &mut reference) {
                Ok(None) => {}
                Ok(Some(msg)) => return Outcome::Fail(format!("pq_ops drain: {msg}")),
                Err(e) => return machine_error("pq_ops drain", e),
            }
        }
        if m.internal_used() != 0 {
            return Outcome::Fail(format!(
                "pq_ops: queue leaked {} internal slots after drain",
                m.internal_used()
            ));
        }
        Outcome::Pass
    }, ghost => unreachable!("skipped above"))
}

/// Run the naive permuter for a case on one backend; returns
/// `(output, cost)`. Payload-oblivious, so this is the one algorithmic
/// target (besides the machine-free flash reduction) that runs on the
/// ghost backend — where the returned output holds placeholders.
fn naive_permute_on_backend(
    backend: Backend,
    cfg: AemConfig,
    values: &[u64],
    pi: &[usize],
) -> Result<(Vec<u64>, Cost), MachineError> {
    with_backend_machine!(backend, u64, |M| {
        let mut m = M::new(cfg);
        let r = m.install(values);
        let out = permute_naive_on(&mut m, r, pi)?;
        Ok((m.inspect(out), m.cost()))
    })
}

fn permute_naive_check(case: &FuzzCase, backend: Backend) -> Outcome {
    let cfg = match case.cfg() {
        Ok(cfg) => cfg,
        Err(e) => return Outcome::Skip(format!("config: {e}")),
    };
    let pi = PermKind::Random {
        seed: case.case_seed,
    }
    .generate(case.n);
    let values: Vec<u64> = (0..case.n as u64).collect();
    let want = oracle::permuted_reference(&pi, &values);
    let (got, cost) = match naive_permute_on_backend(backend, cfg, &values, &pi) {
        Ok(r) => r,
        Err(e) => return machine_error("naive", e),
    };
    // On ghost the output is placeholder data; the cost checks below
    // still apply in full (the I/O schedule is payload-independent).
    if backend.carries_payload() && got != want {
        return Outcome::Fail(differential_message("naive", &got, &want));
    }
    // Thm 4.5 upper branch: the gather must stay within its closed form.
    let q = cost.q(cfg.omega);
    let bound = predict::permute_naive_cost(cfg, case.n).q(cfg.omega);
    if q > bound {
        return Outcome::Fail(format!(
            "naive: measured Q {q} exceeds N + ωn predictor {bound}"
        ));
    }
    Outcome::Pass
}

fn permute_by_sort_check(case: &FuzzCase, backend: Backend) -> Outcome {
    let cfg = match case.cfg() {
        Ok(cfg) => cfg,
        Err(e) => return Outcome::Skip(format!("config: {e}")),
    };
    if !backend.carries_payload() {
        return Outcome::Skip("by_sort: merge reads tags; ghost backend skipped".into());
    }
    let pi = PermKind::Random {
        seed: case.case_seed,
    }
    .generate(case.n);
    let values: Vec<u64> = (0..case.n as u64).collect();
    let want = oracle::permuted_reference(&pi, &values);
    let tagged: Vec<DestTagged<u64>> = values
        .iter()
        .zip(pi.iter())
        .map(|(v, &d)| DestTagged {
            dest: d as u64,
            value: *v,
        })
        .collect();

    with_payload_machine!(backend, DestTagged<u64>, |M| {
        let mut im = InstrumentedMachine::new(M::new(cfg));
        let region = im.inner_mut().install(&tagged);
        let out = match permute_by_sort_on(&mut im, region) {
            Ok(out) => out,
            Err(e) => return machine_error("by_sort", e),
        };
        let got: Vec<u64> = im
            .inner()
            .inspect(out)
            .into_iter()
            .map(|t| t.value)
            .collect();
        if got != want {
            return Outcome::Fail(differential_message("by_sort", &got, &want));
        }
        let rec = im.into_record(WorkloadMeta::new("permute", "by_sort", case.n as u64));
        match record_invariants(&rec) {
            Ok(()) => Outcome::Pass,
            Err(msg) => Outcome::Fail(format!("by_sort: {msg}")),
        }
    }, ghost => unreachable!("skipped above"))
}

/// SpMxV matrix dimension for a case: tracks `n` (so shrinking the case
/// shrinks the instance) but capped to keep `nnz = δ·dim` small.
fn spmv_dim(case: &FuzzCase) -> usize {
    case.n.clamp(1, 256)
}

fn spmv_check(case: &FuzzCase, backend: Backend, which: &str) -> Outcome {
    let cfg = match case.cfg() {
        Ok(cfg) => cfg,
        Err(e) => return Outcome::Skip(format!("config: {e}")),
    };
    if !backend.carries_payload() {
        return Outcome::Skip(format!(
            "{which}: SpMxV moves semiring atoms; ghost backend skipped"
        ));
    }
    let dim = spmv_dim(case);
    let delta = case.delta.clamp(1, dim);
    let conf = Conformation::generate(
        MatrixShape::Random {
            seed: case.case_seed,
        },
        dim,
        delta,
    );
    let a: Vec<U64Ring> = (0..conf.nnz())
        .map(|i| U64Ring((i as u64).wrapping_mul(case.case_seed | 1) % 251))
        .collect();
    let x: Vec<U64Ring> = (0..dim)
        .map(|j| U64Ring((j as u64).wrapping_add(case.case_seed) % 241))
        .collect();
    let want = reference_multiply(&conf, &a, &x);
    let inst = SpmvInstance {
        conf: &conf,
        a_vals: &a,
        x: &x,
    };
    let run = with_payload_machine!(backend, MatEntry<U64Ring>, |M| {
        let mut m = M::new(cfg);
        let (ra, rx) = install_instance(&mut m, &inst);
        let y = match which {
            "direct" => spmv_direct_on(&mut m, &conf, ra, rx),
            "sorted" => spmv_sorted_on(&mut m, &conf, ra, rx),
            other => unreachable!("unknown spmv variant {other}"),
        };
        y.map(|y| {
            let output: Vec<U64Ring> = m.inspect(y).into_iter().map(|e| e.val).collect();
            (output, m.cost())
        })
    }, ghost => unreachable!("skipped above"));
    let (output, cost) = match run {
        Ok(run) => run,
        Err(e) => return machine_error(which, e),
    };
    // Theorem 5.1 correctness: semiring-output equality with the oracle.
    if output != want {
        return Outcome::Fail(format!(
            "{which}: semiring output mismatch at dim {dim}, δ {delta} \
             (first diff at row {})",
            output
                .iter()
                .zip(want.iter())
                .position(|(g, w)| g != w)
                .unwrap_or(usize::MAX)
        ));
    }
    let bound = match which {
        "direct" => predict::spmv_direct_cost(cfg, dim, delta),
        _ => predict::spmv_sorted_cost(cfg, dim, delta),
    }
    .q(cfg.omega);
    let q = cost.q(cfg.omega);
    if q > bound {
        return Outcome::Fail(format!(
            "{which}: measured Q {q} exceeds predictor {bound} at dim {dim}, δ {delta}"
        ));
    }
    Outcome::Pass
}

/// Derive a flash-compatible configuration from a case: Lemma 4.3 needs
/// `B > ω` and `ω | B`, so the target keeps the case's block size (raised
/// to 2 if needed), sets `ω` to its largest proper divisor, and gives the
/// gather driver the `M ≥ B` it requires.
pub fn flash_config(case: &FuzzCase) -> AemConfig {
    let block = case.block.max(2);
    let omega = (1..block as u64)
        .rev()
        .find(|d| block as u64 % d == 0)
        .unwrap_or(1);
    let mem = case.mem.max(2 * block);
    AemConfig::new(mem, block, omega).expect("derived flash config is valid")
}

/// Backend-neutral: the flash reduction records and replays programs on
/// the move-semantics atom machine, which stores no payloads at all.
fn flash_check(case: &FuzzCase, _backend: Backend) -> Outcome {
    let cfg = flash_config(case);
    // Compilation walks every recorded event with hash maps; cap the
    // instance so a full fuzz session stays inside the smoke budget.
    let n = case.n.min(512);
    let pi = PermKind::Random {
        seed: case.case_seed,
    }
    .generate(n);
    let (prog, _) = match naive_atom_permutation(cfg, &pi) {
        Ok(p) => p,
        Err(e) => return machine_error("flash driver", e),
    };
    if !prog.realizes(&pi) {
        return Outcome::Fail("flash driver: atom program does not realize π".into());
    }
    let report = match verify_lemma_4_3(&prog.program, cfg) {
        Ok(r) => r,
        Err(e) => return Outcome::Fail(format!("lemma 4.3 compile/replay: {e}")),
    };
    if !report.bound_holds() {
        return Outcome::Fail(format!(
            "lemma 4.3: flash volume {} exceeds 2N + 2QB/ω = {} (N = {n}, Q = {})",
            report.flash_volume, report.volume_bound, report.aem_q
        ));
    }
    Outcome::Pass
}

/// The tentpole invariant of the pluggable-store refactor, fuzzed: one
/// program, every backend, identical metered [`Cost`] — and identical
/// output wherever the store actually carries payloads. Two program
/// families per case: the §3 mergesort across the payload-carrying
/// backends (vec, arena, trace), and the payload-oblivious naive
/// permuter across all four (including ghost). The trace backend
/// additionally checks the compiled-schedule invariant: replaying the
/// recorded schedule as pure arithmetic must reproduce the live meter
/// exactly. This target ignores the session's `--backend`; it *is* the
/// cross-backend comparison.
fn backend_diff_check(case: &FuzzCase, _backend: Backend) -> Outcome {
    let cfg = match case.cfg() {
        Ok(cfg) => cfg,
        Err(e) => return Outcome::Skip(format!("config: {e}")),
    };

    // Mergesort: vec vs arena vs trace, cost and output.
    let input = case.keys();
    let mut sort_runs: Vec<(Backend, Vec<u64>, Cost)> = Vec::new();
    for b in [Backend::Vec, Backend::Arena, Backend::Trace] {
        let run = with_payload_machine!(b, u64, |M| {
            let mut m = M::new(cfg);
            let r = m.install(&input);
            merge_sort(&mut m, r).map(|out| (m.inspect(out), m.cost()))
        }, ghost => unreachable!("loop covers payload backends only"));
        match run {
            Ok((out, cost)) => sort_runs.push((b, out, cost)),
            Err(e) => return machine_error("backend_diff/merge_sort", e),
        }
    }
    let (_, vec_out, vec_cost) = &sort_runs[0];
    let vec_sort_cost = *vec_cost;
    for (b, out, cost) in &sort_runs[1..] {
        if cost != vec_cost {
            return Outcome::Fail(format!(
                "backend_diff: merge_sort cost diverges — vec {vec_cost:?} vs {} {cost:?}",
                b.name()
            ));
        }
        if out != vec_out {
            return Outcome::Fail(format!(
                "backend_diff: merge_sort output diverges between vec and {}",
                b.name()
            ));
        }
    }

    // Naive permute: all three backends must meter the identical cost;
    // the payload-carrying pair must agree on output too.
    let pi = PermKind::Random {
        seed: case.case_seed,
    }
    .generate(case.n);
    let values: Vec<u64> = (0..case.n as u64).collect();
    let mut perm_runs: Vec<(Backend, Vec<u64>, Cost)> = Vec::new();
    for b in Backend::ALL {
        match naive_permute_on_backend(b, cfg, &values, &pi) {
            Ok((out, cost)) => perm_runs.push((b, out, cost)),
            Err(e) => return machine_error("backend_diff/permute_naive", e),
        }
    }
    let (_, vec_out, vec_cost) = &perm_runs[0];
    for (b, out, cost) in &perm_runs[1..] {
        if cost != vec_cost {
            return Outcome::Fail(format!(
                "backend_diff: permute_naive cost diverges — vec {vec_cost:?} vs {} {cost:?}",
                b.name()
            ));
        }
        if b.carries_payload() && out != vec_out {
            return Outcome::Fail(format!(
                "backend_diff: permute_naive output diverges between vec and {}",
                b.name()
            ));
        }
    }

    // Compiled-trace replay: record the mergesort schedule once, then
    // re-evaluate its cost as pure arithmetic. The replayed tuple must be
    // byte-equal to the live vec meter (which sort_runs[0] holds).
    let mut tm: aem_machine::TraceMachine<u64> = aem_machine::TraceMachine::new(cfg);
    let r = tm.install(&input);
    if let Err(e) = merge_sort(&mut tm, r) {
        return machine_error("backend_diff/trace_record", e);
    }
    let live = tm.cost();
    let schedule = tm.into_schedule();
    let replayed = schedule.replay();
    if replayed != live || replayed != vec_sort_cost {
        return Outcome::Fail(format!(
            "backend_diff: replayed schedule cost {replayed:?} diverges from live {live:?} / vec {vec_sort_cost:?}"
        ));
    }
    Outcome::Pass
}

fn differential_message<T: std::fmt::Debug>(algo: &str, got: &[T], want: &[T]) -> String {
    if got.len() != want.len() {
        return format!(
            "{algo}: output length {} differs from oracle length {}",
            got.len(),
            want.len()
        );
    }
    let at = got
        .iter()
        .zip(want.iter())
        .position(|(g, w)| format!("{g:?}") != format!("{w:?}"))
        .unwrap_or(usize::MAX);
    format!(
        "{algo}: output diverges from oracle at position {at} \
         (got {:?}, oracle {:?})",
        got.get(at),
        want.get(at)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::DistKind;

    fn tame_case() -> FuzzCase {
        FuzzCase {
            mem: 64,
            block: 8,
            omega: 16,
            n: 300,
            case_seed: 5,
            dist: DistKind::Uniform,
            delta: 3,
        }
    }

    #[test]
    fn all_targets_pass_on_a_tame_case() {
        let case = tame_case();
        for t in all_targets() {
            let outcome = (t.check)(&case, Backend::Vec);
            assert_eq!(outcome, Outcome::Pass, "{}: {:?}", t.name, outcome);
        }
    }

    #[test]
    fn all_targets_pass_on_the_arena_backend() {
        let case = tame_case();
        for t in all_targets() {
            let outcome = (t.check)(&case, Backend::Arena);
            assert_eq!(outcome, Outcome::Pass, "{}: {:?}", t.name, outcome);
        }
    }

    #[test]
    fn ghost_backend_skips_payload_targets_and_passes_the_rest() {
        let case = tame_case();
        for t in all_targets() {
            let outcome = (t.check)(&case, Backend::Ghost);
            match t.name {
                // Payload-oblivious or machine-free targets must still run.
                "permute_naive" | "flash_lemma43" | "backend_diff" => {
                    assert_eq!(outcome, Outcome::Pass, "{}: {:?}", t.name, outcome)
                }
                _ => assert!(
                    matches!(outcome, Outcome::Skip(_)),
                    "{} must skip on ghost: {:?}",
                    t.name,
                    outcome
                ),
            }
        }
    }

    #[test]
    fn all_targets_pass_on_empty_and_singleton_inputs() {
        for n in [0usize, 1] {
            let case = FuzzCase { n, ..tame_case() };
            for t in all_targets() {
                let outcome = (t.check)(&case, Backend::Vec);
                assert!(!outcome.is_fail(), "{} at n={n}: {:?}", t.name, outcome);
            }
        }
    }

    #[test]
    fn target_selection_by_prefix_and_unknown_error() {
        let sel = select_targets(Some(&["spmv".to_string()])).unwrap();
        let names: Vec<&str> = sel.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["spmv_direct", "spmv_sorted"]);
        let err = select_targets(Some(&["bogus".to_string()])).unwrap_err();
        assert!(err.contains("valid targets"), "{err}");
        assert!(err.contains("merge_sort"), "{err}");
        assert_eq!(select_targets(None).unwrap().len(), all_targets().len());
    }

    #[test]
    fn flash_config_always_satisfies_lemma_preconditions() {
        for block in [1usize, 2, 3, 4, 5, 8, 16] {
            let case = FuzzCase {
                block,
                ..tame_case()
            };
            let cfg = flash_config(&case);
            assert!(
                cfg.block as u64 > cfg.omega,
                "B={} ω={}",
                cfg.block,
                cfg.omega
            );
            assert_eq!(cfg.block as u64 % cfg.omega, 0);
        }
    }
}
