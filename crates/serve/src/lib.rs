//! # `aem-serve` — a cost-metered multi-tenant job service
//!
//! The repo's algorithms, predictors and backends, assembled into one
//! long-lived system (ROADMAP item 1): a TCP server speaking
//! length-prefixed JSON frames that accepts batched `sort | permute |
//! spmv | pq` jobs with per-job `(M, B, ω, n)` machine shapes from many
//! concurrent tenants.
//!
//! The pipeline per request:
//!
//! 1. **Pricing** ([`planner`]) — the paper's closed-form predictors
//!    price the job *before* execution; the planner picks the cheapest
//!    eligible algorithm and a cost-model-sound backend (ghost for
//!    payload-oblivious cost queries, compiled-trace replay for repeated
//!    cells, vec/arena for payload-carrying jobs).
//! 2. **Admission** ([`admission`]) — the predicted `Q` is debited
//!    against the tenant's budget; over-budget jobs are rejected or
//!    parked until a top-up. Decisions are deterministic integers, so the
//!    sorted admission log is byte-identical across same-seed runs.
//! 3. **Execution** ([`exec`], [`server`]) — a worker pool (the sweep
//!    engine's pattern: shared queue, `catch_unwind`, in-order
//!    reassembly) runs the simulation and meters the actual cost.
//! 4. **Metering** ([`metering`]) — per-tenant JSONL records and a
//!    Prometheus text exposition via `aem-obs`.
//!
//! The seeded load generator ([`load`]) simulates whole tenant
//! populations reproducibly from one seed; CI uses it to assert the
//! determinism contract end to end.

#![warn(missing_docs)]

pub mod admission;
pub mod exec;
pub mod load;
pub mod metering;
pub mod planner;
pub mod protocol;
pub mod server;
pub mod signal;

pub use admission::{Admission, Decision, TenantSnapshot};
pub use exec::{ExecResult, TraceCache};
pub use load::{run_load, LoadOptions};
pub use metering::{Metering, TenantMeter};
pub use planner::{plan, price, Plan};
pub use protocol::{
    decode_frame, encode_frame, JobKind, JobOutcome, JobSpec, Request, Response, MAX_FRAME,
};
pub use server::{serve, ServeOptions};
pub use signal::{install_shutdown_signals, SHUTDOWN};
