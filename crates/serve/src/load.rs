//! Seeded synthetic load: thousands of simulated tenants from one seed.
//!
//! Every tenant gets an independent SplitMix64 stream derived from
//! `(seed, tenant index)`, so its request sequence — budgets, top-ups,
//! job shapes, quotes — is a pure function of the seed. Tenants run
//! concurrently on real sockets, but each tenant's transcript depends
//! only on its own stream (admission and costs are deterministic
//! per-tenant; racy details like replay-vs-live are excluded from
//! responses' deterministic fields), so the rendered report is
//! byte-identical across same-seed runs. CI runs the generator twice and
//! `cmp`s both this report and the server's admission log.

use crate::protocol::{exchange, JobKind, JobSpec, Request, Response};
use aem_workloads::SplitMix64;
use std::net::TcpStream;
use std::time::Duration;

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Number of simulated tenants (each on its own connection).
    pub tenants: usize,
    /// Requests issued per tenant.
    pub jobs: usize,
    /// Master seed; equal seeds give byte-identical reports.
    pub seed: u64,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            addr: "127.0.0.1:7979".into(),
            tenants: 8,
            jobs: 12,
            seed: 1,
        }
    }
}

/// Machine shapes the generator draws from. A small set on purpose: the
/// collisions are what exercise the compiled-trace replay cache.
const CONFIGS: [(usize, usize, u64); 3] = [(1024, 64, 16), (64, 8, 16), (512, 32, 4)];
const SIZES: [usize; 5] = [256, 512, 1024, 2048, 4096];

fn connect(addr: &str) -> Result<TcpStream, String> {
    let mut last = String::new();
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(60)))
                    .map_err(|e| format!("set_read_timeout: {e}"))?;
                return Ok(s);
            }
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    Err(format!("cannot connect to {addr}: {last}"))
}

fn draw_spec(rng: &mut SplitMix64, id: u64, draws: usize) -> JobSpec {
    // A tenant's first |ALL| specs cycle through the registry in order,
    // so any run with enough jobs exercises every registered kind; later
    // draws are uniform. Registering a new workload kind therefore
    // extends load coverage with no change here.
    let roll = rng.next_below_usize(JobKind::ALL.len());
    let kind = JobKind::ALL[if draws < JobKind::ALL.len() {
        draws
    } else {
        roll
    }];
    let (mem, block, omega) = CONFIGS[rng.next_below_usize(CONFIGS.len())];
    JobSpec {
        id,
        kind,
        n: SIZES[rng.next_below_usize(SIZES.len())],
        mem,
        block,
        omega,
        delta: 2 + rng.next_below_usize(3),
        // Few distinct seeds so identical cells recur across tenants.
        seed: 1 + rng.next_below(4),
        payload: rng.next_bool(),
        backend: None,
    }
}

/// The deterministic digest-relevant rendering of one response.
fn render(resp: &Response) -> String {
    match resp {
        Response::HelloOk { budget, drained } => {
            let mut s = format!("hello_ok budget={budget}");
            for d in drained {
                s.push_str(&format!("\n  drained {}", render(d)));
            }
            s
        }
        Response::Done(o) => format!(
            "done id={} algo={} backend={} predicted={}r+{}w measured={}r+{}w q={} checksum={:016x}",
            o.id,
            o.algo,
            o.backend,
            o.predicted.reads,
            o.predicted.writes,
            o.measured.reads,
            o.measured.writes,
            o.q,
            o.checksum
        ),
        Response::Quoted {
            id,
            algo,
            predicted,
            q,
        } => format!(
            "quoted id={id} algo={algo} predicted={}r+{}w q={q}",
            predicted.reads, predicted.writes
        ),
        Response::Rejected {
            id,
            reason,
            q,
            remaining,
        } => format!("rejected id={id} reason={reason} q={q} remaining={remaining}"),
        Response::Queued { id, q } => format!("queued id={id} q={q}"),
        Response::Batch(rs) => {
            let mut s = "batch".to_string();
            for r in rs {
                s.push_str(&format!("\n  {}", render(r)));
            }
            s
        }
        Response::Stats {
            tenant,
            budget,
            spent,
            accepted,
            rejected,
            queued,
            quotes,
            reads,
            writes,
        } => format!(
            "stats tenant={tenant} budget={budget} spent={spent} accepted={accepted} \
             rejected={rejected} queued={queued} quotes={quotes} reads={reads} writes={writes}"
        ),
        Response::Metrics { .. } => "metrics".into(),
        Response::Bye => "bye".into(),
        Response::Error { message } => format!("error message={message}"),
    }
}

fn tenant_session(opts: &LoadOptions, tix: usize) -> Result<String, String> {
    let name = format!("t-{tix:03}");
    let mut rng = SplitMix64::seed_from_u64(
        opts.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tix as u64 + 1),
    );
    let mut stream = connect(&opts.addr)?;
    let mut out = format!("=== {name}\n");
    let say = |out: &mut String, stream: &mut TcpStream, req: &Request| {
        let resp = exchange(stream, req)?;
        out.push_str(&render(&resp));
        out.push('\n');
        Ok::<Response, String>(resp)
    };
    let budget = 5_000 + rng.next_below(45_000);
    say(
        &mut out,
        &mut stream,
        &Request::Hello {
            tenant: name.clone(),
            budget,
        },
    )?;
    let mut next_id = 1u64;
    let mut draws = 0usize;
    for _ in 0..opts.jobs {
        let roll = rng.next_f64();
        if roll < 0.10 {
            // Top-up: may drain parked jobs.
            let add = 2_000 + rng.next_below(20_000);
            say(
                &mut out,
                &mut stream,
                &Request::Hello {
                    tenant: name.clone(),
                    budget: add,
                },
            )?;
        } else if roll < 0.25 {
            let spec = draw_spec(&mut rng, next_id, draws);
            next_id += 1;
            draws += 1;
            say(&mut out, &mut stream, &Request::Quote(spec))?;
        } else if roll < 0.40 {
            let k = 2 + rng.next_below_usize(3);
            let batch: Vec<JobSpec> = (0..k)
                .map(|_| {
                    let s = draw_spec(&mut rng, next_id, draws);
                    next_id += 1;
                    draws += 1;
                    s
                })
                .collect();
            say(&mut out, &mut stream, &Request::Batch(batch))?;
        } else {
            let spec = draw_spec(&mut rng, next_id, draws);
            next_id += 1;
            draws += 1;
            say(&mut out, &mut stream, &Request::Job(spec))?;
        }
    }
    say(&mut out, &mut stream, &Request::Stats)?;
    Ok(out)
}

/// Drive the server with `opts.tenants` concurrent seeded tenants and
/// return the canonical report (tenant blocks in tenant order).
pub fn run_load(opts: &LoadOptions) -> Result<String, String> {
    let mut results: Vec<Option<Result<String, String>>> = Vec::new();
    results.resize_with(opts.tenants, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.tenants)
            .map(|tix| s.spawn(move || tenant_session(opts, tix)))
            .collect();
        for (tix, h) in handles.into_iter().enumerate() {
            results[tix] = Some(
                h.join()
                    .unwrap_or_else(|_| Err("tenant thread panicked".into())),
            );
        }
    });
    let mut out = String::new();
    for r in results {
        out.push_str(&r.expect("all slots filled")?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_draws_cover_every_registered_kind() {
        // Per-tenant coverage is deterministic: the first |ALL| specs a
        // tenant draws hit every kind exactly once, in registry order.
        let mut rng = SplitMix64::seed_from_u64(9);
        let kinds: Vec<JobKind> = (0..JobKind::ALL.len())
            .map(|d| draw_spec(&mut rng, d as u64, d).kind)
            .collect();
        assert_eq!(kinds, JobKind::ALL.to_vec());
        // Deltas drawn for kinds that require one are always valid.
        for d in 0..32 {
            let s = draw_spec(&mut rng, d, usize::MAX);
            assert!(s.delta >= 1 && s.n >= 1);
        }
    }
}
