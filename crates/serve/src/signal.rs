//! SIGTERM → `AtomicBool`, with no libc dependency.
//!
//! The workspace is std-only, so instead of the `libc`/`signal-hook`
//! crates we declare the one C symbol we need. The handler only performs
//! an atomic store — the async-signal-safe subset — and the server's
//! accept loop polls the flag, so delivery timing never races request
//! handling. On non-Unix targets installation is a no-op (tests drive
//! shutdown through the protocol's `shutdown` frame instead).

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide shutdown flag SIGTERM flips.
pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{AtomicBool, Ordering, SHUTDOWN};

    const SIGTERM: i32 = 15;
    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Route SIGTERM and SIGINT to [`SHUTDOWN`]; returns the flag.
    pub fn install() -> &'static AtomicBool {
        #[allow(unsafe_code)]
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
        &SHUTDOWN
    }
}

#[cfg(not(unix))]
mod imp {
    use super::{AtomicBool, SHUTDOWN};

    /// No signals to install on this target; returns the flag unchanged.
    pub fn install() -> &'static AtomicBool {
        &SHUTDOWN
    }
}

pub use imp::install as install_shutdown_signals;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_returns_the_shared_flag() {
        let flag = install_shutdown_signals();
        assert!(std::ptr::eq(flag, &SHUTDOWN));
        assert!(!flag.load(Ordering::SeqCst) || flag.load(Ordering::SeqCst));
    }
}
