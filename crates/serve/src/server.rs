//! The long-lived job server.
//!
//! One accept loop (non-blocking, polling the shutdown flag), one thread
//! per connection, and one shared execution pool threaded on the sweep
//! engine's worker pattern: a shared queue, `catch_unwind` around every
//! job so a panicking simulation downs one request instead of a worker,
//! and per-submission reply channels so each connection reassembles its
//! batch results in declaration order.
//!
//! Shutdown is cooperative: SIGTERM (or a `shutdown` frame) flips one
//! `AtomicBool`; the accept loop stops taking connections, every
//! connection thread finishes its in-flight request and drains, the pool
//! joins, and the canonical admission log / metering reports are written
//! before `serve` returns.

use crate::admission::{Admission, Decision};
use crate::exec::{execute, ExecResult, TraceCache};
use crate::metering::Metering;
use crate::planner::{self, Plan};
use crate::protocol::{
    write_frame, FrameReader, JobOutcome, JobSpec, ReadOutcome, Request, Response,
};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// How the server is run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (written to `addr_file`).
    pub addr: String,
    /// Execution-pool size.
    pub workers: usize,
    /// Park over-budget jobs instead of rejecting them.
    pub queue_over_budget: bool,
    /// Where to write the canonical admission log at shutdown.
    pub admission_log: Option<String>,
    /// Where to write the per-tenant JSONL metering report at shutdown.
    pub metering_out: Option<String>,
    /// Where to write the Prometheus exposition at shutdown.
    pub prom_out: Option<String>,
    /// Where to write the bound address (`host:port\n`) once listening.
    pub addr_file: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_over_budget: true,
            admission_log: None,
            metering_out: None,
            prom_out: None,
            addr_file: None,
        }
    }
}

struct Task {
    spec: JobSpec,
    plan: Plan,
    reply: mpsc::Sender<Result<ExecResult, String>>,
}

struct State {
    admission: Admission,
    metering: Metering,
    cache: TraceCache,
}

/// Run the server until `shutdown` turns true, then drain and write the
/// reports. Returns a human-readable summary.
pub fn serve(opts: &ServeOptions, shutdown: &AtomicBool) -> Result<String, String> {
    let listener = TcpListener::bind(&opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    if let Some(path) = &opts.addr_file {
        let mut f = std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(f, "{addr}").map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    let state = State {
        admission: Admission::new(opts.queue_over_budget),
        metering: Metering::new(),
        cache: TraceCache::new(),
    };
    let (tx, rx) = mpsc::channel::<Task>();
    let rx = Mutex::new(rx);

    std::thread::scope(|s| {
        for _ in 0..opts.workers.max(1) {
            s.spawn(|| worker_loop(&rx, &state.cache));
        }
        let mut conns = Vec::new();
        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let tx = tx.clone();
                    let state = &state;
                    conns.push(s.spawn(move || handle_conn(stream, state, tx, shutdown)));
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    eprintln!("accept: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        drop(listener);
        for c in conns {
            let _ = c.join();
        }
        drop(tx); // workers observe the closed queue and exit
    });

    if let Some(path) = &opts.admission_log {
        std::fs::write(path, state.admission.log_jsonl())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &opts.metering_out {
        std::fs::write(path, state.metering.jsonl_report())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &opts.prom_out {
        std::fs::write(path, state.metering.prometheus_text())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(format!(
        "aem-serve: drained cleanly; {} admission decisions, {} compiled traces cached\n",
        state.admission.decisions(),
        state.cache.len(),
    ))
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Task>>, cache: &TraceCache) {
    loop {
        // Holding the lock while blocked on recv is fine: execution
        // happens after the guard drops, so only *pickup* serializes —
        // the same discipline as the sweep engine's shared task index.
        let task = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(task) = task else { return };
        let result = catch_unwind(AssertUnwindSafe(|| execute(&task.spec, &task.plan, cache)))
            .unwrap_or_else(|_| Err("job panicked during execution".into()));
        let _ = task.reply.send(result);
    }
}

/// Submit one admitted job to the pool and wait for its outcome.
fn run_job(tx: &mpsc::Sender<Task>, spec: &JobSpec, plan: Plan) -> Result<ExecResult, String> {
    let (reply_tx, reply_rx) = mpsc::channel();
    tx.send(Task {
        spec: spec.clone(),
        plan,
        reply: reply_tx,
    })
    .map_err(|_| "execution pool is gone".to_string())?;
    reply_rx
        .recv()
        .map_err(|_| "execution worker died".to_string())?
}

fn outcome_response(spec: &JobSpec, plan: &Plan, r: ExecResult) -> Response {
    Response::Done(JobOutcome {
        id: spec.id,
        algo: plan.algo.to_string(),
        backend: plan.backend.name().to_string(),
        predicted: plan.predicted,
        measured: r.measured,
        q: r.measured.q_saturating(spec.omega),
        checksum: r.checksum,
    })
}

/// Admit one job and, if accepted, execute it on the pool.
fn handle_job(state: &State, tx: &mpsc::Sender<Task>, tenant: &str, spec: &JobSpec) -> Response {
    let plan = match planner::plan(spec).and_then(|p| planner::executable(spec).map(|_| p)) {
        Ok(p) => p,
        Err(e) => {
            let remaining = state.admission.reject_invalid(tenant, spec, &e);
            return Response::Rejected {
                id: spec.id,
                reason: format!("bad_request: {e}"),
                q: 0,
                remaining,
            };
        }
    };
    let (decision, remaining) = state.admission.admit(tenant, spec, plan.q);
    match decision {
        Decision::Accept => match run_job(tx, spec, plan.clone()) {
            Ok(r) => {
                state.metering.record_done(
                    tenant,
                    r.measured,
                    r.measured.q_saturating(spec.omega),
                    r.via_replay,
                );
                outcome_response(spec, &plan, r)
            }
            Err(e) => Response::Error {
                message: format!("job {} failed after admission: {e}", spec.id),
            },
        },
        Decision::Queue => Response::Queued {
            id: spec.id,
            q: plan.q,
        },
        Decision::Reject | Decision::Drain => Response::Rejected {
            id: spec.id,
            reason: "over_budget".into(),
            q: plan.q,
            remaining,
        },
    }
}

/// Admit a batch sequentially (so the admission log order is the request
/// order), then execute the accepted jobs concurrently on the pool and
/// reassemble replies in declaration order.
fn handle_batch(
    state: &State,
    tx: &mpsc::Sender<Task>,
    tenant: &str,
    jobs: &[JobSpec],
) -> Response {
    enum Slot {
        Ready(Response),
        Running(JobSpec, Plan, mpsc::Receiver<Result<ExecResult, String>>),
    }
    let mut slots = Vec::with_capacity(jobs.len());
    for spec in jobs {
        let plan = match planner::plan(spec).and_then(|p| planner::executable(spec).map(|_| p)) {
            Ok(p) => p,
            Err(e) => {
                let remaining = state.admission.reject_invalid(tenant, spec, &e);
                slots.push(Slot::Ready(Response::Rejected {
                    id: spec.id,
                    reason: format!("bad_request: {e}"),
                    q: 0,
                    remaining,
                }));
                continue;
            }
        };
        let (decision, remaining) = state.admission.admit(tenant, spec, plan.q);
        match decision {
            Decision::Accept => {
                let (reply_tx, reply_rx) = mpsc::channel();
                if tx
                    .send(Task {
                        spec: spec.clone(),
                        plan: plan.clone(),
                        reply: reply_tx,
                    })
                    .is_err()
                {
                    slots.push(Slot::Ready(Response::Error {
                        message: "execution pool is gone".into(),
                    }));
                    continue;
                }
                slots.push(Slot::Running(spec.clone(), plan, reply_rx));
            }
            Decision::Queue => slots.push(Slot::Ready(Response::Queued {
                id: spec.id,
                q: plan.q,
            })),
            Decision::Reject | Decision::Drain => slots.push(Slot::Ready(Response::Rejected {
                id: spec.id,
                reason: "over_budget".into(),
                q: plan.q,
                remaining,
            })),
        }
    }
    let results = slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Ready(r) => r,
            Slot::Running(spec, plan, rx) => match rx.recv() {
                Ok(Ok(r)) => {
                    state.metering.record_done(
                        tenant,
                        r.measured,
                        r.measured.q_saturating(spec.omega),
                        r.via_replay,
                    );
                    outcome_response(&spec, &plan, r)
                }
                Ok(Err(e)) => Response::Error {
                    message: format!("job {} failed after admission: {e}", spec.id),
                },
                Err(_) => Response::Error {
                    message: format!("job {}: execution worker died", spec.id),
                },
            },
        })
        .collect();
    Response::Batch(results)
}

fn handle_request(
    state: &State,
    tx: &mpsc::Sender<Task>,
    tenant: &mut Option<String>,
    req: Request,
    shutdown: &AtomicBool,
) -> Response {
    if let Request::Hello {
        tenant: name,
        budget,
    } = &req
    {
        let (total, drained) = state.admission.hello(name, *budget);
        *tenant = Some(name.clone());
        let drained_responses = drained
            .into_iter()
            .map(|job| match planner::plan(&job.spec) {
                Ok(plan) => match run_job(tx, &job.spec, plan.clone()) {
                    Ok(r) => {
                        state.metering.record_done(
                            name,
                            r.measured,
                            r.measured.q_saturating(job.spec.omega),
                            r.via_replay,
                        );
                        outcome_response(&job.spec, &plan, r)
                    }
                    Err(e) => Response::Error {
                        message: format!("drained job {} failed: {e}", job.spec.id),
                    },
                },
                Err(e) => Response::Error {
                    message: format!("drained job {} failed to re-plan: {e}", job.spec.id),
                },
            })
            .collect();
        return Response::HelloOk {
            budget: total,
            drained: drained_responses,
        };
    }
    let Some(tenant) = tenant.as_deref() else {
        return match req {
            Request::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                Response::Bye
            }
            _ => Response::Error {
                message: "say hello first: {\"type\":\"hello\",\"tenant\":...,\"budget\":...}"
                    .into(),
            },
        };
    };
    match req {
        Request::Hello { .. } => unreachable!("handled above"),
        Request::Job(spec) => handle_job(state, tx, tenant, &spec),
        Request::Batch(jobs) => handle_batch(state, tx, tenant, &jobs),
        Request::Quote(spec) => match planner::plan(&spec) {
            Ok(plan) => {
                state.metering.record_quote(tenant);
                Response::Quoted {
                    id: spec.id,
                    algo: plan.algo.to_string(),
                    predicted: plan.predicted,
                    q: plan.q,
                }
            }
            Err(e) => Response::Rejected {
                id: spec.id,
                reason: format!("bad_request: {e}"),
                q: 0,
                remaining: state.admission.snapshot(tenant).budget,
            },
        },
        Request::Stats => {
            let adm = state.admission.snapshot(tenant);
            let met = state.metering.snapshot(tenant);
            Response::Stats {
                tenant: tenant.to_string(),
                budget: adm.budget,
                spent: adm.spent,
                accepted: adm.accepted,
                rejected: adm.rejected,
                queued: adm.queued,
                quotes: met.quotes,
                reads: met.reads,
                writes: met.writes,
            }
        }
        Request::Metrics => Response::Metrics {
            text: state.metering.prometheus_text(),
        },
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            Response::Bye
        }
    }
}

fn handle_conn(stream: TcpStream, state: &State, tx: mpsc::Sender<Task>, shutdown: &AtomicBool) {
    let mut stream = stream;
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let mut reader = FrameReader::new();
    let mut tenant: Option<String> = None;
    loop {
        match reader.poll(&mut stream) {
            Ok(ReadOutcome::Frame(json)) => {
                let response = match Request::from_json(&json) {
                    Ok(req) => handle_request(state, &tx, &mut tenant, req, shutdown),
                    Err(e) => Response::Error {
                        message: format!("bad request: {e}"),
                    },
                };
                let closing = matches!(response, Response::Bye);
                if write_frame(&mut stream, &response.to_json()).is_err() {
                    return;
                }
                if closing {
                    return;
                }
            }
            Ok(ReadOutcome::Idle) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Err(e) => {
                let _ = write_frame(
                    &mut stream,
                    &Response::Error {
                        message: format!("protocol error: {e}"),
                    }
                    .to_json(),
                );
                return;
            }
        }
    }
}
