//! Per-tenant metering: measured I/O, spend and job counters, exported as
//! JSONL (one record per tenant, sorted) and as a Prometheus text
//! exposition through [`aem_obs::promtext`].

use aem_machine::Cost;
use aem_obs::json::{obj, Json};
use aem_obs::promtext::PromText;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One tenant's meters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantMeter {
    /// Jobs executed to completion.
    pub jobs_done: u64,
    /// Jobs whose cost came from compiled-trace replay.
    pub replays: u64,
    /// Quotes served.
    pub quotes: u64,
    /// Measured read I/Os summed over completed jobs.
    pub reads: u64,
    /// Measured write I/Os summed over completed jobs.
    pub writes: u64,
    /// Measured `Q` summed under each job's own ω.
    pub q: u64,
}

/// The metering registry. Tenant order is canonical (`BTreeMap`), so the
/// report is deterministic given deterministic per-tenant contents.
#[derive(Debug, Default)]
pub struct Metering {
    tenants: Mutex<BTreeMap<String, TenantMeter>>,
}

impl Metering {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed job.
    pub fn record_done(&self, tenant: &str, measured: Cost, q: u64, via_replay: bool) {
        let mut m = self.tenants.lock().expect("metering poisoned");
        let t = m.entry(tenant.to_string()).or_default();
        t.jobs_done += 1;
        t.replays += via_replay as u64;
        t.reads += measured.reads;
        t.writes += measured.writes;
        t.q = t.q.saturating_add(q);
    }

    /// Record one served quote.
    pub fn record_quote(&self, tenant: &str) {
        let mut m = self.tenants.lock().expect("metering poisoned");
        m.entry(tenant.to_string()).or_default().quotes += 1;
    }

    /// This tenant's meters (zeroes if never seen).
    pub fn snapshot(&self, tenant: &str) -> TenantMeter {
        self.tenants
            .lock()
            .expect("metering poisoned")
            .get(tenant)
            .copied()
            .unwrap_or_default()
    }

    /// JSONL metering report: one record per tenant, tenant-sorted.
    pub fn jsonl_report(&self) -> String {
        let tenants = self.tenants.lock().expect("metering poisoned");
        let mut out = String::new();
        for (name, t) in tenants.iter() {
            let rec = obj(vec![
                ("tenant", Json::Str(name.clone())),
                ("jobs_done", Json::UInt(t.jobs_done)),
                ("replays", Json::UInt(t.replays)),
                ("quotes", Json::UInt(t.quotes)),
                ("reads", Json::UInt(t.reads)),
                ("writes", Json::UInt(t.writes)),
                ("q", Json::UInt(t.q)),
            ]);
            out.push_str(&rec.to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Prometheus text exposition with a `tenant` label on every sample.
    pub fn prometheus_text(&self) -> String {
        let tenants = self.tenants.lock().expect("metering poisoned");
        let mut w = PromText::new(&[]);
        w.head("aem_serve_jobs_done_total", "counter", "Jobs executed");
        for (name, t) in tenants.iter() {
            w.gauge_u64(
                "aem_serve_jobs_done_total",
                &[("tenant", name.clone())],
                t.jobs_done,
            );
        }
        w.head(
            "aem_serve_replays_total",
            "counter",
            "Jobs priced by compiled-trace replay",
        );
        for (name, t) in tenants.iter() {
            w.gauge_u64(
                "aem_serve_replays_total",
                &[("tenant", name.clone())],
                t.replays,
            );
        }
        w.head("aem_serve_quotes_total", "counter", "Quotes served");
        for (name, t) in tenants.iter() {
            w.gauge_u64(
                "aem_serve_quotes_total",
                &[("tenant", name.clone())],
                t.quotes,
            );
        }
        w.head(
            "aem_serve_io_total",
            "counter",
            "Measured block I/Os by direction",
        );
        for (name, t) in tenants.iter() {
            w.gauge_u64(
                "aem_serve_io_total",
                &[("tenant", name.clone()), ("op", "read".to_string())],
                t.reads,
            );
            w.gauge_u64(
                "aem_serve_io_total",
                &[("tenant", name.clone()), ("op", "write".to_string())],
                t.writes,
            );
        }
        w.head(
            "aem_serve_q_total",
            "counter",
            "Measured cost Q = Q_r + omega*Q_w, summed per tenant",
        );
        for (name, t) in tenants.iter() {
            w.gauge_u64("aem_serve_q_total", &[("tenant", name.clone())], t.q);
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_are_tenant_sorted_and_labelled() {
        let m = Metering::new();
        m.record_done("zeta", Cost::new(10, 2), 42, false);
        m.record_done("alpha", Cost::new(5, 1), 21, true);
        m.record_quote("alpha");
        let jsonl = m.jsonl_report();
        let first = jsonl.lines().next().unwrap();
        assert!(first.contains("\"alpha\""), "alpha sorts first: {first}");
        assert_eq!(jsonl.lines().count(), 2);
        let prom = m.prometheus_text();
        assert!(prom.contains("aem_serve_q_total{tenant=\"alpha\"} 21"));
        assert!(prom.contains("aem_serve_io_total{tenant=\"zeta\",op=\"write\"} 2"));
        assert!(prom.contains("aem_serve_replays_total{tenant=\"alpha\"} 1"));
        let snap = m.snapshot("alpha");
        assert_eq!((snap.jobs_done, snap.quotes, snap.q), (1, 1, 21));
        assert_eq!(m.snapshot("nobody"), TenantMeter::default());
    }
}
