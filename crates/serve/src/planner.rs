//! Pricing and plan selection.
//!
//! Every job is priced *before* execution by the paper's closed-form
//! predictors: the planner asks the workload registry
//! ([`aem_core::workload`]) for its kind's candidate menu, picks the
//! algorithm with the least predicted `Q = Q_r + ω·Q_w`, and then chooses
//! a backend under the soundness rules established in
//! `docs/COST_MODEL.md`:
//!
//! * **ghost** only for payload-oblivious plans (the naive permuter's
//!   schedule never depends on payloads; the sorters' do);
//! * **trace** for other cost-only jobs, so a repeated `(kind, algo,
//!   config, n, seed)` cell can be re-priced by compiled-trace replay
//!   instead of a fresh simulation — replay cost equals live cost by
//!   contract, which keeps metering deterministic under cache races;
//! * **vec**/**arena** for payload-carrying jobs (arena once the slab
//!   recycling pays for itself).

use crate::protocol::{JobKind, JobSpec};
use aem_machine::{AemConfig, Backend, Cost};

/// Payload-carrying jobs at or above this size run on the arena backend.
pub const ARENA_THRESHOLD: usize = 4096;

/// Where the service refuses to simulate: an element count above this is
/// priceable (quotes are pure arithmetic) but not executable.
pub const MAX_EXEC_ELEMS: usize = 1 << 22;

/// A priced execution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Validated machine shape.
    pub cfg: AemConfig,
    /// The chosen algorithm (a key understood by [`crate::exec`]).
    pub algo: &'static str,
    /// The chosen backend.
    pub backend: Backend,
    /// Predicted component costs for the chosen algorithm.
    pub predicted: Cost,
    /// `predicted` collapsed under the job's ω (saturating).
    pub q: u64,
}

/// A candidate menu: each eligible algorithm with its predicted cost.
pub type Menu = Vec<(&'static str, Cost)>;

/// Validate a spec and price it: the candidate menu plus the cheapest
/// entry. Pure arithmetic — no simulation, no allocation proportional to
/// `n` — so quoting is effectively free.
pub fn price(spec: &JobSpec) -> Result<(AemConfig, Menu), String> {
    let cfg = AemConfig::new(spec.mem, spec.block, spec.omega).map_err(|e| e.to_string())?;
    let w = spec.kind.descriptor();
    w.validate(spec.n, spec.delta)?;
    let menu = w.menu(cfg, spec.n, spec.delta);
    if menu.is_empty() {
        return Err(format!("no eligible algorithm for '{}' on {cfg}", w.name));
    }
    Ok((cfg, menu))
}

/// `true` when a ghost (cost-only occupancy) store prices `algo` exactly —
/// straight from the registry's per-algorithm flag, so the planner, the
/// CLI, and the fuzz backend matrix cannot drift apart.
pub fn ghost_sound(kind: JobKind, algo: &str) -> bool {
    kind.descriptor().algo(algo).is_some_and(|a| a.ghost_sound)
}

/// Pick the cheapest eligible algorithm and a sound backend for `spec`.
pub fn plan(spec: &JobSpec) -> Result<Plan, String> {
    let (cfg, menu) = price(spec)?;
    let (algo, predicted) = menu
        .into_iter()
        .min_by_key(|(_, c)| c.q_saturating(spec.omega))
        .expect("menu is non-empty");
    let backend = match spec.backend.as_deref() {
        Some(name) => {
            let b = Backend::from_name(name)?;
            if b == Backend::Ghost && (spec.payload || !ghost_sound(spec.kind, algo)) {
                return Err(format!(
                    "ghost is unsound for {}/{algo} (payload-routed schedule)",
                    spec.kind.name()
                ));
            }
            b
        }
        None if !spec.payload && ghost_sound(spec.kind, algo) => Backend::Ghost,
        None if !spec.payload => Backend::Trace,
        None if spec.n >= ARENA_THRESHOLD => Backend::Arena,
        None => Backend::Vec,
    };
    Ok(Plan {
        cfg,
        algo,
        backend,
        predicted,
        q: predicted.q_saturating(spec.omega),
    })
}

/// `true` when the plan is executable (quotes have no such limit).
pub fn executable(spec: &JobSpec) -> Result<(), String> {
    if spec.n > MAX_EXEC_ELEMS {
        return Err(format!(
            "n={} exceeds the execution limit {MAX_EXEC_ELEMS}; use a quote",
            spec.n
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: JobKind, n: usize, payload: bool) -> JobSpec {
        JobSpec {
            id: 1,
            kind,
            n,
            mem: 1024,
            block: 64,
            omega: 16,
            delta: 4,
            seed: 7,
            payload,
            backend: None,
        }
    }

    #[test]
    fn planner_is_deterministic_and_priced_by_the_menu_minimum() {
        let s = spec(JobKind::Sort, 4096, true);
        let p1 = plan(&s).unwrap();
        let p2 = plan(&s).unwrap();
        assert_eq!(p1, p2);
        let (_, menu) = price(&s).unwrap();
        assert_eq!(
            p1.q,
            menu.iter().map(|(_, c)| c.q_saturating(16)).min().unwrap()
        );
    }

    #[test]
    fn cost_only_routing_respects_ghost_soundness() {
        // Naive-permute territory (huge n): ghost. Sort: never ghost.
        let mut perm = spec(JobKind::Permute, 1 << 20, false);
        assert_eq!(plan(&perm).unwrap().backend, Backend::Ghost);
        assert_eq!(plan(&perm).unwrap().algo, "naive");
        let sort = spec(JobKind::Sort, 4096, false);
        assert_eq!(plan(&sort).unwrap().backend, Backend::Trace);
        // Forcing ghost where the schedule is payload-routed is refused.
        perm.backend = Some("ghost".into());
        perm.n = 4096; // by-sort wins here, which is payload-routed
        assert!(plan(&perm).is_err());
    }

    #[test]
    fn payload_jobs_split_vec_arena_on_size() {
        assert_eq!(
            plan(&spec(JobKind::Sort, 256, true)).unwrap().backend,
            Backend::Vec
        );
        assert_eq!(
            plan(&spec(JobKind::Sort, ARENA_THRESHOLD, true))
                .unwrap()
                .backend,
            Backend::Arena
        );
    }

    #[test]
    fn invalid_specs_are_errors_not_panics() {
        let mut s = spec(JobKind::Sort, 0, true);
        assert!(plan(&s).is_err()); // n = 0
        s.n = 64;
        s.mem = 4;
        s.block = 64;
        assert!(plan(&s).is_err()); // M < 2B
        let mut sp = spec(JobKind::Spmv, 64, true);
        sp.delta = 0;
        assert!(plan(&sp).is_err());
        let mut pq = spec(JobKind::Pq, 64, true);
        pq.mem = 16;
        pq.block = 4;
        pq.omega = 2;
        assert!(plan(&pq).is_err()); // M < 8B: no eligible algorithm
    }
}
