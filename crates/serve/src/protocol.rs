//! The wire protocol: length-prefixed JSON frames over TCP.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! compact JSON (the [`aem_obs::json`] dialect used everywhere else in the
//! workspace). Frames are capped at [`MAX_FRAME`] bytes; a peer announcing
//! a longer frame is rejected before any allocation. Decoding is pure
//! (`&[u8] -> Result<Option<(Json, usize)>>`) so the truncation and
//! oversize paths are property-testable without sockets.

use aem_machine::Cost;
use aem_obs::json::{obj, parse, Json};
use std::io::{Read, Write};

/// Hard cap on a frame's JSON payload, in bytes.
pub const MAX_FRAME: usize = 1 << 20;

/// The job kinds the service prices and executes: exactly the workload
/// registry's kinds. Registering a new kind in `aem-core` extends the
/// wire protocol with no change here.
pub use aem_core::workload::WorkloadKind as JobKind;

/// One job request: what to run, on which machine shape, and whether the
/// caller wants the payload back or only the metered cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Caller-chosen id, echoed on every response for this job.
    pub id: u64,
    /// Which workload family.
    pub kind: JobKind,
    /// Input size in elements (for spmv: columns).
    pub n: usize,
    /// Internal memory capacity `M` in elements.
    pub mem: usize,
    /// Block size `B` in elements.
    pub block: usize,
    /// Write/read cost ratio `ω`.
    pub omega: u64,
    /// Nonzeros per column (spmv only; ignored elsewhere).
    pub delta: usize,
    /// Workload seed: equal seeds give equal instances, bit for bit.
    pub seed: u64,
    /// `true` if the caller needs the computed payload verified; `false`
    /// for cost-only queries, which the planner may route to ghost or
    /// compiled-trace replay.
    pub payload: bool,
    /// Force a specific backend by name, or `None` to let the planner pick.
    pub backend: Option<String>,
}

impl JobSpec {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("id", Json::UInt(self.id)),
            ("kind", Json::Str(self.kind.name().to_string())),
            ("n", Json::UInt(self.n as u64)),
            ("mem", Json::UInt(self.mem as u64)),
            ("block", Json::UInt(self.block as u64)),
            ("omega", Json::UInt(self.omega)),
            ("delta", Json::UInt(self.delta as u64)),
            ("seed", Json::UInt(self.seed)),
            ("payload", Json::Bool(self.payload)),
        ];
        if let Some(b) = &self.backend {
            members.push(("backend", Json::Str(b.clone())));
        }
        obj(members)
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let kind = JobKind::from_name(req_str(j, "kind")?)?;
        Ok(JobSpec {
            id: req_u64(j, "id")?,
            kind,
            n: req_u64(j, "n")? as usize,
            mem: req_u64(j, "mem")? as usize,
            block: req_u64(j, "block")? as usize,
            omega: req_u64(j, "omega")?,
            delta: j.get("delta").and_then(Json::as_u64).unwrap_or(0) as usize,
            seed: j.get("seed").and_then(Json::as_u64).unwrap_or(0),
            payload: j.get("payload").and_then(Json::as_bool).unwrap_or(false),
            backend: j.get("backend").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register (or top up) a tenant with an additional cost budget.
    Hello {
        /// Tenant name; one connection serves one tenant.
        tenant: String,
        /// Budget units of `Q = Q_r + ω·Q_w` to add.
        budget: u64,
    },
    /// Price, admit and execute one job.
    Job(JobSpec),
    /// Admit sequentially, execute in parallel, reply in order.
    Batch(Vec<JobSpec>),
    /// Price a job without executing or debiting the budget.
    Quote(JobSpec),
    /// This tenant's metering snapshot.
    Stats,
    /// The full Prometheus text exposition.
    Metrics,
    /// Ask the server to stop accepting and drain (used by tests; CI
    /// exercises the SIGTERM path).
    Shutdown,
}

impl Request {
    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Hello { tenant, budget } => obj(vec![
                ("type", Json::Str("hello".into())),
                ("tenant", Json::Str(tenant.clone())),
                ("budget", Json::UInt(*budget)),
            ]),
            Request::Job(spec) => with_type("job", spec.to_json()),
            Request::Quote(spec) => with_type("quote", spec.to_json()),
            Request::Batch(jobs) => obj(vec![
                ("type", Json::Str("batch".into())),
                (
                    "jobs",
                    Json::Arr(jobs.iter().map(JobSpec::to_json).collect()),
                ),
            ]),
            Request::Stats => obj(vec![("type", Json::Str("stats".into()))]),
            Request::Metrics => obj(vec![("type", Json::Str("metrics".into()))]),
            Request::Shutdown => obj(vec![("type", Json::Str("shutdown".into()))]),
        }
    }

    /// Parse a wire frame. Unknown or malformed requests are `Err` — the
    /// server answers those with [`Response::Error`], never a panic.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        match req_str(j, "type")? {
            "hello" => Ok(Request::Hello {
                tenant: req_str(j, "tenant")?.to_string(),
                budget: req_u64(j, "budget")?,
            }),
            "job" => Ok(Request::Job(JobSpec::from_json(j)?)),
            "quote" => Ok(Request::Quote(JobSpec::from_json(j)?)),
            "batch" => {
                let jobs = j
                    .get("jobs")
                    .and_then(Json::as_array)
                    .ok_or("batch requires a 'jobs' array")?;
                Ok(Request::Batch(
                    jobs.iter()
                        .map(JobSpec::from_json)
                        .collect::<Result<_, _>>()?,
                ))
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type '{other}'")),
        }
    }
}

/// The outcome of one executed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// Echo of the request id.
    pub id: u64,
    /// The algorithm the planner chose (e.g. `"aem"`, `"by-sort"`).
    pub algo: String,
    /// The backend it ran on. May differ between identical runs (a
    /// repeated cost-only config replays its compiled trace); costs may
    /// not, per the `COST_MODEL.md` replay contract.
    pub backend: String,
    /// The predictor's priced cost, fixed at admission.
    pub predicted: Cost,
    /// The metered cost of the actual run.
    pub measured: Cost,
    /// `measured` collapsed to `Q = Q_r + ω·Q_w`.
    pub q: u64,
    /// FNV-1a digest of the verified output payload (0 for cost-only).
    pub checksum: u64,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Tenant registered; total budget now as stated. A top-up that
    /// releases parked jobs carries their in-order outcomes here, so the
    /// client never has to guess how many extra frames to read.
    HelloOk {
        /// The tenant's cumulative budget after this hello.
        budget: u64,
        /// Outcomes of jobs drained from the queue by this top-up.
        drained: Vec<Response>,
    },
    /// Job executed.
    Done(JobOutcome),
    /// Cost-only quote: what the job *would* cost.
    Quoted {
        /// Echo of the request id.
        id: u64,
        /// The algorithm the planner would choose.
        algo: String,
        /// The predicted component costs.
        predicted: Cost,
        /// Predicted `Q` under the job's ω.
        q: u64,
    },
    /// Admission refused the job.
    Rejected {
        /// Echo of the request id.
        id: u64,
        /// `"over_budget"` or `"bad_request: ..."`.
        reason: String,
        /// The priced `Q` (0 when the spec itself was invalid).
        q: u64,
        /// Budget remaining after the decision.
        remaining: u64,
    },
    /// Job parked until a future budget top-up covers it.
    Queued {
        /// Echo of the request id.
        id: u64,
        /// The priced `Q` it is waiting to afford.
        q: u64,
    },
    /// In-order replies for a batch, one per submitted job.
    Batch(Vec<Response>),
    /// Per-tenant metering snapshot.
    Stats {
        /// Tenant name.
        tenant: String,
        /// Cumulative budget granted.
        budget: u64,
        /// Predicted `Q` debited by admission so far.
        spent: u64,
        /// Jobs accepted (including drained ones).
        accepted: u64,
        /// Jobs rejected.
        rejected: u64,
        /// Jobs currently parked.
        queued: u64,
        /// Quotes served.
        quotes: u64,
        /// Measured read I/Os across completed jobs.
        reads: u64,
        /// Measured write I/Os across completed jobs.
        writes: u64,
    },
    /// Prometheus text exposition of every tenant's meters.
    Metrics {
        /// The exposition body.
        text: String,
    },
    /// Shutdown acknowledged; the server drains and exits.
    Bye,
    /// Request-level failure (malformed frame, unknown type, no hello).
    Error {
        /// Human-readable cause.
        message: String,
    },
}

fn cost_json(c: Cost) -> Json {
    obj(vec![
        ("reads", Json::UInt(c.reads)),
        ("writes", Json::UInt(c.writes)),
    ])
}

fn cost_from(j: &Json, key: &str) -> Result<Cost, String> {
    let c = j.get(key).ok_or_else(|| format!("missing '{key}'"))?;
    Ok(Cost::new(req_u64(c, "reads")?, req_u64(c, "writes")?))
}

impl Response {
    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            Response::HelloOk { budget, drained } => obj(vec![
                ("type", Json::Str("hello_ok".into())),
                ("budget", Json::UInt(*budget)),
                (
                    "drained",
                    Json::Arr(drained.iter().map(Response::to_json).collect()),
                ),
            ]),
            Response::Done(o) => obj(vec![
                ("type", Json::Str("done".into())),
                ("id", Json::UInt(o.id)),
                ("algo", Json::Str(o.algo.clone())),
                ("backend", Json::Str(o.backend.clone())),
                ("predicted", cost_json(o.predicted)),
                ("measured", cost_json(o.measured)),
                ("q", Json::UInt(o.q)),
                ("checksum", Json::UInt(o.checksum)),
            ]),
            Response::Quoted {
                id,
                algo,
                predicted,
                q,
            } => obj(vec![
                ("type", Json::Str("quoted".into())),
                ("id", Json::UInt(*id)),
                ("algo", Json::Str(algo.clone())),
                ("predicted", cost_json(*predicted)),
                ("q", Json::UInt(*q)),
            ]),
            Response::Rejected {
                id,
                reason,
                q,
                remaining,
            } => obj(vec![
                ("type", Json::Str("rejected".into())),
                ("id", Json::UInt(*id)),
                ("reason", Json::Str(reason.clone())),
                ("q", Json::UInt(*q)),
                ("remaining", Json::UInt(*remaining)),
            ]),
            Response::Queued { id, q } => obj(vec![
                ("type", Json::Str("queued".into())),
                ("id", Json::UInt(*id)),
                ("q", Json::UInt(*q)),
            ]),
            Response::Batch(rs) => obj(vec![
                ("type", Json::Str("batch".into())),
                (
                    "results",
                    Json::Arr(rs.iter().map(Response::to_json).collect()),
                ),
            ]),
            Response::Stats {
                tenant,
                budget,
                spent,
                accepted,
                rejected,
                queued,
                quotes,
                reads,
                writes,
            } => obj(vec![
                ("type", Json::Str("stats".into())),
                ("tenant", Json::Str(tenant.clone())),
                ("budget", Json::UInt(*budget)),
                ("spent", Json::UInt(*spent)),
                ("accepted", Json::UInt(*accepted)),
                ("rejected", Json::UInt(*rejected)),
                ("queued", Json::UInt(*queued)),
                ("quotes", Json::UInt(*quotes)),
                ("reads", Json::UInt(*reads)),
                ("writes", Json::UInt(*writes)),
            ]),
            Response::Metrics { text } => obj(vec![
                ("type", Json::Str("metrics".into())),
                ("text", Json::Str(text.clone())),
            ]),
            Response::Bye => obj(vec![("type", Json::Str("bye".into()))]),
            Response::Error { message } => obj(vec![
                ("type", Json::Str("error".into())),
                ("message", Json::Str(message.clone())),
            ]),
        }
    }

    /// Parse a wire frame.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        match req_str(j, "type")? {
            "hello_ok" => {
                let drained = match j.get("drained").and_then(Json::as_array) {
                    Some(arr) => arr
                        .iter()
                        .map(Response::from_json)
                        .collect::<Result<_, _>>()?,
                    None => Vec::new(),
                };
                Ok(Response::HelloOk {
                    budget: req_u64(j, "budget")?,
                    drained,
                })
            }
            "done" => Ok(Response::Done(JobOutcome {
                id: req_u64(j, "id")?,
                algo: req_str(j, "algo")?.to_string(),
                backend: req_str(j, "backend")?.to_string(),
                predicted: cost_from(j, "predicted")?,
                measured: cost_from(j, "measured")?,
                q: req_u64(j, "q")?,
                checksum: req_u64(j, "checksum")?,
            })),
            "quoted" => Ok(Response::Quoted {
                id: req_u64(j, "id")?,
                algo: req_str(j, "algo")?.to_string(),
                predicted: cost_from(j, "predicted")?,
                q: req_u64(j, "q")?,
            }),
            "rejected" => Ok(Response::Rejected {
                id: req_u64(j, "id")?,
                reason: req_str(j, "reason")?.to_string(),
                q: req_u64(j, "q")?,
                remaining: req_u64(j, "remaining")?,
            }),
            "queued" => Ok(Response::Queued {
                id: req_u64(j, "id")?,
                q: req_u64(j, "q")?,
            }),
            "batch" => {
                let rs = j
                    .get("results")
                    .and_then(Json::as_array)
                    .ok_or("batch requires a 'results' array")?;
                Ok(Response::Batch(
                    rs.iter()
                        .map(Response::from_json)
                        .collect::<Result<_, _>>()?,
                ))
            }
            "stats" => Ok(Response::Stats {
                tenant: req_str(j, "tenant")?.to_string(),
                budget: req_u64(j, "budget")?,
                spent: req_u64(j, "spent")?,
                accepted: req_u64(j, "accepted")?,
                rejected: req_u64(j, "rejected")?,
                queued: req_u64(j, "queued")?,
                quotes: req_u64(j, "quotes")?,
                reads: req_u64(j, "reads")?,
                writes: req_u64(j, "writes")?,
            }),
            "metrics" => Ok(Response::Metrics {
                text: req_str(j, "text")?.to_string(),
            }),
            "bye" => Ok(Response::Bye),
            "error" => Ok(Response::Error {
                message: req_str(j, "message")?.to_string(),
            }),
            other => Err(format!("unknown response type '{other}'")),
        }
    }
}

fn with_type(t: &str, j: Json) -> Json {
    match j {
        Json::Obj(mut members) => {
            members.insert(0, ("type".to_string(), Json::Str(t.to_string())));
            Json::Obj(members)
        }
        other => other,
    }
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

fn req_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string '{key}'"))
}

/// Encode one JSON value as a length-prefixed frame.
pub fn encode_frame(j: &Json) -> Vec<u8> {
    let body = j.to_string_compact();
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(Some((json, consumed)))` — a complete frame; drop `consumed` bytes.
/// * `Ok(None)` — the frame is not complete yet; read more.
/// * `Err(_)` — the stream is unrecoverable (oversized announcement, bad
///   UTF-8, or malformed JSON). Never panics, whatever the bytes.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Json, usize)>, String> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(format!(
            "frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let body =
        std::str::from_utf8(&buf[4..4 + len]).map_err(|e| format!("frame not UTF-8: {e}"))?;
    let json = parse(body).map_err(|e| format!("frame not JSON: {e}"))?;
    Ok(Some((json, 4 + len)))
}

/// Write one frame to a stream.
pub fn write_frame<W: Write>(w: &mut W, j: &Json) -> Result<(), String> {
    w.write_all(&encode_frame(j))
        .and_then(|_| w.flush())
        .map_err(|e| format!("write: {e}"))
}

/// What [`FrameReader::poll`] observed on the stream.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame arrived.
    Frame(Json),
    /// Nothing complete yet (timeout or partial frame); poll again.
    Idle,
    /// The peer closed the connection cleanly between frames.
    Closed,
}

/// An accumulating frame reader tolerant of read timeouts: bytes are
/// buffered across polls, so a frame split by a timeout is reassembled
/// instead of lost.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the stream one step; see [`ReadOutcome`].
    pub fn poll<R: Read>(&mut self, r: &mut R) -> Result<ReadOutcome, String> {
        if let Some((json, consumed)) = decode_frame(&self.buf)? {
            self.buf.drain(..consumed);
            return Ok(ReadOutcome::Frame(json));
        }
        let mut chunk = [0u8; 16 * 1024];
        match r.read(&mut chunk) {
            Ok(0) => {
                if self.buf.is_empty() {
                    Ok(ReadOutcome::Closed)
                } else {
                    Err("connection closed mid-frame".into())
                }
            }
            Ok(k) => {
                self.buf.extend_from_slice(&chunk[..k]);
                match decode_frame(&self.buf)? {
                    Some((json, consumed)) => {
                        self.buf.drain(..consumed);
                        Ok(ReadOutcome::Frame(json))
                    }
                    None => Ok(ReadOutcome::Idle),
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(ReadOutcome::Idle)
            }
            Err(e) => Err(format!("read: {e}")),
        }
    }
}

/// Blocking request/response exchange used by clients (the load generator
/// and tests): write one frame, then poll until a full response arrives.
pub fn exchange<S: Read + Write>(stream: &mut S, req: &Request) -> Result<Response, String> {
    write_frame(stream, &req.to_json())?;
    read_response(stream)
}

/// Block until one response frame arrives on `stream`.
pub fn read_response<S: Read>(stream: &mut S) -> Result<Response, String> {
    let mut reader = FrameReader::new();
    loop {
        match reader.poll(stream)? {
            ReadOutcome::Frame(j) => return Response::from_json(&j),
            ReadOutcome::Idle => continue,
            ReadOutcome::Closed => return Err("connection closed awaiting response".into()),
        }
    }
}
