//! Job execution: registry dispatch, backend harnesses, and the
//! compiled-trace replay cache.
//!
//! Instances are pure functions of `(kind, n, delta, seed)` — the seeded
//! constructors live in the workload registry
//! ([`aem_core::workload::run_workload`]), so this module holds no
//! per-kind code at all: it supplies two [`aem_core::workload::Harness`]
//! implementations (live backends and trace compilation) and the cache
//! plumbing. Cost-only jobs routed to the trace backend record a
//! [`CompiledTrace`] on first execution; repeats of the same cell
//! re-price by [`CompiledTrace::replay`], which equals the live cost by
//! the `docs/COST_MODEL.md` contract. That equality is what lets the
//! cache stay metering-neutral: whether a concurrent tenant beat you to
//! the first run changes the wall-clock, never the reported cost.

use crate::planner::Plan;
use crate::protocol::{JobKind, JobSpec};
use aem_core::workload::{
    run_workload, Body, Harness, LiveHarness, Payload, RunCtx, WorkloadError,
};
use aem_machine::{Backend, CompiledTrace, Cost, TraceMachine};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The outcome of executing one admitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Metered cost of the run (or of the replayed schedule).
    pub measured: Cost,
    /// FNV-1a digest of the verified output (0 for cost-only jobs).
    pub checksum: u64,
    /// `true` when the cost came from compiled-trace replay.
    pub via_replay: bool,
}

/// A cell identity: jobs agreeing on all of this have byte-identical
/// instances and therefore identical I/O schedules.
type CellKey = (JobKind, &'static str, usize, usize, u64, usize, usize, u64);

fn cell_key(spec: &JobSpec, plan: &Plan) -> CellKey {
    (
        spec.kind, plan.algo, spec.mem, spec.block, spec.omega, spec.n, spec.delta, spec.seed,
    )
}

/// Shared cache of compiled schedules for repeated cost-only cells.
#[derive(Debug, Default)]
pub struct TraceCache {
    map: Mutex<HashMap<CellKey, Arc<CompiledTrace>>>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn get(&self, key: &CellKey) -> Option<Arc<CompiledTrace>> {
        self.map
            .lock()
            .expect("trace cache poisoned")
            .get(key)
            .cloned()
    }

    fn insert(&self, key: CellKey, trace: CompiledTrace) {
        self.map
            .lock()
            .expect("trace cache poisoned")
            .insert(key, Arc::new(trace));
    }

    /// Number of cached schedules.
    pub fn len(&self) -> usize {
        self.map.lock().expect("trace cache poisoned").len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn ctx_of(spec: &JobSpec, plan: &Plan) -> Result<RunCtx, String> {
    RunCtx::new(
        spec.kind, plan.algo, plan.cfg, spec.n, spec.delta, spec.seed,
    )
}

/// Execute `spec` under `plan`, consulting (and feeding) the replay cache
/// when the plan landed on the trace backend.
pub fn execute(spec: &JobSpec, plan: &Plan, cache: &TraceCache) -> Result<ExecResult, String> {
    crate::planner::executable(spec)?;
    if plan.backend == Backend::Trace {
        let key = cell_key(spec, plan);
        if let Some(tr) = cache.get(&key) {
            return Ok(ExecResult {
                measured: tr.replay(),
                checksum: 0,
                via_replay: true,
            });
        }
        let ctx = ctx_of(spec, plan)?;
        let (measured, checksum, schedule) =
            run_workload(&ctx, &mut TraceHarness).map_err(|e: WorkloadError| e.to_string())?;
        cache.insert(key, schedule);
        return Ok(ExecResult {
            measured,
            checksum: if spec.payload { checksum } else { 0 },
            via_replay: false,
        });
    }
    let ctx = ctx_of(spec, plan)?;
    let (measured, checksum) = run_workload(
        &ctx,
        &mut LiveHarness {
            backend: plan.backend,
        },
    )
    .map_err(|e| e.to_string())?;
    Ok(ExecResult {
        measured,
        checksum: if spec.payload { checksum } else { 0 },
        via_replay: false,
    })
}

/// Runs on a concrete [`TraceMachine`] so the compiled schedule survives.
struct TraceHarness;

impl Harness for TraceHarness {
    type Out = (Cost, u64, CompiledTrace);
    fn run<T: Payload>(
        &mut self,
        ctx: &RunCtx,
        body: Body<'_, T>,
    ) -> Result<Self::Out, WorkloadError> {
        let mut m = TraceMachine::<T>::new(ctx.cfg);
        let v = body(&mut m)?;
        let cost = m.counter().snapshot();
        Ok((cost, v.checksum, m.into_schedule()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan;

    fn spec(kind: JobKind, n: usize, payload: bool, backend: Option<&str>) -> JobSpec {
        JobSpec {
            id: 1,
            kind,
            n,
            mem: 64,
            block: 8,
            omega: 16,
            delta: 3,
            seed: 42,
            payload,
            backend: backend.map(str::to_string),
        }
    }

    #[test]
    fn every_kind_executes_and_meters_nonzero_cost() {
        let cache = TraceCache::new();
        for kind in JobKind::ALL {
            let s = spec(kind, 256, true, None);
            let p = plan(&s).unwrap();
            let r = execute(&s, &p, &cache).unwrap();
            assert!(r.measured.total_ios() > 0, "{}", kind.name());
            assert_ne!(r.checksum, 0, "{}", kind.name());
            assert!(!r.via_replay);
        }
    }

    #[test]
    fn repeated_cost_only_cells_replay_with_identical_cost() {
        let cache = TraceCache::new();
        let s = spec(JobKind::Sort, 512, false, None);
        let p = plan(&s).unwrap();
        assert_eq!(p.backend, Backend::Trace);
        let first = execute(&s, &p, &cache).unwrap();
        assert!(!first.via_replay);
        assert_eq!(cache.len(), 1);
        let again = execute(&s, &p, &cache).unwrap();
        assert!(again.via_replay);
        assert_eq!(again.measured, first.measured);
        // A different seed is a different cell, not a cache hit.
        let mut s2 = s.clone();
        s2.seed = 43;
        let other = execute(&s2, &plan(&s2).unwrap(), &cache).unwrap();
        assert!(!other.via_replay);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn ghost_and_vec_agree_on_naive_permute_cost() {
        let cache = TraceCache::new();
        let mut s = spec(JobKind::Permute, 4096, false, None);
        s.mem = 64;
        s.block = 8;
        // Force the naive algorithm's territory: huge-n naive wins at
        // this shape, but 4096 may route by-sort — pin via backend=ghost
        // only if the planner picked naive; otherwise compare vec twice.
        let p = plan(&s).unwrap();
        if p.backend == Backend::Ghost {
            let ghost = execute(&s, &p, &cache).unwrap();
            let mut sv = s.clone();
            sv.payload = true;
            sv.backend = Some("vec".into());
            let pv = plan(&sv).unwrap();
            assert_eq!(pv.algo, p.algo);
            let vec = execute(&sv, &pv, &cache).unwrap();
            assert_eq!(ghost.measured, vec.measured);
            assert_eq!(ghost.checksum, 0);
        }
    }

    #[test]
    fn cost_only_search_routes_ghost_and_prices_like_vec() {
        // The registry's ghost_sound flag reaches the planner with no
        // serve-side search code: a cost-only lookup-light search job
        // lands on the ghost backend and meters the vec cost exactly.
        let cache = TraceCache::new();
        let s = spec(JobKind::Search, 512, false, None);
        let p = plan(&s).unwrap();
        assert_eq!(p.backend, Backend::Ghost);
        let ghost = execute(&s, &p, &cache).unwrap();
        let mut sv = s.clone();
        sv.payload = true;
        sv.backend = Some("vec".into());
        let pv = plan(&sv).unwrap();
        assert_eq!(pv.algo, p.algo);
        let vec = execute(&sv, &pv, &cache).unwrap();
        assert_eq!(ghost.measured, vec.measured);
        assert_eq!(ghost.checksum, 0);
        assert_ne!(vec.checksum, 0);
    }

    #[test]
    fn exec_refuses_oversized_jobs() {
        let cache = TraceCache::new();
        let s = spec(
            JobKind::Sort,
            crate::planner::MAX_EXEC_ELEMS + 1,
            false,
            None,
        );
        let p = plan(&s).unwrap();
        assert!(execute(&s, &p, &cache).is_err());
    }
}
