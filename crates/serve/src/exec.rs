//! Job execution: seeded workload generation, backend dispatch, and the
//! compiled-trace replay cache.
//!
//! Instances are pure functions of `(kind, n, delta, seed)` — the same
//! SplitMix64-seeded generators the experiment tables use — so a job's
//! metered cost is a deterministic integer. Cost-only jobs routed to the
//! trace backend record a [`CompiledTrace`] on first execution; repeats of
//! the same cell re-price by [`CompiledTrace::replay`], which equals the
//! live cost by the `docs/COST_MODEL.md` contract. That equality is what
//! lets the cache stay metering-neutral: whether a concurrent tenant beat
//! you to the first run changes the wall-clock, never the reported cost.

use crate::planner::Plan;
use crate::protocol::{JobKind, JobSpec};
use aem_core::permute::{permute_by_sort_on, permute_naive_on, DestTagged};
use aem_core::sort::{em_merge_sort, merge_sort, sort_via_pq};
use aem_core::spmv::{
    install_instance, reference_multiply, spmv_direct_on, spmv_sorted_on, SpmvInstance, U64Ring,
};
use aem_machine::{
    with_backend_machine, with_payload_machine, AemAccess, AemConfig, Backend, CompiledTrace, Cost,
    Region, TraceMachine,
};
use aem_workloads::{perm, Conformation, KeyDist, MatrixShape, PermKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The outcome of executing one admitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Metered cost of the run (or of the replayed schedule).
    pub measured: Cost,
    /// FNV-1a digest of the verified output (0 for cost-only jobs).
    pub checksum: u64,
    /// `true` when the cost came from compiled-trace replay.
    pub via_replay: bool,
}

/// A cell identity: jobs agreeing on all of this have byte-identical
/// instances and therefore identical I/O schedules.
type CellKey = (JobKind, &'static str, usize, usize, u64, usize, usize, u64);

fn cell_key(spec: &JobSpec, plan: &Plan) -> CellKey {
    (
        spec.kind, plan.algo, spec.mem, spec.block, spec.omega, spec.n, spec.delta, spec.seed,
    )
}

/// Shared cache of compiled schedules for repeated cost-only cells.
#[derive(Debug, Default)]
pub struct TraceCache {
    map: Mutex<HashMap<CellKey, Arc<CompiledTrace>>>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn get(&self, key: &CellKey) -> Option<Arc<CompiledTrace>> {
        self.map
            .lock()
            .expect("trace cache poisoned")
            .get(key)
            .cloned()
    }

    fn insert(&self, key: CellKey, trace: CompiledTrace) {
        self.map
            .lock()
            .expect("trace cache poisoned")
            .insert(key, Arc::new(trace));
    }

    /// Number of cached schedules.
    pub fn len(&self) -> usize {
        self.map.lock().expect("trace cache poisoned").len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a over a stream of `u64`s.
fn fnv1a(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Execute `spec` under `plan`, consulting (and feeding) the replay cache
/// when the plan landed on the trace backend.
pub fn execute(spec: &JobSpec, plan: &Plan, cache: &TraceCache) -> Result<ExecResult, String> {
    crate::planner::executable(spec)?;
    if plan.backend == Backend::Trace {
        let key = cell_key(spec, plan);
        if let Some(tr) = cache.get(&key) {
            return Ok(ExecResult {
                measured: tr.replay(),
                checksum: 0,
                via_replay: true,
            });
        }
        let (measured, checksum, schedule) = run_traced(spec, plan)?;
        cache.insert(key, schedule);
        return Ok(ExecResult {
            measured,
            checksum: if spec.payload { checksum } else { 0 },
            via_replay: false,
        });
    }
    let (measured, checksum) = run_live(spec, plan)?;
    Ok(ExecResult {
        measured,
        checksum: if spec.payload { checksum } else { 0 },
        via_replay: false,
    })
}

/// Run on a concrete [`TraceMachine`] so the compiled schedule survives.
fn run_traced(spec: &JobSpec, plan: &Plan) -> Result<(Cost, u64, CompiledTrace), String> {
    fn go<T: Clone + Default>(
        cfg: AemConfig,
        input: &[T],
        body: impl FnOnce(&mut TraceMachine<T>, Region) -> Result<(u64, bool), String>,
    ) -> Result<(Cost, u64, CompiledTrace), String> {
        let mut m = TraceMachine::new(cfg);
        let r = m.install(input);
        let (checksum, _verified) = body(&mut m, r)?;
        let cost = m.counter().snapshot();
        Ok((cost, checksum, m.into_schedule()))
    }

    let cfg = plan.cfg;
    match (spec.kind, plan.algo) {
        (JobKind::Sort, algo) | (JobKind::Pq, algo) => {
            let input = sort_input(spec);
            let n = spec.n;
            go(cfg, &input, move |m, r| {
                let out = match algo {
                    "aem" => merge_sort(m, r),
                    "em" => em_merge_sort(m, r),
                    "pq" => sort_via_pq(m, r),
                    other => return Err(format!("unknown sort algo '{other}'")),
                }
                .map_err(|e| e.to_string())?;
                let got = m.inspect(out);
                verify_sorted(&got, n)?;
                Ok((fnv1a(got), true))
            })
        }
        (JobKind::Permute, "naive") => {
            let (values, pi) = permute_input(spec);
            let want = perm::apply(&pi, &values);
            go(cfg, &values, move |m, r| {
                let out = permute_naive_on(m, r, &pi).map_err(|e| e.to_string())?;
                let got = m.inspect(out);
                if got != want {
                    return Err("naive permute: verification failed".into());
                }
                Ok((fnv1a(got), true))
            })
        }
        (JobKind::Permute, "by-sort") => {
            let (values, pi) = permute_input(spec);
            let want = perm::apply(&pi, &values);
            let tagged = tag(&values, &pi);
            go(cfg, &tagged, move |m, r| {
                let out = permute_by_sort_on(m, r).map_err(|e| e.to_string())?;
                let got: Vec<u64> = m.inspect(out).into_iter().map(|t| t.value).collect();
                if got != want {
                    return Err("by-sort permute: verification failed".into());
                }
                Ok((fnv1a(got), true))
            })
        }
        (JobKind::Spmv, algo) => {
            let inst = SpmvInputs::generate(spec);
            let want = reference_multiply(&inst.conf, &inst.a, &inst.x);
            let conf = inst.conf.clone();
            let mut m = TraceMachine::new(cfg);
            let (ar, xr) = install_instance(
                &mut m,
                &SpmvInstance {
                    conf: &inst.conf,
                    a_vals: &inst.a,
                    x: &inst.x,
                },
            );
            let y = match algo {
                "sorted" => spmv_sorted_on(&mut m, &conf, ar, xr),
                "direct" => spmv_direct_on(&mut m, &conf, ar, xr),
                other => return Err(format!("unknown spmv algo '{other}'")),
            }
            .map_err(|e| e.to_string())?;
            let got: Vec<u64> = m.inspect(y).into_iter().map(|e| e.val.0).collect();
            if got != want.iter().map(|v| v.0).collect::<Vec<u64>>() {
                return Err(format!("spmv {algo}: verification failed"));
            }
            let cost = m.counter().snapshot();
            Ok((cost, fnv1a(got), m.into_schedule()))
        }
        (kind, algo) => Err(format!("no runner for {}/{algo}", kind.name())),
    }
}

/// Run on the plan's backend via the dispatch macros (vec/arena/ghost).
fn run_live(spec: &JobSpec, plan: &Plan) -> Result<(Cost, u64), String> {
    let cfg = plan.cfg;
    let backend = plan.backend;
    match (spec.kind, plan.algo) {
        (JobKind::Sort, algo) | (JobKind::Pq, algo) => {
            let input = sort_input(spec);
            let n = spec.n;
            with_payload_machine!(backend, u64, |M| {
                let mut m = M::new(cfg);
                let r = m.install(&input);
                let out = match algo {
                    "aem" => merge_sort(&mut m, r),
                    "em" => em_merge_sort(&mut m, r),
                    "pq" => sort_via_pq(&mut m, r),
                    other => return Err(format!("unknown sort algo '{other}'")),
                }
                .map_err(|e| e.to_string())?;
                let got = m.inspect(out);
                verify_sorted(&got, n)?;
                Ok((m.cost(), fnv1a(got)))
            }, ghost => Err("ghost is unsound for sorting (planner bug)".into()))
        }
        (JobKind::Permute, "naive") => {
            let (values, pi) = permute_input(spec);
            let want = perm::apply(&pi, &values);
            with_backend_machine!(backend, u64, |M| {
                let mut m = M::new(cfg);
                let r = m.install(&values);
                let out = permute_naive_on(&mut m, r, &pi).map_err(|e| e.to_string())?;
                let cost = m.cost();
                if backend.carries_payload() {
                    let got = m.inspect(out);
                    if got != want {
                        return Err("naive permute: verification failed".into());
                    }
                    Ok((cost, fnv1a(got)))
                } else {
                    Ok((cost, 0))
                }
            })
        }
        (JobKind::Permute, "by-sort") => {
            let (values, pi) = permute_input(spec);
            let want = perm::apply(&pi, &values);
            let tagged = tag(&values, &pi);
            with_payload_machine!(backend, DestTagged<u64>, |M| {
                let mut m = M::new(cfg);
                let r = m.install(&tagged);
                let out = permute_by_sort_on(&mut m, r).map_err(|e| e.to_string())?;
                let got: Vec<u64> = m.inspect(out).into_iter().map(|t| t.value).collect();
                if got != want {
                    return Err("by-sort permute: verification failed".into());
                }
                Ok((m.cost(), fnv1a(got)))
            }, ghost => Err("ghost is unsound for by-sort (planner bug)".into()))
        }
        (JobKind::Spmv, algo) => {
            let inst = SpmvInputs::generate(spec);
            let want: Vec<u64> = reference_multiply(&inst.conf, &inst.a, &inst.x)
                .into_iter()
                .map(|v| v.0)
                .collect();
            let conf = inst.conf.clone();
            with_payload_machine!(backend, aem_core::spmv::MatEntry<U64Ring>, |M| {
                let mut m = M::new(cfg);
                let (ar, xr) = install_instance(
                    &mut m,
                    &SpmvInstance {
                        conf: &inst.conf,
                        a_vals: &inst.a,
                        x: &inst.x,
                    },
                );
                let y = match algo {
                    "sorted" => spmv_sorted_on(&mut m, &conf, ar, xr),
                    "direct" => spmv_direct_on(&mut m, &conf, ar, xr),
                    other => return Err(format!("unknown spmv algo '{other}'")),
                }
                .map_err(|e| e.to_string())?;
                let got: Vec<u64> = m.inspect(y).into_iter().map(|e| e.val.0).collect();
                if got != want {
                    return Err(format!("spmv {algo}: verification failed"));
                }
                Ok((m.cost(), fnv1a(got)))
            }, ghost => Err("ghost is unsound for spmv (planner bug)".into()))
        }
        (kind, algo) => Err(format!("no runner for {}/{algo}", kind.name())),
    }
}

fn sort_input(spec: &JobSpec) -> Vec<u64> {
    KeyDist::Uniform { seed: spec.seed }.generate(spec.n)
}

fn permute_input(spec: &JobSpec) -> (Vec<u64>, Vec<usize>) {
    let values: Vec<u64> = (0..spec.n as u64).collect();
    let pi = PermKind::Random { seed: spec.seed }.generate(spec.n);
    (values, pi)
}

fn tag(values: &[u64], pi: &[usize]) -> Vec<DestTagged<u64>> {
    values
        .iter()
        .zip(pi.iter())
        .map(|(v, &d)| DestTagged {
            dest: d as u64,
            value: *v,
        })
        .collect()
}

struct SpmvInputs {
    conf: Conformation,
    a: Vec<U64Ring>,
    x: Vec<U64Ring>,
}

impl SpmvInputs {
    fn generate(spec: &JobSpec) -> Self {
        let conf =
            Conformation::generate(MatrixShape::Random { seed: spec.seed }, spec.n, spec.delta);
        let a = (0..conf.nnz())
            .map(|i| U64Ring((i as u64 * 37 + 1) % 97))
            .collect();
        let x = (0..spec.n)
            .map(|j| U64Ring((j as u64 * 13 + 5) % 89))
            .collect();
        SpmvInputs { conf, a, x }
    }
}

fn verify_sorted(got: &[u64], n: usize) -> Result<(), String> {
    if got.len() != n || !got.windows(2).all(|w| w[0] <= w[1]) {
        return Err("sort: output verification failed".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan;

    fn spec(kind: JobKind, n: usize, payload: bool, backend: Option<&str>) -> JobSpec {
        JobSpec {
            id: 1,
            kind,
            n,
            mem: 64,
            block: 8,
            omega: 16,
            delta: 3,
            seed: 42,
            payload,
            backend: backend.map(str::to_string),
        }
    }

    #[test]
    fn every_kind_executes_and_meters_nonzero_cost() {
        let cache = TraceCache::new();
        for kind in JobKind::ALL {
            let s = spec(kind, 256, true, None);
            let p = plan(&s).unwrap();
            let r = execute(&s, &p, &cache).unwrap();
            assert!(r.measured.total_ios() > 0, "{}", kind.name());
            assert_ne!(r.checksum, 0, "{}", kind.name());
            assert!(!r.via_replay);
        }
    }

    #[test]
    fn repeated_cost_only_cells_replay_with_identical_cost() {
        let cache = TraceCache::new();
        let s = spec(JobKind::Sort, 512, false, None);
        let p = plan(&s).unwrap();
        assert_eq!(p.backend, Backend::Trace);
        let first = execute(&s, &p, &cache).unwrap();
        assert!(!first.via_replay);
        assert_eq!(cache.len(), 1);
        let again = execute(&s, &p, &cache).unwrap();
        assert!(again.via_replay);
        assert_eq!(again.measured, first.measured);
        // A different seed is a different cell, not a cache hit.
        let mut s2 = s.clone();
        s2.seed = 43;
        let other = execute(&s2, &plan(&s2).unwrap(), &cache).unwrap();
        assert!(!other.via_replay);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn ghost_and_vec_agree_on_naive_permute_cost() {
        let cache = TraceCache::new();
        let mut s = spec(JobKind::Permute, 4096, false, None);
        s.mem = 64;
        s.block = 8;
        // Force the naive algorithm's territory: huge-n naive wins at
        // this shape, but 4096 may route by-sort — pin via backend=ghost
        // only if the planner picked naive; otherwise compare vec twice.
        let p = plan(&s).unwrap();
        if p.backend == Backend::Ghost {
            let ghost = execute(&s, &p, &cache).unwrap();
            let mut sv = s.clone();
            sv.payload = true;
            sv.backend = Some("vec".into());
            let pv = plan(&sv).unwrap();
            assert_eq!(pv.algo, p.algo);
            let vec = execute(&sv, &pv, &cache).unwrap();
            assert_eq!(ghost.measured, vec.measured);
            assert_eq!(ghost.checksum, 0);
        }
    }

    #[test]
    fn exec_refuses_oversized_jobs() {
        let cache = TraceCache::new();
        let s = spec(
            JobKind::Sort,
            crate::planner::MAX_EXEC_ELEMS + 1,
            false,
            None,
        );
        let p = plan(&s).unwrap();
        assert!(execute(&s, &p, &cache).is_err());
    }
}
