//! Per-tenant budget admission control.
//!
//! Every job arrives priced (the planner's predicted `Q`); admission
//! debits the *predicted* cost against the tenant's budget before
//! execution — predicted costs are deterministic integers, so the
//! accept/reject/queue stream for a tenant depends only on that tenant's
//! own request order, never on scheduling. That is what makes the
//! admission log reproducible: each decision carries a per-tenant
//! sequence number, and [`Admission::log_jsonl`] emits the log sorted by
//! `(tenant, seq)`, so two same-seed load runs produce byte-identical
//! files no matter how the OS interleaved the connections.

use crate::protocol::JobSpec;
use aem_obs::json::{obj, Json};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// What the controller decided for one priced job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Budget covers it: debited and dispatched.
    Accept,
    /// Budget does not cover it and queueing is off (or the spec was
    /// invalid, see the entry's reason).
    Reject,
    /// Parked until a top-up covers it (FIFO per tenant).
    Queue,
    /// A previously queued job admitted by a top-up.
    Drain,
}

impl Decision {
    fn name(self) -> &'static str {
        match self {
            Decision::Accept => "accept",
            Decision::Reject => "reject",
            Decision::Queue => "queue",
            Decision::Drain => "drain",
        }
    }
}

/// One admission-log record.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Tenant name.
    pub tenant: String,
    /// Per-tenant decision sequence number (0, 1, 2, ...).
    pub seq: u64,
    /// The job id the decision is about (or 0 for hello records).
    pub job_id: u64,
    /// `"hello"` or the job kind.
    pub kind: String,
    /// Input size (0 for hello records).
    pub n: u64,
    /// The decision (hello records use `"accept"`).
    pub decision: &'static str,
    /// Why, when not simply affordable (`""`, `"over_budget"`, `"bad_request: ..."`).
    pub reason: String,
    /// The priced `Q` (for hello: the budget added).
    pub q: u64,
    /// Budget minus spend after this decision.
    pub remaining: u64,
}

impl LogEntry {
    fn to_json(&self) -> Json {
        obj(vec![
            ("tenant", Json::Str(self.tenant.clone())),
            ("seq", Json::UInt(self.seq)),
            ("job_id", Json::UInt(self.job_id)),
            ("kind", Json::Str(self.kind.clone())),
            ("n", Json::UInt(self.n)),
            ("decision", Json::Str(self.decision.to_string())),
            ("reason", Json::Str(self.reason.clone())),
            ("q", Json::UInt(self.q)),
            ("remaining", Json::UInt(self.remaining)),
        ])
    }
}

/// A job parked until the tenant can afford it.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// The original spec (re-planned at drain; planning is deterministic).
    pub spec: JobSpec,
    /// Its priced `Q`.
    pub q: u64,
}

#[derive(Debug, Default)]
struct TenantState {
    budget: u64,
    spent: u64,
    seq: u64,
    accepted: u64,
    rejected: u64,
    queued: Vec<QueuedJob>,
}

/// A tenant's admission counters, as exposed by stats responses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Cumulative budget granted.
    pub budget: u64,
    /// Predicted `Q` debited so far.
    pub spent: u64,
    /// Jobs accepted (including drained).
    pub accepted: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Jobs currently parked.
    pub queued: u64,
}

/// The admission controller: budgets, the parked-job queues and the log.
#[derive(Debug, Default)]
pub struct Admission {
    queue_over_budget: bool,
    tenants: Mutex<BTreeMap<String, TenantState>>,
    log: Mutex<Vec<LogEntry>>,
}

impl Admission {
    /// A controller. With `queue_over_budget`, unaffordable jobs park in
    /// a per-tenant FIFO instead of being rejected.
    pub fn new(queue_over_budget: bool) -> Self {
        Admission {
            queue_over_budget,
            ..Admission::default()
        }
    }

    /// Register or top up `tenant` by `budget` units, then drain every
    /// parked job the new budget covers (FIFO — an unaffordable head
    /// blocks the tail, which keeps per-tenant order deterministic).
    /// Returns the cumulative budget and the drained jobs to execute.
    pub fn hello(&self, tenant: &str, budget: u64) -> (u64, Vec<QueuedJob>) {
        let mut tenants = self.tenants.lock().expect("admission poisoned");
        let st = tenants.entry(tenant.to_string()).or_default();
        st.budget = st.budget.saturating_add(budget);
        let seq = st.seq;
        st.seq += 1;
        let mut entries = vec![LogEntry {
            tenant: tenant.to_string(),
            seq,
            job_id: 0,
            kind: "hello".into(),
            n: 0,
            decision: Decision::Accept.name(),
            reason: String::new(),
            q: budget,
            remaining: st.budget - st.spent.min(st.budget),
        }];
        let mut drained = Vec::new();
        while let Some(front) = st.queued.first() {
            if st.spent.saturating_add(front.q) > st.budget {
                break;
            }
            let job = st.queued.remove(0);
            st.spent += job.q;
            st.accepted += 1;
            let seq = st.seq;
            st.seq += 1;
            entries.push(LogEntry {
                tenant: tenant.to_string(),
                seq,
                job_id: job.spec.id,
                kind: job.spec.kind.name().into(),
                n: job.spec.n as u64,
                decision: Decision::Drain.name(),
                reason: String::new(),
                q: job.q,
                remaining: st.budget - st.spent,
            });
            drained.push(job);
        }
        let total = st.budget;
        drop(tenants);
        self.log
            .lock()
            .expect("admission log poisoned")
            .extend(entries);
        (total, drained)
    }

    /// Decide one priced job. On `Accept` the budget is debited before
    /// this returns, so concurrent admits can never jointly overspend.
    /// While jobs are parked, new affordable jobs queue *behind* them —
    /// strict per-tenant FIFO, no jumping the line. Returns the decision
    /// and the tenant's remaining budget.
    pub fn admit(&self, tenant: &str, spec: &JobSpec, q: u64) -> (Decision, u64) {
        let mut tenants = self.tenants.lock().expect("admission poisoned");
        let st = tenants.entry(tenant.to_string()).or_default();
        let affordable = st.spent.saturating_add(q) <= st.budget;
        let decision = if st.queued.is_empty() && affordable {
            st.spent += q;
            st.accepted += 1;
            Decision::Accept
        } else if self.queue_over_budget {
            st.queued.push(QueuedJob {
                spec: spec.clone(),
                q,
            });
            Decision::Queue
        } else {
            st.rejected += 1;
            Decision::Reject
        };
        let remaining = st.budget.saturating_sub(st.spent);
        let entry = LogEntry {
            tenant: tenant.to_string(),
            seq: st.seq,
            job_id: spec.id,
            kind: spec.kind.name().into(),
            n: spec.n as u64,
            decision: decision.name(),
            reason: if decision == Decision::Accept {
                String::new()
            } else if affordable {
                "behind_queue".into()
            } else {
                "over_budget".into()
            },
            q,
            remaining,
        };
        st.seq += 1;
        drop(tenants);
        self.log.lock().expect("admission log poisoned").push(entry);
        (decision, remaining)
    }

    /// Record the rejection of a job whose spec could not even be priced.
    pub fn reject_invalid(&self, tenant: &str, spec: &JobSpec, reason: &str) -> u64 {
        let mut tenants = self.tenants.lock().expect("admission poisoned");
        let st = tenants.entry(tenant.to_string()).or_default();
        st.rejected += 1;
        let remaining = st.budget.saturating_sub(st.spent);
        let entry = LogEntry {
            tenant: tenant.to_string(),
            seq: st.seq,
            job_id: spec.id,
            kind: spec.kind.name().into(),
            n: spec.n as u64,
            decision: Decision::Reject.name(),
            reason: format!("bad_request: {reason}"),
            q: 0,
            remaining,
        };
        st.seq += 1;
        drop(tenants);
        self.log.lock().expect("admission log poisoned").push(entry);
        remaining
    }

    /// This tenant's admission counters.
    pub fn snapshot(&self, tenant: &str) -> TenantSnapshot {
        let tenants = self.tenants.lock().expect("admission poisoned");
        tenants
            .get(tenant)
            .map(|st| TenantSnapshot {
                budget: st.budget,
                spent: st.spent,
                accepted: st.accepted,
                rejected: st.rejected,
                queued: st.queued.len() as u64,
            })
            .unwrap_or_default()
    }

    /// The canonical admission log: JSONL sorted by `(tenant, seq)`.
    /// Byte-identical across same-seed runs regardless of scheduling.
    pub fn log_jsonl(&self) -> String {
        let mut entries = self.log.lock().expect("admission log poisoned").clone();
        entries.sort_by(|a, b| (a.tenant.as_str(), a.seq).cmp(&(b.tenant.as_str(), b.seq)));
        let mut out = String::new();
        for e in &entries {
            out.push_str(&e.to_json().to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Number of decisions logged so far.
    pub fn decisions(&self) -> usize {
        self.log.lock().expect("admission log poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::JobKind;

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            kind: JobKind::Sort,
            n: 64,
            mem: 64,
            block: 8,
            omega: 16,
            delta: 0,
            seed: 1,
            payload: false,
            backend: None,
        }
    }

    #[test]
    fn accept_debits_and_reject_does_not() {
        let adm = Admission::new(false);
        adm.hello("t", 100);
        let (d1, rem1) = adm.admit("t", &spec(1), 60);
        assert_eq!((d1, rem1), (Decision::Accept, 40));
        let (d2, rem2) = adm.admit("t", &spec(2), 41);
        assert_eq!((d2, rem2), (Decision::Reject, 40));
        let snap = adm.snapshot("t");
        assert_eq!((snap.spent, snap.accepted, snap.rejected), (60, 1, 1));
    }

    #[test]
    fn queue_then_topup_drains_fifo() {
        let adm = Admission::new(true);
        adm.hello("t", 50);
        assert_eq!(adm.admit("t", &spec(1), 40).0, Decision::Accept);
        assert_eq!(adm.admit("t", &spec(2), 30).0, Decision::Queue);
        assert_eq!(adm.admit("t", &spec(3), 5).0, Decision::Queue); // behind the head
        let (total, drained) = adm.hello("t", 100);
        assert_eq!(total, 150);
        let ids: Vec<u64> = drained.iter().map(|j| j.spec.id).collect();
        assert_eq!(ids, vec![2, 3], "FIFO drain order");
        assert_eq!(adm.snapshot("t").spent, 75);
    }

    #[test]
    fn unregistered_tenant_has_zero_budget() {
        let adm = Admission::new(false);
        let (d, rem) = adm.admit("ghost-tenant", &spec(1), 1);
        assert_eq!((d, rem), (Decision::Reject, 0));
    }

    #[test]
    fn log_is_sorted_by_tenant_then_seq() {
        let adm = Admission::new(false);
        adm.hello("b", 100);
        adm.hello("a", 100);
        adm.admit("b", &spec(1), 10);
        adm.admit("a", &spec(1), 10);
        adm.reject_invalid("a", &spec(2), "n must be positive");
        let log = adm.log_jsonl();
        let tenants: Vec<&str> = log
            .lines()
            .map(|l| {
                let j = aem_obs::json::parse(l).unwrap();
                if j.get("tenant").and_then(Json::as_str) == Some("a") {
                    "a"
                } else {
                    "b"
                }
            })
            .collect();
        assert_eq!(tenants, vec!["a", "a", "a", "b", "b"]);
        assert!(log.contains("bad_request: n must be positive"));
    }
}
