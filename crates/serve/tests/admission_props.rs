//! Admission-control property tests: over random budget/cost sequences,
//! accepted jobs' predicted costs never exceed the tenant budget, queue
//! drains preserve FIFO order, and the canonical log is independent of
//! cross-tenant interleaving.

use aem_serve::admission::{Admission, Decision};
use aem_serve::protocol::{JobKind, JobSpec};
use aem_workloads::SplitMix64;

fn spec(id: u64, kind: JobKind, n: usize) -> JobSpec {
    JobSpec {
        id,
        kind,
        n,
        mem: 64,
        block: 8,
        omega: 16,
        delta: 2,
        seed: 1,
        payload: false,
        backend: None,
    }
}

/// One tenant's randomized script: hellos (top-ups) and priced jobs.
#[derive(Debug, Clone)]
enum Op {
    Hello(u64),
    Job(u64 /* id */, u64 /* q */),
}

fn rand_script(rng: &mut SplitMix64, ops: usize) -> Vec<Op> {
    let mut out = vec![Op::Hello(rng.next_below(5_000))];
    let mut id = 1;
    for _ in 0..ops {
        if rng.next_f64() < 0.2 {
            out.push(Op::Hello(rng.next_below(3_000)));
        } else {
            out.push(Op::Job(id, rng.next_below(2_000)));
            id += 1;
        }
    }
    out
}

/// Replay a script against one tenant, tracking the ground truth.
fn replay(adm: &Admission, tenant: &str, script: &[Op]) {
    let mut budget = 0u64;
    let mut accepted_q = 0u64;
    let mut queued: Vec<(u64, u64)> = Vec::new(); // (id, q)
    for op in script {
        match *op {
            Op::Hello(b) => {
                let (total, drained) = adm.hello(tenant, b);
                budget += b;
                assert_eq!(total, budget, "cumulative budget");
                for j in &drained {
                    // FIFO: the drained ids must be the queue's prefix.
                    let (id, q) = queued.remove(0);
                    assert_eq!(j.spec.id, id, "drain order is FIFO");
                    assert_eq!(j.q, q);
                    accepted_q += q;
                }
                assert!(
                    accepted_q <= budget,
                    "INVARIANT: accepted {accepted_q} > budget {budget}"
                );
            }
            Op::Job(id, q) => {
                let s = spec(id, JobKind::Sort, 64);
                let (decision, remaining) = adm.admit(tenant, &s, q);
                match decision {
                    Decision::Accept => {
                        accepted_q += q;
                        assert!(queued.is_empty(), "no jumping a non-empty queue");
                    }
                    Decision::Queue => queued.push((id, q)),
                    Decision::Reject => {}
                    Decision::Drain => panic!("admit never returns Drain"),
                }
                assert!(
                    accepted_q <= budget,
                    "INVARIANT: accepted {accepted_q} > budget {budget}"
                );
                assert_eq!(remaining, budget - accepted_q, "remaining accounting");
            }
        }
    }
    let snap = adm.snapshot(tenant);
    assert_eq!(snap.budget, budget);
    assert_eq!(snap.spent, accepted_q);
    assert_eq!(snap.queued, queued.len() as u64);
}

#[test]
fn accepted_costs_never_exceed_budget_queueing_mode() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED);
    for round in 0..50 {
        let adm = Admission::new(true);
        let script = rand_script(&mut rng, 40);
        replay(&adm, &format!("t-{round}"), &script);
    }
}

#[test]
fn accepted_costs_never_exceed_budget_rejecting_mode() {
    let mut rng = SplitMix64::seed_from_u64(0xFEED);
    for round in 0..50 {
        let adm = Admission::new(false);
        let script = rand_script(&mut rng, 40);
        replay(&adm, &format!("t-{round}"), &script);
        assert_eq!(adm.snapshot(&format!("t-{round}")).queued, 0);
    }
}

#[test]
fn log_is_independent_of_cross_tenant_interleaving() {
    let mut rng = SplitMix64::seed_from_u64(0xD1CE);
    let scripts: Vec<Vec<Op>> = (0..4).map(|_| rand_script(&mut rng, 25)).collect();

    // Run 1: tenants strictly one after another.
    let serial = Admission::new(true);
    for (tix, script) in scripts.iter().enumerate() {
        replay(&serial, &format!("t-{tix}"), script);
    }

    // Run 2: same scripts, ops interleaved round-robin across tenants.
    let interleaved = Admission::new(true);
    let mut cursors: Vec<std::slice::Iter<Op>> = scripts.iter().map(|s| s.iter()).collect();
    let mut live = true;
    while live {
        live = false;
        for (tix, it) in cursors.iter_mut().enumerate() {
            if let Some(op) = it.next() {
                live = true;
                let tenant = format!("t-{tix}");
                match *op {
                    Op::Hello(b) => {
                        interleaved.hello(&tenant, b);
                    }
                    Op::Job(id, q) => {
                        interleaved.admit(&tenant, &spec(id, JobKind::Sort, 64), q);
                    }
                }
            }
        }
    }

    assert_eq!(
        serial.log_jsonl(),
        interleaved.log_jsonl(),
        "canonical admission log must not depend on interleaving"
    );
}

#[test]
fn concurrent_admits_on_one_tenant_never_overspend() {
    let adm = Admission::new(false);
    adm.hello("shared", 10_000);
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for i in 0..100 {
                    adm.admit("shared", &spec(i, JobKind::Sort, 64), 37);
                }
            });
        }
    });
    let snap = adm.snapshot("shared");
    assert!(snap.spent <= snap.budget, "overspent under contention");
    assert_eq!(snap.spent, 37 * snap.accepted);
    assert_eq!(snap.accepted + snap.rejected, 800);
}
