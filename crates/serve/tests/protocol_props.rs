//! Protocol property tests: encode/decode identity for every request and
//! response variant, and rejection (never a panic) of truncated,
//! oversized and malformed frames.

use aem_machine::Cost;
use aem_serve::protocol::{
    decode_frame, encode_frame, JobKind, JobOutcome, JobSpec, Request, Response, MAX_FRAME,
};
use aem_workloads::SplitMix64;

fn rand_string(rng: &mut SplitMix64) -> String {
    // Bias toward the characters JSON escaping must handle.
    let alphabet: Vec<char> = "abcXYZ 0189-_\"\\\n\t/✓é{}".chars().collect();
    let len = rng.next_below_usize(12);
    (0..len)
        .map(|_| alphabet[rng.next_below_usize(alphabet.len())])
        .collect()
}

fn rand_cost(rng: &mut SplitMix64) -> Cost {
    Cost::new(
        rng.next_u64() >> rng.next_below(64),
        rng.next_u64() >> rng.next_below(64),
    )
}

fn rand_spec(rng: &mut SplitMix64) -> JobSpec {
    JobSpec {
        id: rng.next_u64(),
        kind: JobKind::ALL[rng.next_below_usize(4)],
        n: rng.next_below_usize(1 << 30),
        mem: rng.next_below_usize(1 << 20),
        block: rng.next_below_usize(1 << 10),
        omega: rng.next_below(1 << 20),
        delta: rng.next_below_usize(64),
        seed: rng.next_u64(),
        payload: rng.next_bool(),
        backend: if rng.next_bool() {
            Some(["vec", "arena", "ghost", "trace"][rng.next_below_usize(4)].to_string())
        } else {
            None
        },
    }
}

fn rand_request(rng: &mut SplitMix64) -> Request {
    match rng.next_below(7) {
        0 => Request::Hello {
            tenant: rand_string(rng),
            budget: rng.next_u64(),
        },
        1 => Request::Job(rand_spec(rng)),
        2 => Request::Batch(
            (0..rng.next_below_usize(5))
                .map(|_| rand_spec(rng))
                .collect(),
        ),
        3 => Request::Quote(rand_spec(rng)),
        4 => Request::Stats,
        5 => Request::Metrics,
        _ => Request::Shutdown,
    }
}

fn rand_response(rng: &mut SplitMix64, depth: u32) -> Response {
    let top = if depth == 0 { 9 } else { 7 };
    match rng.next_below(top) {
        0 => Response::Done(JobOutcome {
            id: rng.next_u64(),
            algo: rand_string(rng),
            backend: rand_string(rng),
            predicted: rand_cost(rng),
            measured: rand_cost(rng),
            q: rng.next_u64(),
            checksum: rng.next_u64(),
        }),
        1 => Response::Quoted {
            id: rng.next_u64(),
            algo: rand_string(rng),
            predicted: rand_cost(rng),
            q: rng.next_u64(),
        },
        2 => Response::Rejected {
            id: rng.next_u64(),
            reason: rand_string(rng),
            q: rng.next_u64(),
            remaining: rng.next_u64(),
        },
        3 => Response::Queued {
            id: rng.next_u64(),
            q: rng.next_u64(),
        },
        4 => Response::Stats {
            tenant: rand_string(rng),
            budget: rng.next_u64(),
            spent: rng.next_u64(),
            accepted: rng.next_u64(),
            rejected: rng.next_u64(),
            queued: rng.next_u64(),
            quotes: rng.next_u64(),
            reads: rng.next_u64(),
            writes: rng.next_u64(),
        },
        5 => Response::Metrics {
            text: rand_string(rng),
        },
        6 => Response::Error {
            message: rand_string(rng),
        },
        7 => Response::HelloOk {
            budget: rng.next_u64(),
            drained: (0..rng.next_below_usize(4))
                .map(|_| rand_response(rng, depth + 1))
                .collect(),
        },
        _ => Response::Batch(
            (0..rng.next_below_usize(4))
                .map(|_| rand_response(rng, depth + 1))
                .collect(),
        ),
    }
}

#[test]
fn request_roundtrip_identity() {
    let mut rng = SplitMix64::seed_from_u64(0xA11CE);
    for i in 0..500 {
        let req = rand_request(&mut rng);
        let frame = encode_frame(&req.to_json());
        let (json, consumed) = decode_frame(&frame)
            .unwrap_or_else(|e| panic!("iter {i}: {e}"))
            .unwrap_or_else(|| panic!("iter {i}: incomplete"));
        assert_eq!(consumed, frame.len());
        let back = Request::from_json(&json).unwrap_or_else(|e| panic!("iter {i}: {e}"));
        assert_eq!(back, req, "iter {i}");
    }
}

#[test]
fn response_roundtrip_identity() {
    let mut rng = SplitMix64::seed_from_u64(0xB0B);
    for i in 0..500 {
        let resp = rand_response(&mut rng, 0);
        let frame = encode_frame(&resp.to_json());
        let (json, consumed) = decode_frame(&frame)
            .unwrap_or_else(|e| panic!("iter {i}: {e}"))
            .unwrap_or_else(|| panic!("iter {i}: incomplete"));
        assert_eq!(consumed, frame.len());
        let back = Response::from_json(&json).unwrap_or_else(|e| panic!("iter {i}: {e}"));
        assert_eq!(back, resp, "iter {i}");
    }
}

#[test]
fn truncated_frames_are_incomplete_never_panic() {
    let mut rng = SplitMix64::seed_from_u64(7);
    for _ in 0..50 {
        let frame = encode_frame(&rand_request(&mut rng).to_json());
        for cut in 0..frame.len() {
            // Every strict prefix either wants more bytes or (if the cut
            // lands inside a multi-byte char) is not yet decodable — but
            // a prefix can never be mistaken for a complete frame.
            match decode_frame(&frame[..cut]) {
                Ok(None) => {}
                Ok(Some(_)) => panic!("prefix of {cut} bytes decoded as complete"),
                Err(_) => panic!("prefix of {cut} bytes hard-errored (should want more)"),
            }
        }
    }
}

#[test]
fn oversized_announcements_are_rejected_before_allocation() {
    for len in [MAX_FRAME as u32 + 1, u32::MAX, 1 << 24] {
        let mut frame = len.to_be_bytes().to_vec();
        frame.extend_from_slice(b"xx");
        assert!(decode_frame(&frame).is_err(), "len={len} must be rejected");
    }
    // Exactly MAX_FRAME is allowed (content-wise it will still need bytes).
    let frame = (MAX_FRAME as u32).to_be_bytes().to_vec();
    assert!(matches!(decode_frame(&frame), Ok(None)));
}

#[test]
fn garbage_payloads_error_never_panic() {
    let mut rng = SplitMix64::seed_from_u64(99);
    for _ in 0..200 {
        let len = rng.next_below_usize(64);
        let mut frame = (len as u32).to_be_bytes().to_vec();
        for _ in 0..len {
            frame.push(rng.next_u64() as u8);
        }
        // Arbitrary bytes: any Ok(Some) must at least be real JSON that
        // then fails request parsing gracefully.
        if let Ok(Some((json, _))) = decode_frame(&frame) {
            let _ = Request::from_json(&json);
            let _ = Response::from_json(&json);
        }
    }
    // Valid length, invalid UTF-8.
    let mut frame = 2u32.to_be_bytes().to_vec();
    frame.extend_from_slice(&[0xFF, 0xFE]);
    assert!(decode_frame(&frame).is_err());
    // Valid UTF-8, invalid JSON.
    let body = b"{nope";
    let mut frame = (body.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(body);
    assert!(decode_frame(&frame).is_err());
}

#[test]
fn back_to_back_frames_decode_in_sequence() {
    let a = encode_frame(&Request::Stats.to_json());
    let b = encode_frame(&Request::Metrics.to_json());
    let mut buf = a.clone();
    buf.extend_from_slice(&b);
    let (j1, c1) = decode_frame(&buf).unwrap().unwrap();
    assert_eq!(Request::from_json(&j1).unwrap(), Request::Stats);
    let (j2, c2) = decode_frame(&buf[c1..]).unwrap().unwrap();
    assert_eq!(Request::from_json(&j2).unwrap(), Request::Metrics);
    assert_eq!(c1 + c2, buf.len());
}
