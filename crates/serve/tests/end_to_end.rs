//! End-to-end: boot the real server on a loopback socket, drive it with
//! real clients, and assert the determinism contract CI relies on — two
//! same-seed load runs produce byte-identical reports and admission logs.

use aem_serve::load::{run_load, LoadOptions};
use aem_serve::protocol::{exchange, JobKind, JobSpec, Request, Response};
use aem_serve::server::{serve, ServeOptions};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

struct Harness {
    addr: String,
    shutdown: &'static AtomicBool,
    thread: Option<std::thread::JoinHandle<Result<String, String>>>,
    dir: std::path::PathBuf,
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("aem-serve-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn boot(tag: &str, queue_over_budget: bool) -> Harness {
    let dir = tmp_dir(tag);
    let addr_file = dir.join("addr");
    let _ = std::fs::remove_file(&addr_file);
    let opts = ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_over_budget,
        admission_log: Some(dir.join("admission.jsonl").to_str().unwrap().into()),
        metering_out: Some(dir.join("metering.jsonl").to_str().unwrap().into()),
        prom_out: Some(dir.join("metrics.prom").to_str().unwrap().into()),
        addr_file: Some(addr_file.to_str().unwrap().into()),
    };
    // Each harness leaks one flag; tests build a handful, which is fine.
    let shutdown: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let thread = std::thread::spawn(move || serve(&opts, shutdown));
    let addr = {
        let mut tries = 0;
        loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                if s.trim().contains(':') {
                    break s.trim().to_string();
                }
            }
            tries += 1;
            assert!(tries < 200, "server never wrote its address file");
            std::thread::sleep(Duration::from_millis(25));
        }
    };
    Harness {
        addr,
        shutdown,
        thread: Some(thread),
        dir,
    }
}

impl Harness {
    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(&self.addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        s
    }

    fn stop(&mut self) -> String {
        self.shutdown.store(true, Ordering::SeqCst);
        self.thread
            .take()
            .expect("not yet stopped")
            .join()
            .expect("server thread panicked")
            .expect("serve returned an error")
    }

    fn file(&self, name: &str) -> String {
        std::fs::read_to_string(self.dir.join(name)).unwrap_or_default()
    }
}

fn spec(id: u64, kind: JobKind, n: usize, payload: bool) -> JobSpec {
    JobSpec {
        id,
        kind,
        n,
        mem: 64,
        block: 8,
        omega: 16,
        delta: 2,
        seed: 5,
        payload,
        backend: None,
    }
}

#[test]
fn basic_session_prices_admits_and_meters() {
    let mut h = boot("basic", false);
    let mut c = h.connect();

    // No hello yet: jobs are refused, shutdown-less requests error.
    let r = exchange(&mut c, &Request::Stats).unwrap();
    assert!(matches!(r, Response::Error { .. }));

    let r = exchange(
        &mut c,
        &Request::Hello {
            tenant: "alice".into(),
            budget: 1_000_000,
        },
    )
    .unwrap();
    assert!(matches!(
        r,
        Response::HelloOk {
            budget: 1_000_000,
            ..
        }
    ));

    // A quote prices without debiting.
    let q = exchange(&mut c, &Request::Quote(spec(1, JobKind::Sort, 512, false))).unwrap();
    let quoted_q = match q {
        Response::Quoted { q, .. } => q,
        other => panic!("expected quote, got {other:?}"),
    };
    assert!(quoted_q > 0);

    // The same job executed: predicted must match the quote, measured is
    // a real metered cost, and the budget was debited by the prediction.
    let r = exchange(&mut c, &Request::Job(spec(2, JobKind::Sort, 512, true))).unwrap();
    let (predicted, measured) = match r {
        Response::Done(o) => {
            assert_eq!(o.id, 2);
            assert_ne!(o.checksum, 0);
            (o.predicted, o.measured)
        }
        other => panic!("expected done, got {other:?}"),
    };
    assert_eq!(predicted.q_saturating(16), quoted_q);
    assert!(measured.total_ios() > 0);

    let r = exchange(&mut c, &Request::Stats).unwrap();
    match r {
        Response::Stats {
            spent,
            accepted,
            quotes,
            reads,
            writes,
            ..
        } => {
            assert_eq!(spent, quoted_q);
            assert_eq!(accepted, 1);
            assert_eq!(quotes, 1);
            assert_eq!((reads, writes), (measured.reads, measured.writes));
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // Batches reply in declaration order.
    let batch = vec![
        spec(10, JobKind::Permute, 256, true),
        spec(11, JobKind::Sort, 0, true), // invalid: n = 0
        spec(12, JobKind::Pq, 256, false),
    ];
    let r = exchange(&mut c, &Request::Batch(batch)).unwrap();
    match r {
        Response::Batch(rs) => {
            assert_eq!(rs.len(), 3);
            assert!(matches!(&rs[0], Response::Done(o) if o.id == 10));
            assert!(
                matches!(&rs[1], Response::Rejected { id: 11, reason, .. } if reason.starts_with("bad_request"))
            );
            assert!(matches!(&rs[2], Response::Done(o) if o.id == 12));
        }
        other => panic!("expected batch, got {other:?}"),
    }

    let summary = h.stop();
    assert!(summary.contains("drained cleanly"), "{summary}");
    let log = h.file("admission.jsonl");
    assert!(log.contains("\"decision\":\"accept\""));
    assert!(log.contains("bad_request"));
    let metering = h.file("metering.jsonl");
    assert!(metering.contains("\"tenant\":\"alice\""));
    let prom = h.file("metrics.prom");
    assert!(prom.contains("aem_serve_q_total{tenant=\"alice\"}"));
}

#[test]
fn over_budget_jobs_queue_and_drain_on_topup() {
    let mut h = boot("queue", true);
    let mut c = h.connect();

    exchange(
        &mut c,
        &Request::Hello {
            tenant: "bob".into(),
            budget: 10,
        },
    )
    .unwrap();

    // Far beyond 10 units of Q: parked, not rejected.
    let r = exchange(&mut c, &Request::Job(spec(1, JobKind::Sort, 1024, false))).unwrap();
    let parked_q = match r {
        Response::Queued { id: 1, q } => q,
        other => panic!("expected queued, got {other:?}"),
    };

    // Top up enough to cover it: the hello carries the drained outcome.
    let r = exchange(
        &mut c,
        &Request::Hello {
            tenant: "bob".into(),
            budget: parked_q + 1_000,
        },
    )
    .unwrap();
    match r {
        Response::HelloOk { drained, .. } => {
            assert_eq!(drained.len(), 1);
            assert!(matches!(&drained[0], Response::Done(o) if o.id == 1));
        }
        other => panic!("expected hello_ok, got {other:?}"),
    }

    h.stop();
    let log = h.file("admission.jsonl");
    assert!(log.contains("\"decision\":\"queue\""));
    assert!(log.contains("\"decision\":\"drain\""));
}

#[test]
fn shutdown_frame_stops_the_server() {
    let mut h = boot("shutdown-frame", false);
    let mut c = h.connect();
    let r = exchange(&mut c, &Request::Shutdown).unwrap();
    assert!(matches!(r, Response::Bye));
    // The accept loop observes the flag and serve() returns on its own;
    // stop() then just joins (the flag is already set).
    let summary = h.stop();
    assert!(summary.contains("drained cleanly"));
}

#[test]
fn same_seed_load_runs_are_byte_identical() {
    let seed = 20_260_808;

    let mut h1 = boot("det-1", true);
    let report1 = run_load(&LoadOptions {
        addr: h1.addr.clone(),
        tenants: 4,
        jobs: 8,
        seed,
    })
    .expect("load run 1");
    h1.stop();
    let log1 = h1.file("admission.jsonl");

    let mut h2 = boot("det-2", true);
    let report2 = run_load(&LoadOptions {
        addr: h2.addr.clone(),
        tenants: 4,
        jobs: 8,
        seed,
    })
    .expect("load run 2");
    h2.stop();
    let log2 = h2.file("admission.jsonl");

    assert_eq!(report1, report2, "load reports must be byte-identical");
    assert_eq!(log1, log2, "admission logs must be byte-identical");
    assert!(!log1.is_empty());

    // And a different seed genuinely changes the traffic.
    let mut h3 = boot("det-3", true);
    let report3 = run_load(&LoadOptions {
        addr: h3.addr.clone(),
        tenants: 4,
        jobs: 8,
        seed: seed + 1,
    })
    .expect("load run 3");
    h3.stop();
    assert_ne!(report1, report3, "different seeds must differ");
}
