//! Property tests of the storage-backend contract under random operation
//! sequences (the backend counterpart of `machine_props.rs`):
//!
//! * the [`ArenaStore`] free list never aliases a live block — buffer
//!   recycling must be invisible to clients, and a pooled buffer that is
//!   simultaneously a block slot would let a later read scribble over
//!   stored data;
//! * the [`GhostStore`] machine accepts and rejects *exactly* the
//!   operations the [`VecStore`] machine does, with the same
//!   [`MachineError`] variant and the same meter — the contract that makes
//!   cost-only ghost sweeps sound.
//!
//! Randomness is the workspace's seeded [`SplitMix64`]; every case is
//! deterministic and reproduces without an external shrinker.

use aem_machine::{
    AemAccess, AemConfig, ArenaMachine, ArenaStore, BlockId, BlockStore, GhostMachine, Machine,
};
use aem_workloads::SplitMix64;

/// A random client action, mirrored verbatim onto two machines (or driven
/// against one store). Indices intentionally run past the allocated range
/// so the `BadBlock` paths are exercised, and write lengths run past `B`
/// so `BlockOverflow` is too.
#[derive(Debug, Clone, Copy)]
enum Action {
    Read(usize),
    WriteHeld(usize, usize),
    Discard(usize),
    Reserve(usize),
}

fn random_action(rng: &mut SplitMix64) -> Action {
    match rng.next_below(4) {
        0 => Action::Read(rng.next_below_usize(24)),
        1 => Action::WriteHeld(rng.next_below_usize(8), rng.next_below_usize(24)),
        2 => Action::Discard(rng.next_below_usize(8)),
        _ => Action::Reserve(rng.next_below_usize(8)),
    }
}

/// No pooled (free) buffer is ever also the backing buffer of a live
/// block, by pointer identity. Capacity-0 vectors all share the same
/// dangling pointer, so only buffers with real allocations participate.
fn audit_no_aliasing(store: &ArenaStore<u32>, case: u64, step: usize) {
    let live: Vec<*const u32> = store
        .block_ptrs()
        .into_iter()
        .zip(store.block_capacities())
        .filter(|&(_, cap)| cap > 0)
        .map(|(p, _)| p)
        .collect();
    let pooled: Vec<*const u32> = store
        .pool_ptrs()
        .into_iter()
        .zip(store.pool_capacities())
        .filter(|&(_, cap)| cap > 0)
        .map(|(p, _)| p)
        .collect();
    for p in &pooled {
        assert!(
            !live.contains(p),
            "case {case} step {step}: pooled buffer {p:?} aliases a live block"
        );
    }
    // A buffer pooled twice would be handed out twice later — the
    // use-after-free shape of this bug class.
    let mut uniq = pooled.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(
        uniq.len(),
        pooled.len(),
        "case {case} step {step}: duplicate buffer on the free list"
    );
}

#[test]
fn arena_freelist_never_aliases_live_blocks() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0xa12e7a + case);
        let n_actions = rng.next_below_usize(120);
        let cfg = AemConfig::new(24, 4, 3).unwrap();
        let mut m: ArenaMachine<u32> = ArenaMachine::new(cfg);
        let region = m.install(&(0..48u32).collect::<Vec<_>>());
        let mut held: usize = 0;

        for step in 0..n_actions {
            match random_action(&mut rng) {
                Action::Read(i) => {
                    if let Ok(data) = m.read_block(BlockId(i)) {
                        held += data.len();
                        // Dropping `data` here (instead of writing it back)
                        // is deliberate: the pooled-buffer path must stay
                        // sound even when clients leak read buffers.
                        if m.discard(data.len()).is_err() {
                            held -= data.len();
                        }
                    }
                }
                Action::WriteHeld(k, b) => {
                    let k = k.min(held);
                    if m.write_block(BlockId(b), vec![7u32; k]).is_ok() {
                        held -= k;
                    }
                }
                Action::Discard(k) => {
                    if m.discard(k).is_ok() {
                        held = held.saturating_sub(k);
                    }
                }
                Action::Reserve(k) => {
                    if m.reserve(k).is_ok() {
                        held += k;
                    }
                }
            }
            audit_no_aliasing(m.data_store(), case, step);
        }
        // Inspect agrees with the per-block occupancies (random writes may
        // legitimately have shrunk blocks; what recycling must never do is
        // corrupt the mapping from blocks to their buffers).
        let occupancy_sum: usize = region.iter().map(|id| m.block_len(id).unwrap()).sum();
        assert_eq!(m.inspect(region).len(), occupancy_sum, "case {case}");
    }
}

/// Raw-store variant: `read` pops pooled buffers and `write` pushes the
/// displaced ones, the highest-churn path for the free list.
#[test]
fn arena_store_pool_cycles_without_aliasing() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x5704ab + case);
        let n_actions = rng.next_below_usize(150);
        let mut s: ArenaStore<u32> = BlockStore::new_store(4);
        let r = s.install(&(0..40u32).collect::<Vec<_>>());
        let mut outstanding: Vec<Vec<u32>> = Vec::new();

        for step in 0..n_actions {
            let blk = BlockId(rng.next_below_usize(r.blocks + 3));
            match rng.next_below(3) {
                0 => {
                    if let Ok(buf) = BlockStore::read(&mut s, blk) {
                        outstanding.push(buf);
                    }
                }
                1 => {
                    let data = outstanding
                        .pop()
                        .unwrap_or_else(|| vec![1; rng.next_below_usize(5)]);
                    let _ = s.write(blk, data);
                }
                _ => {
                    s.alloc();
                }
            }
            audit_no_aliasing(&s, case, step);
        }
    }
}

#[test]
fn ghost_rejects_exactly_where_vec_does() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x6057ed + case);
        let n_actions = rng.next_below_usize(120);
        let cfg = AemConfig::new(24, 4, 3).unwrap();
        let input: Vec<u32> = (0..48u32).collect();
        let mut vec_m: Machine<u32> = Machine::new(cfg);
        let mut ghost_m: GhostMachine<u32> = GhostMachine::new(cfg);
        let vr = vec_m.install(&input);
        let gr = ghost_m.install(&input);
        assert_eq!(
            (vr.first, vr.blocks, vr.elems),
            (gr.first, gr.blocks, gr.elems)
        );
        let mut held: usize = 0;

        for step in 0..n_actions {
            match random_action(&mut rng) {
                Action::Read(i) => {
                    // Same block id on both; beyond-region ids probe BadBlock.
                    let v = vec_m.read_block(BlockId(i)).map(|d| d.len());
                    let g = ghost_m.read_block(BlockId(i)).map(|d| d.len());
                    assert_eq!(v, g, "case {case} step {step}: read divergence");
                    if let Ok(len) = v {
                        held += len;
                    }
                }
                Action::WriteHeld(k, b) => {
                    // k can exceed both the held count (InternalUnderflow)
                    // and B (BlockOverflow); the winning error must match.
                    let v = vec_m.write_block(BlockId(b), vec![9u32; k]);
                    let g = ghost_m.write_block(BlockId(b), vec![9u32; k]);
                    assert_eq!(v, g, "case {case} step {step}: write divergence");
                    if v.is_ok() {
                        held -= k;
                    }
                }
                Action::Discard(k) => {
                    let v = vec_m.discard(k);
                    let g = ghost_m.discard(k);
                    assert_eq!(v, g, "case {case} step {step}: discard divergence");
                    if v.is_ok() {
                        held = held.saturating_sub(k);
                    }
                }
                Action::Reserve(k) => {
                    let v = vec_m.reserve(k);
                    let g = ghost_m.reserve(k);
                    assert_eq!(v, g, "case {case} step {step}: reserve divergence");
                    if v.is_ok() {
                        held += k;
                    }
                }
            }
            // The meter and the ledger never diverge either — the whole
            // point of a ghost run is that its Q_r/Q_w are the real ones.
            assert_eq!(vec_m.cost(), ghost_m.cost(), "case {case} step {step}");
            assert_eq!(
                vec_m.internal_used(),
                ghost_m.internal_used(),
                "case {case} step {step}"
            );
            // And per-block occupancy agrees everywhere, including on
            // unallocated ids (same BadBlock).
            let probe = BlockId(rng.next_below_usize(vr.blocks + 3));
            assert_eq!(
                vec_m.block_len(probe),
                ghost_m.block_len(probe),
                "case {case} step {step}"
            );
        }
        let _ = held;
    }
}
