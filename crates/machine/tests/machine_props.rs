//! Property tests of the machine invariants under random operation
//! sequences: whatever a (well- or ill-behaved) client does, the simulator
//! either performs a legal model step or rejects it — and its bookkeeping
//! never drifts.

use aem_machine::{AemAccess, AemConfig, AtomId, AtomMachine, BlockId, Machine};
use proptest::prelude::*;

/// A random client action against the copy-semantics machine.
#[derive(Debug, Clone)]
enum Action {
    Read(usize),
    WriteHeld(usize, usize), // (held count to write, target block)
    Discard(usize),
    Reserve(usize),
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..16).prop_map(Action::Read),
        ((0usize..10), (0usize..16)).prop_map(|(k, b)| Action::WriteHeld(k, b)),
        (0usize..10).prop_map(Action::Discard),
        (0usize..10).prop_map(Action::Reserve),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ledger equals the sum of successful charges minus releases, and
    /// never exceeds M — no sequence of (possibly failing) operations can
    /// corrupt it.
    #[test]
    fn ledger_never_drifts(actions in proptest::collection::vec(arb_action(), 0..120)) {
        let cfg = AemConfig::new(24, 4, 3).unwrap();
        let mut m: Machine<u32> = Machine::new(cfg);
        let region = m.install(&(0..64u32).collect::<Vec<_>>());
        let mut expected: usize = 0; // our shadow ledger
        let mut held: usize = 0;     // elements conceptually held by client

        for a in actions {
            match a {
                Action::Read(i) => {
                    let id = region.block(i % region.blocks);
                    if let Ok(data) = m.read_block(id) {
                        expected += data.len();
                        held += data.len();
                    } // a rejected read changes no state
                }
                Action::WriteHeld(k, b) => {
                    let k = k.min(held).min(cfg.block);
                    let target = BlockId((b % region.blocks) + region.first);
                    if m.write_block(target, vec![9u32; k]).is_ok() {
                        expected -= k;
                        held -= k;
                    }
                }
                Action::Discard(k) => {
                    if m.discard(k).is_ok() {
                        expected -= k;
                        held = held.saturating_sub(k);
                    }
                }
                Action::Reserve(k) => {
                    if m.reserve(k).is_ok() {
                        expected += k;
                        held += k;
                    }
                }
            }
            prop_assert_eq!(m.internal_used(), expected);
            prop_assert!(m.internal_used() <= cfg.memory);
        }
    }

    /// Atom conservation: no sequence of legal atom-machine operations can
    /// create or destroy atoms — the union of external and internal atoms
    /// is always exactly the input set.
    #[test]
    fn atoms_are_conserved(
        ops in proptest::collection::vec((0usize..8, 0u64..32, any::<bool>()), 0..80),
    ) {
        let cfg = AemConfig::new(16, 4, 2).unwrap();
        let mut m = AtomMachine::new(cfg);
        let region = m.install_atoms(32);
        let extra: Vec<BlockId> = (0..4).map(|_| m.alloc_block()).collect();

        for (blk, atom, write) in ops {
            if write {
                // Try to write some currently-internal atoms out.
                let resident = m.internal_atoms();
                if !resident.is_empty() {
                    let take: Vec<AtomId> =
                        resident.into_iter().take(cfg.block).collect();
                    let target = extra[blk % extra.len()];
                    let _ = m.write(target, take);
                }
            } else {
                let id = region.block(blk % region.blocks);
                let _ = m.read_keep(id, &[AtomId(atom)]);
            }

            // Conservation check.
            let mut all: Vec<AtomId> = m.internal_atoms();
            for b in region.iter().chain(extra.iter().copied()) {
                all.extend(m.inspect_block(b).unwrap());
            }
            all.sort_unstable();
            let want: Vec<AtomId> = (0..32).map(AtomId).collect();
            prop_assert_eq!(all, want, "atoms created or destroyed");
        }
    }

    /// Round decomposition invariants hold for arbitrary traces.
    #[test]
    fn round_decompose_invariants(
        ops in proptest::collection::vec((any::<bool>(), 0usize..32), 0..200),
        omega in 1u64..32,
    ) {
        use aem_machine::rounds::round_decompose;
        use aem_machine::{IoEvent, Trace};
        let cfg = AemConfig::new(32, 4, omega).unwrap();
        let mut t = Trace::new();
        for (w, b) in ops {
            if w {
                t.push(IoEvent::Write { block: BlockId(b), len: 4, aux: false });
            } else {
                t.push(IoEvent::Read { block: BlockId(b), len: 4, aux: false });
            }
        }
        let rounds = round_decompose(&t, cfg);
        // Partition, budget, and minimum-cost invariants.
        let mut next = 0usize;
        for (i, r) in rounds.iter().enumerate() {
            prop_assert_eq!(r.start, next);
            next = r.end;
            prop_assert!(r.cost <= cfg.round_budget());
            if i + 1 < rounds.len() {
                prop_assert!(r.cost > cfg.round_budget().saturating_sub(omega));
            }
        }
        prop_assert_eq!(next, t.len());
        // Cost is preserved by the decomposition.
        let total: u64 = rounds.iter().map(|r| r.cost).sum();
        prop_assert_eq!(total, t.cost().q(omega));
    }
}
