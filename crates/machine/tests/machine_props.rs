//! Property tests of the machine invariants under random operation
//! sequences: whatever a (well- or ill-behaved) client does, the simulator
//! either performs a legal model step or rejects it — and its bookkeeping
//! never drifts.
//!
//! Randomness is driven by the workspace's seeded [`SplitMix64`] generator:
//! each property runs a fixed number of deterministic cases, so failures
//! reproduce exactly without an external shrinker.

use aem_machine::{
    with_backend_machine, AemAccess, AemConfig, AtomId, AtomMachine, Backend, BlockId, Cost,
    Machine, TraceMachine,
};
use aem_workloads::SplitMix64;

/// A random client action against the copy-semantics machine.
#[derive(Debug, Clone)]
enum Action {
    Read(usize),
    WriteHeld(usize, usize), // (held count to write, target block)
    Discard(usize),
    Reserve(usize),
}

fn random_action(rng: &mut SplitMix64) -> Action {
    match rng.next_below(4) {
        0 => Action::Read(rng.next_below_usize(16)),
        1 => Action::WriteHeld(rng.next_below_usize(10), rng.next_below_usize(16)),
        2 => Action::Discard(rng.next_below_usize(10)),
        _ => Action::Reserve(rng.next_below_usize(10)),
    }
}

/// The ledger equals the sum of successful charges minus releases, and
/// never exceeds M — no sequence of (possibly failing) operations can
/// corrupt it.
#[test]
fn ledger_never_drifts() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x1ed6e5 + case);
        let n_actions = rng.next_below_usize(120);
        let cfg = AemConfig::new(24, 4, 3).unwrap();
        let mut m: Machine<u32> = Machine::new(cfg);
        let region = m.install(&(0..64u32).collect::<Vec<_>>());
        let mut expected: usize = 0; // our shadow ledger
        let mut held: usize = 0; // elements conceptually held by client

        for _ in 0..n_actions {
            match random_action(&mut rng) {
                Action::Read(i) => {
                    let id = region.block(i % region.blocks);
                    if let Ok(data) = m.read_block(id) {
                        expected += data.len();
                        held += data.len();
                    } // a rejected read changes no state
                }
                Action::WriteHeld(k, b) => {
                    let k = k.min(held).min(cfg.block);
                    let target = BlockId((b % region.blocks) + region.first);
                    if m.write_block(target, vec![9u32; k]).is_ok() {
                        expected -= k;
                        held -= k;
                    }
                }
                Action::Discard(k) => {
                    if m.discard(k).is_ok() {
                        expected -= k;
                        held = held.saturating_sub(k);
                    }
                }
                Action::Reserve(k) => {
                    if m.reserve(k).is_ok() {
                        expected += k;
                        held += k;
                    }
                }
            }
            assert_eq!(m.internal_used(), expected, "case {case}");
            assert!(m.internal_used() <= cfg.memory, "case {case}");
        }
    }
}

/// Round-trip a script of random runs through one machine: `reserve`,
/// write the run out, read it back, `discard`. With `bulk` the run moves
/// through `write_run`/`read_run`; without, through the per-block loop
/// they must be accounting-equivalent to (`docs/COST_MODEL.md` §2).
fn drive_runs<M: AemAccess<u32>>(
    mut m: M,
    script: &[Vec<u32>],
    bulk: bool,
) -> (Cost, usize, Vec<u32>) {
    let b = m.cfg().block;
    let mut payload = Vec::new();
    for data in script {
        let r = m.alloc_region(data.len());
        m.reserve(data.len()).unwrap();
        if bulk {
            assert_eq!(m.write_run(r.block(0), data).unwrap(), r.blocks);
        } else {
            for (i, chunk) in data.chunks(b).enumerate() {
                m.write_block(r.block(i), chunk.to_vec()).unwrap();
            }
        }
        let mut buf = Vec::new();
        let total = if bulk {
            m.read_run(r.block(0), r.blocks, &mut buf).unwrap()
        } else {
            let mut tmp = Vec::new();
            let mut total = 0;
            for i in 0..r.blocks {
                total += m.read_block_into(r.block(i), &mut tmp).unwrap();
                buf.append(&mut tmp);
            }
            total
        };
        assert_eq!(total, data.len());
        payload.extend_from_slice(&buf);
        m.discard(total).unwrap();
    }
    (m.cost(), m.internal_used(), payload)
}

/// Bulk `read_run`/`write_run` agree with the per-block loop on *every*
/// backend under random run scripts: exactly equal `(Q, ledger)` and
/// byte-identical payloads where the backend carries them.
#[test]
fn bulk_runs_match_per_block_loops_on_random_runs() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::seed_from_u64(0xb01c + case);
        let b = [1usize, 2, 4, 8][rng.next_below_usize(4)];
        let cap_blocks = 2 + rng.next_below_usize(7); // M/B ∈ 2..=8
        let cfg = AemConfig::new(b * cap_blocks, b, 1 + rng.next_below(16)).unwrap();
        // Random runs that fit the whole-run budget (read_run holds the
        // entire run's occupancy at once).
        let script: Vec<Vec<u32>> = (0..1 + rng.next_below_usize(6))
            .map(|_| {
                let elems = 1 + rng.next_below_usize(cfg.memory);
                (0..elems as u32)
                    .map(|i| i.wrapping_mul(0x9e3d_79b9))
                    .collect()
            })
            .collect();

        let reference = drive_runs(Machine::<u32>::new(cfg), &script, false);
        for backend in Backend::ALL {
            let got =
                with_backend_machine!(backend, u32, |M| drive_runs(M::new(cfg), &script, true));
            assert_eq!(reference.0, got.0, "case {case} {backend}: cost");
            assert_eq!(reference.1, got.1, "case {case} {backend}: ledger");
            if backend.carries_payload() {
                assert_eq!(reference.2, got.2, "case {case} {backend}: payload");
            } else {
                assert_eq!(
                    reference.2.len(),
                    got.2.len(),
                    "case {case} {backend}: length"
                );
            }
        }
    }
}

/// The fused `exchange_block_into` equals the decomposed `discard` +
/// `read_block_into` pair under random gather sequences, on every
/// backend — same cost, same ledger, same payload.
#[test]
fn exchange_matches_decomposed_pair_on_random_gathers() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::seed_from_u64(0xe8c4 + case);
        let cfg = AemConfig::new(24, 4, 1 + rng.next_below(16)).unwrap();
        let input: Vec<u32> = (0..32).map(|i| i * 7 + case as u32).collect();
        let gathers: Vec<usize> = (0..1 + rng.next_below_usize(40))
            .map(|_| rng.next_below_usize(8))
            .collect();

        // Reference: the decomposed pair on the vec machine.
        let mut pair: Machine<u32> = Machine::new(cfg);
        let pr = pair.install(&input);
        let mut pbuf = Vec::new();
        for &i in &gathers {
            if !pbuf.is_empty() {
                pair.discard(pbuf.len()).unwrap();
            }
            pair.read_block_into(pr.block(i), &mut pbuf).unwrap();
        }
        let reference = (pair.cost(), pair.internal_used(), pbuf);

        for backend in Backend::ALL {
            let got = with_backend_machine!(backend, u32, |M| {
                let mut m = M::new(cfg);
                let r = m.install(&input);
                let mut buf = Vec::new();
                for &i in &gathers {
                    m.exchange_block_into(r.block(i), &mut buf).unwrap();
                }
                (m.cost(), m.internal_used(), buf)
            });
            assert_eq!(reference.0, got.0, "case {case} {backend}: cost");
            assert_eq!(reference.1, got.1, "case {case} {backend}: ledger");
            if backend.carries_payload() {
                assert_eq!(reference.2, got.2, "case {case} {backend}: payload");
            }
        }
    }
}

/// Arithmetic replay equals the live meter for random (possibly
/// failing) operation sequences: failed ops record nothing, successful
/// ones record exactly what the meter charged.
#[test]
fn replay_matches_live_meter_under_random_ops() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x4e91a7 + case);
        let n_actions = rng.next_below_usize(120);
        let cfg = AemConfig::new(24, 4, 3).unwrap();
        let mut m: TraceMachine<u32> = TraceMachine::new(cfg);
        let region = m.install(&(0..64u32).collect::<Vec<_>>());
        let mut held: usize = 0;
        for _ in 0..n_actions {
            match random_action(&mut rng) {
                Action::Read(i) => {
                    if let Ok(data) = m.read_block(region.block(i % region.blocks)) {
                        held += data.len();
                    }
                }
                Action::WriteHeld(k, b) => {
                    let k = k.min(held).min(cfg.block);
                    let target = BlockId((b % region.blocks) + region.first);
                    if m.write_block(target, vec![9u32; k]).is_ok() {
                        held -= k;
                    }
                }
                Action::Discard(k) => {
                    if m.discard(k).is_ok() {
                        held = held.saturating_sub(k);
                    }
                }
                Action::Reserve(k) => {
                    if m.reserve(k).is_ok() {
                        held += k;
                    }
                }
            }
            assert!(m.verify_replay(), "case {case}");
        }
        let live = m.cost();
        assert_eq!(m.into_schedule().replay(), live, "case {case}");
    }
}

/// Atom conservation: no sequence of legal atom-machine operations can
/// create or destroy atoms — the union of external and internal atoms
/// is always exactly the input set.
#[test]
fn atoms_are_conserved() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0xa70f5 + case);
        let n_ops = rng.next_below_usize(80);
        let cfg = AemConfig::new(16, 4, 2).unwrap();
        let mut m = AtomMachine::new(cfg);
        let region = m.install_atoms(32);
        let extra: Vec<BlockId> = (0..4).map(|_| m.alloc_block()).collect();

        for _ in 0..n_ops {
            let blk = rng.next_below_usize(8);
            let atom = rng.next_below(32);
            let write = rng.next_bool();
            if write {
                // Try to write some currently-internal atoms out.
                let resident = m.internal_atoms();
                if !resident.is_empty() {
                    let take: Vec<AtomId> = resident.into_iter().take(cfg.block).collect();
                    let target = extra[blk % extra.len()];
                    let _ = m.write(target, take);
                }
            } else {
                let id = region.block(blk % region.blocks);
                let _ = m.read_keep(id, &[AtomId(atom)]);
            }

            // Conservation check.
            let mut all: Vec<AtomId> = m.internal_atoms();
            for b in region.iter().chain(extra.iter().copied()) {
                all.extend(m.inspect_block(b).unwrap());
            }
            all.sort_unstable();
            let want: Vec<AtomId> = (0..32).map(AtomId).collect();
            assert_eq!(all, want, "case {case}: atoms created or destroyed");
        }
    }
}

/// Round decomposition invariants hold for arbitrary traces.
#[test]
fn round_decompose_invariants() {
    use aem_machine::rounds::round_decompose;
    use aem_machine::{IoEvent, Trace};
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x60bd5 + case);
        let n_ops = rng.next_below_usize(200);
        let omega = 1 + rng.next_below(31);
        let cfg = AemConfig::new(32, 4, omega).unwrap();
        let mut t = Trace::new();
        for _ in 0..n_ops {
            let b = rng.next_below_usize(32);
            if rng.next_bool() {
                t.push(IoEvent::Write {
                    block: BlockId(b),
                    len: 4,
                    aux: false,
                });
            } else {
                t.push(IoEvent::Read {
                    block: BlockId(b),
                    len: 4,
                    aux: false,
                });
            }
        }
        let rounds = round_decompose(&t, cfg);
        // Partition, budget, and minimum-cost invariants.
        let mut next = 0usize;
        for (i, r) in rounds.iter().enumerate() {
            assert_eq!(r.start, next, "case {case}");
            next = r.end;
            assert!(r.cost <= cfg.round_budget(), "case {case}");
            if i + 1 < rounds.len() {
                assert!(
                    r.cost > cfg.round_budget().saturating_sub(omega),
                    "case {case}"
                );
            }
        }
        assert_eq!(next, t.len(), "case {case}");
        // Cost is preserved by the decomposition.
        let total: u64 = rounds.iter().map(|r| r.cost).sum();
        assert_eq!(total, t.cost().q(omega), "case {case}");
    }
}
