//! Property tests of the machine invariants under random operation
//! sequences: whatever a (well- or ill-behaved) client does, the simulator
//! either performs a legal model step or rejects it — and its bookkeeping
//! never drifts.
//!
//! Randomness is driven by the workspace's seeded [`SplitMix64`] generator:
//! each property runs a fixed number of deterministic cases, so failures
//! reproduce exactly without an external shrinker.

use aem_machine::{AemAccess, AemConfig, AtomId, AtomMachine, BlockId, Machine};
use aem_workloads::SplitMix64;

/// A random client action against the copy-semantics machine.
#[derive(Debug, Clone)]
enum Action {
    Read(usize),
    WriteHeld(usize, usize), // (held count to write, target block)
    Discard(usize),
    Reserve(usize),
}

fn random_action(rng: &mut SplitMix64) -> Action {
    match rng.next_below(4) {
        0 => Action::Read(rng.next_below_usize(16)),
        1 => Action::WriteHeld(rng.next_below_usize(10), rng.next_below_usize(16)),
        2 => Action::Discard(rng.next_below_usize(10)),
        _ => Action::Reserve(rng.next_below_usize(10)),
    }
}

/// The ledger equals the sum of successful charges minus releases, and
/// never exceeds M — no sequence of (possibly failing) operations can
/// corrupt it.
#[test]
fn ledger_never_drifts() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x1ed6e5 + case);
        let n_actions = rng.next_below_usize(120);
        let cfg = AemConfig::new(24, 4, 3).unwrap();
        let mut m: Machine<u32> = Machine::new(cfg);
        let region = m.install(&(0..64u32).collect::<Vec<_>>());
        let mut expected: usize = 0; // our shadow ledger
        let mut held: usize = 0; // elements conceptually held by client

        for _ in 0..n_actions {
            match random_action(&mut rng) {
                Action::Read(i) => {
                    let id = region.block(i % region.blocks);
                    if let Ok(data) = m.read_block(id) {
                        expected += data.len();
                        held += data.len();
                    } // a rejected read changes no state
                }
                Action::WriteHeld(k, b) => {
                    let k = k.min(held).min(cfg.block);
                    let target = BlockId((b % region.blocks) + region.first);
                    if m.write_block(target, vec![9u32; k]).is_ok() {
                        expected -= k;
                        held -= k;
                    }
                }
                Action::Discard(k) => {
                    if m.discard(k).is_ok() {
                        expected -= k;
                        held = held.saturating_sub(k);
                    }
                }
                Action::Reserve(k) => {
                    if m.reserve(k).is_ok() {
                        expected += k;
                        held += k;
                    }
                }
            }
            assert_eq!(m.internal_used(), expected, "case {case}");
            assert!(m.internal_used() <= cfg.memory, "case {case}");
        }
    }
}

/// Atom conservation: no sequence of legal atom-machine operations can
/// create or destroy atoms — the union of external and internal atoms
/// is always exactly the input set.
#[test]
fn atoms_are_conserved() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0xa70f5 + case);
        let n_ops = rng.next_below_usize(80);
        let cfg = AemConfig::new(16, 4, 2).unwrap();
        let mut m = AtomMachine::new(cfg);
        let region = m.install_atoms(32);
        let extra: Vec<BlockId> = (0..4).map(|_| m.alloc_block()).collect();

        for _ in 0..n_ops {
            let blk = rng.next_below_usize(8);
            let atom = rng.next_below(32);
            let write = rng.next_bool();
            if write {
                // Try to write some currently-internal atoms out.
                let resident = m.internal_atoms();
                if !resident.is_empty() {
                    let take: Vec<AtomId> = resident.into_iter().take(cfg.block).collect();
                    let target = extra[blk % extra.len()];
                    let _ = m.write(target, take);
                }
            } else {
                let id = region.block(blk % region.blocks);
                let _ = m.read_keep(id, &[AtomId(atom)]);
            }

            // Conservation check.
            let mut all: Vec<AtomId> = m.internal_atoms();
            for b in region.iter().chain(extra.iter().copied()) {
                all.extend(m.inspect_block(b).unwrap());
            }
            all.sort_unstable();
            let want: Vec<AtomId> = (0..32).map(AtomId).collect();
            assert_eq!(all, want, "case {case}: atoms created or destroyed");
        }
    }
}

/// Round decomposition invariants hold for arbitrary traces.
#[test]
fn round_decompose_invariants() {
    use aem_machine::rounds::round_decompose;
    use aem_machine::{IoEvent, Trace};
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x60bd5 + case);
        let n_ops = rng.next_below_usize(200);
        let omega = 1 + rng.next_below(31);
        let cfg = AemConfig::new(32, 4, omega).unwrap();
        let mut t = Trace::new();
        for _ in 0..n_ops {
            let b = rng.next_below_usize(32);
            if rng.next_bool() {
                t.push(IoEvent::Write {
                    block: BlockId(b),
                    len: 4,
                    aux: false,
                });
            } else {
                t.push(IoEvent::Read {
                    block: BlockId(b),
                    len: 4,
                    aux: false,
                });
            }
        }
        let rounds = round_decompose(&t, cfg);
        // Partition, budget, and minimum-cost invariants.
        let mut next = 0usize;
        for (i, r) in rounds.iter().enumerate() {
            assert_eq!(r.start, next, "case {case}");
            next = r.end;
            assert!(r.cost <= cfg.round_budget(), "case {case}");
            if i + 1 < rounds.len() {
                assert!(
                    r.cost > cfg.round_budget().saturating_sub(omega),
                    "case {case}"
                );
            }
        }
        assert_eq!(next, t.len(), "case {case}");
        // Cost is preserved by the decomposition.
        let total: u64 = rounds.iter().map(|r| r.cost).sum();
        assert_eq!(total, t.cost().q(omega), "case {case}");
    }
}
