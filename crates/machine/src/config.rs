//! Model parameters of the `(M, B, ω)`-AEM machine and derived quantities.
//!
//! Notation follows §2 of the paper:
//!
//! * `N` — input size (elements),
//! * `M` — internal (symmetric) memory size in elements,
//! * `B` — block size in elements,
//! * `m = ⌈M/B⌉` — internal memory size in blocks,
//! * `n = ⌈N/B⌉` — input size in blocks,
//! * `ω` — ratio between the cost of a write and a read I/O.

use crate::error::{MachineError, Result};

/// Parameters of an `(M, B, ω)`-AEM machine.
///
/// Invariants (checked by [`AemConfig::new`]):
///
/// * `block ≥ 1` — a block holds at least one element;
/// * `memory ≥ 2 · block` — internal memory holds at least two blocks, the
///   minimum for any non-trivial block algorithm (one input buffer and one
///   output buffer); the paper's theorems all assume `M ≥ cB` for small `c`;
/// * `omega ≥ 1` — writes are at least as expensive as reads (the defining
///   property of the asymmetric model; `ω = 1` is the classical EM model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AemConfig {
    /// Internal (symmetric) memory capacity `M`, in elements.
    pub memory: usize,
    /// Block size `B`, in elements.
    pub block: usize,
    /// Write/read cost ratio `ω`.
    pub omega: u64,
}

impl AemConfig {
    /// Create a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidConfig`] if the invariants documented
    /// on the type are violated.
    pub fn new(memory: usize, block: usize, omega: u64) -> Result<Self> {
        if block == 0 {
            return Err(MachineError::InvalidConfig("block size B must be >= 1"));
        }
        if memory < 2 * block {
            return Err(MachineError::InvalidConfig(
                "internal memory M must hold at least two blocks (M >= 2B)",
            ));
        }
        if omega == 0 {
            return Err(MachineError::InvalidConfig("omega must be >= 1"));
        }
        Ok(Self {
            memory,
            block,
            omega,
        })
    }

    /// The `(M, ω)`-ARAM model of Blelloch et al., which the paper notes is
    /// exactly the `(M, 1, ω)`-AEM model.
    pub fn aram(memory: usize, omega: u64) -> Result<Self> {
        Self::new(memory, 1, omega)
    }

    /// The classical symmetric EM model of Aggarwal–Vitter: `ω = 1`.
    pub fn symmetric(memory: usize, block: usize) -> Result<Self> {
        Self::new(memory, block, 1)
    }

    /// `m = ⌈M/B⌉`: internal memory size measured in blocks.
    #[inline]
    pub fn m(&self) -> usize {
        self.memory.div_ceil(self.block)
    }

    /// `n = ⌈N/B⌉`: number of blocks needed to store `n_elems` elements.
    #[inline]
    pub fn blocks_for(&self, n_elems: usize) -> usize {
        n_elems.div_ceil(self.block)
    }

    /// The round budget `ωm` of §4: a round is a maximal sequence of
    /// operations of cost at most `ωm` (and, for all but the last round, at
    /// least `ω(m − 1)`).
    #[inline]
    pub fn round_budget(&self) -> u64 {
        self.omega * self.m() as u64
    }

    /// The merge/recursion fan-in `d = ωm` used by the §3 mergesort.
    ///
    /// Saturates at `usize::MAX` for absurd `ω`; callers clamp the fan-in to
    /// the number of runs anyway.
    #[inline]
    pub fn fan_in(&self) -> usize {
        usize::try_from(self.omega)
            .unwrap_or(usize::MAX)
            .saturating_mul(self.m())
    }

    /// Size threshold `ωM` below which the base-case "small sort" of
    /// Blelloch et al. (Lemma 4.2 of SPAA '15) applies: `N' ≤ ωM` elements
    /// can be sorted with `O(ωn')` reads and `O(n')` writes.
    #[inline]
    pub fn small_sort_threshold(&self) -> usize {
        usize::try_from(self.omega)
            .unwrap_or(usize::MAX)
            .saturating_mul(self.memory)
    }

    /// `log_{ωm}(x)` with the conventions used in cost formulas: the base is
    /// clamped to at least 2 and the result to at least 1, mirroring the
    /// `⌈log⌉ ≥ 1` convention of I/O-complexity statements.
    pub fn log_fan_in(&self, x: f64) -> f64 {
        let base = (self.omega as f64 * self.m() as f64).max(2.0);
        (x.max(2.0).ln() / base.ln()).max(1.0)
    }
}

impl std::fmt::Display for AemConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(M={}, B={}, ω={})-AEM [m={}, round budget={}]",
            self.memory,
            self.block,
            self.omega,
            self.m(),
            self.round_budget()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config() {
        let cfg = AemConfig::new(64, 8, 16).unwrap();
        assert_eq!(cfg.m(), 8);
        assert_eq!(cfg.round_budget(), 128);
        assert_eq!(cfg.fan_in(), 128);
        assert_eq!(cfg.small_sort_threshold(), 1024);
    }

    #[test]
    fn m_rounds_up() {
        let cfg = AemConfig::new(65, 8, 1).unwrap();
        assert_eq!(cfg.m(), 9);
    }

    #[test]
    fn blocks_for_rounds_up() {
        let cfg = AemConfig::new(64, 8, 1).unwrap();
        assert_eq!(cfg.blocks_for(0), 0);
        assert_eq!(cfg.blocks_for(1), 1);
        assert_eq!(cfg.blocks_for(8), 1);
        assert_eq!(cfg.blocks_for(9), 2);
    }

    #[test]
    fn rejects_zero_block() {
        assert!(AemConfig::new(64, 0, 1).is_err());
    }

    #[test]
    fn rejects_tiny_memory() {
        assert!(AemConfig::new(8, 8, 1).is_err());
        assert!(AemConfig::new(15, 8, 1).is_err());
        assert!(AemConfig::new(16, 8, 1).is_ok());
    }

    #[test]
    fn rejects_zero_omega() {
        assert!(AemConfig::new(64, 8, 0).is_err());
    }

    #[test]
    fn aram_is_block_one() {
        let cfg = AemConfig::aram(64, 7).unwrap();
        assert_eq!(cfg.block, 1);
        assert_eq!(cfg.m(), 64);
    }

    #[test]
    fn symmetric_is_omega_one() {
        let cfg = AemConfig::symmetric(64, 8).unwrap();
        assert_eq!(cfg.omega, 1);
    }

    #[test]
    fn log_fan_in_is_clamped() {
        let cfg = AemConfig::new(64, 8, 2).unwrap();
        // log of a tiny argument still reports at least 1.
        assert_eq!(cfg.log_fan_in(1.0), 1.0);
        // Monotone in x.
        assert!(cfg.log_fan_in((1u64 << 20) as f64) >= cfg.log_fan_in(256.0));
    }

    #[test]
    fn display_mentions_all_parameters() {
        let cfg = AemConfig::new(64, 8, 16).unwrap();
        let s = cfg.to_string();
        assert!(s.contains("M=64") && s.contains("B=8") && s.contains("ω=16"));
    }
}
