//! I/O cost accounting.
//!
//! The AEM cost of a computation performing `Q_r` read I/Os and `Q_w` write
//! I/Os is `Q = Q_r + ω·Q_w`. The simulators meter every block transfer
//! through an [`IoCounter`]; several memories (e.g. the data store and the
//! auxiliary pointer store used by the §3 merge) can share one counter so
//! that *all* I/O an algorithm performs is charged to a single budget.

use std::cell::Cell;
use std::rc::Rc;

/// An immutable snapshot of I/O counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Number of read I/Os (`Q_r`).
    pub reads: u64,
    /// Number of write I/Os (`Q_w`).
    pub writes: u64,
}

impl Cost {
    /// A zero cost.
    pub const ZERO: Cost = Cost {
        reads: 0,
        writes: 0,
    };

    /// Construct from explicit counts.
    pub fn new(reads: u64, writes: u64) -> Self {
        Self { reads, writes }
    }

    /// The AEM cost `Q = Q_r + ω·Q_w`.
    #[inline]
    pub fn q(&self, omega: u64) -> u64 {
        self.reads + omega * self.writes
    }

    /// Total number of I/Os regardless of direction (the symmetric EM cost).
    #[inline]
    pub fn total_ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// `Q = Q_r + ω·Q_w` without overflow: saturates at `u64::MAX`. The
    /// serving planner prices astronomically large *hypothetical* jobs
    /// (quote mode) whose predicted write counts, multiplied by ω, can
    /// exceed `u64`; admission arithmetic must reject them, not wrap.
    #[inline]
    pub fn q_saturating(&self, omega: u64) -> u64 {
        self.reads.saturating_add(omega.saturating_mul(self.writes))
    }

    /// Component-wise difference; saturates at zero (used to attribute cost
    /// to phases by snapshotting before/after).
    pub fn since(&self, earlier: Cost) -> Cost {
        Cost {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
        }
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl std::ops::AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
    }
}

impl std::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} reads + {} writes", self.reads, self.writes)
    }
}

/// A shared, cloneable I/O meter.
///
/// Cloning an `IoCounter` yields a handle to the *same* underlying counts:
/// the data memory, the auxiliary pointer memory and any instrumentation
/// wrapper all charge the same budget. The counter is single-threaded by
/// design (machines are per-thread; parameter sweeps parallelize at the
/// machine granularity).
#[derive(Debug, Clone, Default)]
pub struct IoCounter {
    reads: Rc<Cell<u64>>,
    writes: Rc<Cell<u64>>,
}

impl IoCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one read I/O.
    #[inline]
    pub fn charge_read(&self) {
        self.reads.set(self.reads.get() + 1);
    }

    /// Charge one write I/O.
    #[inline]
    pub fn charge_write(&self) {
        self.writes.set(self.writes.get() + 1);
    }

    /// Charge several reads at once.
    #[inline]
    pub fn charge_reads(&self, k: u64) {
        self.reads.set(self.reads.get() + k);
    }

    /// Charge several writes at once.
    #[inline]
    pub fn charge_writes(&self, k: u64) {
        self.writes.set(self.writes.get() + k);
    }

    /// Snapshot the current counts.
    pub fn snapshot(&self) -> Cost {
        Cost {
            reads: self.reads.get(),
            writes: self.writes.get(),
        }
    }

    /// Reset both counts to zero.
    pub fn reset(&self) {
        self.reads.set(0);
        self.writes.set(0);
    }

    /// `true` if this handle shares state with `other`.
    pub fn shares_with(&self, other: &IoCounter) -> bool {
        Rc::ptr_eq(&self.reads, &other.reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_weights_writes_by_omega() {
        let c = Cost::new(10, 3);
        assert_eq!(c.q(1), 13);
        assert_eq!(c.q(16), 10 + 48);
        assert_eq!(c.total_ios(), 13);
    }

    #[test]
    fn q_saturating_matches_q_then_clamps() {
        let c = Cost::new(10, 3);
        assert_eq!(c.q_saturating(16), c.q(16));
        // ω·writes alone overflows; the sum clamps instead of wrapping.
        let huge = Cost::new(7, u64::MAX / 2);
        assert_eq!(huge.q_saturating(u64::MAX), u64::MAX);
        assert_eq!(Cost::new(u64::MAX, 1).q_saturating(2), u64::MAX);
    }

    #[test]
    fn shared_handles_see_each_other() {
        let a = IoCounter::new();
        let b = a.clone();
        a.charge_read();
        b.charge_write();
        b.charge_writes(2);
        assert_eq!(a.snapshot(), Cost::new(1, 3));
        assert!(a.shares_with(&b));
        let c = IoCounter::new();
        assert!(!a.shares_with(&c));
    }

    #[test]
    fn since_attributes_phases() {
        let ctr = IoCounter::new();
        ctr.charge_reads(5);
        let before = ctr.snapshot();
        ctr.charge_reads(2);
        ctr.charge_write();
        assert_eq!(ctr.snapshot().since(before), Cost::new(2, 1));
    }

    #[test]
    fn cost_sums() {
        let total: Cost = [Cost::new(1, 2), Cost::new(3, 4)].into_iter().sum();
        assert_eq!(total, Cost::new(4, 6));
        let mut t = Cost::ZERO;
        t += Cost::new(1, 1);
        assert_eq!(t, Cost::new(1, 1));
    }

    #[test]
    fn reset_zeroes() {
        let ctr = IoCounter::new();
        ctr.charge_read();
        ctr.reset();
        assert_eq!(ctr.snapshot(), Cost::ZERO);
    }
}
