//! The external (asymmetric) memory: an unbounded store of `B`-element
//! blocks.
//!
//! This module provides the raw block store shared by the copy-semantics
//! [`crate::Machine`] and the move-semantics [`crate::AtomMachine`]. The
//! store itself performs no cost accounting — that is the machine's job —
//! but it does enforce block capacity and address validity.

use crate::block::{Block, BlockId, Region};
use crate::error::{MachineError, Result};

/// An unbounded array of blocks, each holding at most `block_size` elements.
#[derive(Debug, Clone)]
pub struct ExternalMemory<T> {
    block_size: usize,
    blocks: Vec<Block<T>>,
}

impl<T> ExternalMemory<T> {
    /// Create an empty external memory with the given block size `B`.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size >= 1, "block size must be at least 1");
        Self {
            block_size,
            blocks: Vec::new(),
        }
    }

    /// Block size `B`.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks allocated so far.
    #[inline]
    pub fn allocated(&self) -> usize {
        self.blocks.len()
    }

    /// Allocate one fresh (empty) block. External memory is unbounded, so
    /// allocation always succeeds and is free of I/O cost — cost accrues
    /// only when blocks are transferred.
    pub fn alloc(&mut self) -> BlockId {
        self.blocks.push(Block::empty());
        BlockId(self.blocks.len() - 1)
    }

    /// Allocate `nblocks` consecutive fresh blocks as a region able to hold
    /// `elems` elements.
    pub fn alloc_region(&mut self, elems: usize) -> Region {
        let nblocks = elems.div_ceil(self.block_size);
        let first = self.blocks.len();
        self.blocks.extend((0..nblocks).map(|_| Block::empty()));
        Region {
            first,
            blocks: nblocks,
            elems,
        }
    }

    fn check(&self, id: BlockId) -> Result<()> {
        if id.index() >= self.blocks.len() {
            Err(MachineError::BadBlock {
                block: id.index(),
                allocated: self.blocks.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Borrow a block.
    pub fn get(&self, id: BlockId) -> Result<&Block<T>> {
        self.check(id)?;
        Ok(&self.blocks[id.index()])
    }

    /// Mutably borrow a block.
    pub fn get_mut(&mut self, id: BlockId) -> Result<&mut Block<T>> {
        self.check(id)?;
        Ok(&mut self.blocks[id.index()])
    }

    /// Overwrite the contents of a block. Enforces `data.len() ≤ B`.
    pub fn put(&mut self, id: BlockId, data: Vec<T>) -> Result<()> {
        if data.len() > self.block_size {
            return Err(MachineError::BlockOverflow {
                len: data.len(),
                block: self.block_size,
            });
        }
        self.get_mut(id)?.set(data);
        Ok(())
    }

    /// Total number of elements currently resident across all blocks.
    pub fn resident_elems(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }
}

impl<T: Clone> ExternalMemory<T> {
    /// Install an array into freshly allocated blocks without charging I/O.
    ///
    /// This models the problem setup: "the input is stored in `n = ⌈N/B⌉`
    /// consecutive blocks of the external memory". Setup and inspection are
    /// outside the metered computation.
    pub fn install(&mut self, data: &[T]) -> Region {
        let region = self.alloc_region(data.len());
        for (i, chunk) in data.chunks(self.block_size).enumerate() {
            self.blocks[region.first + i].set(chunk.to_vec());
        }
        region
    }

    /// Read an entire region back out without charging I/O (test/bench
    /// inspection of results).
    pub fn inspect(&self, region: Region) -> Vec<T> {
        let mut out = Vec::with_capacity(region.elems);
        for id in region.iter() {
            out.extend_from_slice(self.blocks[id.index()].as_slice());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_inspect_round_trip() {
        let mut ext: ExternalMemory<u32> = ExternalMemory::new(4);
        let data: Vec<u32> = (0..11).collect();
        let region = ext.install(&data);
        assert_eq!(region.blocks, 3);
        assert_eq!(region.elems, 11);
        assert_eq!(ext.inspect(region), data);
    }

    #[test]
    fn alloc_region_is_contiguous_and_empty() {
        let mut ext: ExternalMemory<u32> = ExternalMemory::new(4);
        let _ = ext.install(&[1, 2, 3]);
        let r = ext.alloc_region(9);
        assert_eq!(r.blocks, 3);
        assert!(r.iter().all(|b| ext.get(b).unwrap().is_empty()));
    }

    #[test]
    fn put_enforces_block_capacity() {
        let mut ext: ExternalMemory<u32> = ExternalMemory::new(4);
        let id = ext.alloc();
        assert!(ext.put(id, vec![0; 4]).is_ok());
        assert_eq!(
            ext.put(id, vec![0; 5]),
            Err(MachineError::BlockOverflow { len: 5, block: 4 })
        );
    }

    #[test]
    fn bad_block_is_reported() {
        let ext: ExternalMemory<u32> = ExternalMemory::new(4);
        assert_eq!(
            ext.get(BlockId(3)).unwrap_err(),
            MachineError::BadBlock {
                block: 3,
                allocated: 0
            }
        );
    }

    #[test]
    fn resident_elems_counts_partial_blocks() {
        let mut ext: ExternalMemory<u32> = ExternalMemory::new(4);
        ext.install(&[1, 2, 3, 4, 5]);
        assert_eq!(ext.resident_elems(), 5);
    }
}
