//! The external (asymmetric) memory: an unbounded store of `B`-element
//! blocks.
//!
//! This module provides the raw block store shared by the copy-semantics
//! [`crate::Machine`] and the move-semantics [`crate::AtomMachine`]. The
//! store itself performs no cost accounting — that is the machine's job —
//! but it does enforce block capacity and address validity.

use crate::block::{Block, BlockId, Region};
use crate::error::{MachineError, Result};

/// An unbounded array of blocks, each holding at most `block_size` elements.
///
/// Allocation is watermark-based: `live` counts the blocks currently
/// allocated, while `blocks` beyond the watermark are retired slots whose
/// buffer capacity is recycled by the next allocation (see
/// [`ExternalMemory::wipe`]). Until `wipe` is called the two always agree.
#[derive(Debug, Clone)]
pub struct ExternalMemory<T> {
    block_size: usize,
    blocks: Vec<Block<T>>,
    live: usize,
}

impl<T> ExternalMemory<T> {
    /// Create an empty external memory with the given block size `B`.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size >= 1, "block size must be at least 1");
        Self {
            block_size,
            blocks: Vec::new(),
            live: 0,
        }
    }

    /// Block size `B`.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks allocated so far.
    #[inline]
    pub fn allocated(&self) -> usize {
        self.live
    }

    /// Allocate one fresh (empty) block. External memory is unbounded, so
    /// allocation always succeeds and is free of I/O cost — cost accrues
    /// only when blocks are transferred. A retired slot below the buffer
    /// high-water mark is recycled (cleared, capacity kept) before the
    /// backing array grows.
    pub fn alloc(&mut self) -> BlockId {
        if self.live < self.blocks.len() {
            self.blocks[self.live].clear();
        } else {
            self.blocks.push(Block::empty());
        }
        self.live += 1;
        BlockId(self.live - 1)
    }

    /// Allocate `nblocks` consecutive fresh blocks as a region able to hold
    /// `elems` elements.
    pub fn alloc_region(&mut self, elems: usize) -> Region {
        let nblocks = elems.div_ceil(self.block_size);
        let first = self.live;
        for _ in 0..nblocks {
            self.alloc();
        }
        Region {
            first,
            blocks: nblocks,
            elems,
        }
    }

    /// Retire every allocated block, keeping the buffers for recycling:
    /// subsequent allocations hand out the same slots (cleared) instead of
    /// touching the allocator. This is the storage half of a machine
    /// [`reset`](crate::MachineCore::reset) — repeated runs on one machine
    /// reach an allocation-free steady state.
    pub fn wipe(&mut self) {
        self.live = 0;
    }

    fn check(&self, id: BlockId) -> Result<()> {
        if id.index() >= self.live {
            Err(MachineError::BadBlock {
                block: id.index(),
                allocated: self.live,
            })
        } else {
            Ok(())
        }
    }

    /// Borrow a block.
    pub fn get(&self, id: BlockId) -> Result<&Block<T>> {
        self.check(id)?;
        Ok(&self.blocks[id.index()])
    }

    /// Mutably borrow a block.
    pub fn get_mut(&mut self, id: BlockId) -> Result<&mut Block<T>> {
        self.check(id)?;
        Ok(&mut self.blocks[id.index()])
    }

    /// Overwrite the contents of a block. Enforces `data.len() ≤ B`.
    pub fn put(&mut self, id: BlockId, data: Vec<T>) -> Result<()> {
        if data.len() > self.block_size {
            return Err(MachineError::BlockOverflow {
                len: data.len(),
                block: self.block_size,
            });
        }
        self.get_mut(id)?.set(data);
        Ok(())
    }

    /// Total number of elements currently resident across all blocks.
    pub fn resident_elems(&self) -> usize {
        self.blocks[..self.live].iter().map(|b| b.len()).sum()
    }

    /// Borrow a contiguous run of blocks with a single bounds check.
    /// Blocks are allocated densely from zero, so the run exists iff its
    /// last id does; the reported offender matches what a per-block loop
    /// would hit first.
    pub fn run(&self, first: BlockId, count: usize) -> Result<&[Block<T>]> {
        if count > 0 && first.index() + count > self.live {
            return Err(MachineError::BadBlock {
                block: first.index().max(self.live),
                allocated: self.live,
            });
        }
        Ok(&self.blocks[first.index()..first.index() + count])
    }
}

impl<T: Clone> ExternalMemory<T> {
    /// Overwrite the contents of a block from a slice, reusing the block's
    /// buffer capacity — the allocation-free counterpart of
    /// [`ExternalMemory::put`]. Enforces `data.len() ≤ B`.
    pub fn put_slice(&mut self, id: BlockId, data: &[T]) -> Result<()> {
        if data.len() > self.block_size {
            return Err(MachineError::BlockOverflow {
                len: data.len(),
                block: self.block_size,
            });
        }
        self.get_mut(id)?.set_from_slice(data);
        Ok(())
    }

    /// Install an array into freshly allocated blocks without charging I/O.
    ///
    /// This models the problem setup: "the input is stored in `n = ⌈N/B⌉`
    /// consecutive blocks of the external memory". Setup and inspection are
    /// outside the metered computation.
    pub fn install(&mut self, data: &[T]) -> Region {
        let region = self.alloc_region(data.len());
        for (i, chunk) in data.chunks(self.block_size).enumerate() {
            self.blocks[region.first + i].set_from_slice(chunk);
        }
        region
    }

    /// Read an entire region back out without charging I/O (test/bench
    /// inspection of results).
    pub fn inspect(&self, region: Region) -> Vec<T> {
        let mut out = Vec::with_capacity(region.elems);
        for id in region.iter() {
            out.extend_from_slice(self.blocks[id.index()].as_slice());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_inspect_round_trip() {
        let mut ext: ExternalMemory<u32> = ExternalMemory::new(4);
        let data: Vec<u32> = (0..11).collect();
        let region = ext.install(&data);
        assert_eq!(region.blocks, 3);
        assert_eq!(region.elems, 11);
        assert_eq!(ext.inspect(region), data);
    }

    #[test]
    fn alloc_region_is_contiguous_and_empty() {
        let mut ext: ExternalMemory<u32> = ExternalMemory::new(4);
        let _ = ext.install(&[1, 2, 3]);
        let r = ext.alloc_region(9);
        assert_eq!(r.blocks, 3);
        assert!(r.iter().all(|b| ext.get(b).unwrap().is_empty()));
    }

    #[test]
    fn put_enforces_block_capacity() {
        let mut ext: ExternalMemory<u32> = ExternalMemory::new(4);
        let id = ext.alloc();
        assert!(ext.put(id, vec![0; 4]).is_ok());
        assert_eq!(
            ext.put(id, vec![0; 5]),
            Err(MachineError::BlockOverflow { len: 5, block: 4 })
        );
    }

    #[test]
    fn bad_block_is_reported() {
        let ext: ExternalMemory<u32> = ExternalMemory::new(4);
        assert_eq!(
            ext.get(BlockId(3)).unwrap_err(),
            MachineError::BadBlock {
                block: 3,
                allocated: 0
            }
        );
    }

    #[test]
    fn resident_elems_counts_partial_blocks() {
        let mut ext: ExternalMemory<u32> = ExternalMemory::new(4);
        ext.install(&[1, 2, 3, 4, 5]);
        assert_eq!(ext.resident_elems(), 5);
    }

    #[test]
    fn wipe_retires_blocks_and_recycles_slots() {
        let mut ext: ExternalMemory<u32> = ExternalMemory::new(4);
        let r = ext.install(&[1, 2, 3, 4, 5, 6, 7, 8]);
        ext.wipe();
        assert_eq!(ext.allocated(), 0);
        assert_eq!(ext.resident_elems(), 0);
        assert!(matches!(
            ext.get(r.block(0)),
            Err(MachineError::BadBlock { .. })
        ));
        // Re-allocation reuses the retired slots: ids restart at zero and
        // the handed-out blocks are empty despite the stale buffers.
        let r2 = ext.alloc_region(8);
        assert_eq!(r2.first, 0);
        assert!(r2.iter().all(|b| ext.get(b).unwrap().is_empty()));
        let r3 = ext.install(&[9, 9, 9]);
        assert_eq!(ext.inspect(r3), vec![9, 9, 9]);
    }
}
