//! Compiled-trace recording and arithmetic replay.
//!
//! A paper-sense *program* is its I/O schedule: which blocks move, in
//! which direction, at what block granularity. Once a deterministic
//! workload has run once, its cost on the same `(M, B, ω)` machine is a
//! pure function of that schedule — no payload needs to move and no
//! per-access dispatch needs to happen to price it again. This module
//! makes that observation executable:
//!
//! * [`TraceMachine`] — a recording machine (the `--backend trace`
//!   selector): a copy-semantics [`Machine`] that additionally compiles
//!   every *metered* operation into a [`TraceOp`]. Bulk ops
//!   ([`AemAccess::read_run`] / [`AemAccess::write_run`]) compile to a
//!   **single** op covering the whole run, so the recording is typically
//!   much shorter than the event-level [`crate::Trace`].
//! * [`CompiledTrace`] — the recorded schedule plus a [`replay`]
//!   engine: re-running the cost accounting is a single pass of integer
//!   additions over the ops. Replaying a schedule of `K` ops costs
//!   `O(K)` adds, independent of `N`, `B`, or payload size — an order of
//!   magnitude under even the ghost store, which still dispatches every
//!   block access through the machine.
//!
//! ## When replay is valid
//!
//! A replayed cost equals a live re-run's cost iff the workload's I/O
//! schedule is a function of `(cfg, input shape, seed)` alone — the same
//! determinism contract the sweep cache already relies on. Replay prices
//! *the recorded schedule*; it cannot notice that a different input
//! would have scheduled different I/O. `docs/COST_MODEL.md` states the
//! contract precisely; [`TraceMachine::verify_replay`] (and a
//! `debug_assert` in [`TraceMachine::into_schedule`]) checks the
//! arithmetic against the live meter.
//!
//! [`replay`]: CompiledTrace::replay
//! [`AemAccess::read_run`]: crate::AemAccess::read_run
//! [`AemAccess::write_run`]: crate::AemAccess::write_run

use crate::block::{BlockId, Region};
use crate::config::AemConfig;
use crate::cost::{Cost, IoCounter};
use crate::error::Result;
use crate::machine::{AemAccess, Machine};
use crate::store::Backend;

/// One metered operation of a recorded schedule: a contiguous run of
/// `blocks` block transfers in one direction. Single-block operations
/// record `blocks == 1`; bulk runs record the whole run as one op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// `true` for writes (cost `ω` per block), `false` for reads.
    pub write: bool,
    /// `true` if the op hit the auxiliary store.
    pub aux: bool,
    /// First block of the run.
    pub first: BlockId,
    /// Number of block transfers the op performed.
    pub blocks: u64,
    /// Total elements moved (the occupancy sum; informational — replay
    /// prices blocks, not elements).
    pub elems: u64,
}

/// A workload's compiled I/O schedule: the machine configuration it was
/// recorded under plus the ordered [`TraceOp`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTrace {
    cfg: AemConfig,
    ops: Vec<TraceOp>,
}

impl CompiledTrace {
    /// An empty schedule for a machine configuration.
    pub fn new(cfg: AemConfig) -> Self {
        CompiledTrace {
            cfg,
            ops: Vec::new(),
        }
    }

    /// Append one operation.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// The configuration the schedule was recorded under (replayed costs
    /// are only meaningful against the same `(M, B, ω)`).
    pub fn cfg(&self) -> AemConfig {
        self.cfg
    }

    /// The recorded operations, in program order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of recorded operations (bulk runs count once).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Re-run the cost accounting as pure arithmetic: one pass over the
    /// ops summing block counts per direction. No payload moves, no
    /// bounds check fires, no trait dispatch happens — this is the whole
    /// fast path.
    pub fn replay(&self) -> Cost {
        let mut reads = 0u64;
        let mut writes = 0u64;
        for op in &self.ops {
            if op.write {
                writes += op.blocks;
            } else {
                reads += op.blocks;
            }
        }
        Cost::new(reads, writes)
    }

    /// [`CompiledTrace::replay`] collapsed to the scalar
    /// `Q = Q_r + ω·Q_w` under the recorded `ω`.
    pub fn replay_q(&self) -> u64 {
        self.replay().q(self.cfg.omega)
    }

    /// Total elements moved by the schedule (read + written).
    pub fn volume(&self) -> u64 {
        self.ops.iter().map(|op| op.elems).sum()
    }
}

/// The recording machine behind `--backend trace`: a copy-semantics
/// [`Machine`] that compiles its metered I/O into a [`CompiledTrace`].
///
/// Payloads, costs, the ledger and every error path are exactly the vec
/// machine's (the inner machine *is* one); recording adds one `Vec` push
/// per successful metered operation. Failed operations record nothing —
/// the schedule holds exactly the I/O the meter charged.
///
/// ```
/// use aem_machine::{AemAccess, AemConfig, TraceMachine};
///
/// let cfg = AemConfig::new(64, 8, 16).unwrap();
/// let mut m: TraceMachine<u64> = TraceMachine::new(cfg);
/// let r = m.install(&(0..32).collect::<Vec<u64>>());
/// let mut buf = Vec::new();
/// let n = m.read_run(r.block(0), 4, &mut buf).unwrap(); // one op, 4 reads
/// m.discard(n).unwrap();
/// let schedule = m.into_schedule();
/// assert_eq!(schedule.len(), 1);
/// assert_eq!(schedule.replay().reads, 4);
/// ```
#[derive(Debug)]
pub struct TraceMachine<T> {
    inner: Machine<T>,
    schedule: CompiledTrace,
}

impl<T: Clone> TraceMachine<T> {
    /// A fresh recording machine.
    pub fn new(cfg: AemConfig) -> Self {
        Self::with_counter(cfg, IoCounter::new())
    }

    /// A fresh recording machine charging an existing (possibly shared)
    /// cost meter. Note [`TraceMachine::verify_replay`] compares the
    /// replayed schedule against that shared meter, so it only holds when
    /// this machine is the meter's sole writer.
    pub fn with_counter(cfg: AemConfig, counter: IoCounter) -> Self {
        TraceMachine {
            inner: Machine::with_counter(cfg, counter),
            schedule: CompiledTrace::new(cfg),
        }
    }

    /// The storage backend selector this machine answers to.
    pub fn backend() -> Backend {
        Backend::Trace
    }

    /// Install an input array without charging I/O (and without recording:
    /// setup is outside the metered computation).
    pub fn install(&mut self, data: &[T]) -> Region {
        self.inner.install(data)
    }

    /// Inspect a region's contents, free of charge.
    pub fn inspect(&self, region: Region) -> Vec<T> {
        self.inner.inspect(region)
    }

    /// Inspect a single block, free of charge.
    pub fn inspect_block(&self, id: BlockId) -> Result<Vec<T>> {
        self.inner.inspect_block(id)
    }

    /// Occupancy of a single data block, free of charge.
    pub fn block_len(&self, id: BlockId) -> Result<usize> {
        self.inner.block_len(id)
    }

    /// Occupancy of a single auxiliary block, free of charge.
    pub fn aux_block_len(&self, id: BlockId) -> Result<usize> {
        self.inner.aux_block_len(id)
    }

    /// Number of data blocks allocated so far.
    pub fn allocated_blocks(&self) -> usize {
        self.inner.allocated_blocks()
    }

    /// Handle to the machine's cost meter.
    pub fn counter(&self) -> IoCounter {
        self.inner.counter()
    }

    /// Begin recording an event-level [`crate::Trace`] on the inner
    /// machine (independent of the always-on compiled schedule).
    pub fn start_trace(&mut self) {
        self.inner.start_trace();
    }

    /// Stop event-level recording and return the trace, if any.
    pub fn take_trace(&mut self) -> Option<crate::Trace> {
        self.inner.take_trace()
    }

    /// The schedule compiled so far.
    pub fn schedule(&self) -> &CompiledTrace {
        &self.schedule
    }

    /// Reset the inner machine ([`crate::MachineCore::reset`], recycling
    /// store buffers) and discard the schedule compiled so far — the next
    /// recording starts from an empty machine and an empty schedule.
    pub fn reset(&mut self) {
        self.inner.reset();
        self.schedule = CompiledTrace::new(self.schedule.cfg());
    }

    /// `true` iff replaying the compiled schedule reproduces the live
    /// meter exactly — the `(Q_r, Q_w)` tuple, and therefore `Q` for any
    /// `ω`. This is the debug-assert behind [`TraceMachine::into_schedule`].
    pub fn verify_replay(&self) -> bool {
        self.schedule.replay() == self.inner.cost()
    }

    /// Consume the machine and return the compiled schedule, asserting
    /// (in debug builds) that its arithmetic replay equals the live run's
    /// cost tuple.
    pub fn into_schedule(self) -> CompiledTrace {
        debug_assert!(
            self.verify_replay(),
            "compiled schedule replays to {:?} but the live meter read {:?}",
            self.schedule.replay(),
            self.inner.cost()
        );
        self.schedule
    }

    fn rec(&mut self, write: bool, aux: bool, first: BlockId, blocks: u64, elems: u64) {
        self.schedule.push(TraceOp {
            write,
            aux,
            first,
            blocks,
            elems,
        });
    }
}

impl<T: Clone> AemAccess<T> for TraceMachine<T> {
    fn cfg(&self) -> AemConfig {
        self.inner.cfg()
    }

    fn read_block(&mut self, id: BlockId) -> Result<Vec<T>> {
        let data = self.inner.read_block(id)?;
        self.rec(false, false, id, 1, data.len() as u64);
        Ok(data)
    }

    fn read_block_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize> {
        let len = self.inner.read_block_into(id, buf)?;
        self.rec(false, false, id, 1, len as u64);
        Ok(len)
    }

    fn exchange_block_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize> {
        // The discard half is unmetered, so the compiled op is just the
        // read — identical to what the decomposed pair would record.
        let len = self.inner.exchange_block_into(id, buf)?;
        self.rec(false, false, id, 1, len as u64);
        Ok(len)
    }

    fn write_block(&mut self, id: BlockId, data: Vec<T>) -> Result<()> {
        let len = data.len() as u64;
        self.inner.write_block(id, data)?;
        self.rec(true, false, id, 1, len);
        Ok(())
    }

    fn read_run(&mut self, first: BlockId, count: usize, buf: &mut Vec<T>) -> Result<usize> {
        let total = self.inner.read_run(first, count, buf)?;
        self.rec(false, false, first, count as u64, total as u64);
        Ok(total)
    }

    fn write_run(&mut self, first: BlockId, data: &[T]) -> Result<usize>
    where
        T: Clone,
    {
        let elems = data.len() as u64;
        let blocks = self.inner.write_run(first, data)?;
        self.rec(true, false, first, blocks as u64, elems);
        Ok(blocks)
    }

    fn alloc_block(&mut self) -> BlockId {
        self.inner.alloc_block()
    }

    fn alloc_region(&mut self, elems: usize) -> Region {
        self.inner.alloc_region(elems)
    }

    fn discard(&mut self, k: usize) -> Result<()> {
        self.inner.discard(k)
    }

    fn reserve(&mut self, k: usize) -> Result<()> {
        self.inner.reserve(k)
    }

    fn read_aux_block(&mut self, id: BlockId) -> Result<Vec<u64>> {
        let data = self.inner.read_aux_block(id)?;
        self.rec(false, true, id, 1, data.len() as u64);
        Ok(data)
    }

    fn write_aux_block(&mut self, id: BlockId, data: Vec<u64>) -> Result<()> {
        let len = data.len() as u64;
        self.inner.write_aux_block(id, data)?;
        self.rec(true, true, id, 1, len);
        Ok(())
    }

    fn alloc_aux_region(&mut self, words: usize) -> Region {
        self.inner.alloc_aux_region(words)
    }

    fn internal_used(&self) -> usize {
        self.inner.internal_used()
    }

    fn cost(&self) -> Cost {
        self.inner.cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MachineError;

    fn cfg() -> AemConfig {
        AemConfig::new(16, 4, 8).unwrap()
    }

    #[test]
    fn schedule_replays_to_the_live_cost() {
        let mut m: TraceMachine<u32> = TraceMachine::new(cfg());
        let r = m.install(&(0..12u32).collect::<Vec<_>>());
        let out = m.alloc_region(12);
        let mut buf = Vec::new();
        let total = m.read_run(r.block(0), 3, &mut buf).unwrap();
        assert_eq!(total, 12);
        m.write_run(out.block(0), &buf).unwrap();
        let aux = m.alloc_aux_region(4);
        m.reserve(2).unwrap();
        m.write_aux_block(aux.block(0), vec![1, 2]).unwrap();
        m.read_aux_block(aux.block(0)).unwrap();
        m.discard(2).unwrap();

        let live = m.cost();
        assert_eq!(live, Cost::new(4, 4));
        assert!(m.verify_replay());
        let schedule = m.into_schedule();
        // Bulk runs compile to one op each; the aux ops are single-block.
        assert_eq!(schedule.len(), 4);
        assert_eq!(schedule.replay(), live);
        assert_eq!(schedule.replay_q(), live.q(cfg().omega));
        assert_eq!(schedule.volume(), 12 + 12 + 2 + 2);
    }

    #[test]
    fn failed_operations_record_nothing() {
        let mut m: TraceMachine<u32> = TraceMachine::new(cfg());
        let r = m.install(&[1, 2, 3, 4]);
        assert!(m.read_block(BlockId(9)).is_err());
        assert!(m.write_block(r.block(0), vec![0; 5]).is_err());
        let mut buf = Vec::new();
        assert!(m.read_run(r.block(0), 3, &mut buf).is_err());
        assert!(m.schedule().is_empty());
        assert_eq!(m.cost(), Cost::ZERO);
        assert!(m.verify_replay());
    }

    #[test]
    fn trace_machine_matches_vec_machine_exactly() {
        // The same scripted run on Machine and TraceMachine: identical
        // payloads, costs, ledger and errors — trace is vec + recording.
        fn script<M: AemAccess<u32>>(mut m: M, r: Region) -> (Cost, usize, Vec<u32>, MachineError) {
            let out = m.alloc_region(8);
            let mut buf = Vec::new();
            let n = m.read_run(r.block(0), 2, &mut buf).unwrap();
            assert_eq!(n, buf.len());
            let payload = buf.clone();
            m.write_run(out.block(0), &buf).unwrap();
            let err = m.read_block(BlockId(99)).unwrap_err();
            (m.cost(), m.internal_used(), payload, err)
        }
        let mut v: Machine<u32> = Machine::new(cfg());
        let vr = v.install(&(0..8u32).collect::<Vec<_>>());
        let mut t: TraceMachine<u32> = TraceMachine::new(cfg());
        let tr = t.install(&(0..8u32).collect::<Vec<_>>());
        assert_eq!((vr.first, vr.blocks), (tr.first, tr.blocks));
        assert_eq!(script(v, vr), script(t, tr));
    }

    #[test]
    fn single_block_ops_compile_to_single_ops() {
        let mut m: TraceMachine<u32> = TraceMachine::new(cfg());
        let r = m.install(&[1, 2, 3, 4, 5]);
        let d = m.read_block(r.block(0)).unwrap();
        let out = m.alloc_block();
        m.write_block(out, d).unwrap();
        let schedule = m.into_schedule();
        assert_eq!(schedule.len(), 2);
        assert_eq!(
            schedule.ops()[0],
            TraceOp {
                write: false,
                aux: false,
                first: BlockId(r.first),
                blocks: 1,
                elems: 4,
            }
        );
        assert!(schedule.ops()[1].write);
    }
}
