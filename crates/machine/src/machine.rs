//! The metered AEM machine that algorithms run on.
//!
//! This machine is the work-horse of the workspace: every algorithm in
//! `aem-core` is written against the [`AemAccess`] trait and can therefore
//! run on the plain [`Machine`] or on instrumentation wrappers such as
//! [`crate::rounds::RoundBasedMachine`] without modification.
//!
//! Since the storage-backend split, the machine itself is [`MachineCore`]:
//! the §2 cost meter, the internal-memory ledger and trace recording,
//! generic over a [`BlockStore`] that decides what payload movement costs
//! *the simulator* (not the model). [`Machine`] is the copying default;
//! [`ArenaMachine`] recycles buffers; [`GhostMachine`] carries no data
//! payload at all and exists to push cost sweeps to `N` two orders of
//! magnitude larger.
//!
//! ## Semantics
//!
//! * **Reads** copy a block's contents into internal memory and charge the
//!   internal budget with the number of elements copied. The algorithm must
//!   eventually account for every element it holds: writing elements out
//!   releases budget, and elements dropped without being written must be
//!   released explicitly via [`AemAccess::discard`]. Leaks are conservative —
//!   they can only cause *spurious capacity errors*, never let an algorithm
//!   use more than `M` elements of internal memory unnoticed.
//! * **Writes** store at most `B` elements to a block and release the
//!   internal budget correspondingly.
//! * A separate **auxiliary store** with the same block size carries machine
//!   words (pointers, counters) for algorithms that must spill metadata to
//!   external memory — the crucial case `ω > B` of the §3 merge, where even
//!   the `ωm` run pointers do not fit into internal memory. Auxiliary I/O is
//!   charged to the same cost meter and the same internal budget (one word
//!   counts as one element, the usual I/O-model convention).

use std::marker::PhantomData;

use crate::block::{BlockId, Region};
use crate::config::AemConfig;
use crate::cost::{Cost, IoCounter};
use crate::error::{MachineError, Result};
use crate::external::ExternalMemory;
use crate::store::{ArenaStore, Backend, BlockStore, GhostStore};
use crate::trace::{IoEvent, Trace};

/// Uniform access interface to an AEM machine.
///
/// Algorithms are generic over this trait so that instrumentation wrappers
/// (round-based execution, tracing filters, fault injectors) can interpose
/// on every operation.
pub trait AemAccess<T> {
    /// The machine's configuration.
    fn cfg(&self) -> AemConfig;

    /// Read a data block into internal memory (cost: 1 read I/O; charges the
    /// internal budget by the block's occupancy).
    fn read_block(&mut self, id: BlockId) -> Result<Vec<T>>;

    /// Read a data block into a caller-supplied buffer, clearing it first
    /// and returning the occupancy. Semantically identical to
    /// [`AemAccess::read_block`] (same cost, same budget charge, same trace
    /// event); machines that can reuse `buf`'s capacity override the
    /// default to skip the per-I/O allocation on the hot path.
    fn read_block_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize> {
        *buf = self.read_block(id)?;
        Ok(buf.len())
    }

    /// Evict the block currently held in `buf` (unmodified, so no
    /// write-back — its `buf.len()` budget is released) and read block
    /// `id` into `buf` in its place. Cost: 1 read I/O, exactly as
    /// [`AemAccess::discard`]`(buf.len())` followed by
    /// [`AemAccess::read_block_into`]; gather kernels that cycle one
    /// resident block per element call this once per reload, and machines
    /// override the default with a single fused store lookup. The fused
    /// override validates `id` *before* touching the ledger, so a failing
    /// exchange leaves the budget unchanged (the decomposed pair would
    /// have already released).
    fn exchange_block_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize> {
        self.discard(buf.len())?;
        self.read_block_into(id, buf)
    }

    /// Write `data` (≤ `B` elements) to a data block (cost: 1 write I/O;
    /// releases the internal budget by `data.len()`).
    fn write_block(&mut self, id: BlockId, data: Vec<T>) -> Result<()>;

    /// Bulk read: the `count` consecutive data blocks starting at `first`,
    /// appended in block order into `buf` (cleared first). Returns the
    /// total element count.
    ///
    /// Cost- and ledger-equivalent to `count` successive
    /// [`AemAccess::read_block_into`] calls: `count` read I/Os, one
    /// internal-budget charge for the run's total occupancy, one trace
    /// event per block. The whole run is validated *before* any charge, so
    /// a failing bulk read moves nothing and charges nothing (the
    /// per-block loop could stop half-way); see `docs/COST_MODEL.md`.
    /// Note the budget for the entire run is held at once — a run longer
    /// than `M/B` blocks fails with `InternalOverflow` where an
    /// interleaved read-process-discard loop would not.
    fn read_run(&mut self, first: BlockId, count: usize, buf: &mut Vec<T>) -> Result<usize> {
        buf.clear();
        let mut tmp = Vec::new();
        let mut total = 0;
        for i in 0..count {
            total += self.read_block_into(BlockId(first.index() + i), &mut tmp)?;
            buf.append(&mut tmp);
        }
        Ok(total)
    }

    /// Bulk write: `data` split across the consecutive data blocks starting
    /// at `first` in chunks of exactly `B` (the final block may be
    /// partial). Returns the number of blocks written, `⌈data.len()/B⌉`;
    /// empty `data` writes nothing and costs nothing.
    ///
    /// Cost- and ledger-equivalent to the per-block [`AemAccess::write_block`]
    /// loop over the same chunks: one write I/O and one trace event per
    /// block, one budget release of `data.len()`. The run is validated
    /// before the ledger is touched, so a failing bulk write is a no-op.
    /// The payload is borrowed — callers keep (and typically clear and
    /// refill) their batch buffer, so a flush allocates nothing.
    fn write_run(&mut self, first: BlockId, data: &[T]) -> Result<usize>
    where
        T: Clone,
    {
        let b = self.cfg().block;
        let mut blocks = 0;
        for chunk in data.chunks(b) {
            self.write_block(BlockId(first.index() + blocks), chunk.to_vec())?;
            blocks += 1;
        }
        Ok(blocks)
    }

    /// Allocate a fresh empty data block (free).
    fn alloc_block(&mut self) -> BlockId;

    /// Allocate a region of fresh data blocks able to hold `elems` elements
    /// (free).
    fn alloc_region(&mut self, elems: usize) -> Region;

    /// Release `k` elements of internal budget for data that is dropped
    /// without being written back.
    fn discard(&mut self, k: usize) -> Result<()>;

    /// Charge `k` elements of internal budget for values *computed* in
    /// internal memory (partial sums, pointer tables, …) that will later be
    /// written out or discarded. Computation is free in the model, but the
    /// values still occupy internal memory.
    fn reserve(&mut self, k: usize) -> Result<()>;

    /// Read an auxiliary (machine-word) block (cost: 1 read I/O; charges the
    /// internal budget by its occupancy).
    fn read_aux_block(&mut self, id: BlockId) -> Result<Vec<u64>>;

    /// Write an auxiliary block (cost: 1 write I/O; releases budget).
    fn write_aux_block(&mut self, id: BlockId, data: Vec<u64>) -> Result<()>;

    /// Allocate a region of auxiliary blocks holding `words` words (free).
    fn alloc_aux_region(&mut self, words: usize) -> Region;

    /// Elements currently charged against the internal budget.
    fn internal_used(&self) -> usize;

    /// Cost snapshot (shared across data and auxiliary I/O).
    fn cost(&self) -> Cost;

    /// Enter a named phase ("merge-pass-2", "base-runs", …). Algorithms call
    /// this to label the I/O that follows; the plain machine ignores it, and
    /// observability wrappers (e.g. `aem-obs`'s `InstrumentedMachine`)
    /// attribute cost to the resulting nested span. Phases nest: each
    /// `phase_enter` must be balanced by one [`AemAccess::phase_exit`].
    fn phase_enter(&mut self, name: &str) {
        let _ = name;
    }

    /// Leave the innermost phase entered via [`AemAccess::phase_enter`].
    /// A no-op on machines that do not track phases.
    fn phase_exit(&mut self) {}
}

impl<T, M: AemAccess<T> + ?Sized> AemAccess<T> for &mut M {
    fn cfg(&self) -> AemConfig {
        (**self).cfg()
    }
    fn read_block(&mut self, id: BlockId) -> Result<Vec<T>> {
        (**self).read_block(id)
    }
    fn read_block_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize> {
        (**self).read_block_into(id, buf)
    }
    fn exchange_block_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize> {
        (**self).exchange_block_into(id, buf)
    }
    fn write_block(&mut self, id: BlockId, data: Vec<T>) -> Result<()> {
        (**self).write_block(id, data)
    }
    fn read_run(&mut self, first: BlockId, count: usize, buf: &mut Vec<T>) -> Result<usize> {
        (**self).read_run(first, count, buf)
    }
    fn write_run(&mut self, first: BlockId, data: &[T]) -> Result<usize>
    where
        T: Clone,
    {
        (**self).write_run(first, data)
    }
    fn alloc_block(&mut self) -> BlockId {
        (**self).alloc_block()
    }
    fn alloc_region(&mut self, elems: usize) -> Region {
        (**self).alloc_region(elems)
    }
    fn discard(&mut self, k: usize) -> Result<()> {
        (**self).discard(k)
    }
    fn reserve(&mut self, k: usize) -> Result<()> {
        (**self).reserve(k)
    }
    fn read_aux_block(&mut self, id: BlockId) -> Result<Vec<u64>> {
        (**self).read_aux_block(id)
    }
    fn write_aux_block(&mut self, id: BlockId, data: Vec<u64>) -> Result<()> {
        (**self).write_aux_block(id, data)
    }
    fn alloc_aux_region(&mut self, words: usize) -> Region {
        (**self).alloc_aux_region(words)
    }
    fn internal_used(&self) -> usize {
        (**self).internal_used()
    }
    fn cost(&self) -> Cost {
        (**self).cost()
    }
    fn phase_enter(&mut self, name: &str) {
        (**self).phase_enter(name)
    }
    fn phase_exit(&mut self) {
        (**self).phase_exit()
    }
}

/// The `(M, B, ω)`-AEM cost meter, generic over storage backends.
///
/// Implements the §2 cost measure exactly: reading a block charges 1,
/// writing a block charges `ω` (via [`Cost::q`]), and internal memory is
/// capacity-enforced at `M` elements. `S` stores data payloads, `A` stores
/// auxiliary machine words; both default to the copying [`ExternalMemory`]
/// so [`Machine`] behaves exactly as it always has.
#[derive(Debug)]
pub struct MachineCore<T, S = ExternalMemory<T>, A = ExternalMemory<u64>> {
    cfg: AemConfig,
    data: S,
    aux: A,
    internal_used: usize,
    counter: IoCounter,
    trace: Option<Trace>,
    _elem: PhantomData<fn() -> T>,
}

/// The plain copy-semantics AEM machine — [`MachineCore`] over
/// [`crate::VecStore`], the default backend.
///
/// ```
/// use aem_machine::{AemAccess, AemConfig, Machine};
///
/// let cfg = AemConfig::new(64, 8, 16).unwrap(); // M = 64, B = 8, ω = 16
/// let mut m: Machine<u64> = Machine::new(cfg);
/// let r = m.install(&(0..32).collect::<Vec<u64>>()); // setup is free (§2)
///
/// let block = m.read_block(r.block(0)).unwrap();
/// m.write_block(r.block(1), block).unwrap();
///
/// let c = m.cost();
/// assert_eq!((c.reads, c.writes), (1, 1));
/// assert_eq!(c.q(cfg.omega), 1 + 16); // Q = reads + ω·writes
/// ```
pub type Machine<T> = MachineCore<T>;

/// [`MachineCore`] over [`ArenaStore`]: identical semantics and cost to
/// [`Machine`], zero per-I/O allocation in steady state.
pub type ArenaMachine<T> = MachineCore<T, ArenaStore<T>, ArenaStore<u64>>;

/// [`MachineCore`] over a cost-only [`GhostStore`] for data and a *real*
/// [`ExternalMemory`] for auxiliary words.
///
/// Data reads return `T::default()` placeholders; auxiliary words
/// (pointers, counters — addressing metadata by design) stay real so that
/// algorithms which spill metadata keep working. Cost equality with
/// [`Machine`] holds only for payload-oblivious workloads — see
/// [`crate::store`] for the soundness argument.
pub type GhostMachine<T> = MachineCore<T, GhostStore<T>, ExternalMemory<u64>>;

impl<T, S, A> MachineCore<T, S, A>
where
    T: Clone,
    S: BlockStore<T>,
    A: BlockStore<u64>,
{
    /// A fresh machine.
    pub fn new(cfg: AemConfig) -> Self {
        Self::with_counter(cfg, IoCounter::new())
    }

    /// A fresh machine charging an existing (possibly shared) cost meter.
    pub fn with_counter(cfg: AemConfig, counter: IoCounter) -> Self {
        Self {
            cfg,
            data: S::new_store(cfg.block),
            aux: A::new_store(cfg.block),
            internal_used: 0,
            counter,
            trace: None,
            _elem: PhantomData,
        }
    }

    /// The storage backend of the data store.
    pub fn backend() -> Backend {
        S::BACKEND
    }

    /// Begin recording every I/O into a [`Trace`]. Any previously recorded
    /// trace is discarded.
    pub fn start_trace(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// Stop recording and return the trace, if any.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Handle to the machine's cost meter.
    pub fn counter(&self) -> IoCounter {
        self.counter.clone()
    }

    /// Install an input array into external memory without charging I/O
    /// (problem setup; the input "is given" in external memory).
    pub fn install(&mut self, data: &[T]) -> Region {
        self.data.install(data)
    }

    /// Inspect a region's contents without charging I/O (result
    /// verification; outside the metered computation). On a ghost backend
    /// the returned values are placeholders — only the length is
    /// meaningful.
    pub fn inspect(&self, region: Region) -> Vec<T> {
        self.data.inspect(region)
    }

    /// Inspect a single block without charging I/O.
    pub fn inspect_block(&self, id: BlockId) -> Result<Vec<T>> {
        self.data.inspect_block(id)
    }

    /// Occupancy of a single block (elements currently stored), free of
    /// charge — used by validators, not by algorithms.
    pub fn block_len(&self, id: BlockId) -> Result<usize> {
        self.data.occupancy(id)
    }

    /// Occupancy of a single auxiliary block, free of charge.
    pub fn aux_block_len(&self, id: BlockId) -> Result<usize> {
        self.aux.occupancy(id)
    }

    /// Number of data blocks allocated so far.
    pub fn allocated_blocks(&self) -> usize {
        self.data.allocated()
    }

    /// Direct access to the data store (backend-specific telemetry such as
    /// [`ArenaStore::free_buffers`]).
    pub fn data_store(&self) -> &S {
        &self.data
    }

    /// Return the machine to its post-construction state — meter at zero,
    /// ledger empty, no blocks allocated, any active trace cleared — while
    /// *recycling* the stores' buffers ([`BlockStore::wipe`]): repeated
    /// runs on one machine reach an allocation-free steady state, which is
    /// what a sweep harness re-running cells wants. Shared [`IoCounter`]
    /// handles observe the zeroed meter (the cells are zeroed, not
    /// replaced). Regions from before the reset are dead: their ids are
    /// `BadBlock` until re-allocated.
    pub fn reset(&mut self) {
        self.data.wipe();
        self.aux.wipe();
        self.internal_used = 0;
        self.counter.reset();
        if let Some(t) = &mut self.trace {
            *t = Trace::new();
        }
    }

    /// Charge the internal budget without an I/O (used by in-crate wrappers
    /// to model internal-memory copies, which occupy space but are free of
    /// I/O cost).
    pub(crate) fn charge_internal_free(&mut self, k: usize) -> Result<()> {
        self.charge_internal(k)
    }

    fn charge_internal(&mut self, k: usize) -> Result<()> {
        if self.internal_used + k > self.cfg.memory {
            return Err(MachineError::InternalOverflow {
                used: self.internal_used,
                capacity: self.cfg.memory,
                requested: k,
            });
        }
        self.internal_used += k;
        Ok(())
    }

    fn release_internal(&mut self, k: usize) -> Result<()> {
        if k > self.internal_used {
            return Err(MachineError::InternalUnderflow {
                used: self.internal_used,
                released: k,
            });
        }
        self.internal_used -= k;
        Ok(())
    }

    fn record(&mut self, ev: IoEvent) {
        if let Some(t) = &mut self.trace {
            t.push(ev);
        }
    }
}

impl<T, S, A> AemAccess<T> for MachineCore<T, S, A>
where
    T: Clone,
    S: BlockStore<T>,
    A: BlockStore<u64>,
{
    fn cfg(&self) -> AemConfig {
        self.cfg
    }

    fn read_block(&mut self, id: BlockId) -> Result<Vec<T>> {
        // Validate the target (BadBlock) before the ledger (InternalOverflow)
        // so error precedence matches the pre-backend machine exactly.
        let len = self.data.occupancy(id)?;
        self.charge_internal(len)?;
        let contents = self.data.read(id)?;
        self.counter.charge_read();
        self.record(IoEvent::Read {
            block: id,
            len,
            aux: false,
        });
        Ok(contents)
    }

    fn read_block_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize> {
        // Fused store call: one block lookup covers occupancy + payload
        // (this is the hot path of gather-heavy kernels — one call per
        // block reload). The closure charges the ledger between the two,
        // preserving the occupancy → charge → read validation order.
        let used = &mut self.internal_used;
        let capacity = self.cfg.memory;
        let len = self.data.read_into_charged(id, buf, |k| {
            if *used + k > capacity {
                return Err(MachineError::InternalOverflow {
                    used: *used,
                    capacity,
                    requested: k,
                });
            }
            *used += k;
            Ok(())
        })?;
        self.counter.charge_read();
        self.record(IoEvent::Read {
            block: id,
            len,
            aux: false,
        });
        Ok(len)
    }

    fn exchange_block_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize> {
        // One fused store lookup for the evict-and-load cycle. The ledger
        // closure nets the release of the evicted occupancy against the
        // charge for the incoming one; `id` is validated first (inside
        // `read_into_charged`), so a BadBlock exchange is a ledger no-op —
        // see the trait docs for this deliberate divergence from the
        // decomposed discard + read pair.
        let released = buf.len();
        let used = &mut self.internal_used;
        let capacity = self.cfg.memory;
        let len = self.data.read_into_charged(id, buf, |k| {
            let base = used
                .checked_sub(released)
                .ok_or(MachineError::InternalUnderflow {
                    used: *used,
                    released,
                })?;
            if base + k > capacity {
                return Err(MachineError::InternalOverflow {
                    used: base,
                    capacity,
                    requested: k,
                });
            }
            *used = base + k;
            Ok(())
        })?;
        self.counter.charge_read();
        self.record(IoEvent::Read {
            block: id,
            len,
            aux: false,
        });
        Ok(len)
    }

    fn write_block(&mut self, id: BlockId, data: Vec<T>) -> Result<()> {
        let len = data.len();
        if len > self.cfg.block {
            return Err(MachineError::BlockOverflow {
                len,
                block: self.cfg.block,
            });
        }
        // Validate the target before touching the ledger: a failed write
        // must leave the accounting unchanged.
        self.data.occupancy(id)?;
        self.release_internal(len)?;
        self.data.write(id, data)?;
        self.counter.charge_write();
        self.record(IoEvent::Write {
            block: id,
            len,
            aux: false,
        });
        Ok(())
    }

    fn read_run(&mut self, first: BlockId, count: usize, buf: &mut Vec<T>) -> Result<usize> {
        // Validate the whole run (BadBlock) and total its occupancy before
        // the single ledger charge (InternalOverflow), mirroring the
        // per-read precedence; then one bulk payload move and one bulk
        // meter update for `count` read I/Os.
        let total = self.data.run_occupancy(first, count)?;
        self.charge_internal(total)?;
        self.data.read_run(first, count, buf)?;
        self.counter.charge_reads(count as u64);
        if self.trace.is_some() {
            for i in 0..count {
                let id = BlockId(first.index() + i);
                let len = self.data.occupancy(id).expect("validated above");
                self.record(IoEvent::Read {
                    block: id,
                    len,
                    aux: false,
                });
            }
        }
        Ok(total)
    }

    fn write_run(&mut self, first: BlockId, data: &[T]) -> Result<usize>
    where
        T: Clone,
    {
        let blocks = data.len().div_ceil(self.cfg.block);
        // Per-chunk occupancy ≤ B holds by construction; validate the
        // targets before the ledger so a failed bulk write is a no-op.
        self.data.run_occupancy(first, blocks)?;
        self.release_internal(data.len())?;
        let total = data.len();
        self.data.write_run(first, data)?;
        self.counter.charge_writes(blocks as u64);
        if self.trace.is_some() {
            for i in 0..blocks {
                let len = (total - i * self.cfg.block).min(self.cfg.block);
                self.record(IoEvent::Write {
                    block: BlockId(first.index() + i),
                    len,
                    aux: false,
                });
            }
        }
        Ok(blocks)
    }

    fn alloc_block(&mut self) -> BlockId {
        self.data.alloc()
    }

    fn alloc_region(&mut self, elems: usize) -> Region {
        self.data.alloc_region(elems)
    }

    fn discard(&mut self, k: usize) -> Result<()> {
        self.release_internal(k)
    }

    fn reserve(&mut self, k: usize) -> Result<()> {
        self.charge_internal(k)
    }

    fn read_aux_block(&mut self, id: BlockId) -> Result<Vec<u64>> {
        let len = self.aux.occupancy(id)?;
        self.charge_internal(len)?;
        let contents = self.aux.read(id)?;
        self.counter.charge_read();
        self.record(IoEvent::Read {
            block: id,
            len,
            aux: true,
        });
        Ok(contents)
    }

    fn write_aux_block(&mut self, id: BlockId, data: Vec<u64>) -> Result<()> {
        let len = data.len();
        if len > self.cfg.block {
            return Err(MachineError::BlockOverflow {
                len,
                block: self.cfg.block,
            });
        }
        self.aux.occupancy(id)?;
        self.release_internal(len)?;
        self.aux.write(id, data)?;
        self.counter.charge_write();
        self.record(IoEvent::Write {
            block: id,
            len,
            aux: true,
        });
        Ok(())
    }

    fn alloc_aux_region(&mut self, words: usize) -> Region {
        self.aux.alloc_region(words)
    }

    fn internal_used(&self) -> usize {
        self.internal_used
    }

    fn cost(&self) -> Cost {
        self.counter.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AemConfig {
        AemConfig::new(16, 4, 8).unwrap()
    }

    #[test]
    fn read_write_round_trip_and_cost() {
        let mut m: Machine<u32> = Machine::new(cfg());
        let r = m.install(&[1, 2, 3, 4, 5, 6]);
        let b0 = m.read_block(r.block(0)).unwrap();
        assert_eq!(b0, vec![1, 2, 3, 4]);
        assert_eq!(m.internal_used(), 4);
        let out = m.alloc_block();
        m.write_block(out, b0).unwrap();
        assert_eq!(m.internal_used(), 0);
        assert_eq!(m.cost(), Cost::new(1, 1));
        assert_eq!(m.inspect_block(out).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m: Machine<u32> = Machine::new(cfg());
        let r = m.install(&[0; 24]);
        // M = 16, B = 4: five block reads exceed capacity.
        for i in 0..4 {
            m.read_block(r.block(i)).unwrap();
        }
        let err = m.read_block(r.block(4)).unwrap_err();
        assert!(matches!(
            err,
            MachineError::InternalOverflow {
                used: 16,
                capacity: 16,
                ..
            }
        ));
    }

    #[test]
    fn discard_releases_budget() {
        let mut m: Machine<u32> = Machine::new(cfg());
        let r = m.install(&[0; 16]);
        for i in 0..4 {
            m.read_block(r.block(i)).unwrap();
        }
        m.discard(8).unwrap();
        assert_eq!(m.internal_used(), 8);
        assert!(m.discard(9).is_err());
    }

    #[test]
    fn write_more_than_block_fails() {
        let mut m: Machine<u32> = Machine::new(cfg());
        let r = m.install(&[0; 8]);
        m.read_block(r.block(0)).unwrap();
        m.read_block(r.block(1)).unwrap();
        let out = m.alloc_block();
        let err = m.write_block(out, vec![0; 5]).unwrap_err();
        assert_eq!(err, MachineError::BlockOverflow { len: 5, block: 4 });
    }

    #[test]
    fn aux_io_shares_budget_and_counter() {
        let mut m: Machine<u32> = Machine::new(cfg());
        let ar = m.alloc_aux_region(4);
        // Writing aux data we never "held" underflows the ledger.
        assert!(m.write_aux_block(ar.block(0), vec![7; 4]).is_err());
        // Proper flow: charge by reading an (empty) aux block, then hold data.
        m.read_aux_block(ar.block(0)).unwrap(); // empty: charges 0
                                                // Simulate producing 4 words in memory by charging via a data read.
        let r = m.install(&[1, 2, 3, 4]);
        m.read_block(r.block(0)).unwrap();
        m.write_aux_block(ar.block(0), vec![7; 4]).unwrap();
        assert_eq!(m.cost(), Cost::new(2, 1));
        assert_eq!(m.read_aux_block(ar.block(0)).unwrap(), vec![7; 4]);
    }

    #[test]
    fn trace_records_all_io() {
        let mut m: Machine<u32> = Machine::new(cfg());
        let r = m.install(&[1, 2, 3, 4]);
        m.start_trace();
        let d = m.read_block(r.block(0)).unwrap();
        let out = m.alloc_block();
        m.write_block(out, d).unwrap();
        let t = m.take_trace().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cost(), Cost::new(1, 1));
        assert!(m.take_trace().is_none());
    }

    #[test]
    fn install_and_inspect_are_free() {
        let mut m: Machine<u32> = Machine::new(cfg());
        let r = m.install(&[9; 12]);
        assert_eq!(m.inspect(r), vec![9; 12]);
        assert_eq!(m.cost(), Cost::ZERO);
        assert_eq!(m.internal_used(), 0);
    }

    #[test]
    fn shared_counter_between_machines() {
        let a: Machine<u32> = Machine::new(cfg());
        let mut b: Machine<u32> = Machine::with_counter(cfg(), a.counter());
        let r = b.install(&[1]);
        b.read_block(r.block(0)).unwrap();
        assert_eq!(a.cost(), Cost::new(1, 0));
    }

    #[test]
    fn read_block_into_matches_read_block() {
        let mut m: Machine<u32> = Machine::new(cfg());
        let r = m.install(&[1, 2, 3, 4, 5]);
        m.start_trace();
        let mut buf = vec![99; 4];
        let len = m.read_block_into(r.block(1), &mut buf).unwrap();
        assert_eq!((len, buf.as_slice()), (1, &[5][..]));
        assert_eq!(m.internal_used(), 1);
        m.discard(1).unwrap();
        let via_read = m.read_block(r.block(1)).unwrap();
        assert_eq!(via_read, buf);
        let t = m.take_trace().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cost(), Cost::new(2, 0));
    }

    // The same scripted workload on every backend: costs, ledger and error
    // sites must agree exactly; payloads must agree on the payload-carrying
    // backends.
    fn scripted<M>(mut m: M) -> (Cost, usize, Vec<MachineError>, Vec<u32>)
    where
        M: AemAccess<u32>,
    {
        let mut errs = Vec::new();
        let r = m.alloc_region(10);
        errs.push(m.read_block(BlockId(42)).unwrap_err());
        for (i, chunk) in [vec![1u32, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10]]
            .into_iter()
            .enumerate()
        {
            m.reserve(chunk.len()).unwrap();
            m.write_block(r.block(i), chunk).unwrap();
        }
        errs.push(m.write_block(r.block(0), vec![0; 5]).unwrap_err());
        let out = m.alloc_region(10);
        let mut payload = Vec::new();
        let mut buf = Vec::new();
        for i in 0..3 {
            let len = m.read_block_into(r.block(i), &mut buf).unwrap();
            payload.extend_from_slice(&buf);
            m.write_block(out.block(i), std::mem::take(&mut buf))
                .unwrap();
            assert!(len <= 4);
        }
        errs.push(m.discard(1).unwrap_err());
        (m.cost(), m.internal_used(), errs, payload)
    }

    #[test]
    fn backends_agree_on_cost_ledger_and_errors() {
        let c = cfg();
        let vec_run = scripted(Machine::<u32>::new(c));
        let arena_run = scripted(ArenaMachine::<u32>::new(c));
        let ghost_run = scripted(GhostMachine::<u32>::new(c));
        assert_eq!(vec_run.0, arena_run.0);
        assert_eq!(vec_run.0, ghost_run.0);
        assert_eq!(vec_run.1, arena_run.1);
        assert_eq!(vec_run.1, ghost_run.1);
        assert_eq!(vec_run.2, arena_run.2);
        assert_eq!(vec_run.2, ghost_run.2);
        // Full payload equality for the payload-carrying backends; length
        // equality for ghost.
        assert_eq!(vec_run.3, arena_run.3);
        assert_eq!(vec_run.3.len(), ghost_run.3.len());
    }

    // The same bulk-run workload on one machine type: returns everything
    // the per-block loop must agree on.
    fn run_bulk<M: AemAccess<u32> + TraceRecording>(
        mut m: M,
        bulk: bool,
    ) -> (Cost, usize, Vec<u32>, Vec<IoEvent>) {
        let r = m.alloc_region(10);
        let data: Vec<u32> = (50..60).collect();
        m.reserve(data.len()).unwrap();
        m.start_rec();
        let written = if bulk {
            m.write_run(r.block(0), &data).unwrap()
        } else {
            let mut iter = data.into_iter().peekable();
            let mut blk = 0;
            while iter.peek().is_some() {
                let chunk: Vec<u32> = iter.by_ref().take(4).collect();
                m.write_block(r.block(blk), chunk).unwrap();
                blk += 1;
            }
            blk
        };
        assert_eq!(written, 3);
        let mut buf = Vec::new();
        let total = if bulk {
            m.read_run(r.block(0), 3, &mut buf).unwrap()
        } else {
            let mut tmp = Vec::new();
            let mut total = 0;
            for i in 0..3 {
                total += m.read_block_into(r.block(i), &mut tmp).unwrap();
                buf.append(&mut tmp);
            }
            total
        };
        assert_eq!(total, 10);
        let used = m.internal_used();
        m.discard(total).unwrap();
        (m.cost(), used, buf, m.take_rec())
    }

    // Test-local helper so `run_bulk` can drive trace recording through
    // the generic machine parameter.
    trait TraceRecording {
        fn start_rec(&mut self);
        fn take_rec(&mut self) -> Vec<IoEvent>;
    }
    impl<T: Clone, S: BlockStore<T>, A: BlockStore<u64>> TraceRecording for MachineCore<T, S, A> {
        fn start_rec(&mut self) {
            self.start_trace();
        }
        fn take_rec(&mut self) -> Vec<IoEvent> {
            self.take_trace().unwrap().events().to_vec()
        }
    }
    impl<T: Clone> TraceRecording for crate::TraceMachine<T> {
        fn start_rec(&mut self) {
            self.start_trace();
        }
        fn take_rec(&mut self) -> Vec<IoEvent> {
            self.take_trace().unwrap().events().to_vec()
        }
    }

    #[test]
    fn bulk_runs_match_per_block_loops_on_cost_ledger_payload_and_trace() {
        let c = cfg();
        let per_block = run_bulk(Machine::<u32>::new(c), false);
        for backend in Backend::ALL {
            let bulk = crate::with_backend_machine!(backend, u32, |M| run_bulk(M::new(c), true));
            assert_eq!(per_block.0, bulk.0, "{backend}: cost");
            assert_eq!(per_block.1, bulk.1, "{backend}: ledger");
            if backend.carries_payload() {
                assert_eq!(per_block.2, bulk.2, "{backend}: payload");
            } else {
                assert_eq!(per_block.2.len(), bulk.2.len(), "{backend}: length");
            }
            assert_eq!(per_block.3, bulk.3, "{backend}: trace events");
        }
    }

    #[test]
    fn failing_bulk_ops_are_atomic() {
        let mut m: Machine<u32> = Machine::new(cfg());
        let r = m.install(&[7; 20]); // 5 blocks of 4 > M = 16
        let mut buf = Vec::new();
        let err = m.read_run(r.block(0), 5, &mut buf).unwrap_err();
        assert!(matches!(err, MachineError::InternalOverflow { .. }));
        assert_eq!(m.cost(), Cost::ZERO);
        assert_eq!(m.internal_used(), 0);
        // A run past the allocated range fails without charging either.
        assert!(m.read_run(r.block(3), 4, &mut buf).is_err());
        assert_eq!(m.cost(), Cost::ZERO);
        m.reserve(8).unwrap();
        let err = m
            .write_run(BlockId(r.first + 4), &(0..8u32).collect::<Vec<u32>>())
            .unwrap_err();
        assert!(matches!(err, MachineError::BadBlock { .. }));
        assert_eq!(m.cost(), Cost::ZERO);
        assert_eq!(m.internal_used(), 8);
    }

    #[test]
    fn empty_write_run_is_free() {
        let mut m: Machine<u32> = Machine::new(cfg());
        let r = m.install(&[1, 2, 3]);
        assert_eq!(m.write_run(r.block(0), &[]).unwrap(), 0);
        assert_eq!(m.cost(), Cost::ZERO);
        assert_eq!(m.block_len(r.block(0)).unwrap(), 3, "target untouched");
    }

    #[test]
    fn ghost_aux_store_carries_real_words() {
        let mut m: GhostMachine<u32> = GhostMachine::new(cfg());
        let ar = m.alloc_aux_region(4);
        m.reserve(3).unwrap();
        m.write_aux_block(ar.block(0), vec![7, 8, 9]).unwrap();
        assert_eq!(m.read_aux_block(ar.block(0)).unwrap(), vec![7, 8, 9]);
        assert_eq!(GhostMachine::<u32>::backend(), Backend::Ghost);
        assert_eq!(Machine::<u32>::backend(), Backend::Vec);
        assert_eq!(ArenaMachine::<u32>::backend(), Backend::Arena);
    }

    #[test]
    fn arena_machine_recycles_buffers() {
        let mut m: ArenaMachine<u32> = ArenaMachine::new(cfg());
        let r = m.install(&[0; 16]);
        let out = m.alloc_region(16);
        for i in 0..4 {
            let b = m.read_block(r.block(i)).unwrap();
            m.write_block(out.block(i), b).unwrap();
        }
        // Each write displaced one (empty) buffer into the pool; each read
        // drained one. The pool ends balanced and non-aliasing.
        assert!(m.data_store().free_buffers() <= 4);
    }

    #[test]
    fn exchange_matches_discard_plus_read() {
        // The fused evict-and-load equals the decomposed pair in cost,
        // ledger and payload.
        let input: Vec<u32> = (0..16).collect();
        let mut fused: Machine<u32> = Machine::new(cfg());
        let fr = fused.install(&input);
        let mut pair: Machine<u32> = Machine::new(cfg());
        let pr = pair.install(&input);
        let (mut fbuf, mut pbuf) = (Vec::new(), Vec::new());
        for i in [0usize, 3, 1, 3] {
            let flen = fused.exchange_block_into(fr.block(i), &mut fbuf).unwrap();
            if !pbuf.is_empty() {
                pair.discard(pbuf.len()).unwrap();
            }
            let plen = pair.read_block_into(pr.block(i), &mut pbuf).unwrap();
            assert_eq!(flen, plen);
            assert_eq!(fbuf, pbuf);
            assert_eq!(fused.cost(), pair.cost());
            assert_eq!(fused.internal_used(), pair.internal_used());
        }
    }

    #[test]
    fn failed_exchange_leaves_the_ledger_untouched() {
        // Unlike the decomposed discard + read (which releases before the
        // read can fail), a BadBlock exchange is atomic: the evicted
        // block's budget stays charged.
        let mut m: Machine<u32> = Machine::new(cfg());
        let r = m.install(&[0; 8]);
        let mut buf = Vec::new();
        m.read_block_into(r.block(0), &mut buf).unwrap();
        let used = m.internal_used();
        let err = m.exchange_block_into(BlockId(99), &mut buf).unwrap_err();
        assert!(matches!(err, MachineError::BadBlock { .. }));
        assert_eq!(m.internal_used(), used);
        assert_eq!(m.cost(), Cost::new(1, 0));
    }

    #[test]
    fn reset_returns_the_machine_to_fresh_state() {
        let mut m: Machine<u32> = Machine::new(cfg());
        let r = m.install(&(0..16u32).collect::<Vec<_>>());
        let d = m.read_block(r.block(0)).unwrap();
        m.write_block(r.block(1), d).unwrap();
        assert_ne!(m.cost(), Cost::ZERO);
        let shared = m.counter();

        m.reset();
        assert_eq!(m.cost(), Cost::ZERO);
        assert_eq!(m.internal_used(), 0);
        assert_eq!(m.allocated_blocks(), 0);
        // Shared counter handles observe the zeroed meter in place.
        assert_eq!(shared.snapshot(), Cost::ZERO);
        // Pre-reset regions are dead until re-allocated.
        assert!(matches!(
            m.read_block(r.block(0)),
            Err(MachineError::BadBlock { .. })
        ));

        // The machine is fully usable again, with identical metering.
        let r2 = m.install(&(0..16u32).collect::<Vec<_>>());
        let d = m.read_block(r2.block(0)).unwrap();
        assert_eq!(d, vec![0, 1, 2, 3]);
        m.write_block(r2.block(1), d).unwrap();
        assert_eq!(m.cost(), Cost::new(1, 1));
    }

    #[test]
    fn reset_recycles_buffers_across_runs() {
        // Steady state: the second run reuses the first run's retired
        // slots, so the store's high-water mark stops growing.
        fn run(m: &mut Machine<u32>) {
            let r = m.install(&(0..16u32).collect::<Vec<_>>());
            let out = m.alloc_region(16);
            for i in 0..4 {
                let d = m.read_block(r.block(i)).unwrap();
                m.write_block(out.block(i), d).unwrap();
            }
        }
        let mut m: Machine<u32> = Machine::new(cfg());
        run(&mut m);
        let high_water = m.allocated_blocks();
        m.reset();
        run(&mut m);
        assert_eq!(m.allocated_blocks(), high_water);
    }
}
