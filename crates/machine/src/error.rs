//! Errors raised by the simulators.
//!
//! Every error here corresponds to a *violation of the machine model*: an
//! algorithm that triggers one is claiming resources the `(M, B, ω)`-AEM does
//! not grant it. The test suites treat any such error as a hard failure,
//! which is how the crate turns the paper's resource bounds into
//! machine-checked properties.

/// Convenient result alias used throughout the machine crates.
pub type Result<T> = std::result::Result<T, MachineError>;

/// A violation of the machine model (or of simulator bookkeeping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The configuration parameters are inconsistent.
    InvalidConfig(&'static str),
    /// Internal memory capacity `M` would be exceeded.
    InternalOverflow {
        /// Elements currently resident in internal memory.
        used: usize,
        /// Capacity `M` of the internal memory.
        capacity: usize,
        /// Elements the rejected operation tried to add.
        requested: usize,
    },
    /// Internal memory accounting went negative: the algorithm released
    /// elements it never held. Indicates a bug in the algorithm's ledger.
    InternalUnderflow {
        /// Elements currently accounted as resident.
        used: usize,
        /// Elements the rejected operation tried to release.
        released: usize,
    },
    /// A block id outside the allocated external memory was addressed.
    BadBlock {
        /// The offending block id (raw index).
        block: usize,
        /// Number of blocks currently allocated.
        allocated: usize,
    },
    /// More than `B` elements were written into a single block.
    BlockOverflow {
        /// Number of elements in the rejected write.
        len: usize,
        /// Block capacity `B`.
        block: usize,
    },
    /// Move-semantics machine: a write targeted a block that still holds
    /// atoms. §4.2 of the paper: "writing to external memory can only be
    /// performed into empty blocks".
    WriteToOccupied {
        /// The target block.
        block: usize,
        /// Number of live atoms still stored there.
        occupancy: usize,
    },
    /// Move-semantics machine: an atom required by the operation is not where
    /// the program claims it is.
    AtomNotPresent {
        /// The missing atom.
        atom: u64,
        /// Human-readable location description.
        wanted_in: &'static str,
    },
    /// A recorded trace is malformed or inconsistent with the machine it is
    /// replayed or analyzed on.
    MalformedTrace(String),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::InvalidConfig(msg) => write!(f, "invalid AEM configuration: {msg}"),
            MachineError::InternalOverflow {
                used,
                capacity,
                requested,
            } => write!(
                f,
                "internal memory overflow: {used}/{capacity} elements resident, \
                 operation needs {requested} more"
            ),
            MachineError::InternalUnderflow { used, released } => write!(
                f,
                "internal memory underflow: {used} elements resident, \
                 operation released {released}"
            ),
            MachineError::BadBlock { block, allocated } => {
                write!(
                    f,
                    "block {block} out of range ({allocated} blocks allocated)"
                )
            }
            MachineError::BlockOverflow { len, block } => {
                write!(
                    f,
                    "attempted to write {len} elements into a block of size {block}"
                )
            }
            MachineError::WriteToOccupied { block, occupancy } => write!(
                f,
                "write to non-empty block {block} ({occupancy} atoms live); \
                 the move-semantics AEM only writes to empty blocks"
            ),
            MachineError::AtomNotPresent { atom, wanted_in } => {
                write!(f, "atom {atom} is not present in {wanted_in}")
            }
            MachineError::MalformedTrace(msg) => write!(f, "malformed trace: {msg}"),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MachineError::InternalOverflow {
            used: 60,
            capacity: 64,
            requested: 8,
        };
        let s = e.to_string();
        assert!(s.contains("60") && s.contains("64") && s.contains('8'));

        let e = MachineError::WriteToOccupied {
            block: 3,
            occupancy: 5,
        };
        assert!(e.to_string().contains("block 3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            MachineError::InvalidConfig("x"),
            MachineError::InvalidConfig("x")
        );
        assert_ne!(
            MachineError::BadBlock {
                block: 0,
                allocated: 1
            },
            MachineError::BadBlock {
                block: 1,
                allocated: 1
            }
        );
    }
}
