//! Blocks, block identifiers, and contiguous regions of external memory.

/// Identifier of one external-memory block.
///
/// Block ids are stable for the lifetime of a machine; external memory is
/// unbounded, so ids are handed out by a bump allocator and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

impl BlockId {
    /// Raw index into the machine's block table.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A contiguous range of blocks, used to address arrays laid out in external
/// memory (the input and output of the algorithms in this workspace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// First block of the region.
    pub first: usize,
    /// Number of blocks in the region.
    pub blocks: usize,
    /// Number of elements the region holds (`≤ blocks · B`; the final block
    /// may be partially filled).
    pub elems: usize,
}

impl Region {
    /// An empty region.
    pub const EMPTY: Region = Region {
        first: 0,
        blocks: 0,
        elems: 0,
    };

    /// The `i`-th block of the region. Panics if `i` is out of range; regions
    /// are algorithm-internal so an out-of-range access is a bug, not input
    /// error.
    #[inline]
    pub fn block(&self, i: usize) -> BlockId {
        assert!(i < self.blocks, "region block {i} out of {}", self.blocks);
        BlockId(self.first + i)
    }

    /// Iterate over the block ids of the region in order.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        (self.first..self.first + self.blocks).map(BlockId)
    }

    /// Number of elements stored in block `i` of the region, given block
    /// size `b`: `b` for all but possibly the last block.
    pub fn elems_in_block(&self, i: usize, b: usize) -> usize {
        debug_assert!(i < self.blocks);
        let before = i * b;
        b.min(self.elems.saturating_sub(before))
    }

    /// The sub-region that skips the first `skip` blocks, given block size
    /// `b`. The result aliases the same external blocks — no data moves.
    ///
    /// Used by the priority queues to hand the *untouched suffix* of a
    /// partially consumed run to the §3.1 merge: the consumed prefix is
    /// dropped at block granularity and only the remainder is re-merged.
    pub fn suffix(&self, skip: usize, b: usize) -> Region {
        if skip >= self.blocks {
            return Region::EMPTY;
        }
        Region {
            first: self.first + skip,
            blocks: self.blocks - skip,
            elems: self.elems.saturating_sub(skip * b),
        }
    }

    /// Split the region into `parts` consecutive sub-regions of as equal
    /// element counts as possible, each aligned to block boundaries.
    ///
    /// Used by the mergesort driver to form the `d = ωm` subarrays of §3.
    pub fn split_blockwise(&self, parts: usize, b: usize) -> Vec<Region> {
        assert!(parts >= 1);
        let mut out = Vec::with_capacity(parts.min(self.blocks.max(1)));
        let per = self.blocks.div_ceil(parts.max(1));
        let mut blk = 0usize;
        while blk < self.blocks {
            let take = per.min(self.blocks - blk);
            let first_elem = blk * b;
            let elems = (take * b).min(self.elems.saturating_sub(first_elem));
            out.push(Region {
                first: self.first + blk,
                blocks: take,
                elems,
            });
            blk += take;
        }
        if out.is_empty() {
            out.push(Region {
                first: self.first,
                blocks: 0,
                elems: 0,
            });
        }
        out
    }
}

/// A single external-memory block: up to `B` elements.
///
/// Copy-semantics machines store plain values; a block may be partially
/// filled (e.g. the tail block of an array, or an output block flushed at
/// end of input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block<T> {
    data: Vec<T>,
}

impl<T> Block<T> {
    /// An empty block.
    pub fn empty() -> Self {
        Self { data: Vec::new() }
    }

    /// Build a block from `data`; the caller has checked `data.len() ≤ B`.
    pub fn from_vec(data: Vec<T>) -> Self {
        Self { data }
    }

    /// Elements currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when no element is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the contents.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Take the contents, leaving the block empty.
    pub fn take(&mut self) -> Vec<T> {
        std::mem::take(&mut self.data)
    }

    /// Replace the contents.
    pub fn set(&mut self, data: Vec<T>) {
        self.data = data;
    }

    /// Empty the block, keeping its buffer capacity for reuse (the wipe /
    /// slot-recycling path).
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl<T: Clone> Block<T> {
    /// Clone the contents out (a read under copy semantics).
    pub fn to_vec(&self) -> Vec<T> {
        self.data.clone()
    }

    /// Overwrite the contents from a slice, reusing the block's existing
    /// buffer capacity (the allocation-free write path bulk runs use).
    /// The caller has checked `data.len() ≤ B`.
    pub fn set_from_slice(&mut self, data: &[T]) {
        self.data.clear();
        self.data.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_blocks_iterate_in_order() {
        let r = Region {
            first: 5,
            blocks: 3,
            elems: 20,
        };
        let ids: Vec<usize> = r.iter().map(|b| b.index()).collect();
        assert_eq!(ids, vec![5, 6, 7]);
        assert_eq!(r.block(2), BlockId(7));
    }

    #[test]
    #[should_panic]
    fn region_block_out_of_range_panics() {
        let r = Region {
            first: 0,
            blocks: 2,
            elems: 10,
        };
        let _ = r.block(2);
    }

    #[test]
    fn last_block_may_be_partial() {
        let r = Region {
            first: 0,
            blocks: 3,
            elems: 20,
        };
        assert_eq!(r.elems_in_block(0, 8), 8);
        assert_eq!(r.elems_in_block(1, 8), 8);
        assert_eq!(r.elems_in_block(2, 8), 4);
    }

    #[test]
    fn split_blockwise_covers_everything() {
        let r = Region {
            first: 2,
            blocks: 10,
            elems: 77,
        };
        let parts = r.split_blockwise(4, 8);
        let total_blocks: usize = parts.iter().map(|p| p.blocks).sum();
        let total_elems: usize = parts.iter().map(|p| p.elems).sum();
        assert_eq!(total_blocks, 10);
        assert_eq!(total_elems, 77);
        // Consecutive and disjoint.
        for w in parts.windows(2) {
            assert_eq!(w[0].first + w[0].blocks, w[1].first);
        }
    }

    #[test]
    fn split_blockwise_more_parts_than_blocks() {
        let r = Region {
            first: 0,
            blocks: 2,
            elems: 9,
        };
        let parts = r.split_blockwise(8, 8);
        assert!(parts.len() <= 2);
        assert_eq!(parts.iter().map(|p| p.elems).sum::<usize>(), 9);
    }

    #[test]
    fn suffix_aliases_the_tail() {
        let r = Region {
            first: 4,
            blocks: 3,
            elems: 20,
        };
        let s = r.suffix(1, 8);
        assert_eq!((s.first, s.blocks, s.elems), (5, 2, 12));
        assert_eq!(r.suffix(0, 8), r);
        assert_eq!(r.suffix(3, 8), Region::EMPTY);
        assert_eq!(r.suffix(7, 8), Region::EMPTY);
    }

    #[test]
    fn block_take_empties() {
        let mut b = Block::from_vec(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        let v = b.take();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(b.is_empty());
    }
}
