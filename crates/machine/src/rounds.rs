//! Rounds and the executable form of **Lemma 4.1**.
//!
//! §4 of the paper defines an *`ωm`-round* as a maximal sequence of
//! operations of cost at most `ωm`; all but the last round must cost at
//! least `ω(m − 1)`. A program is *round-based* if it computes in rounds and
//! the internal memory is empty at every round boundary.
//!
//! **Lemma 4.1.** Any program `P` on the `(M, B, ω)`-AEM with cost `Q` can be
//! implemented as a round-based program `P'` on the `(2M, B, ω)`-AEM with
//! cost `O(Q)`.
//!
//! This module makes the lemma executable in two complementary ways:
//!
//! 1. [`round_decompose`] / [`round_based_cost`] analyze a recorded
//!    [`Trace`], splitting it into rounds and computing the exact cost of
//!    the Lemma 4.1 conversion (original cost plus, per interior round
//!    boundary, at most `m` snapshot writes and `m` restore reads).
//! 2. [`RoundBasedMachine`] *runs* the conversion: it wraps a machine with
//!    internal memory `2M`, presents an `M`-machine interface to the
//!    algorithm, buffers every write of the current round in the second
//!    memory half `M''` (serving re-reads from the buffer, as `P'` does),
//!    flushes `M''` and charges the `M'` snapshot/restore cost at each round
//!    boundary. Output equality with plain execution is asserted in tests
//!    for every algorithm in the workspace.

use std::collections::HashMap;

use crate::block::{BlockId, Region};
use crate::config::AemConfig;
use crate::cost::Cost;
use crate::error::{MachineError, Result};
use crate::external::ExternalMemory;
#[cfg(test)]
use crate::machine::Machine;
use crate::machine::{AemAccess, MachineCore};
use crate::store::BlockStore;
#[cfg(test)]
use crate::trace::IoEvent;
use crate::trace::Trace;

/// A single round of a decomposed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundSpan {
    /// Index of the first event of the round.
    pub start: usize,
    /// One past the last event of the round.
    pub end: usize,
    /// Cost of the round (`r + ωw`).
    pub cost: u64,
}

/// Split a trace into `ωm`-rounds greedily.
///
/// Greedy packing yields exactly the structure §4 requires: every round has
/// cost at most `ωm`, and every round except the last has cost strictly
/// greater than `ωm − ω ≥ ω(m − 1)` (the next operation, of cost at most
/// `ω`, did not fit).
pub fn round_decompose(trace: &Trace, cfg: AemConfig) -> Vec<RoundSpan> {
    let budget = cfg.round_budget();
    let mut rounds = Vec::new();
    let mut start = 0usize;
    let mut cost = 0u64;
    for (i, ev) in trace.events().iter().enumerate() {
        let c = ev.cost(cfg.omega);
        debug_assert!(c <= budget, "single op exceeds round budget");
        if cost + c > budget {
            rounds.push(RoundSpan {
                start,
                end: i,
                cost,
            });
            start = i;
            cost = 0;
        }
        cost += c;
    }
    if (start < trace.len() || trace.is_empty()) && cost > 0 {
        rounds.push(RoundSpan {
            start,
            end: trace.len(),
            cost,
        });
    }
    rounds
}

/// Summed cost of a round decomposition.
///
/// Because [`round_decompose`] partitions the trace, this sum must equal
/// the trace's total `Q = Q_r + ω·Q_w` exactly — the conservation half of
/// Lemma 4.1 that the fuzzing harness asserts on every sampled config
/// (splitting into rounds re-labels the cost, it never creates or
/// destroys any).
pub fn rounds_cost(rounds: &[RoundSpan]) -> u64 {
    rounds.iter().map(|r| r.cost).sum()
}

/// Exact cost of the Lemma 4.1 round-based conversion of `trace`, assuming
/// worst-case `M'` occupancy (a full internal memory snapshot of `m` blocks
/// at every interior round boundary).
///
/// The conversion `P'` performs: all operations of `P` (reads served from
/// `M''` can only become cheaper, so this is an upper bound, which is the
/// direction the lower-bound argument needs), plus per interior boundary at
/// most `m` snapshot writes and `m` restore reads.
pub fn round_based_cost(trace: &Trace, cfg: AemConfig) -> Cost {
    let rounds = round_decompose(trace, cfg);
    let boundaries = rounds.len().saturating_sub(1) as u64;
    let m = cfg.m() as u64;
    let base = trace.cost();
    Cost {
        reads: base.reads + boundaries * m,
        writes: base.writes + boundaries * m,
    }
}

/// Statistics reported by [`RoundBasedMachine::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Number of completed rounds (including the final partial round).
    pub rounds: u64,
    /// Cost of the wrapped (round-based) execution, including snapshot and
    /// restore overhead.
    pub cost: Cost,
}

/// Executable Lemma 4.1: run any algorithm as a round-based program.
///
/// The wrapper presents the *original* `(M, B, ω)` configuration to the
/// algorithm while running on an inner machine with internal memory `2M`
/// (`M'` for the algorithm's data, `M''` for the write buffer), exactly as
/// in the lemma's proof. See the module docs for the full behavior.
///
/// Generic over the same storage backends as [`MachineCore`] (defaulting
/// to the copying store), so Lemma 4.1 measurements run unchanged on the
/// arena and ghost backends.
#[derive(Debug)]
pub struct RoundBasedMachine<T, S = ExternalMemory<T>, A = ExternalMemory<u64>> {
    /// The algorithm-visible configuration (`M`).
    algo_cfg: AemConfig,
    inner: MachineCore<T, S, A>,
    /// Buffered data-block writes of the current round (`M''`).
    buf_data: HashMap<usize, Vec<T>>,
    /// Buffered auxiliary-block writes of the current round (also `M''`).
    buf_aux: HashMap<usize, Vec<u64>>,
    /// Total elements currently buffered.
    buffered: usize,
    /// Cost accumulated in the current round.
    round_cost: u64,
    /// Completed rounds.
    rounds: u64,
}

impl<T, S, A> RoundBasedMachine<T, S, A>
where
    T: Clone,
    S: BlockStore<T>,
    A: BlockStore<u64>,
{
    /// Wrap a fresh machine; the algorithm sees `cfg`, the inner machine has
    /// `2M` internal memory as granted by Lemma 4.1.
    pub fn new(cfg: AemConfig) -> Self {
        let inner_cfg = AemConfig {
            memory: cfg.memory * 2,
            ..cfg
        };
        Self {
            algo_cfg: cfg,
            inner: MachineCore::new(inner_cfg),
            buf_data: HashMap::new(),
            buf_aux: HashMap::new(),
            buffered: 0,
            round_cost: 0,
            rounds: 0,
        }
    }

    /// Install an input array (free; see [`MachineCore::install`]).
    pub fn install(&mut self, data: &[T]) -> Region {
        self.inner.install(data)
    }

    /// Elements the *algorithm* currently holds (`M'` occupancy): the inner
    /// machine's ledger minus the write buffer (`M''`).
    fn algo_used(&self) -> usize {
        self.inner.internal_used() - self.buffered
    }

    /// Account `c` units of round cost, closing the round first if `c` no
    /// longer fits within the `ωm` budget.
    fn account(&mut self, c: u64) -> Result<()> {
        if self.round_cost + c > self.algo_cfg.round_budget() {
            self.close_round(true)?;
        }
        self.round_cost += c;
        Ok(())
    }

    /// Close the current round: flush `M''` to external memory and, when the
    /// program continues (`interior`), charge the `M'` snapshot writes and
    /// restore reads of Lemma 4.1. Snapshot/restore is pure data movement
    /// to/from dedicated scratch blocks and back, so it is modeled as cost
    /// (the data itself stays in place — observationally identical).
    fn close_round(&mut self, interior: bool) -> Result<()> {
        let b = self.algo_cfg.block;
        // Flush deferred writes (these are P's own writes, whose ω-cost was
        // already accounted when the algorithm issued them).
        let mut data: Vec<(usize, Vec<T>)> = self.buf_data.drain().collect();
        data.sort_by_key(|(id, _)| *id);
        for (id, payload) in data {
            self.buffered -= payload.len();
            self.inner.write_block(BlockId(id), payload)?;
        }
        let mut aux: Vec<(usize, Vec<u64>)> = self.buf_aux.drain().collect();
        aux.sort_by_key(|(id, _)| *id);
        for (id, payload) in aux {
            self.buffered -= payload.len();
            self.inner.write_aux_block(BlockId(id), payload)?;
        }
        debug_assert_eq!(self.buffered, 0);
        if interior {
            // Snapshot M' at round end, restore at next round start.
            let snapshot_blocks = self.algo_used().div_ceil(b) as u64;
            self.inner.counter().charge_writes(snapshot_blocks);
            self.inner.counter().charge_reads(snapshot_blocks);
        }
        self.rounds += 1;
        self.round_cost = 0;
        Ok(())
    }

    /// Finish execution: flush the final round and report statistics.
    /// Must be called before inspecting results.
    pub fn finish(&mut self) -> Result<RoundStats> {
        if self.round_cost > 0 || self.buffered > 0 {
            self.close_round(false)?;
        }
        Ok(RoundStats {
            rounds: self.rounds,
            cost: self.inner.cost(),
        })
    }

    /// Inspect a region (free). Only meaningful after [`Self::finish`].
    pub fn inspect(&self, region: Region) -> Vec<T> {
        assert!(
            self.buffered == 0,
            "inspect called before finish(): writes still buffered"
        );
        self.inner.inspect(region)
    }

    /// Completed rounds so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

impl<T, S, A> AemAccess<T> for RoundBasedMachine<T, S, A>
where
    T: Clone,
    S: BlockStore<T>,
    A: BlockStore<u64>,
{
    fn cfg(&self) -> AemConfig {
        self.algo_cfg
    }

    fn read_block(&mut self, id: BlockId) -> Result<Vec<T>> {
        // Pre-check the algorithm's budget so a rejected read leaves both
        // the ledger and the cost meter unchanged (matching Machine).
        let incoming = match self.buf_data.get(&id.index()) {
            Some(buffered) => buffered.len(),
            None => self.inner.block_len(id)?,
        };
        self.enforce_algo_budget(incoming)?;
        self.account(1)?;
        if let Some(buffered) = self.buf_data.get(&id.index()) {
            // P' copies the block from M'' instead of reading external
            // memory; the copy occupies M' space but costs no I/O. The
            // original read cost of P was still accounted above (upper
            // bound; P' can only be cheaper, but we charge P's cost so the
            // measured overhead is conservative).
            let copy = buffered.clone();
            self.inner.charge_internal_free(copy.len())?;
            self.inner.counter().charge_read();
            self.enforce_algo_budget(0)?;
            return Ok(copy);
        }
        let data = self.inner.read_block(id)?;
        self.enforce_algo_budget(0)?;
        Ok(data)
    }

    fn write_block(&mut self, id: BlockId, data: Vec<T>) -> Result<()> {
        if data.len() > self.algo_cfg.block {
            return Err(MachineError::BlockOverflow {
                len: data.len(),
                block: self.algo_cfg.block,
            });
        }
        // The algorithm must actually hold what it writes, exactly as on
        // the plain machine (otherwise algo_used would underflow).
        if self.algo_used() < data.len() {
            return Err(MachineError::InternalUnderflow {
                used: self.algo_used(),
                released: data.len(),
            });
        }
        self.account(self.algo_cfg.omega)?;
        // The write I/O is charged when the buffer is flushed at the round
        // boundary (charging here as well would double-count).
        // Re-writing a block already buffered this round replaces the
        // buffered payload.
        if let Some(old) = self.buf_data.insert(id.index(), data) {
            self.buffered -= old.len();
            self.inner.discard(old.len())?;
        }
        self.buffered += self.buf_data[&id.index()].len();
        Ok(())
    }

    fn alloc_block(&mut self) -> BlockId {
        self.inner.alloc_block()
    }

    fn alloc_region(&mut self, elems: usize) -> Region {
        self.inner.alloc_region(elems)
    }

    fn discard(&mut self, k: usize) -> Result<()> {
        self.inner.discard(k)
    }

    fn reserve(&mut self, k: usize) -> Result<()> {
        self.enforce_algo_budget(k)?;
        self.inner.charge_internal_free(k)
    }

    fn read_aux_block(&mut self, id: BlockId) -> Result<Vec<u64>> {
        let incoming = match self.buf_aux.get(&id.index()) {
            Some(buffered) => buffered.len(),
            None => self.inner.aux_block_len(id)?,
        };
        self.enforce_algo_budget(incoming)?;
        self.account(1)?;
        if let Some(buffered) = self.buf_aux.get(&id.index()) {
            let copy = buffered.clone();
            self.inner.charge_internal_free(copy.len())?;
            self.inner.counter().charge_read();
            self.enforce_algo_budget(0)?;
            return Ok(copy);
        }
        let data = self.inner.read_aux_block(id)?;
        self.enforce_algo_budget(0)?;
        Ok(data)
    }

    fn write_aux_block(&mut self, id: BlockId, data: Vec<u64>) -> Result<()> {
        if data.len() > self.algo_cfg.block {
            return Err(MachineError::BlockOverflow {
                len: data.len(),
                block: self.algo_cfg.block,
            });
        }
        if self.algo_used() < data.len() {
            return Err(MachineError::InternalUnderflow {
                used: self.algo_used(),
                released: data.len(),
            });
        }
        self.account(self.algo_cfg.omega)?;
        if let Some(old) = self.buf_aux.insert(id.index(), data) {
            self.buffered -= old.len();
            self.inner.discard(old.len())?;
        }
        self.buffered += self.buf_aux[&id.index()].len();
        Ok(())
    }

    fn alloc_aux_region(&mut self, words: usize) -> Region {
        self.inner.alloc_aux_region(words)
    }

    fn internal_used(&self) -> usize {
        self.algo_used()
    }

    fn cost(&self) -> Cost {
        self.inner.cost()
    }
}

impl<T, S, A> RoundBasedMachine<T, S, A>
where
    T: Clone,
    S: BlockStore<T>,
    A: BlockStore<u64>,
{
    /// The algorithm's own footprint must respect the *original* capacity
    /// `M`: Lemma 4.1 grants the doubled memory to the simulation (`M''`),
    /// not to the algorithm.
    fn enforce_algo_budget(&self, extra: usize) -> Result<()> {
        let used = self.algo_used() + extra;
        if used > self.algo_cfg.memory {
            return Err(MachineError::InternalOverflow {
                used: self.algo_used(),
                capacity: self.algo_cfg.memory,
                requested: extra,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
impl<T: Clone> RoundBasedMachine<T> {
    fn inspect_region_block(&self, id: BlockId) -> Vec<T> {
        self.inner.inspect_block(id).unwrap()
    }
}

#[cfg(test)]
mod backend_tests {
    use super::*;
    use crate::store::{ArenaStore, GhostStore};

    /// Block-reversal workload; structural, so all three backends must
    /// agree on cost and round count.
    fn reverse_blocks<T2, S, A>(rb: &mut RoundBasedMachine<T2, S, A>, input: &[T2]) -> RoundStats
    where
        T2: Clone,
        S: BlockStore<T2>,
        A: BlockStore<u64>,
    {
        let rin = rb.install(input);
        let rout = rb.alloc_region(input.len());
        for i in 0..rin.blocks {
            let mut d = rb.read_block(rin.block(i)).unwrap();
            d.reverse();
            rb.write_block(rout.block(i), d).unwrap();
        }
        rb.finish().unwrap()
    }

    #[test]
    fn round_based_machine_is_backend_generic() {
        let c = AemConfig::new(16, 4, 4).unwrap();
        let input: Vec<u32> = (0..32).rev().collect();
        let mut on_vec: RoundBasedMachine<u32> = RoundBasedMachine::new(c);
        let mut on_arena: RoundBasedMachine<u32, ArenaStore<u32>, ArenaStore<u64>> =
            RoundBasedMachine::new(c);
        let mut on_ghost: RoundBasedMachine<u32, GhostStore<u32>, ExternalMemory<u64>> =
            RoundBasedMachine::new(c);
        let sv = reverse_blocks(&mut on_vec, &input);
        let sa = reverse_blocks(&mut on_arena, &input);
        let sg = reverse_blocks(&mut on_ghost, &input);
        assert_eq!(sv, sa);
        assert_eq!(sv, sg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AemConfig {
        AemConfig::new(16, 4, 4).unwrap() // m = 4, round budget = 16
    }

    fn mk_trace(ops: &[(bool, usize)]) -> Trace {
        // (is_write, block)
        let mut t = Trace::new();
        for &(w, b) in ops {
            if w {
                t.push(IoEvent::Write {
                    block: BlockId(b),
                    len: 4,
                    aux: false,
                });
            } else {
                t.push(IoEvent::Read {
                    block: BlockId(b),
                    len: 4,
                    aux: false,
                });
            }
        }
        t
    }

    #[test]
    fn decompose_respects_budget() {
        // Budget 16; ops: w(4) w(4) w(4) w(4) r r ... each write costs 4.
        let t = mk_trace(&[
            (true, 0),
            (true, 1),
            (true, 2),
            (true, 3),
            (false, 0),
            (false, 1),
        ]);
        let rounds = round_decompose(&t, cfg());
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].cost, 16);
        assert_eq!(rounds[1].cost, 2);
        // Interior rounds cost at least ω(m−1) = 12.
        for r in &rounds[..rounds.len() - 1] {
            assert!(r.cost >= 12);
        }
    }

    #[test]
    fn decompose_empty_trace() {
        let t = Trace::new();
        assert!(round_decompose(&t, cfg()).is_empty());
    }

    #[test]
    fn conversion_cost_is_linear_overhead() {
        let ops: Vec<(bool, usize)> = (0..40).map(|i| (i % 2 == 0, i)).collect();
        let t = mk_trace(&ops);
        let q = t.cost().q(cfg().omega);
        let q2 = round_based_cost(&t, cfg()).q(cfg().omega);
        // Per interior boundary the conversion adds at most (1+ω)m = 20 and
        // each interior round costs more than ω(m−1) = 12; overall a small
        // constant factor.
        assert!(q2 >= q);
        assert!(q2 <= 3 * q + 20, "q={q} q2={q2}");
    }

    #[test]
    fn wrapper_produces_same_output_as_plain_machine() {
        let c = cfg();
        let input: Vec<u32> = (0..32).rev().collect();

        // Plain run: reverse each block.
        let mut plain: Machine<u32> = Machine::new(c);
        let rin = plain.install(&input);
        let rout = plain.alloc_region(input.len());
        for i in 0..rin.blocks {
            let mut d = plain.read_block(rin.block(i)).unwrap();
            d.reverse();
            plain.write_block(rout.block(i), d).unwrap();
        }
        let expect = plain.inspect(rout);

        // Round-based run of the same algorithm.
        let mut rb: RoundBasedMachine<u32> = RoundBasedMachine::new(c);
        let rin = rb.install(&input);
        let rout = rb.alloc_region(input.len());
        for i in 0..rin.blocks {
            let mut d = rb.read_block(rin.block(i)).unwrap();
            d.reverse();
            rb.write_block(rout.block(i), d).unwrap();
        }
        let stats = rb.finish().unwrap();
        assert_eq!(rb.inspect(rout), expect);

        // Constant-factor overhead (Lemma 4.1).
        let q_plain = plain.cost().q(c.omega);
        let q_rb = stats.cost.q(c.omega);
        assert!(q_rb >= q_plain);
        assert!(q_rb <= 4 * q_plain, "q={q_plain} q'={q_rb}");
        assert!(stats.rounds >= 1);
    }

    #[test]
    fn wrapper_serves_rereads_from_buffer() {
        let c = AemConfig::new(64, 4, 2).unwrap(); // big budget: one round
        let mut rb: RoundBasedMachine<u32> = RoundBasedMachine::new(c);
        let r = rb.install(&[1, 2, 3, 4]);
        let d = rb.read_block(r.block(0)).unwrap();
        let out = rb.alloc_block();
        rb.write_block(out, d).unwrap();
        // Read back the block we just wrote: must see the buffered payload
        // even though it has not reached external memory yet.
        let again = rb.read_block(out).unwrap();
        assert_eq!(again, vec![1, 2, 3, 4]);
        rb.discard(4).unwrap();
        rb.finish().unwrap();
        assert_eq!(rb.inspect(r), vec![1, 2, 3, 4]);
    }

    #[test]
    fn wrapper_enforces_original_capacity() {
        let c = cfg(); // M = 16
        let mut rb: RoundBasedMachine<u32> = RoundBasedMachine::new(c);
        let r = rb.install(&[0u32; 24]);
        for i in 0..4 {
            rb.read_block(r.block(i)).unwrap();
        }
        // 16 elements held; a fifth block must not fit even though the inner
        // machine has 32.
        assert!(rb.read_block(r.block(4)).is_err());
    }

    #[test]
    fn rewrite_same_block_in_round_replaces_buffer() {
        let c = AemConfig::new(64, 4, 2).unwrap();
        let mut rb: RoundBasedMachine<u32> = RoundBasedMachine::new(c);
        let r = rb.install(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let d1 = rb.read_block(r.block(0)).unwrap();
        let d2 = rb.read_block(r.block(1)).unwrap();
        let out = rb.alloc_block();
        rb.write_block(out, d1).unwrap();
        rb.write_block(out, d2).unwrap();
        rb.finish().unwrap();
        assert_eq!(rb.inspect_region_block(out), vec![5, 6, 7, 8]);
    }
}
