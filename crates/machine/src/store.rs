//! Pluggable block-storage backends for the AEM machine.
//!
//! [`crate::MachineCore`] separates *cost accounting* (the §2 meter, the
//! internal-memory ledger, trace recording) from *payload movement* (what a
//! block read or write physically does). The former is the model; the
//! latter is an implementation detail this trait abstracts over:
//!
//! * [`VecStore`] — today's copying semantics (an alias for
//!   [`ExternalMemory`]): every read clones the block into a fresh `Vec`.
//!   The default, and the reference behavior every other backend is
//!   differentially tested against.
//! * [`ArenaStore`] — identical semantics, but recycled buffers: writes
//!   move the incoming `Vec` into the block slot and push the displaced
//!   buffer onto a free list, reads pop a pooled buffer instead of
//!   allocating. In steady state the read→write cycle of a streaming
//!   algorithm allocates nothing.
//! * [`GhostStore`] — cost-only: tracks each block's *occupancy* but
//!   carries no payload, so sweeps that only need `Q_r`/`Q_w` run at `N`
//!   two orders of magnitude beyond what the copying stores afford. Reads
//!   return `T::default()` placeholders of the correct length; every
//!   error path (`BadBlock`, `BlockOverflow`) fires exactly where
//!   [`VecStore`]'s does.
//!
//! ## Ghost soundness
//!
//! A ghost run reports the true cost of an algorithm iff the algorithm is
//! *data-oblivious in its payload*: no value read from the **data** store
//! may influence which I/Os happen. Structural workloads (scans, naive
//! permutation, tiled transpose) qualify; the §3 merge does **not** — it
//! compares keys read from data blocks to decide which block to load next.
//! Note the asymmetry: [`crate::GhostMachine`] pairs a ghost *data* store
//! with a real [`VecStore`] *aux* store, because auxiliary words are
//! addressing metadata (run pointers, counters) by design and ghosting
//! them would corrupt control flow rather than merely payloads.

use crate::block::{BlockId, Region};
use crate::error::{MachineError, Result};
use crate::external::ExternalMemory;

/// The storage backend a machine runs on — the user-facing selector behind
/// `--backend {vec,arena,ghost,trace}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Copying semantics ([`VecStore`]); the default.
    #[default]
    Vec,
    /// Buffer-recycling semantics ([`ArenaStore`]).
    Arena,
    /// Cost-only semantics ([`GhostStore`]).
    Ghost,
    /// Copying semantics plus schedule recording
    /// ([`crate::TraceMachine`]): a vec-backed run that compiles its I/O
    /// schedule into a [`crate::CompiledTrace`] for arithmetic replay.
    Trace,
}

impl Backend {
    /// All backends, in canonical order.
    pub const ALL: [Backend; 4] = [Backend::Vec, Backend::Arena, Backend::Ghost, Backend::Trace];

    /// The stable lowercase name used in CLI flags and cache keys.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Vec => "vec",
            Backend::Arena => "arena",
            Backend::Ghost => "ghost",
            Backend::Trace => "trace",
        }
    }

    /// Parse a CLI flag value.
    pub fn from_name(name: &str) -> std::result::Result<Self, String> {
        match name {
            "vec" => Ok(Backend::Vec),
            "arena" => Ok(Backend::Arena),
            "ghost" => Ok(Backend::Ghost),
            "trace" => Ok(Backend::Trace),
            other => Err(format!(
                "unknown backend '{other}' (expected vec, arena, ghost or trace)"
            )),
        }
    }

    /// `true` for backends whose reads return the actual stored payload
    /// (vec, arena, trace) rather than placeholders (ghost).
    /// Output-equality assertions must be gated on this.
    pub fn carries_payload(self) -> bool {
        !matches!(self, Backend::Ghost)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a block store must provide for [`crate::MachineCore`] to meter it.
///
/// The store enforces *addressing* invariants (block existence, `≤ B`
/// occupancy); the machine layers the cost meter and the internal-memory
/// ledger on top. All backends must agree exactly on which operations fail
/// and with which [`MachineError`] variant — that contract is what makes
/// backend-differential testing (and ghost cost-equality) meaningful.
pub trait BlockStore<T> {
    /// Which backend this store implements.
    const BACKEND: Backend;

    /// An empty store with the given block size `B ≥ 1`.
    fn new_store(block_size: usize) -> Self
    where
        Self: Sized;

    /// Block size `B`.
    fn block_size(&self) -> usize;

    /// Number of blocks allocated so far.
    fn allocated(&self) -> usize;

    /// Allocate one fresh (empty) block — free of I/O cost.
    fn alloc(&mut self) -> BlockId;

    /// Allocate consecutive fresh blocks able to hold `elems` elements.
    fn alloc_region(&mut self, elems: usize) -> Region;

    /// Occupancy (stored element count) of a block, or `BadBlock`.
    fn occupancy(&self, id: BlockId) -> Result<usize>;

    /// Read a block's contents into a fresh `Vec`.
    fn read(&mut self, id: BlockId) -> Result<Vec<T>>;

    /// Read a block's contents into `buf` (cleared first), returning the
    /// occupancy. The buffer-reuse counterpart of [`BlockStore::read`].
    fn read_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize>;

    /// Overwrite a block. Enforces `data.len() ≤ B` and block existence.
    fn write(&mut self, id: BlockId, data: Vec<T>) -> Result<()>;

    /// Retire every allocated block, recycling buffers where the backend
    /// supports it: after a wipe the store is observably empty
    /// (`allocated() == 0`, every old id is `BadBlock`) but subsequent
    /// allocations reuse retired capacity instead of touching the
    /// allocator. The storage half of [`crate::MachineCore::reset`].
    fn wipe(&mut self);

    /// Install an array into freshly allocated blocks (problem setup,
    /// outside the metered computation).
    fn install(&mut self, data: &[T]) -> Region;

    /// Read an entire region back out, free of charge (result inspection).
    fn inspect(&self, region: Region) -> Vec<T>;

    /// Read one block, free of charge (result inspection).
    fn inspect_block(&self, id: BlockId) -> Result<Vec<T>>;

    /// Total elements currently resident across all blocks.
    fn resident_elems(&self) -> usize;

    /// Bulk read: the `count` consecutive blocks starting at `first`, their
    /// payloads appended in block order into `buf` (cleared first). Returns
    /// the total element count. Payload- and occupancy-equivalent to
    /// `count` successive [`BlockStore::read_into`] calls; backends
    /// override the default loop with a single bounds check and
    /// `copy_from_slice`-style movement (see `docs/COST_MODEL.md` for the
    /// contract bulk ops must preserve). On error, nothing is moved.
    fn read_run(&mut self, first: BlockId, count: usize, buf: &mut Vec<T>) -> Result<usize> {
        buf.clear();
        let mut tmp = Vec::new();
        let mut total = 0;
        for i in 0..count {
            total += self.read_into(BlockId(first.index() + i), &mut tmp)?;
            buf.append(&mut tmp);
        }
        Ok(total)
    }

    /// Bulk write: `data` split across the consecutive blocks starting at
    /// `first` in chunks of exactly `B` (the final block may be partial).
    /// Returns the number of blocks written, `⌈data.len()/B⌉` — zero for
    /// empty `data`, which touches no block. Occupancy-equivalent to the
    /// per-block [`BlockStore::write`] loop over the same chunks; `≤ B`
    /// per-block occupancy holds by construction. On error, nothing is
    /// moved.
    fn write_run(&mut self, first: BlockId, data: &[T]) -> Result<usize>
    where
        T: Clone,
    {
        // Validate the whole run up front so the bulk op is atomic (the
        // per-block loop could stop half-way through).
        let blocks = data.len().div_ceil(self.block_size());
        for i in 0..blocks {
            self.occupancy(BlockId(first.index() + i))?;
        }
        for (i, chunk) in data.chunks(self.block_size()).enumerate() {
            self.write(BlockId(first.index() + i), chunk.to_vec())?;
        }
        Ok(blocks)
    }

    /// Occupancy sum of the `count` consecutive blocks starting at
    /// `first` — the single validation-and-ledger sweep bulk reads charge
    /// from. Error-equivalent to `count` successive
    /// [`BlockStore::occupancy`] calls; backends override the loop with
    /// one bounds check and a slice sum.
    fn run_occupancy(&self, first: BlockId, count: usize) -> Result<usize> {
        let mut total = 0;
        for i in 0..count {
            total += self.occupancy(BlockId(first.index() + i))?;
        }
        Ok(total)
    }

    /// Fused metered read: validate `id`, gate its occupancy through
    /// `charge` (the machine's ledger update — if it errors, no payload
    /// moves), then copy the payload into `buf`. Behaviorally identical
    /// to [`BlockStore::occupancy`] + `charge` + [`BlockStore::read_into`];
    /// backends override the pair of lookups with a single one — this is
    /// the hot path of gather-heavy kernels (one call per block reload).
    fn read_into_charged<F>(&mut self, id: BlockId, buf: &mut Vec<T>, charge: F) -> Result<usize>
    where
        F: FnOnce(usize) -> Result<()>,
        Self: Sized,
    {
        let len = self.occupancy(id)?;
        charge(len)?;
        self.read_into(id, buf)
    }
}

/// The default copying backend: an alias for [`ExternalMemory`].
pub type VecStore<T> = ExternalMemory<T>;

impl<T: Clone> BlockStore<T> for ExternalMemory<T> {
    const BACKEND: Backend = Backend::Vec;

    fn new_store(block_size: usize) -> Self {
        ExternalMemory::new(block_size)
    }
    fn block_size(&self) -> usize {
        ExternalMemory::block_size(self)
    }
    fn allocated(&self) -> usize {
        ExternalMemory::allocated(self)
    }
    fn alloc(&mut self) -> BlockId {
        ExternalMemory::alloc(self)
    }
    fn alloc_region(&mut self, elems: usize) -> Region {
        ExternalMemory::alloc_region(self, elems)
    }
    fn occupancy(&self, id: BlockId) -> Result<usize> {
        Ok(self.get(id)?.len())
    }
    fn read(&mut self, id: BlockId) -> Result<Vec<T>> {
        Ok(self.get(id)?.to_vec())
    }
    fn read_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize> {
        let block = self.get(id)?;
        buf.clear();
        buf.extend_from_slice(block.as_slice());
        Ok(buf.len())
    }
    fn write(&mut self, id: BlockId, data: Vec<T>) -> Result<()> {
        self.put(id, data)
    }
    fn wipe(&mut self) {
        ExternalMemory::wipe(self)
    }
    fn install(&mut self, data: &[T]) -> Region {
        ExternalMemory::install(self, data)
    }
    fn inspect(&self, region: Region) -> Vec<T> {
        ExternalMemory::inspect(self, region)
    }
    fn inspect_block(&self, id: BlockId) -> Result<Vec<T>> {
        Ok(self.get(id)?.to_vec())
    }
    fn resident_elems(&self) -> usize {
        ExternalMemory::resident_elems(self)
    }
    fn read_run(&mut self, first: BlockId, count: usize, buf: &mut Vec<T>) -> Result<usize> {
        buf.clear();
        for block in self.run(first, count)? {
            buf.extend_from_slice(block.as_slice());
        }
        Ok(buf.len())
    }
    fn write_run(&mut self, first: BlockId, data: &[T]) -> Result<usize> {
        let blocks = data.len().div_ceil(ExternalMemory::block_size(self));
        check_run(first, blocks, ExternalMemory::allocated(self))?;
        // Bulk writes reuse each slot's buffer (clear + copy) instead of
        // allocating a fresh `Vec` per chunk as the per-block loop does.
        for (i, chunk) in data.chunks(ExternalMemory::block_size(self)).enumerate() {
            self.put_slice(BlockId(first.index() + i), chunk)?;
        }
        Ok(blocks)
    }
    fn run_occupancy(&self, first: BlockId, count: usize) -> Result<usize> {
        Ok(self.run(first, count)?.iter().map(|b| b.len()).sum())
    }
    fn read_into_charged<F>(&mut self, id: BlockId, buf: &mut Vec<T>, charge: F) -> Result<usize>
    where
        F: FnOnce(usize) -> Result<()>,
    {
        let block = self.get(id)?;
        charge(block.len())?;
        buf.clear();
        buf.extend_from_slice(block.as_slice());
        Ok(block.len())
    }
}

/// One bounds check for a whole contiguous run: block ids are allocated
/// densely from zero, so the run `first..first+count` exists iff its last
/// id does. The reported offender matches what the per-block loop would
/// hit first.
fn check_run(first: BlockId, count: usize, allocated: usize) -> Result<()> {
    if count > 0 && first.index() + count > allocated {
        return Err(MachineError::BadBlock {
            block: first.index().max(allocated),
            allocated,
        });
    }
    Ok(())
}

/// Buffer-recycling backend: same observable semantics as [`VecStore`],
/// zero per-I/O allocation in steady state.
///
/// A write *moves* the caller's `Vec` into the block slot and pushes the
/// displaced buffer (cleared, capacity kept) onto a free list; a read pops
/// a pooled buffer and copies the block into it. Streaming algorithms that
/// alternate reads and writes therefore cycle a fixed set of buffers. The
/// free list holds only buffers whose contents have been dropped — the
/// `arena_freelist_never_aliases_live_blocks` property test audits (by
/// pointer identity) that no pooled buffer is ever also a live block.
#[derive(Debug, Clone)]
pub struct ArenaStore<T> {
    block_size: usize,
    blocks: Vec<Vec<T>>,
    pool: Vec<Vec<T>>,
}

impl<T> ArenaStore<T> {
    fn check(&self, id: BlockId) -> Result<()> {
        if id.index() >= self.blocks.len() {
            Err(MachineError::BadBlock {
                block: id.index(),
                allocated: self.blocks.len(),
            })
        } else {
            Ok(())
        }
    }

    fn pooled_buf(&mut self) -> Vec<T> {
        self.pool.pop().unwrap_or_default()
    }

    /// Buffers currently parked on the free list (test/bench telemetry).
    pub fn free_buffers(&self) -> usize {
        self.pool.len()
    }

    /// Pointer-identity audit access: the backing buffer of every live
    /// block, for the no-aliasing property test.
    pub fn block_ptrs(&self) -> Vec<*const T> {
        self.blocks.iter().map(|b| b.as_ptr()).collect()
    }

    /// Pointer-identity audit access: every pooled (free) buffer.
    pub fn pool_ptrs(&self) -> Vec<*const T> {
        self.pool.iter().map(|b| b.as_ptr()).collect()
    }

    /// Capacities of pooled buffers, aligned with [`ArenaStore::pool_ptrs`]
    /// (capacity-0 buffers share the dangling pointer and must be exempt
    /// from identity checks).
    pub fn pool_capacities(&self) -> Vec<usize> {
        self.pool.iter().map(|b| b.capacity()).collect()
    }

    /// Capacities of live block buffers, aligned with
    /// [`ArenaStore::block_ptrs`].
    pub fn block_capacities(&self) -> Vec<usize> {
        self.blocks.iter().map(|b| b.capacity()).collect()
    }
}

impl<T: Clone> BlockStore<T> for ArenaStore<T> {
    const BACKEND: Backend = Backend::Arena;

    fn new_store(block_size: usize) -> Self {
        assert!(block_size >= 1, "block size must be at least 1");
        ArenaStore {
            block_size,
            blocks: Vec::new(),
            pool: Vec::new(),
        }
    }
    fn block_size(&self) -> usize {
        self.block_size
    }
    fn allocated(&self) -> usize {
        self.blocks.len()
    }
    fn alloc(&mut self) -> BlockId {
        let buf = self.pooled_buf();
        self.blocks.push(buf);
        BlockId(self.blocks.len() - 1)
    }
    fn alloc_region(&mut self, elems: usize) -> Region {
        let nblocks = elems.div_ceil(self.block_size);
        let first = self.blocks.len();
        for _ in 0..nblocks {
            let buf = self.pooled_buf();
            self.blocks.push(buf);
        }
        Region {
            first,
            blocks: nblocks,
            elems,
        }
    }
    fn occupancy(&self, id: BlockId) -> Result<usize> {
        self.check(id)?;
        Ok(self.blocks[id.index()].len())
    }
    fn read(&mut self, id: BlockId) -> Result<Vec<T>> {
        self.check(id)?;
        let mut buf = self.pooled_buf();
        buf.extend_from_slice(&self.blocks[id.index()]);
        Ok(buf)
    }
    fn read_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize> {
        self.check(id)?;
        buf.clear();
        buf.extend_from_slice(&self.blocks[id.index()]);
        Ok(buf.len())
    }
    fn write(&mut self, id: BlockId, data: Vec<T>) -> Result<()> {
        if data.len() > self.block_size {
            return Err(MachineError::BlockOverflow {
                len: data.len(),
                block: self.block_size,
            });
        }
        self.check(id)?;
        let mut old = std::mem::replace(&mut self.blocks[id.index()], data);
        old.clear();
        self.pool.push(old);
        Ok(())
    }
    fn wipe(&mut self) {
        // Every live buffer goes back on the free list cleared, preserving
        // the no-aliasing invariant the property test audits.
        for mut buf in self.blocks.drain(..) {
            buf.clear();
            self.pool.push(buf);
        }
    }
    fn install(&mut self, data: &[T]) -> Region {
        let region = self.alloc_region(data.len());
        for (i, chunk) in data.chunks(self.block_size).enumerate() {
            let slot = &mut self.blocks[region.first + i];
            slot.clear();
            slot.extend_from_slice(chunk);
        }
        region
    }
    fn inspect(&self, region: Region) -> Vec<T> {
        let mut out = Vec::with_capacity(region.elems);
        for id in region.iter() {
            out.extend_from_slice(&self.blocks[id.index()]);
        }
        out
    }
    fn inspect_block(&self, id: BlockId) -> Result<Vec<T>> {
        self.check(id)?;
        Ok(self.blocks[id.index()].clone())
    }
    fn resident_elems(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }
    fn read_run(&mut self, first: BlockId, count: usize, buf: &mut Vec<T>) -> Result<usize> {
        check_run(first, count, self.blocks.len())?;
        buf.clear();
        for block in &self.blocks[first.index()..first.index() + count] {
            buf.extend_from_slice(block);
        }
        Ok(buf.len())
    }
    fn write_run(&mut self, first: BlockId, data: &[T]) -> Result<usize> {
        let blocks = data.len().div_ceil(self.block_size);
        check_run(first, blocks, self.blocks.len())?;
        // Bulk writes reuse each slot's buffer in place (clear + copy):
        // same observable payload and occupancy as the per-block write
        // loop, without cycling buffers through the free list.
        for (i, chunk) in data.chunks(self.block_size).enumerate() {
            let slot = &mut self.blocks[first.index() + i];
            slot.clear();
            slot.extend_from_slice(chunk);
        }
        Ok(blocks)
    }
    fn run_occupancy(&self, first: BlockId, count: usize) -> Result<usize> {
        check_run(first, count, self.blocks.len())?;
        Ok(self.blocks[first.index()..first.index() + count]
            .iter()
            .map(|b| b.len())
            .sum())
    }
    fn read_into_charged<F>(&mut self, id: BlockId, buf: &mut Vec<T>, charge: F) -> Result<usize>
    where
        F: FnOnce(usize) -> Result<()>,
    {
        self.check(id)?;
        let block = &self.blocks[id.index()];
        charge(block.len())?;
        buf.clear();
        buf.extend_from_slice(block);
        Ok(block.len())
    }
}

/// Cost-only backend: per-block occupancy, no payload.
///
/// Reads return `vec![T::default(); occupancy]` so element *counts* (and
/// therefore every internal-budget charge, every capacity error, every
/// `Q_r`/`Q_w` increment) match [`VecStore`] exactly; the *values* are
/// placeholders. Sound only for payload-oblivious workloads — see the
/// module docs.
#[derive(Debug, Clone)]
pub struct GhostStore<T> {
    block_size: usize,
    lens: Vec<usize>,
    _elem: std::marker::PhantomData<fn() -> T>,
}

impl<T> GhostStore<T> {
    fn check(&self, id: BlockId) -> Result<()> {
        if id.index() >= self.lens.len() {
            Err(MachineError::BadBlock {
                block: id.index(),
                allocated: self.lens.len(),
            })
        } else {
            Ok(())
        }
    }
}

impl<T: Clone + Default> BlockStore<T> for GhostStore<T> {
    const BACKEND: Backend = Backend::Ghost;

    fn new_store(block_size: usize) -> Self {
        assert!(block_size >= 1, "block size must be at least 1");
        GhostStore {
            block_size,
            lens: Vec::new(),
            _elem: std::marker::PhantomData,
        }
    }
    fn block_size(&self) -> usize {
        self.block_size
    }
    fn allocated(&self) -> usize {
        self.lens.len()
    }
    fn alloc(&mut self) -> BlockId {
        self.lens.push(0);
        BlockId(self.lens.len() - 1)
    }
    fn alloc_region(&mut self, elems: usize) -> Region {
        let nblocks = elems.div_ceil(self.block_size);
        let first = self.lens.len();
        self.lens.extend(std::iter::repeat(0).take(nblocks));
        Region {
            first,
            blocks: nblocks,
            elems,
        }
    }
    fn occupancy(&self, id: BlockId) -> Result<usize> {
        self.check(id)?;
        Ok(self.lens[id.index()])
    }
    fn read(&mut self, id: BlockId) -> Result<Vec<T>> {
        self.check(id)?;
        Ok(vec![T::default(); self.lens[id.index()]])
    }
    fn read_into(&mut self, id: BlockId, buf: &mut Vec<T>) -> Result<usize> {
        self.check(id)?;
        let len = self.lens[id.index()];
        buf.clear();
        buf.resize(len, T::default());
        Ok(len)
    }
    fn write(&mut self, id: BlockId, data: Vec<T>) -> Result<()> {
        if data.len() > self.block_size {
            return Err(MachineError::BlockOverflow {
                len: data.len(),
                block: self.block_size,
            });
        }
        self.check(id)?;
        self.lens[id.index()] = data.len();
        Ok(())
    }
    fn wipe(&mut self) {
        self.lens.clear();
    }
    fn install(&mut self, data: &[T]) -> Region {
        let region = self.alloc_region(data.len());
        let mut remaining = data.len();
        for i in 0..region.blocks {
            let here = remaining.min(self.block_size);
            self.lens[region.first + i] = here;
            remaining -= here;
        }
        region
    }
    fn inspect(&self, region: Region) -> Vec<T> {
        let total: usize = region.iter().map(|id| self.lens[id.index()]).sum();
        vec![T::default(); total]
    }
    fn inspect_block(&self, id: BlockId) -> Result<Vec<T>> {
        self.check(id)?;
        Ok(vec![T::default(); self.lens[id.index()]])
    }
    fn resident_elems(&self) -> usize {
        self.lens.iter().sum()
    }
    fn read_run(&mut self, first: BlockId, count: usize, buf: &mut Vec<T>) -> Result<usize> {
        check_run(first, count, self.lens.len())?;
        let total: usize = (0..count).map(|i| self.lens[first.index() + i]).sum();
        buf.clear();
        buf.resize(total, T::default());
        Ok(total)
    }
    fn write_run(&mut self, first: BlockId, data: &[T]) -> Result<usize> {
        let blocks = data.len().div_ceil(self.block_size);
        check_run(first, blocks, self.lens.len())?;
        for (i, chunk) in data.chunks(self.block_size).enumerate() {
            self.lens[first.index() + i] = chunk.len();
        }
        Ok(blocks)
    }
    fn run_occupancy(&self, first: BlockId, count: usize) -> Result<usize> {
        check_run(first, count, self.lens.len())?;
        Ok(self.lens[first.index()..first.index() + count].iter().sum())
    }
    fn read_into_charged<F>(&mut self, id: BlockId, buf: &mut Vec<T>, charge: F) -> Result<usize>
    where
        F: FnOnce(usize) -> Result<()>,
    {
        self.check(id)?;
        let len = self.lens[id.index()];
        charge(len)?;
        buf.clear();
        buf.resize(len, T::default());
        Ok(len)
    }
}

/// Run `$body` with `$M` bound to the concrete machine type for `$backend`
/// over element type `$t` — the three-way monomorphizing dispatch used by
/// benches, fuzz targets and sweep cells.
///
/// ```
/// use aem_machine::{AemAccess, AemConfig, Backend};
///
/// let cfg = AemConfig::new(64, 8, 16).unwrap();
/// let cost = aem_machine::with_backend_machine!(Backend::Ghost, u64, |M| {
///     let mut m = M::new(cfg);
///     let r = m.install(&vec![0u64; 32]);
///     let b = m.read_block(r.block(0)).unwrap();
///     m.write_block(r.block(1), b).unwrap();
///     m.cost()
/// });
/// assert_eq!((cost.reads, cost.writes), (1, 1));
/// ```
#[macro_export]
macro_rules! with_backend_machine {
    ($backend:expr, $t:ty, |$M:ident| $body:expr) => {
        match $backend {
            $crate::Backend::Vec => {
                #[allow(non_camel_case_types)]
                type $M = $crate::Machine<$t>;
                $body
            }
            $crate::Backend::Arena => {
                #[allow(non_camel_case_types)]
                type $M = $crate::ArenaMachine<$t>;
                $body
            }
            $crate::Backend::Ghost => {
                #[allow(non_camel_case_types)]
                type $M = $crate::GhostMachine<$t>;
                $body
            }
            $crate::Backend::Trace => {
                #[allow(non_camel_case_types)]
                type $M = $crate::TraceMachine<$t>;
                $body
            }
        }
    };
}

/// Like [`with_backend_machine!`] but only for the payload-carrying
/// backends (vec, arena, trace); the ghost arm evaluates `$ghost` instead.
/// Use when the element type has no `Default` or the workload is not
/// payload-oblivious.
#[macro_export]
macro_rules! with_payload_machine {
    ($backend:expr, $t:ty, |$M:ident| $body:expr, ghost => $ghost:expr) => {
        match $backend {
            $crate::Backend::Vec => {
                #[allow(non_camel_case_types)]
                type $M = $crate::Machine<$t>;
                $body
            }
            $crate::Backend::Arena => {
                #[allow(non_camel_case_types)]
                type $M = $crate::ArenaMachine<$t>;
                $body
            }
            $crate::Backend::Ghost => $ghost,
            $crate::Backend::Trace => {
                #[allow(non_camel_case_types)]
                type $M = $crate::TraceMachine<$t>;
                $body
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<S: BlockStore<u32>>() -> (Vec<u32>, usize, Vec<MachineError>) {
        let mut s = S::new_store(4);
        let r = s.install(&[1, 2, 3, 4, 5, 6]);
        let errs = vec![
            s.occupancy(BlockId(99)).unwrap_err(),
            s.write(r.block(0), vec![0; 5]).unwrap_err(),
            s.read(BlockId(7)).unwrap_err(),
        ];
        let b0 = s.read(r.block(0)).unwrap();
        let extra = s.alloc();
        s.write(extra, b0).unwrap();
        let mut buf = Vec::new();
        let len = s.read_into(r.block(1), &mut buf).unwrap();
        assert_eq!(len, buf.len());
        s.write(r.block(1), buf).unwrap();
        (s.inspect(r), s.resident_elems(), errs)
    }

    #[test]
    fn vec_and_arena_agree_on_contents() {
        let (vec_out, vec_res, vec_errs) = drive::<VecStore<u32>>();
        let (arena_out, arena_res, arena_errs) = drive::<ArenaStore<u32>>();
        assert_eq!(vec_out, arena_out);
        assert_eq!(vec_res, arena_res);
        assert_eq!(vec_errs, arena_errs);
    }

    #[test]
    fn ghost_agrees_on_shape_and_errors() {
        let (vec_out, vec_res, vec_errs) = drive::<VecStore<u32>>();
        let (ghost_out, ghost_res, ghost_errs) = drive::<GhostStore<u32>>();
        assert_eq!(vec_out.len(), ghost_out.len());
        assert_eq!(vec_res, ghost_res);
        assert_eq!(vec_errs, ghost_errs);
    }

    #[test]
    fn arena_write_recycles_the_displaced_buffer() {
        let mut s: ArenaStore<u32> = BlockStore::new_store(4);
        let r = s.install(&[1, 2, 3, 4]);
        assert_eq!(s.free_buffers(), 0);
        let buf = BlockStore::read(&mut s, r.block(0)).unwrap();
        s.write(r.block(0), buf).unwrap();
        // The displaced original buffer is now pooled, cleared.
        assert_eq!(s.free_buffers(), 1);
        let next = BlockStore::read(&mut s, r.block(0)).unwrap();
        assert_eq!(next, vec![1, 2, 3, 4]);
        assert_eq!(s.free_buffers(), 0);
    }

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Ok(b));
        }
        assert!(Backend::from_name("slab").is_err());
        assert!(Backend::Vec.carries_payload());
        assert!(Backend::Arena.carries_payload());
        assert!(!Backend::Ghost.carries_payload());
        assert!(Backend::Trace.carries_payload());
    }

    /// Bulk ops vs the per-block loop, on every store: same payload (by
    /// occupancy on ghost), same occupancies, same bad-run error.
    fn drive_bulk<S: BlockStore<u32>>() -> (Vec<u32>, Vec<usize>, MachineError) {
        let mut s = S::new_store(4);
        let r = s.install(&[0u32; 11]);
        let data: Vec<u32> = (10..21).collect();
        let blocks = s.write_run(r.block(0), &data).unwrap();
        assert_eq!(blocks, 3);
        assert_eq!(s.write_run(r.block(1), &[]).unwrap(), 0);
        let mut buf = vec![99u32];
        let total = s.read_run(r.block(0), 3, &mut buf).unwrap();
        assert_eq!(total, 11);
        assert_eq!(buf.len(), 11);
        let err = s.read_run(r.block(1), 3, &mut buf).unwrap_err();
        let occ: Vec<usize> = r.iter().map(|id| s.occupancy(id).unwrap()).collect();
        (s.inspect(r), occ, err)
    }

    #[test]
    fn bulk_runs_match_per_block_loops_across_stores() {
        let (vec_out, vec_occ, vec_err) = drive_bulk::<VecStore<u32>>();
        let (arena_out, arena_occ, arena_err) = drive_bulk::<ArenaStore<u32>>();
        let (ghost_out, ghost_occ, ghost_err) = drive_bulk::<GhostStore<u32>>();
        assert_eq!(vec_out, (10..21).collect::<Vec<u32>>());
        assert_eq!(vec_out, arena_out);
        assert_eq!(vec_out.len(), ghost_out.len());
        assert_eq!(vec_occ, vec![4, 4, 3]);
        assert_eq!(vec_occ, arena_occ);
        assert_eq!(vec_occ, ghost_occ);
        // The run 1..4 exceeds the 3 allocated blocks; the offender the
        // per-block loop would hit first is block 3.
        for err in [vec_err, arena_err, ghost_err] {
            assert_eq!(
                err,
                MachineError::BadBlock {
                    block: 3,
                    allocated: 3
                }
            );
        }
    }

    /// Wipe on every store: observably empty afterwards, old ids dead,
    /// re-allocation works from a clean slate.
    fn drive_wipe<S: BlockStore<u32>>() {
        let mut s = S::new_store(4);
        let r = s.install(&[1, 2, 3, 4, 5]);
        s.wipe();
        assert_eq!(s.allocated(), 0);
        assert_eq!(s.resident_elems(), 0);
        assert!(s.occupancy(r.block(0)).is_err());
        let r2 = s.install(&[7, 8]);
        assert_eq!(r2.first, 0);
        assert_eq!(s.occupancy(r2.block(0)).unwrap(), 2);
    }

    #[test]
    fn wipe_empties_every_store() {
        drive_wipe::<VecStore<u32>>();
        drive_wipe::<ArenaStore<u32>>();
        drive_wipe::<GhostStore<u32>>();
    }

    #[test]
    fn arena_wipe_pools_the_retired_buffers() {
        let mut s: ArenaStore<u32> = BlockStore::new_store(4);
        s.install(&[1, 2, 3, 4, 5, 6, 7, 8]);
        s.wipe();
        assert_eq!(s.free_buffers(), 2, "both live buffers retired cleared");
        s.install(&[9; 8]);
        assert_eq!(s.free_buffers(), 0, "re-install drains the pool");
    }

    #[test]
    fn ghost_partial_tail_block_occupancy() {
        let mut s: GhostStore<u32> = BlockStore::new_store(4);
        let r = s.install(&[0; 10]);
        assert_eq!(s.occupancy(r.block(0)).unwrap(), 4);
        assert_eq!(s.occupancy(r.block(2)).unwrap(), 2);
        assert_eq!(s.resident_elems(), 10);
        assert_eq!(BlockStore::<u32>::inspect(&s, r).len(), 10);
    }
}
