//! Recorded I/O programs.
//!
//! §2 of the paper distinguishes an *algorithm* (handles arbitrary inputs,
//! has control flow) from a *program* (a fixed straight-line sequence of I/O
//! operations implementing one particular permutation or matrix
//! conformation). Lower bounds are proved about programs; running one of our
//! algorithms on one concrete input and recording every I/O yields exactly
//! such a program. This module is the recording side; analysis lives in
//! [`crate::rounds`] and in the `aem-flash` crate.

use crate::block::BlockId;
use crate::cost::Cost;

/// One I/O operation of a recorded program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoEvent {
    /// A block was read from external memory into internal memory.
    Read {
        /// Source block.
        block: BlockId,
        /// Number of elements the block held at read time.
        len: usize,
        /// `true` if this was auxiliary (pointer/metadata) I/O rather than
        /// data I/O. Both are charged identically; the flag only aids
        /// analysis and pretty-printing.
        aux: bool,
    },
    /// A block was written from internal memory to external memory.
    Write {
        /// Destination block.
        block: BlockId,
        /// Number of elements written.
        len: usize,
        /// Auxiliary-I/O flag, as for reads.
        aux: bool,
    },
}

impl IoEvent {
    /// AEM cost of this single operation.
    #[inline]
    pub fn cost(&self, omega: u64) -> u64 {
        match self {
            IoEvent::Read { .. } => 1,
            IoEvent::Write { .. } => omega,
        }
    }

    /// `true` for write events.
    #[inline]
    pub fn is_write(&self) -> bool {
        matches!(self, IoEvent::Write { .. })
    }

    /// The block the operation touches.
    #[inline]
    pub fn block(&self) -> BlockId {
        match *self {
            IoEvent::Read { block, .. } | IoEvent::Write { block, .. } => block,
        }
    }

    /// Number of elements moved by the operation.
    #[inline]
    pub fn len(&self) -> usize {
        match *self {
            IoEvent::Read { len, .. } | IoEvent::Write { len, .. } => len,
        }
    }

    /// `true` when the operation moved no elements (e.g. a read of an
    /// empty block).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A straight-line I/O program: the sequence of I/Os one algorithm execution
/// performed, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<IoEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, ev: IoEvent) {
        self.events.push(ev);
    }

    /// The recorded events in program order.
    pub fn events(&self) -> &[IoEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total cost of the program: `Q = Q_r + ω·Q_w`.
    pub fn cost(&self) -> Cost {
        let mut c = Cost::ZERO;
        for ev in &self.events {
            match ev {
                IoEvent::Read { .. } => c.reads += 1,
                IoEvent::Write { .. } => c.writes += 1,
            }
        }
        c
    }

    /// Total number of elements moved (the *I/O volume*, the quantity the
    /// unit-cost flash model of §4.1 charges for).
    pub fn volume(&self) -> u64 {
        self.events.iter().map(|e| e.len() as u64).sum()
    }

    /// Aggregate statistics over the program: the numbers one looks at
    /// when judging whether an algorithm behaves as its analysis claims
    /// (e.g. §3's "each pointer block is rewritten at most once per
    /// consumed data block" shows up as a low aux-write count here).
    pub fn stats(&self) -> TraceStats {
        use std::collections::HashMap;
        let mut per_block_reads: HashMap<(bool, usize), u64> = HashMap::new();
        let mut per_block_writes: HashMap<(bool, usize), u64> = HashMap::new();
        let mut s = TraceStats::default();
        for ev in &self.events {
            match ev {
                IoEvent::Read { block, aux, .. } => {
                    if *aux {
                        s.aux_reads += 1;
                    } else {
                        s.data_reads += 1;
                    }
                    *per_block_reads.entry((*aux, block.index())).or_insert(0) += 1;
                }
                IoEvent::Write { block, aux, .. } => {
                    if *aux {
                        s.aux_writes += 1;
                    } else {
                        s.data_writes += 1;
                    }
                    *per_block_writes.entry((*aux, block.index())).or_insert(0) += 1;
                }
            }
        }
        s.distinct_blocks_read = per_block_reads.len() as u64;
        s.max_rereads = per_block_reads.values().copied().max().unwrap_or(0);
        s.distinct_blocks_written = per_block_writes.len() as u64;
        // A block's first write initializes it; only writes beyond the first
        // are *rewrites* — the quantity §3 bounds for pointer blocks.
        s.max_rewrites = per_block_writes.values().map(|&w| w - 1).max().unwrap_or(0);
        s.volume = self.volume();
        s
    }
}

/// Aggregate trace statistics; see [`Trace::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Reads of data blocks.
    pub data_reads: u64,
    /// Writes of data blocks.
    pub data_writes: u64,
    /// Reads of auxiliary (pointer/metadata) blocks.
    pub aux_reads: u64,
    /// Writes of auxiliary blocks.
    pub aux_writes: u64,
    /// Number of distinct blocks read at least once.
    pub distinct_blocks_read: u64,
    /// Maximum number of times any single block was read (re-read factor).
    pub max_rereads: u64,
    /// Number of distinct blocks written at least once.
    pub distinct_blocks_written: u64,
    /// Maximum number of times any single block was written *beyond its
    /// first write* (re-write factor). The §3 pointer-maintenance invariant
    /// — "each run's pointer block is rewritten at most once per consumed
    /// data block" — is a statement about this quantity, not about reads.
    pub max_rewrites: u64,
    /// Total elements transferred.
    pub volume: u64,
}

impl TraceStats {
    /// Share of the total I/O spent on auxiliary (metadata) blocks.
    pub fn aux_fraction(&self) -> f64 {
        let aux = (self.aux_reads + self.aux_writes) as f64;
        let total = aux + (self.data_reads + self.data_writes) as f64;
        if total == 0.0 {
            0.0
        } else {
            aux / total
        }
    }
}

impl std::ops::Index<usize> for Trace {
    type Output = IoEvent;
    fn index(&self, i: usize) -> &IoEvent {
        &self.events[i]
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a IoEvent;
    type IntoIter = std::slice::Iter<'a, IoEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(IoEvent::Read {
            block: BlockId(0),
            len: 8,
            aux: false,
        });
        t.push(IoEvent::Read {
            block: BlockId(1),
            len: 8,
            aux: false,
        });
        t.push(IoEvent::Write {
            block: BlockId(2),
            len: 6,
            aux: false,
        });
        t.push(IoEvent::Write {
            block: BlockId(3),
            len: 2,
            aux: true,
        });
        t
    }

    #[test]
    fn cost_counts_reads_and_writes() {
        let t = sample();
        assert_eq!(t.cost(), Cost::new(2, 2));
        assert_eq!(t.cost().q(16), 2 + 32);
    }

    #[test]
    fn volume_sums_lengths() {
        assert_eq!(sample().volume(), 8 + 8 + 6 + 2);
    }

    #[test]
    fn events_preserve_order() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert!(!t[0].is_write());
        assert!(t[2].is_write());
        assert_eq!(t[2].block(), BlockId(2));
        assert_eq!(t[2].len(), 6);
        let writes = t.into_iter().filter(|e| e.is_write()).count();
        assert_eq!(writes, 2);
    }

    #[test]
    fn stats_aggregate_correctly() {
        let t = sample();
        let s = t.stats();
        assert_eq!(s.data_reads, 2);
        assert_eq!(s.data_writes, 1);
        assert_eq!(s.aux_writes, 1);
        assert_eq!(s.aux_reads, 0);
        assert_eq!(s.distinct_blocks_read, 2);
        assert_eq!(s.max_rereads, 1);
        assert_eq!(s.distinct_blocks_written, 2);
        assert_eq!(s.max_rewrites, 0);
        assert_eq!(s.volume, 24);
        assert!((s.aux_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stats_count_rereads() {
        let mut t = Trace::new();
        for _ in 0..3 {
            t.push(IoEvent::Read {
                block: BlockId(7),
                len: 4,
                aux: false,
            });
        }
        let s = t.stats();
        assert_eq!(s.distinct_blocks_read, 1);
        assert_eq!(s.max_rereads, 3);
    }

    #[test]
    fn stats_count_rewrites() {
        // Three writes to block 7 = two rewrites; one write to block 8 = none.
        let mut t = Trace::new();
        for _ in 0..3 {
            t.push(IoEvent::Write {
                block: BlockId(7),
                len: 4,
                aux: false,
            });
        }
        t.push(IoEvent::Write {
            block: BlockId(8),
            len: 4,
            aux: false,
        });
        let s = t.stats();
        assert_eq!(s.distinct_blocks_written, 2);
        assert_eq!(s.max_rewrites, 2);
        assert_eq!(s.data_writes, 4);
    }

    #[test]
    fn aux_and_data_blocks_are_distinct_write_keys() {
        // Same index, different address spaces: two distinct blocks, and a
        // second write to each address space's block is one rewrite.
        let mut t = Trace::new();
        for aux in [false, true] {
            t.push(IoEvent::Write {
                block: BlockId(3),
                len: 1,
                aux,
            });
        }
        assert_eq!(t.stats().distinct_blocks_written, 2);
        assert_eq!(t.stats().max_rewrites, 0);
        t.push(IoEvent::Write {
            block: BlockId(3),
            len: 1,
            aux: true,
        });
        assert_eq!(t.stats().distinct_blocks_written, 2);
        assert_eq!(t.stats().max_rewrites, 1);
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::new().stats();
        assert_eq!(s, TraceStats::default());
        assert_eq!(s.aux_fraction(), 0.0);
    }

    #[test]
    fn event_cost_weighting() {
        let r = IoEvent::Read {
            block: BlockId(0),
            len: 1,
            aux: false,
        };
        let w = IoEvent::Write {
            block: BlockId(0),
            len: 1,
            aux: false,
        };
        assert_eq!(r.cost(9), 1);
        assert_eq!(w.cost(9), 9);
    }
}
