//! The move-semantics **atom machine** of §4.2.
//!
//! To prove the permutation lower bound, the paper restricts programs to
//! moving *indivisible atoms*:
//!
//! > "When reading a block `Bᵢ` from external memory, a program must decide
//! > which subset `S` of atoms of `Bᵢ` will be kept in internal memory to be
//! > written later. Exact copies of the atoms in `S` are created in internal
//! > memory, while destroying their copies in the external memory. \[…\]
//! > Since an atom can exist either in the internal memory or in the
//! > external memory, but not both, and since there is no way to generate
//! > destroyed atoms, writing to external memory can only be performed into
//! > empty blocks."
//!
//! [`AtomMachine`] enforces exactly these rules and records an
//! [`AtomProgram`]: the straight-line program with per-read "used atoms"
//! annotations that the flash-model simulation of Lemma 4.3 (crate
//! `aem-flash`) consumes. Every rule violation is a hard error, so a
//! permutation program that completes on this machine is, by construction, a
//! legal program in the sense of the lower-bound argument.

use std::collections::HashSet;

use crate::block::{BlockId, Region};
use crate::config::AemConfig;
use crate::cost::{Cost, IoCounter};
use crate::error::{MachineError, Result};
use crate::external::ExternalMemory;

/// Identity of one indivisible atom. Atoms are created once, at input
/// installation, and only ever move; ids double as the atom's *input
/// position*, which is what makes permutation checking trivial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u64);

impl std::fmt::Display for AtomId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// One operation of a move-semantics program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomEvent {
    /// A block was read; the listed atoms were *used* (moved into internal
    /// memory, their external copies destroyed). Unlisted atoms stayed in
    /// the block untouched.
    Read {
        /// Source block.
        block: BlockId,
        /// Atoms removed from the block by this read, in block order.
        removed: Vec<AtomId>,
    },
    /// A block (previously empty) was written with the listed atoms.
    Write {
        /// Destination block.
        block: BlockId,
        /// Atoms now stored in the block, in block order.
        atoms: Vec<AtomId>,
    },
}

/// A completed move-semantics program: initial layout plus the recorded
/// event sequence. This is the object Lemma 4.3 simulates in the flash
/// model.
#[derive(Debug, Clone)]
pub struct AtomProgram {
    /// Number of atoms in the input.
    pub n_atoms: usize,
    /// Block size of the machine the program ran on.
    pub block: usize,
    /// Initial contents of every non-empty block (in block-id order).
    pub input: Vec<(BlockId, Vec<AtomId>)>,
    /// The recorded operations, in program order.
    pub events: Vec<AtomEvent>,
}

impl AtomProgram {
    /// Cost of the program.
    pub fn cost(&self) -> Cost {
        let mut c = Cost::ZERO;
        for ev in &self.events {
            match ev {
                AtomEvent::Read { .. } => c.reads += 1,
                AtomEvent::Write { .. } => c.writes += 1,
            }
        }
        c
    }

    /// Replay the program abstractly and return the final contents of
    /// every non-empty block. Used by the flash-model simulation to verify
    /// that its translated program realizes the same layout.
    pub fn final_layout(&self) -> std::collections::HashMap<usize, Vec<AtomId>> {
        let mut state: std::collections::HashMap<usize, Vec<AtomId>> = self
            .input
            .iter()
            .map(|(bid, atoms)| (bid.index(), atoms.clone()))
            .collect();
        for ev in &self.events {
            match ev {
                AtomEvent::Read { block, removed } => {
                    if let Some(content) = state.get_mut(&block.index()) {
                        let rm: HashSet<AtomId> = removed.iter().copied().collect();
                        content.retain(|a| !rm.contains(a));
                        if content.is_empty() {
                            state.remove(&block.index());
                        }
                    }
                }
                AtomEvent::Write { block, atoms } => {
                    state.insert(block.index(), atoms.clone());
                }
            }
        }
        state
    }
}

/// The enforcing move-semantics machine.
///
/// # Example
///
/// ```
/// use aem_machine::{AemConfig, AtomId, AtomMachine};
///
/// let cfg = AemConfig::new(8, 4, 2).unwrap();
/// let mut m = AtomMachine::new(cfg);
/// let input = m.install_atoms(8); // atoms 0..8 in two blocks
///
/// // Use (keep) two atoms from the first block; their external copies
/// // are destroyed.
/// m.read_keep(input.block(0), &[AtomId(1), AtomId(3)]).unwrap();
/// assert_eq!(m.internal_atoms(), vec![AtomId(1), AtomId(3)]);
///
/// // Writes may only target empty blocks (§4.2 of the paper).
/// let out = m.alloc_block();
/// m.write(out, vec![AtomId(3), AtomId(1)]).unwrap();
/// assert_eq!(m.cost().q(cfg.omega), 1 + 2);
///
/// // The recorded program feeds the Lemma 4.3 flash simulation.
/// let program = m.into_program();
/// assert_eq!(program.events.len(), 2);
/// ```
#[derive(Debug)]
pub struct AtomMachine {
    cfg: AemConfig,
    ext: ExternalMemory<AtomId>,
    internal: HashSet<AtomId>,
    counter: IoCounter,
    events: Vec<AtomEvent>,
    input: Vec<(BlockId, Vec<AtomId>)>,
    n_atoms: usize,
}

impl AtomMachine {
    /// A fresh machine.
    pub fn new(cfg: AemConfig) -> Self {
        Self {
            cfg,
            ext: ExternalMemory::new(cfg.block),
            internal: HashSet::new(),
            counter: IoCounter::new(),
            events: Vec::new(),
            input: Vec::new(),
            n_atoms: 0,
        }
    }

    /// The machine's configuration.
    pub fn cfg(&self) -> AemConfig {
        self.cfg
    }

    /// Install `n` fresh atoms (ids `0..n`, i.e. their input positions) into
    /// consecutive blocks. Free of I/O cost (problem setup). May be called
    /// once per machine.
    pub fn install_atoms(&mut self, n: usize) -> Region {
        assert_eq!(self.n_atoms, 0, "atoms already installed");
        self.n_atoms = n;
        let atoms: Vec<AtomId> = (0..n as u64).map(AtomId).collect();
        let region = self.ext.install(&atoms);
        self.input = region
            .iter()
            .map(|id| (id, self.ext.get(id).expect("fresh region").to_vec()))
            .filter(|(_, v)| !v.is_empty())
            .collect();
        region
    }

    /// Allocate a fresh empty block (free).
    pub fn alloc_block(&mut self) -> BlockId {
        self.ext.alloc()
    }

    /// Allocate a region of fresh blocks holding `elems` atoms (free).
    pub fn alloc_region(&mut self, elems: usize) -> Region {
        self.ext.alloc_region(elems)
    }

    /// Read block `id`, *using* (keeping) exactly the atoms in `keep`.
    ///
    /// Kept atoms move to internal memory; their external copies are
    /// destroyed. Non-kept atoms are unaffected. Charged: 1 read I/O.
    ///
    /// # Errors
    ///
    /// * [`MachineError::AtomNotPresent`] if some atom of `keep` is not in
    ///   the block;
    /// * [`MachineError::InternalOverflow`] if keeping them would exceed `M`.
    pub fn read_keep(&mut self, id: BlockId, keep: &[AtomId]) -> Result<()> {
        let block = self.ext.get(id)?;
        let keep_set: HashSet<AtomId> = keep.iter().copied().collect();
        for a in keep {
            if !block.as_slice().contains(a) {
                return Err(MachineError::AtomNotPresent {
                    atom: a.0,
                    wanted_in: "read block",
                });
            }
        }
        if self.internal.len() + keep_set.len() > self.cfg.memory {
            return Err(MachineError::InternalOverflow {
                used: self.internal.len(),
                capacity: self.cfg.memory,
                requested: keep_set.len(),
            });
        }
        // Record removal in block order (normalization of Lemma 4.3 relies
        // on a well-defined order).
        let removed: Vec<AtomId> = block
            .as_slice()
            .iter()
            .copied()
            .filter(|a| keep_set.contains(a))
            .collect();
        let remaining: Vec<AtomId> = block
            .as_slice()
            .iter()
            .copied()
            .filter(|a| !keep_set.contains(a))
            .collect();
        self.ext.get_mut(id)?.set(remaining);
        self.internal.extend(removed.iter().copied());
        self.counter.charge_read();
        self.events.push(AtomEvent::Read { block: id, removed });
        Ok(())
    }

    /// Write `atoms` (all currently in internal memory) to the empty block
    /// `id`. Charged: 1 write I/O.
    ///
    /// # Errors
    ///
    /// * [`MachineError::WriteToOccupied`] if the block still holds atoms;
    /// * [`MachineError::AtomNotPresent`] if some atom is not in internal
    ///   memory;
    /// * [`MachineError::BlockOverflow`] if more than `B` atoms are written.
    pub fn write(&mut self, id: BlockId, atoms: Vec<AtomId>) -> Result<()> {
        if atoms.len() > self.cfg.block {
            return Err(MachineError::BlockOverflow {
                len: atoms.len(),
                block: self.cfg.block,
            });
        }
        let occupancy = self.ext.get(id)?.len();
        if occupancy > 0 {
            return Err(MachineError::WriteToOccupied {
                block: id.index(),
                occupancy,
            });
        }
        let distinct: HashSet<AtomId> = atoms.iter().copied().collect();
        if distinct.len() != atoms.len() {
            return Err(MachineError::MalformedTrace(
                "write lists the same atom twice (atoms are indivisible)".into(),
            ));
        }
        for a in &atoms {
            if !self.internal.contains(a) {
                return Err(MachineError::AtomNotPresent {
                    atom: a.0,
                    wanted_in: "internal memory",
                });
            }
        }
        for a in &atoms {
            self.internal.remove(a);
        }
        self.ext.put(id, atoms.clone())?;
        self.counter.charge_write();
        self.events.push(AtomEvent::Write { block: id, atoms });
        Ok(())
    }

    /// Atoms currently resident in internal memory (sorted for determinism).
    pub fn internal_atoms(&self) -> Vec<AtomId> {
        let mut v: Vec<AtomId> = self.internal.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of atoms resident in internal memory.
    pub fn internal_used(&self) -> usize {
        self.internal.len()
    }

    /// Contents of a block, free of charge (inspection).
    pub fn inspect_block(&self, id: BlockId) -> Result<Vec<AtomId>> {
        Ok(self.ext.get(id)?.to_vec())
    }

    /// Contents of a whole region, free of charge (inspection).
    pub fn inspect(&self, region: Region) -> Vec<AtomId> {
        self.ext.inspect(region)
    }

    /// Cost so far.
    pub fn cost(&self) -> Cost {
        self.counter.snapshot()
    }

    /// Finish: return the recorded program.
    pub fn into_program(self) -> AtomProgram {
        AtomProgram {
            n_atoms: self.n_atoms,
            block: self.cfg.block,
            input: self.input,
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AemConfig {
        AemConfig::new(8, 4, 4).unwrap()
    }

    #[test]
    fn install_assigns_input_positions() {
        let mut m = AtomMachine::new(cfg());
        let r = m.install_atoms(10);
        assert_eq!(r.blocks, 3);
        assert_eq!(
            m.inspect_block(r.block(0)).unwrap(),
            vec![AtomId(0), AtomId(1), AtomId(2), AtomId(3)]
        );
        assert_eq!(
            m.inspect_block(r.block(2)).unwrap(),
            vec![AtomId(8), AtomId(9)]
        );
    }

    #[test]
    fn read_destroys_external_copy() {
        let mut m = AtomMachine::new(cfg());
        let r = m.install_atoms(4);
        m.read_keep(r.block(0), &[AtomId(1), AtomId(3)]).unwrap();
        assert_eq!(
            m.inspect_block(r.block(0)).unwrap(),
            vec![AtomId(0), AtomId(2)]
        );
        assert_eq!(m.internal_atoms(), vec![AtomId(1), AtomId(3)]);
        assert_eq!(m.cost(), Cost::new(1, 0));
    }

    #[test]
    fn cannot_keep_absent_atom() {
        let mut m = AtomMachine::new(cfg());
        let r = m.install_atoms(4);
        let err = m.read_keep(r.block(0), &[AtomId(9)]).unwrap_err();
        assert!(matches!(err, MachineError::AtomNotPresent { atom: 9, .. }));
    }

    #[test]
    fn write_requires_empty_block() {
        let mut m = AtomMachine::new(cfg());
        let r = m.install_atoms(8);
        m.read_keep(r.block(0), &[AtomId(0)]).unwrap();
        // Block 1 still holds atoms 4..8: cannot be written.
        let err = m.write(r.block(1), vec![AtomId(0)]).unwrap_err();
        assert!(matches!(err, MachineError::WriteToOccupied { .. }));
        // But a fully-drained block can.
        m.read_keep(r.block(0), &[AtomId(1), AtomId(2), AtomId(3)])
            .unwrap();
        m.write(r.block(0), vec![AtomId(3), AtomId(0)]).unwrap();
        assert_eq!(
            m.inspect_block(r.block(0)).unwrap(),
            vec![AtomId(3), AtomId(0)]
        );
    }

    #[test]
    fn write_requires_atoms_in_memory() {
        let mut m = AtomMachine::new(cfg());
        let _ = m.install_atoms(4);
        let fresh = m.alloc_block();
        let err = m.write(fresh, vec![AtomId(0)]).unwrap_err();
        assert!(matches!(err, MachineError::AtomNotPresent { .. }));
    }

    #[test]
    fn internal_capacity_enforced() {
        let mut m = AtomMachine::new(cfg());
        let r = m.install_atoms(12);
        m.read_keep(r.block(0), &[AtomId(0), AtomId(1), AtomId(2), AtomId(3)])
            .unwrap();
        m.read_keep(r.block(1), &[AtomId(4), AtomId(5), AtomId(6), AtomId(7)])
            .unwrap();
        // M = 8: a ninth atom does not fit.
        let err = m.read_keep(r.block(2), &[AtomId(8)]).unwrap_err();
        assert!(matches!(err, MachineError::InternalOverflow { .. }));
    }

    #[test]
    fn program_records_everything() {
        let mut m = AtomMachine::new(cfg());
        let r = m.install_atoms(4);
        m.read_keep(r.block(0), &[AtomId(0), AtomId(1), AtomId(2), AtomId(3)])
            .unwrap();
        let out = m.alloc_block();
        m.write(out, vec![AtomId(2), AtomId(0), AtomId(3), AtomId(1)])
            .unwrap();
        let prog = m.into_program();
        assert_eq!(prog.n_atoms, 4);
        assert_eq!(prog.events.len(), 2);
        assert_eq!(prog.cost(), Cost::new(1, 1));
        assert_eq!(prog.input.len(), 1);
    }

    #[test]
    fn atoms_move_not_copy() {
        let mut m = AtomMachine::new(cfg());
        let r = m.install_atoms(4);
        m.read_keep(r.block(0), &[AtomId(0)]).unwrap();
        // The atom left the block; a second keep of the same atom fails.
        let err = m.read_keep(r.block(0), &[AtomId(0)]).unwrap_err();
        assert!(matches!(err, MachineError::AtomNotPresent { .. }));
        // And after writing it out, it is no longer in internal memory.
        let out = m.alloc_block();
        m.write(out, vec![AtomId(0)]).unwrap();
        assert_eq!(m.internal_used(), 0);
        let other = m.alloc_block();
        assert!(m.write(other, vec![AtomId(0)]).is_err());
    }
}
