//! # `aem-machine` — an executable `(M, B, ω)`-Asymmetric External Memory model
//!
//! This crate implements the machine model of
//! *Jacob & Sitchinava, "Lower Bounds in the Asymmetric External Memory
//! Model", SPAA 2017* as an **instrumented, enforcing simulator** rather than
//! a pencil-and-paper abstraction.
//!
//! The `(M, B, ω)`-AEM model consists of:
//!
//! * an unbounded **external (asymmetric) memory** holding the input, divided
//!   into blocks of `B` elements each;
//! * a small **internal (symmetric) memory** of capacity `M` elements;
//! * transfers between the two happen in whole blocks; a **read** I/O costs
//!   `1` and a **write** I/O costs `ω ≥ 1`;
//! * computation inside internal memory is free (the model only meters I/O).
//!
//! The cost of a computation performing `Q_r` reads and `Q_w` writes is
//! `Q = Q_r + ω·Q_w`. Setting `B = 1` recovers the `(M, ω)`-ARAM model of
//! Blelloch et al., and setting `ω = 1` recovers the classical
//! Aggarwal–Vitter external memory (EM) model.
//!
//! ## What this crate provides
//!
//! * [`AemConfig`] — the model parameters `M`, `B`, `ω` plus all the derived
//!   quantities the paper uses (`m = ⌈M/B⌉`, `n = ⌈N/B⌉`, round budget `ωm`).
//! * [`Machine`] — the *copy-semantics* machine used to run algorithms:
//!   block-granular I/O, enforced internal-memory capacity, exact metering of
//!   reads/writes, optional trace recording. Algorithms access it through the
//!   [`AemAccess`] trait so they run unmodified on instrumentation wrappers.
//! * [`MachineCore`] / [`BlockStore`] — the meter behind [`Machine`],
//!   generic over pluggable storage backends: the copying [`VecStore`]
//!   (default), the buffer-recycling [`ArenaStore`] ([`ArenaMachine`]) and
//!   the cost-only [`GhostStore`] ([`GhostMachine`]), which carries no data
//!   payload and lets pure cost sweeps scale `N` by two orders of
//!   magnitude. See [`store`] for when each backend is sound.
//! * [`AtomMachine`] — the *move-semantics* machine of §4.2 of the paper,
//!   used for the lower-bound machinery: elements are indivisible **atoms**,
//!   a read chooses the subset of atoms to keep (destroying their external
//!   copies), writes may only target empty blocks. Programs recorded on this
//!   machine carry exactly the per-read "which atoms were used" annotations
//!   required by the flash-model simulation of Lemma 4.3.
//! * [`rounds`] — the round decomposition of §4 and an executable version of
//!   **Lemma 4.1**: [`rounds::RoundBasedMachine`] runs any algorithm as a
//!   round-based program on a `2M` machine with (measured) constant-factor
//!   overhead, and [`rounds::round_based_cost`] computes the exact cost of
//!   the Lemma 4.1 conversion of a recorded trace.
//! * [`Trace`] — recorded straight-line I/O programs (the paper's notion of
//!   *program* as opposed to *algorithm*), replayable and analyzable.
//! * [`TraceMachine`] / [`CompiledTrace`] — schedule recording and
//!   arithmetic replay: a vec-semantics run compiles its metered I/O
//!   (bulk runs as single ops) into a schedule whose cost re-evaluates
//!   as one pass of integer additions — see [`compiled`].
//!
//! Every [`AemAccess`] machine also exposes **bulk block I/O**
//! ([`AemAccess::read_run`] / [`AemAccess::write_run`]): a contiguous run
//! of blocks in one call, one cost-ledger update, one bounds sweep —
//! cost-equivalent to the per-block loop (the contract is documented in
//! `docs/COST_MODEL.md`).
//!
//! ## Example
//!
//! ```
//! use aem_machine::{AemConfig, Machine, AemAccess};
//!
//! // A machine with M = 64 elements of internal memory, blocks of B = 8,
//! // and writes 16x more expensive than reads.
//! let cfg = AemConfig::new(64, 8, 16).unwrap();
//! let mut machine: Machine<u64> = Machine::new(cfg);
//!
//! // Install an input array (free: the input starts in external memory).
//! let input: Vec<u64> = (0..64).rev().collect();
//! let region = machine.install(&input);
//!
//! // Read the first block, reverse it in internal memory (free), write it out.
//! let mut data = machine.read_block(region.block(0)).unwrap();
//! data.reverse();
//! let out = machine.alloc_block();
//! machine.write_block(out, data).unwrap();
//!
//! let cost = machine.cost();
//! assert_eq!(cost.reads, 1);
//! assert_eq!(cost.writes, 1);
//! assert_eq!(cost.q(machine.cfg().omega), 1 + 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod block;
pub mod compiled;
pub mod config;
pub mod cost;
pub mod error;
pub mod external;
pub mod machine;
pub mod rounds;
pub mod store;
pub mod trace;

pub use atom::{AtomId, AtomMachine};
pub use block::{Block, BlockId, Region};
pub use compiled::{CompiledTrace, TraceMachine, TraceOp};
pub use config::AemConfig;
pub use cost::{Cost, IoCounter};
pub use error::{MachineError, Result};
pub use machine::{AemAccess, ArenaMachine, GhostMachine, Machine, MachineCore};
pub use rounds::RoundBasedMachine;
pub use store::{ArenaStore, Backend, BlockStore, GhostStore, VecStore};
pub use trace::{IoEvent, Trace, TraceStats};
