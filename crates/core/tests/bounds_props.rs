//! Property tests of the bound evaluators: internal consistency of the
//! counting machinery across random parameters, and optimality of the
//! exhaustive search against the algorithms on random tiny instances.

use aem_core::bounds::exhaustive::optimal_permutation_cost;
use aem_core::bounds::math;
use aem_core::bounds::permute::{counting_rounds, permute_cost_lower_bound};
use aem_core::bounds::spmv;
use aem_core::permute::{permute_by_sort, permute_naive};
use aem_machine::AemConfig;
use aem_workloads::PermKind;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `ln n!` is super-additive-consistent: `ln (a+b)! ≥ ln a! + ln b!`
    /// (because C(a+b, a) ≥ 1), across magnitudes spanning the Stirling
    /// switchover.
    #[test]
    fn ln_factorial_superadditive(a in 0u64..2_000_000, b in 0u64..2_000_000) {
        let lhs = math::ln_factorial(a + b);
        let rhs = math::ln_factorial(a) + math::ln_factorial(b);
        prop_assert!(lhs + 1e-6 >= rhs, "a={a} b={b}: {lhs} < {rhs}");
    }

    /// The binomial bound `C(n,k) ≤ 2^n` in log space.
    #[test]
    fn binomial_below_power_set(n in 1u64..1_000_000, k in 0u64..1_000_000) {
        let v = math::ln_binomial(n, k);
        prop_assert!(v <= n as f64 * std::f64::consts::LN_2 + 1e-6);
        prop_assert!(v >= 0.0);
    }

    /// Minimality of the counting round count: R rounds cover the target,
    /// R−1 do not — for arbitrary machine shapes.
    #[test]
    fn counting_rounds_minimal(
        mb in 2usize..64,
        be in 1usize..6,
        omega in 1u64..512,
        n_exp in 8u32..22,
    ) {
        let b = 1usize << be;
        let cfg = AemConfig::new(mb.max(2) * b, b, omega).unwrap();
        let cb = counting_rounds(1u64 << n_exp, cfg);
        if cb.rounds > 0 {
            prop_assert!(cb.rounds as f64 * cb.per_round_ln >= cb.target_ln);
            prop_assert!((cb.rounds - 1) as f64 * cb.per_round_ln < cb.target_ln);
        } else {
            prop_assert!(cb.target_ln <= 0.0);
        }
    }

    /// The general-program bound never exceeds the naive algorithm's
    /// worst-case cost for any parameters (a violated instance would
    /// falsify the theorem).
    #[test]
    fn counting_bound_below_naive_everywhere(
        mb in 2usize..32,
        be in 1usize..6,
        omega in 1u64..1024,
        n_exp in 8u32..22,
    ) {
        let b = 1usize << be;
        let cfg = AemConfig::new(mb.max(2) * b, b, omega).unwrap();
        let n = 1u64 << n_exp;
        let lb = permute_cost_lower_bound(n, cfg);
        let naive = n as f64 + omega as f64 * n.div_ceil(b as u64) as f64;
        prop_assert!(lb <= naive, "{cfg} N={n}: lb {lb} > naive {naive}");
    }

    /// Theorem 5.1's numeric bound never exceeds the direct algorithm's
    /// worst case `2H + (ω+1)n`, for any parameters.
    #[test]
    fn spmv_bound_below_direct_everywhere(
        mb in 4usize..64,
        be in 1usize..6,
        omega in 1u64..256,
        n_exp in 10u32..24,
        delta in 1u64..64,
    ) {
        let b = 1usize << be;
        let cfg = AemConfig::new(mb.max(2) * b, b, omega).unwrap();
        let n = 1u64 << n_exp;
        let h = (delta * n) as f64;
        let direct = 2.0 * h + (omega as f64 + 1.0) * n.div_ceil(b as u64) as f64;
        let lb = spmv::spmv_cost_lower_bound(n, delta, cfg);
        prop_assert!(lb <= direct, "{cfg} N={n} δ={delta}: lb {lb} > direct {direct}");
    }

    /// On random tiny instances, the exhaustive optimum sits between the
    /// counting bound and both algorithms.
    #[test]
    fn exhaustive_optimum_is_sandwiched(seed in any::<u64>(), omega in 1u64..8) {
        let cfg = AemConfig::new(4, 2, omega).unwrap();
        let n = 6usize;
        let pi = PermKind::Random { seed }.generate(n);
        let opt = optimal_permutation_cost(&pi, cfg, 2).expect("searchable");
        let lb = permute_cost_lower_bound(n as u64, cfg);
        prop_assert!(opt as f64 >= lb);
        let values: Vec<u64> = (0..n as u64).collect();
        let naive = permute_naive(cfg, &values, &pi).unwrap().q();
        prop_assert!(opt <= naive, "opt {opt} vs naive {naive}");
        // The sort-based permuter needs M >= 4B; compare where it runs.
        if cfg.memory >= 4 * cfg.block {
            let sort = permute_by_sort(cfg, &values, &pi).unwrap().q();
            prop_assert!(opt <= sort, "opt {opt} vs sort {sort}");
        }
    }
}
