//! Property tests of the bound evaluators: internal consistency of the
//! counting machinery across random parameters, and optimality of the
//! exhaustive search against the algorithms on random tiny instances.
//!
//! Each property runs a fixed number of seeded deterministic cases drawn
//! from the workspace's [`SplitMix64`] generator.

use aem_core::bounds::exhaustive::optimal_permutation_cost;
use aem_core::bounds::math;
use aem_core::bounds::permute::{counting_rounds, permute_cost_lower_bound};
use aem_core::bounds::spmv;
use aem_core::permute::{permute_by_sort, permute_naive};
use aem_machine::AemConfig;
use aem_workloads::{PermKind, SplitMix64};

/// `ln n!` is super-additive-consistent: `ln (a+b)! ≥ ln a! + ln b!`
/// (because C(a+b, a) ≥ 1), across magnitudes spanning the Stirling
/// switchover.
#[test]
fn ln_factorial_superadditive() {
    let mut rng = SplitMix64::seed_from_u64(0xfac7);
    for _ in 0..48 {
        let a = rng.next_below(2_000_000);
        let b = rng.next_below(2_000_000);
        let lhs = math::ln_factorial(a + b);
        let rhs = math::ln_factorial(a) + math::ln_factorial(b);
        assert!(lhs + 1e-6 >= rhs, "a={a} b={b}: {lhs} < {rhs}");
    }
}

/// The binomial bound `C(n,k) ≤ 2^n` in log space.
#[test]
fn binomial_below_power_set() {
    let mut rng = SplitMix64::seed_from_u64(0xb10);
    for _ in 0..48 {
        let n = 1 + rng.next_below(999_999);
        let k = rng.next_below(1_000_000);
        let v = math::ln_binomial(n, k);
        assert!(v <= n as f64 * std::f64::consts::LN_2 + 1e-6);
        assert!(v >= 0.0);
    }
}

/// Minimality of the counting round count: R rounds cover the target,
/// R−1 do not — for arbitrary machine shapes.
#[test]
fn counting_rounds_minimal() {
    let mut rng = SplitMix64::seed_from_u64(0xc0de);
    for _ in 0..48 {
        let mb = 2 + rng.next_below_usize(62);
        let be = 1 + rng.next_below_usize(5);
        let omega = 1 + rng.next_below(511);
        let n_exp = 8 + rng.next_below(14) as u32;
        let b = 1usize << be;
        let cfg = AemConfig::new(mb.max(2) * b, b, omega).unwrap();
        let cb = counting_rounds(1u64 << n_exp, cfg);
        if cb.rounds > 0 {
            assert!(cb.rounds as f64 * cb.per_round_ln >= cb.target_ln);
            assert!((cb.rounds - 1) as f64 * cb.per_round_ln < cb.target_ln);
        } else {
            assert!(cb.target_ln <= 0.0);
        }
    }
}

/// The general-program bound never exceeds the naive algorithm's
/// worst-case cost for any parameters (a violated instance would
/// falsify the theorem).
#[test]
fn counting_bound_below_naive_everywhere() {
    let mut rng = SplitMix64::seed_from_u64(0x7a1e);
    for _ in 0..48 {
        let mb = 2 + rng.next_below_usize(30);
        let be = 1 + rng.next_below_usize(5);
        let omega = 1 + rng.next_below(1023);
        let n_exp = 8 + rng.next_below(14) as u32;
        let b = 1usize << be;
        let cfg = AemConfig::new(mb.max(2) * b, b, omega).unwrap();
        let n = 1u64 << n_exp;
        let lb = permute_cost_lower_bound(n, cfg);
        let naive = n as f64 + omega as f64 * n.div_ceil(b as u64) as f64;
        assert!(lb <= naive, "{cfg} N={n}: lb {lb} > naive {naive}");
    }
}

/// Theorem 5.1's numeric bound never exceeds the direct algorithm's
/// worst case `2H + (ω+1)n`, for any parameters.
#[test]
fn spmv_bound_below_direct_everywhere() {
    let mut rng = SplitMix64::seed_from_u64(0x5b3c);
    for _ in 0..48 {
        let mb = 4 + rng.next_below_usize(60);
        let be = 1 + rng.next_below_usize(5);
        let omega = 1 + rng.next_below(255);
        let n_exp = 10 + rng.next_below(14) as u32;
        let delta = 1 + rng.next_below(63);
        let b = 1usize << be;
        let cfg = AemConfig::new(mb.max(2) * b, b, omega).unwrap();
        let n = 1u64 << n_exp;
        let h = (delta * n) as f64;
        let direct = 2.0 * h + (omega as f64 + 1.0) * n.div_ceil(b as u64) as f64;
        let lb = spmv::spmv_cost_lower_bound(n, delta, cfg);
        assert!(
            lb <= direct,
            "{cfg} N={n} δ={delta}: lb {lb} > direct {direct}"
        );
    }
}

/// On random tiny instances, the exhaustive optimum sits between the
/// counting bound and both algorithms.
#[test]
fn exhaustive_optimum_is_sandwiched() {
    let mut rng = SplitMix64::seed_from_u64(0x0b7);
    for _ in 0..48 {
        let seed = rng.next_u64();
        let omega = 1 + rng.next_below(7);
        let cfg = AemConfig::new(4, 2, omega).unwrap();
        let n = 6usize;
        let pi = PermKind::Random { seed }.generate(n);
        let opt = optimal_permutation_cost(&pi, cfg, 2).expect("searchable");
        let lb = permute_cost_lower_bound(n as u64, cfg);
        assert!(opt as f64 >= lb);
        let values: Vec<u64> = (0..n as u64).collect();
        let naive = permute_naive(cfg, &values, &pi).unwrap().q();
        assert!(opt <= naive, "opt {opt} vs naive {naive}");
        // The sort-based permuter needs M >= 4B; compare where it runs.
        if cfg.memory >= 4 * cfg.block {
            let sort = permute_by_sort(cfg, &values, &pi).unwrap().q();
            assert!(opt <= sort, "opt {opt} vs sort {sort}");
        }
    }
}
