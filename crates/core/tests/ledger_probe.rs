use aem_core::pq::ExternalPq;
use aem_core::spmv::direct::spmv_direct_on;
use aem_core::spmv::layout::{install_instance, MatEntry, SpmvInstance};
use aem_core::spmv::semiring::U64Ring;
use aem_core::spmv::sorted::spmv_sorted_on;
use aem_machine::{AemAccess, AemConfig, Machine};
use aem_workloads::{Conformation, KeyDist, MatrixShape};

#[test]
fn pq_interleaved_ledger_balanced() {
    for (m, b, n) in [(64usize, 8usize, 600usize), (32, 4, 900), (128, 8, 2000)] {
        let cfg = AemConfig::new(m, b, 8).unwrap();
        let mut mac: Machine<u64> = Machine::new(cfg);
        let mut pq = ExternalPq::new(cfg).unwrap();
        let keys = KeyDist::Uniform { seed: 42 }.generate(n);
        let mut reference = std::collections::BinaryHeap::new();
        for (i, &x) in keys.iter().enumerate() {
            pq.push(&mut mac, x).unwrap();
            reference.push(std::cmp::Reverse(x));
            if i % 3 == 2 {
                let got = pq.pop(&mut mac).unwrap().unwrap();
                mac.discard(1).unwrap();
                assert_eq!(got, reference.pop().unwrap().0);
            }
        }
        while let Some(std::cmp::Reverse(want)) = reference.pop() {
            let got = pq.pop(&mut mac).unwrap().unwrap();
            mac.discard(1).unwrap();
            assert_eq!(got, want);
        }
        assert!(pq.is_empty());
        assert_eq!(mac.internal_used(), 0, "pq leaked budget m={m} b={b} n={n}");
    }
}

#[test]
fn spmv_ledgers_balanced() {
    for (n, delta, seed) in [
        (16usize, 1usize, 1u64),
        (32, 2, 2),
        (64, 4, 3),
        (48, 48, 4),
        (64, 16, 5),
    ] {
        let conf = Conformation::generate(MatrixShape::Random { seed }, n, delta);
        let a: Vec<U64Ring> = (0..conf.nnz()).map(|i| U64Ring(i as u64 % 19)).collect();
        let x: Vec<U64Ring> = (0..n).map(|j| U64Ring(j as u64 % 7)).collect();
        let inst = SpmvInstance {
            conf: &conf,
            a_vals: &a,
            x: &x,
        };

        let cfg = AemConfig::new(16, 4, 4).unwrap();
        let mut mac: Machine<MatEntry<U64Ring>> = Machine::new(cfg);
        let (ra, rx) = install_instance(&mut mac, &inst);
        spmv_sorted_on::<U64Ring, _>(&mut mac, &conf, ra, rx).unwrap();
        assert_eq!(
            mac.internal_used(),
            0,
            "spmv_sorted leaked n={n} delta={delta}"
        );

        let mut mac2: Machine<MatEntry<U64Ring>> = Machine::new(cfg);
        let (ra, rx) = install_instance(&mut mac2, &inst);
        spmv_direct_on::<U64Ring, _>(&mut mac2, &conf, ra, rx).unwrap();
        assert_eq!(
            mac2.internal_used(),
            0,
            "spmv_direct leaked n={n} delta={delta}"
        );
    }
}

#[test]
fn transpose_ledger_balanced() {
    use aem_core::permute::transpose::transpose_tiled;
    let cfg = AemConfig::new(32, 4, 8).unwrap();
    for (r, c) in [(4usize, 4usize), (8, 4), (4, 12), (16, 8)] {
        let values: Vec<u64> = (0..(r * c) as u64).collect();
        let mut m: Machine<u64> = Machine::new(cfg);
        let reg = m.install(&values);
        transpose_tiled(&mut m, reg, r, c).unwrap();
        assert_eq!(m.internal_used(), 0, "transpose leaked {r}x{c}");
    }
}

#[test]
fn relational_group_aggregate_ledger() {
    use aem_core::relational::{group_aggregate, sort_merge_join, Tuple};
    let cfg = AemConfig::new(64, 8, 8).unwrap();
    let mut m: Machine<Tuple<u64>> = Machine::new(cfg);
    let data: Vec<Tuple<u64>> = (0..301)
        .map(|i| Tuple {
            key: i % 7,
            payload: 1,
        })
        .collect();
    let r = m.install(&data);
    group_aggregate(&mut m, r, |acc: u64, x: &u64| acc + x).unwrap();
    assert_eq!(m.internal_used(), 0, "group_aggregate leaked");

    // join where one side exhausts early with resident blocks on the other
    let mut m2: Machine<Tuple<u64>> = Machine::new(cfg);
    let left: Vec<Tuple<u64>> = (0..5).map(|i| Tuple { key: i, payload: i }).collect();
    let right: Vec<Tuple<u64>> = (0..200)
        .map(|i| Tuple {
            key: i + 100,
            payload: i,
        })
        .collect();
    let lr = m2.install(&left);
    let rr = m2.install(&right);
    sort_merge_join(&mut m2, lr, rr, |a: &u64, b: &u64| a + b).unwrap();
    assert_eq!(m2.internal_used(), 0, "join leaked");
}

#[test]
fn permute_naive_ledger() {
    use aem_core::permute::naive::permute_naive_on;
    use aem_workloads::perm::PermKind;
    let cfg = AemConfig::new(16, 4, 4).unwrap();
    for n in [13usize, 64, 256] {
        let pi = PermKind::Random { seed: 9 }.generate(n);
        let values: Vec<u64> = (0..n as u64).collect();
        let mut m: Machine<u64> = Machine::new(cfg);
        let reg = m.install(&values);
        permute_naive_on(&mut m, reg, &pi).unwrap();
        assert_eq!(m.internal_used(), 0, "permute_naive leaked n={n}");
    }
}

#[test]
fn stream_prefix_scan_and_map_ledger() {
    use aem_core::stream::{map, prefix_scan};
    let cfg = AemConfig::new(16, 4, 8).unwrap();
    let mut m: Machine<u64> = Machine::new(cfg);
    let r = m.install(&(0u64..23).collect::<Vec<_>>());
    prefix_scan(&mut m, r, |a, b| a + b).unwrap();
    assert_eq!(m.internal_used(), 0, "prefix_scan leaked");
    let r2 = m.install(&(0u64..23).collect::<Vec<_>>());
    map(&mut m, r2, |x: u64| x + 1).unwrap();
    assert_eq!(m.internal_used(), 0, "map leaked");
}
