//! Trace-replay properties at the algorithm level: the compiled schedule
//! of a recorded workload replays — as pure arithmetic, no payloads —
//! to exactly the live vec run's cost tuple (`docs/COST_MODEL.md` §5).

use aem_core::permute::permute_naive_on;
use aem_core::sort::merge_sort;
use aem_machine::{AemAccess, AemConfig, Machine, TraceMachine};
use aem_workloads::{KeyDist, PermKind, SplitMix64};

/// A recorded §3 mergesort replays to the live run's `(Q_r, Q_w)` — and
/// therefore to the same `Q` under any `ω` — across random
/// configurations, sizes and key distributions.
#[test]
fn recorded_sort_replays_to_the_live_cost_tuple() {
    for case in 0..6u64 {
        let mut rng = SplitMix64::seed_from_u64(0x50417 + case);
        let (m, b) = [(32usize, 4usize), (64, 8), (128, 8)][rng.next_below_usize(3)];
        let cfg = AemConfig::new(m, b, 1 + rng.next_below(64)).unwrap();
        let n = 64 + rng.next_below_usize(700);
        let keys = KeyDist::Uniform { seed: case }.generate(n);
        let mut want = keys.clone();
        want.sort_unstable();

        let mut live: Machine<u64> = Machine::new(cfg);
        let lr = live.install(&keys);
        let lout = merge_sort(&mut live, lr).unwrap();
        assert_eq!(live.inspect(lout), want, "case {case}");

        let mut rec: TraceMachine<u64> = TraceMachine::new(cfg);
        let rr = rec.install(&keys);
        let rout = merge_sort(&mut rec, rr).unwrap();
        assert_eq!(rec.inspect(rout), want, "case {case}");
        assert_eq!(rec.cost(), live.cost(), "case {case}: recording is free");

        let schedule = rec.into_schedule(); // debug-asserts verify_replay
        assert_eq!(schedule.replay(), live.cost(), "case {case}");
        assert_eq!(schedule.replay_q(), live.cost().q(cfg.omega), "case {case}");
    }
}

/// The same property for the bulk-ported naive permuter, whose runs
/// compile to single multi-block ops: replay still prices exactly what
/// the live meter charged.
#[test]
fn recorded_permute_replays_to_the_live_cost_tuple() {
    for case in 0..6u64 {
        let mut rng = SplitMix64::seed_from_u64(0x9e47 + case);
        let cfg = AemConfig::new(64, 8, 1 + rng.next_below(32)).unwrap();
        let n = 32 + rng.next_below_usize(600);
        let pi = PermKind::Random { seed: case }.generate(n);
        let values: Vec<u64> = (0..n as u64).collect();

        let mut live: Machine<u64> = Machine::new(cfg);
        let lr = live.install(&values);
        let lout = permute_naive_on(&mut live, lr, &pi).unwrap();

        let mut rec: TraceMachine<u64> = TraceMachine::new(cfg);
        let rr = rec.install(&values);
        let rout = permute_naive_on(&mut rec, rr, &pi).unwrap();
        assert_eq!(rec.inspect(rout), live.inspect(lout), "case {case}");
        assert_eq!(rec.cost(), live.cost(), "case {case}");

        let schedule = rec.into_schedule();
        // Bulk write flushes compile to one op per flush, so the schedule
        // is shorter than the event count — but replays to the same tuple.
        assert!(schedule.len() as u64 <= live.cost().reads + live.cost().writes);
        assert_eq!(schedule.replay(), live.cost(), "case {case}");
    }
}
