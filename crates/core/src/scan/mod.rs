//! Blocked reduction and prefix scan under asymmetric read/write costs
//! (T12).
//!
//! The scenario behind Blelloch et al.'s reduce/scan upper bounds: a
//! value file of `n` words answers a batch of `δ` inclusive prefix-sum
//! queries, and every intermediate level the algorithm *materializes*
//! costs `ω` per block written. Three strategies bracket the read/write
//! trade:
//!
//! * [`scan_materialize`] — the classic write-heavy scan: one sequential
//!   pass rewrites the whole file as prefix sums (`⌈n/B⌉` reads and
//!   `ω`-priced writes), after which a query is a single block read.
//! * [`build_sum_tree`] / [`query_tree`] — the blocked reduction tree:
//!   each level stores one *block-sum* per block below (the same level
//!   recurrence as the search B-tree, so the build writes only
//!   `Θ(n/B²)` upper-level blocks), and a query descends the tree
//!   summing local prefixes — `height` reads, no writes.
//! * [`scan_rescan`] — the fully write-avoiding strategy: nothing is
//!   materialized; every query recomputes its prefix by re-reading the
//!   file from block 0. Zero writes, `⌊p/B⌋ + 1` reads per query.
//!
//! All three schedules depend only on the query *positions* (RAM-side
//! instance data), never on the summed values, so every algorithm is
//! ghost-sound. [`materialize_cost`] and [`tree_cost`] are
//! exact-schedule predictors; [`rescan_cost`] is a certified upper
//! bound (`δ·⌈n/B⌉`), because the exact read count depends on where the
//! seeded query positions fall.

use aem_machine::{AemAccess, AemConfig, Cost, Region, Result};

use crate::spmv::InstallExt;

/// A built reduction tree: the value file plus block-sum levels.
#[derive(Debug, Clone)]
pub struct SumTree {
    /// The installed value file (the leaves).
    pub values: Region,
    /// Block-sum levels, bottom-up: entry `e` of level `i` is the sum of
    /// block `e` one level below. Empty when the file fits one block.
    pub levels: Vec<Region>,
}

/// The classic scan: rewrite the file as inclusive prefix sums in one
/// sequential pass (`⌈n/B⌉` reads, `⌈n/B⌉` ω-priced writes), then answer
/// each query with one block read. Exactly [`materialize_cost`].
pub fn scan_materialize<A>(m: &mut A, values: Region, queries: &[usize]) -> Result<Vec<u64>>
where
    A: AemAccess<u64> + ?Sized,
{
    let b = m.cfg().block;
    let out = m.alloc_region(values.elems);
    let mut buf = Vec::new();
    let mut carry = 0u64;
    m.phase_enter("scan");
    m.reserve(1)?; // the running carry lives in internal memory
    for i in 0..values.blocks {
        m.read_block_into(values.block(i), &mut buf)?;
        for v in buf.iter_mut() {
            carry = carry.wrapping_add(*v);
            *v = carry;
        }
        m.write_block(out.block(i), std::mem::take(&mut buf))?;
    }
    m.discard(1)?;
    m.phase_exit();
    let mut answers = Vec::with_capacity(queries.len());
    m.phase_enter("queries");
    for &p in queries {
        let len = m.read_block_into(out.block(p / b), &mut buf)?;
        answers.push(buf[p % b]);
        m.discard(len)?;
    }
    m.phase_exit();
    Ok(answers)
}

/// Build the blocked reduction tree: read each level's blocks once,
/// write one block-sum per block into the level above, until a single
/// root block remains — the same level recurrence as
/// [`crate::search::build_btree`], so the build term of [`tree_cost`]
/// matches `btree_cost` exactly.
///
/// Fan-out is the block size, so `B = 1` cannot contract a level; such
/// configs are rejected, and the registry predictor returns `None` to
/// keep the strategy off the candidate menu.
pub fn build_sum_tree<A>(m: &mut A, values: Region) -> Result<SumTree>
where
    A: AemAccess<u64> + InstallExt<u64> + ?Sized,
{
    if m.cfg().block < 2 {
        return Err(aem_machine::MachineError::InvalidConfig(
            "sum tree requires block size B >= 2 (fan-out)",
        ));
    }
    let b = m.cfg().block;
    let mut levels = Vec::new();
    let mut cur = values;
    m.phase_enter("build");
    while cur.blocks > 1 {
        let next = m.alloc_region(cur.blocks);
        let mut batch = Vec::with_capacity(b);
        let mut buf = Vec::new();
        let mut out_block = 0;
        for i in 0..cur.blocks {
            let len = m.read_block_into(cur.block(i), &mut buf)?;
            let sum = buf.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
            m.discard(len)?;
            m.reserve(1)?;
            batch.push(sum);
            if batch.len() == b {
                m.write_block(next.block(out_block), std::mem::take(&mut batch))?;
                out_block += 1;
            }
        }
        if !batch.is_empty() {
            m.write_block(next.block(out_block), batch)?;
        }
        levels.push(next);
        cur = next;
    }
    m.phase_exit();
    Ok(SumTree { values, levels })
}

/// Answer the query batch from a built tree: for query `p`, read one
/// block per level (summing the entries that precede the descent path
/// within that block) plus the leaf block's partial prefix — exactly
/// `height` reads per query, no writes.
pub fn query_tree<A>(m: &mut A, tree: &SumTree, queries: &[usize]) -> Result<Vec<u64>>
where
    A: AemAccess<u64> + ?Sized,
{
    let b = m.cfg().block;
    let mut out = Vec::with_capacity(queries.len());
    let mut buf = Vec::new();
    m.phase_enter("queries");
    for &p in queries {
        let mut total = 0u64;
        // Leaf block: entries 0..=p%B of block p/B.
        let len = m.read_block_into(tree.values.block(p / b), &mut buf)?;
        for &v in &buf[..=p % b] {
            total = total.wrapping_add(v);
        }
        m.discard(len)?;
        // Level i entry index on the path is the block index one level
        // below; its block-local predecessors cover what the leaf block
        // left out, and the remainder recurses upward.
        let mut idx = p / b;
        for level in &tree.levels {
            let len = m.read_block_into(level.block(idx / b), &mut buf)?;
            for &v in &buf[..idx % b] {
                total = total.wrapping_add(v);
            }
            m.discard(len)?;
            idx /= b;
        }
        out.push(total);
    }
    m.phase_exit();
    Ok(out)
}

/// The fully write-avoiding scan: each query re-reads the file from
/// block 0 through its own block, accumulating in a register — zero
/// writes ever, `⌊p/B⌋ + 1` reads per query.
pub fn scan_rescan<A>(m: &mut A, values: Region, queries: &[usize]) -> Result<Vec<u64>>
where
    A: AemAccess<u64> + ?Sized,
{
    let b = m.cfg().block;
    let mut out = Vec::with_capacity(queries.len());
    let mut buf = Vec::new();
    m.phase_enter("rescan");
    for &p in queries {
        let mut total = 0u64;
        for i in 0..=p / b {
            let len = m.read_block_into(values.block(i), &mut buf)?;
            let upto = if i == p / b { p % b + 1 } else { len };
            for &v in &buf[..upto] {
                total = total.wrapping_add(v);
            }
            m.discard(len)?;
        }
        out.push(total);
    }
    m.phase_exit();
    Ok(out)
}

/// Exact schedule cost of [`scan_materialize`]: `⌈n/B⌉ + δ` reads and
/// `⌈n/B⌉` writes.
pub fn materialize_cost(cfg: AemConfig, n: usize, delta: usize) -> Cost {
    if n == 0 {
        return Cost::ZERO;
    }
    let k = cfg.blocks_for(n) as u64;
    Cost {
        reads: k + delta as u64,
        writes: k,
    }
}

/// Exact schedule cost of the reduction tree: the build reads every
/// block of every non-root level once and writes each upper level once
/// (the [`crate::search::btree_cost`] recurrence verbatim); a query
/// reads one block per level of the final tree.
///
/// Requires `B >= 2` (the tree's fan-out; see [`build_sum_tree`]).
pub fn tree_cost(cfg: AemConfig, n: usize, delta: usize) -> Cost {
    assert!(
        cfg.block >= 2,
        "sum tree requires block size B >= 2 (fan-out)"
    );
    if n == 0 {
        return Cost::ZERO;
    }
    let b = cfg.block as u64;
    let mut level = cfg.blocks_for(n) as u64;
    let (mut reads, mut writes, mut height) = (0, 0, 1u64);
    while level > 1 {
        reads += level;
        level = level.div_ceil(b);
        writes += level;
        height += 1;
    }
    Cost {
        reads: reads + delta as u64 * height,
        writes,
    }
}

/// Certified upper bound for [`scan_rescan`]: at most `⌈n/B⌉` reads per
/// query (a query at position `p` reads `⌊p/B⌋ + 1 ≤ ⌈n/B⌉` blocks) and
/// never a write.
pub fn rescan_cost(cfg: AemConfig, n: usize, delta: usize) -> Cost {
    if n == 0 {
        return Cost::ZERO;
    }
    Cost {
        reads: delta as u64 * cfg.blocks_for(n) as u64,
        writes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::prefix_reference;
    use aem_machine::Machine;
    use aem_workloads::scan_instance;

    fn cfg(mem: usize, block: usize, omega: u64) -> AemConfig {
        AemConfig::new(mem, block, omega).unwrap()
    }

    fn run_algo(
        algo: &str,
        c: AemConfig,
        values: &[u64],
        queries: &[usize],
    ) -> (Vec<u64>, Cost, usize) {
        let mut m = Machine::<u64>::new(c);
        let r = m.install(values);
        let got = match algo {
            "materialize" => scan_materialize(&mut m, r, queries).unwrap(),
            "rescan" => scan_rescan(&mut m, r, queries).unwrap(),
            _ => {
                let t = build_sum_tree(&mut m, r).unwrap();
                query_tree(&mut m, &t, queries).unwrap()
            }
        };
        (got, m.cost(), m.internal_used())
    }

    #[test]
    fn all_strategies_match_the_oracle() {
        for algo in ["materialize", "tree", "rescan"] {
            for &(mem, block, n, q, seed) in &[
                (1024usize, 64usize, 2048usize, 64usize, 7u64),
                (64, 8, 300, 40, 4), // all-equal corner
                (64, 8, 1, 8, 1),
                (16, 2, 33, 9, 2),
            ] {
                let inst = scan_instance(n, q, seed);
                let (got, _, used) =
                    run_algo(algo, cfg(mem, block, 16), &inst.values, &inst.queries);
                assert_eq!(
                    got,
                    prefix_reference(&inst.values, &inst.queries),
                    "{algo} on n={n} seed={seed}"
                );
                assert_eq!(used, 0, "{algo} leaked budget");
            }
        }
    }

    #[test]
    fn materialize_and_tree_costs_are_exact_and_rescan_is_bounded() {
        let c = cfg(64, 8, 16);
        let inst = scan_instance(300, 25, 3);
        for algo in ["materialize", "tree", "rescan"] {
            let (_, total, _) = run_algo(algo, c, &inst.values, &inst.queries);
            let predict = match algo {
                "materialize" => materialize_cost,
                "tree" => tree_cost,
                _ => rescan_cost,
            }(c, 300, 25);
            if algo == "rescan" {
                assert!(total.reads <= predict.reads, "{algo}");
                assert_eq!(total.writes, 0, "{algo}");
            } else {
                assert_eq!(
                    (total.reads, total.writes),
                    (predict.reads, predict.writes),
                    "{algo}"
                );
            }
        }
    }

    #[test]
    fn tree_build_term_matches_the_btree_recurrence() {
        // Same level recurrence as the search B-tree: the build halves of
        // the two predictors agree on every shape.
        for &(mem, block, n) in &[(64usize, 8usize, 300usize), (1024, 64, 4096), (16, 2, 100)] {
            let c = cfg(mem, block, 16);
            let t = tree_cost(c, n, 0);
            let s = crate::search::btree_cost(c, n, 0);
            assert_eq!((t.reads, t.writes), (s.reads, s.writes), "n={n}");
        }
    }

    #[test]
    fn schedule_is_value_independent() {
        // Same positions, different value files: identical (Q_r, Q_w) —
        // the basis of the family's ghost-soundness flags.
        let c = cfg(64, 8, 16);
        let queries: Vec<usize> = vec![0, 13, 299, 150];
        for algo in ["materialize", "tree", "rescan"] {
            let (_, a, _) = run_algo(algo, c, &vec![1u64; 300], &queries);
            let (_, b, _) = run_algo(algo, c, &(0..300u64).collect::<Vec<_>>(), &queries);
            assert_eq!(a, b, "{algo}");
        }
    }

    #[test]
    fn crossover_materialize_tree_rescan_in_omega() {
        // n=2048 at (M=64, B=8). Large batches (δ=1024): the write-heavy
        // materialized scan wins at ω=1, the write-avoiding tree by
        // ω=16 (the crossover sits near ω ≈ 14). Small batches (δ=8) at
        // high ω: rescan's zero writes beat even the tree.
        let q = |k: fn(AemConfig, usize, usize) -> Cost, omega: u64, delta: usize| {
            k(cfg(64, 8, omega), 2048, delta).q_saturating(omega)
        };
        assert!(q(materialize_cost, 1, 1024) < q(tree_cost, 1, 1024));
        assert!(q(tree_cost, 16, 1024) < q(materialize_cost, 16, 1024));
        assert!(q(tree_cost, 16, 8) < q(rescan_cost, 16, 8));
        assert!(q(rescan_cost, 256, 8) < q(tree_cost, 256, 8));
    }

    #[test]
    fn tiny_blocks_reject_the_tree() {
        let mut m = Machine::<u64>::new(cfg(4, 1, 16));
        let r = m.install(&[1u64, 2, 3]);
        assert!(build_sum_tree(&mut m, r).is_err());
    }
}
